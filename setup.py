"""Setup shim for legacy editable installs (no `wheel` package offline)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Fusion: an analytics object store optimized for query pushdown "
        "(ASPLOS'25 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
