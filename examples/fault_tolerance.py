"""Fault tolerance: lose storage nodes, recover, and keep querying.

Fusion stores each object as RS(9,6) stripes, tolerating any three lost
blocks per stripe.  This example kills nodes one at a time, runs the
recovery procedure, and verifies that Get round-trips byte-for-byte and
queries keep returning correct results throughout.

Run with::

    python examples/fault_tolerance.py
"""

import numpy as np

from repro.cluster import Cluster, ClusterConfig, Simulator
from repro.core import FusionStore, StoreConfig
from repro.format import ColumnType, Table, write_table
from repro.sql import execute_local

# Build and store a table on a 12-node cluster.
rng = np.random.default_rng(42)
num_rows = 30_000
table = Table.from_dict(
    {
        "sensor": (ColumnType.INT64, rng.integers(0, 500, num_rows)),
        "reading": (ColumnType.DOUBLE, np.round(rng.normal(20, 5, num_rows), 3)),
        "ok": (ColumnType.BOOL, rng.random(num_rows) > 0.01),
        "site": (ColumnType.STRING, [f"site-{i % 40}" for i in range(num_rows)]),
    }
)
file_bytes = write_table(table, row_group_rows=3_000)

sim = Simulator()
cluster = Cluster(sim, ClusterConfig(num_nodes=12))
store = FusionStore(cluster, StoreConfig(size_scale=500.0))
report = store.put("telemetry", file_bytes)
print(
    f"stored 'telemetry': {report.num_stripes} RS(9,6) stripes, "
    f"{report.stored_bytes:,} bytes on disk "
    f"({report.overhead_vs_optimal * 100:.2f}% above optimal parity cost)"
)

sql = "SELECT sensor, reading FROM telemetry WHERE reading > 35 AND ok = true"
reference = execute_local(sql, table)
print(f"reference query result: {reference.matched_rows} rows\n")


def kill_node(node_id: int) -> int:
    node = cluster.node(node_id)
    lost = len(node._blocks)
    for block_id in list(node._blocks):
        node.drop_block(block_id)
    return lost


# Fail three nodes in sequence, recovering after each failure.
victims = store.objects["telemetry"].stripes[0].node_ids[:3]
for round_number, victim in enumerate(victims, start=1):
    lost_blocks = kill_node(victim)
    rebuilt = store.recover_node(victim)
    result, _ = store.query(sql)
    ok = result.equals(reference)
    print(
        f"failure {round_number}: node {victim} lost {lost_blocks} blocks -> "
        f"rebuilt {rebuilt}; query correct: {ok}"
    )
    assert ok

# Byte-level integrity after all that churn.
assert store.get("telemetry") == file_bytes
print("\nobject bytes identical after three failures and recoveries: OK")

# Degraded reads: queries keep working while a node is DOWN (before any
# recovery runs) — the store reconstructs the missing chunks on the fly
# from k surviving stripe blocks, at a latency cost.
placement = store.objects["telemetry"].stripes[0]
down = placement.node_ids[0]
_healthy_result, healthy_metrics = store.query(sql)
cluster.fail_node(down)
degraded_result, degraded_metrics = store.query(sql)
assert degraded_result.equals(reference)
cluster.restore_node(down)
print(
    f"\ndegraded read with node {down} down: correct results, "
    f"{degraded_metrics.latency / healthy_metrics.latency:.1f}x the healthy latency"
)

# Scrubbing: verify parity consistency end to end.
report = store.verify_object("telemetry")
print(f"scrub: {report.stripes_checked} stripes checked, clean={report.clean}")
assert report.clean

# Beyond tolerance: losing parity+1 nodes of one stripe simultaneously is
# unrecoverable — demonstrate that the store reports it rather than
# returning corrupt data.
placement = store.objects["telemetry"].stripes[0]
simultaneous = placement.node_ids[:4]
for victim in simultaneous:
    kill_node(victim)
try:
    store.recover_node(simultaneous[0])
    print("unexpected: recovery succeeded beyond the code's tolerance")
except Exception as exc:  # DecodeError
    print(f"\nsimultaneous 4-node loss correctly detected as unrecoverable:\n  {exc}")
