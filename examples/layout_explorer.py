"""Layout explorer: compare stripe-construction strategies on real files.

For each generated dataset, runs all four placement strategies — FAC
(Algorithm 1), the Padding approach (Adams et al.), the exact ILP oracle
(time-budgeted), and conventional fixed-block striping — and prints their
storage overhead, runtime, and how many chunks the fixed layout splits.

Run with::

    python examples/layout_explorer.py
"""

from repro.bench.report import print_table
from repro.core import (
    ChunkItem,
    OracleError,
    build_fixed_layout,
    construct_oracle_layout,
    construct_padding_layout,
    construct_stripes,
    fraction_of_chunks_split,
)
from repro.ec import RS_9_6
from repro.format import PaxFile
from repro.workloads import lineitem_file, recipe_file, taxi_file, ukpp_file

DATASETS = {
    "tpc-h lineitem": lineitem_file,
    "taxi": taxi_file,
    "recipeNLG": recipe_file,
    "uk pp": ukpp_file,
}

#: Block size for the block-aligned strategies, as a fraction of the file.
BLOCK_FRACTION = 0.01

rows = []
for name, generator in DATASETS.items():
    data, _table = generator()
    meta = PaxFile(data).metadata
    chunks = meta.all_chunks()
    items = [ChunkItem(key=c.key, size=c.size) for c in chunks]
    block_size = max(1, int(len(data) * BLOCK_FRACTION))

    fac = construct_stripes(RS_9_6, items)
    padding = construct_padding_layout(RS_9_6, items, block_size)
    strategies = [("fac", fac), ("padding", padding)]
    try:
        oracle = construct_oracle_layout(RS_9_6, items, time_limit_s=5.0)
        strategies.append(("oracle (5s budget)", oracle))
    except OracleError:
        pass

    fixed = build_fixed_layout(RS_9_6, len(data), block_size)
    split_pct = (
        fraction_of_chunks_split(fixed, [(c.offset, c.size) for c in chunks]) * 100
    )

    for label, layout in strategies:
        rows.append(
            [
                name,
                label,
                len(chunks),
                f"{layout.overhead_vs_optimal * 100:.2f}%",
                f"{layout.build_seconds * 1000:.2f} ms",
                "0% (never splits)",
            ]
        )
    fixed_overhead = (fixed.stored_bytes - len(data) * 1.5) / (len(data) * 1.5)
    rows.append(
        [
            name,
            "fixed blocks",
            len(chunks),
            f"{fixed_overhead * 100:.2f}%",
            "-",
            f"{split_pct:.0f}% of chunks split",
        ]
    )

print_table(
    "Stripe construction strategies under RS(9,6)",
    ["dataset", "strategy", "chunks", "overhead vs optimal", "layout runtime", "chunk splits"],
    rows,
)
print(
    "FAC keeps chunks whole at near-optimal storage cost; padding pays tens of\n"
    "percent extra storage; the oracle needs a solver time budget; fixed blocks\n"
    "are storage-optimal but split chunks across nodes, defeating pushdown."
)
