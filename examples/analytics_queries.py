"""Real-world analytics workload: the paper's Q1-Q4 on TPC-H and taxi data.

Generates the TPC-H lineitem and NYC-taxi datasets, stores them in both
Fusion and the fixed-block baseline, then drives each of the paper's four
real-world queries with 10 concurrent clients, printing p50/p99 latencies
and network traffic — the Figure 15 experiment at example scale.

Run with::

    python examples/analytics_queries.py
"""

from repro.bench import Comparison, build_pair, run_workload
from repro.bench.report import print_table
from repro.core import StoreConfig
from repro.sql import execute_local
from repro.workloads import lineitem_file, real_world_queries, taxi_file

# Generate both datasets (deterministic).
print("generating datasets ...")
lineitem_bytes, lineitem = lineitem_file(num_rows=20_000, row_group_rows=2_000)
taxi_bytes, taxi = taxi_file(num_rows=24_000, row_group_rows=1_500)

# One Fusion and one baseline system, identical clusters and data.
config = StoreConfig(size_scale=2000.0)
fusion, baseline = build_pair(
    {"lineitem": lineitem_bytes, "taxi": taxi_bytes}, store_config=config
)

rows = []
for query in real_world_queries(lineitem, taxi):
    table = lineitem if query.dataset == "tpch" else taxi
    reference = execute_local(query.sql, table)

    f_stats = run_workload(fusion, [query.sql], num_clients=10, num_queries=30)
    b_stats = run_workload(baseline, [query.sql], num_clients=10, num_queries=30)
    comp = Comparison(label=query.name, fusion=f_stats, baseline=b_stats)

    # Distributed execution must agree with the local reference.
    assert all(r.equals(reference) for r in f_stats.results)
    assert all(r.equals(reference) for r in b_stats.results)

    rows.append(
        [
            query.name,
            query.description,
            f"{reference.selectivity * 100:.1f}%",
            f"{f_stats.p50() * 1000:.0f} / {f_stats.p99() * 1000:.0f}",
            f"{b_stats.p50() * 1000:.0f} / {b_stats.p99() * 1000:.0f}",
            f"{comp.p50_reduction:.0f}% / {comp.p99_reduction:.0f}%",
            f"{comp.traffic_ratio:.1f}x",
        ]
    )

print()
print_table(
    "Real-world queries: Fusion vs fixed-block baseline (10 clients)",
    [
        "query",
        "description",
        "selectivity",
        "fusion p50/p99 (ms)",
        "baseline p50/p99 (ms)",
        "latency reduction",
        "traffic ratio",
    ],
    rows,
)
print("All distributed results matched the single-process reference executor.")
