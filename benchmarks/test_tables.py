"""Tables 3 and 4: dataset and query descriptors."""

from repro.bench.experiments import table3_datasets, table4_queries

PAPER_CHUNKS = {"lineitem": 160, "taxi": 320, "recipe": 84, "ukpp": 240}
PAPER_COLUMNS = {"lineitem": 16, "taxi": 20, "recipe": 7, "ukpp": 16}


def test_table3_datasets(run_experiment):
    result = run_experiment(table3_datasets)
    by_name = {row[0]: row for row in result.rows}
    for name, chunks in PAPER_CHUNKS.items():
        assert by_name[name][1] == PAPER_COLUMNS[name]
        assert by_name[name][2] == chunks


def test_table4_queries(run_experiment):
    result = run_experiment(table4_queries)
    assert [row[0] for row in result.rows] == ["Q1", "Q2", "Q3", "Q4"]
    # Measured selectivity within 2x of the paper's Table 4 values.
    for row in result.rows:
        paper = float(row[4].rstrip("%"))
        measured = float(row[5].rstrip("%"))
        assert paper * 0.5 <= measured <= paper * 2.0, row
