"""Figure 14: selectivity, bandwidth and CPU sweeps."""

from repro.bench.experiments import (
    fig14ab_selectivity_sweep,
    fig14c_bandwidth_sweep,
    fig14d_cpu_utilization,
)


def test_fig14ab_selectivity_sweep(run_experiment):
    result = run_experiment(
        fig14ab_selectivity_sweep,
        column_ids=(5, 9),
        selectivities=(0.01, 0.2, 0.75, 1.0),
        num_queries=20,
    )
    raw = result.raw
    # Gains shrink as selectivity grows (paper Fig 14a).
    assert raw[(5, 0.01)].p50_reduction > raw[(5, 0.75)].p50_reduction
    assert raw[(5, 0.01)].p50_reduction > 40
    # At very high selectivity the win largely evaporates.
    assert raw[(5, 1.0)].p50_reduction < 20
    # The favourable column (5) beats the unfavourable one (9) at low sel.
    assert raw[(5, 0.01)].p50_reduction > raw[(9, 0.01)].p50_reduction


def test_fig14c_bandwidth_sweep(run_experiment):
    result = run_experiment(
        fig14c_bandwidth_sweep, gbps_values=(10, 25, 100), num_queries=20
    )
    raw = result.raw
    # Paper: slower networks amplify Fusion's advantage.
    assert raw[10].p50_reduction > raw[25].p50_reduction > raw[100].p50_reduction
    assert raw[10].p50_reduction > 60


def test_fig14d_cpu(run_experiment):
    result = run_experiment(fig14d_cpu_utilization, column_ids=(0, 5, 15), num_queries=30)
    raw = result.raw
    # Paper: Fusion burns less CPU at the same delivered load, because it
    # moves far less data (network processing cost).
    for cid, (fusion_cpu, baseline_cpu) in raw.items():
        assert fusion_cpu < baseline_cpu, cid
