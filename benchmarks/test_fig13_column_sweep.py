"""Figure 13: the headline per-column latency reductions and breakdowns."""

from repro.bench.experiments import fig13ab_column_sweep, fig13cd_breakdown


def test_fig13ab_column_sweep(run_experiment):
    result = run_experiment(fig13ab_column_sweep, num_queries=50)
    comps = result.raw
    # Paper headline: up to ~65% median / ~81% tail reduction on the big
    # split-prone columns; Fusion wins clearly on columns 1, 2, 5, 15.
    for cid in (1, 2, 5, 15):
        assert comps[cid].p50_reduction > 40, cid
        assert comps[cid].p99_reduction > 50, cid
    best_p99 = max(c.p99_reduction for c in comps.values())
    assert best_p99 > 70
    # Small, highly-compressed columns benefit less than the big ones
    # (paper: "modest" for 3 and 9).
    assert comps[9].p50_reduction < comps[5].p50_reduction
    assert comps[3].p50_reduction < comps[1].p50_reduction


def test_fig13cd_breakdown(run_experiment):
    result = run_experiment(fig13cd_breakdown, num_queries=20)
    raw = result.raw
    # Column 5: the baseline is network-bound (paper: ~57%); Fusion is not.
    assert raw[(5, "baseline")]["network"] > 0.5
    assert raw[(5, "fusion")]["network"] < 0.2
    # Fusion's time goes to disk + processing instead.
    fusion5 = raw[(5, "fusion")]
    assert fusion5["disk"] + fusion5["processing"] > 0.7
