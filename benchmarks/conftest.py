"""Benchmark-suite helpers.

Each benchmark file regenerates one paper table/figure through
:mod:`repro.bench.experiments` and asserts the *shape* of the result
(who wins, rough factors, crossovers), per EXPERIMENTS.md.  The
``run_experiment`` helper runs the experiment exactly once under
pytest-benchmark timing and prints the paper-style rows.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment function once under benchmark timing."""

    def _run(fn, **kwargs):
        result = benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
        print()
        result.show()
        return result

    return _run
