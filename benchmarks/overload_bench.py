"""Overload benchmark: an open-loop storm at 2.5x the calibrated
capacity, protection off vs on, for both stores.

Runs the ``overload`` experiment (closed-loop capacity calibration, then
two storms per system) and writes ``BENCH_overload.json`` with goodput,
typed-failure counts, per-quarter p99 and sampled queue depths.

Acceptance (exit 1 on failure), per system:

* protection OFF is the seed behaviour under the storm — no failures,
  but tail latency grows quarter over quarter and queue depth is
  unbounded (far past the admission knob the ON run uses);
* protection ON suffers zero uncontrolled failures (every refusal is a
  typed DeadlineExceeded / QueueFull / RemoteOpError or a typed
  PartialResult), queue depth stays bounded by the admission knob,
  successful queries stay inside the deadline, and goodput (full +
  partial answers) holds at >= 70% of the calibrated capacity.

Run from the repo root::

    PYTHONPATH=src python benchmarks/overload_bench.py [output.json]
"""

from __future__ import annotations

import json
import sys
import time

from repro.bench.envelope import write_bench_report
from repro.bench.experiments import overload_protection

ADMISSION_DEPTH = 16  # what the experiment's protected config uses
GOODPUT_FLOOR = 0.7
GROWTH_TOLERANCE = 0.9  # a quarter may dip 10% and still count as growing
ARRIVALS = 120


def _mean_depth(samples, lo: float, hi: float, duration: float) -> float:
    vals = [d for t, d in samples if lo * duration <= t < hi * duration]
    return sum(vals) / len(vals) if vals else 0.0


def _accept(kind: str, raw: dict) -> tuple[bool, dict]:
    off, on = raw["off"], raw["on"]
    duration = off["duration_s"]

    q = off["quarter_p99"]
    off_p99_growing = all(
        q[i + 1] >= q[i] * GROWTH_TOLERANCE for i in range(3)
    ) and q[3] > 1.5 * q[0]
    off_depth_growing = _mean_depth(
        off["depth_samples"], 0.75, 1.0, duration
    ) > _mean_depth(off["depth_samples"], 0.0, 0.25, duration)
    off_depth_unbounded = off["max_depth"] > 2 * ADMISSION_DEPTH
    off_no_failures = off["counts"]["controlled"] == 0

    on_counts = on["counts"]
    on_all_accounted = sum(on_counts.values()) == ARRIVALS
    on_depth_bounded = on["max_depth"] <= ADMISSION_DEPTH
    on_p99_within_deadline = raw["on_p99"] <= raw["deadline_s"] * 1.2
    on_goodput = raw["goodput_frac"] >= GOODPUT_FLOOR

    checks = {
        "off_p99_growing_by_quarter": off_p99_growing,
        "off_queue_depth_growing": off_depth_growing,
        "off_queue_depth_unbounded": off_depth_unbounded,
        "off_no_failures": off_no_failures,
        "on_all_arrivals_accounted": on_all_accounted,
        "on_queue_depth_bounded": on_depth_bounded,
        "on_p99_within_deadline": on_p99_within_deadline,
        "on_goodput_at_least_70pct_of_capacity": on_goodput,
    }
    return all(checks.values()), checks


def main(out_path: str = "BENCH_overload.json") -> None:
    bench_start = time.perf_counter()
    result = overload_protection(arrivals=ARRIVALS)
    report: dict = {
        "benchmark": "overload",
        "title": result.title,
        "admission_queue_depth": ADMISSION_DEPTH,
        "goodput_floor": GOODPUT_FLOOR,
        "arrivals_per_storm": ARRIVALS,
        "systems": {},
    }
    ok = True
    for kind, raw in result.raw.items():
        passed, checks = _accept(kind, raw)
        ok &= passed
        report["systems"][kind] = {
            "capacity_qps": raw["capacity_qps"],
            "uncontended_p99_s": raw["uncontended_p99"],
            "deadline_s": raw["deadline_s"],
            "storm_rate_qps": raw["rate_qps"],
            "off": {
                "counts": raw["off"]["counts"],
                "quarter_p99_s": raw["off"]["quarter_p99"],
                "max_queue_depth": raw["off"]["max_depth"],
            },
            "on": {
                "counts": raw["on"]["counts"],
                "quarter_p99_s": raw["on"]["quarter_p99"],
                "max_queue_depth": raw["on"]["max_depth"],
                "p99_s": raw["on_p99"],
                "goodput_over_capacity": raw["goodput_frac"],
            },
            "checks": checks,
        }
        on_c = raw["on"]["counts"]
        print(
            f"{kind}: capacity {raw['capacity_qps']:.1f} qps, storm "
            f"{raw['rate_qps']:.1f} qps; on: {on_c['ok']} ok / "
            f"{on_c['partial']} partial / {on_c['controlled']} typed, "
            f"goodput {raw['goodput_frac']:.2f}x capacity, depth "
            f"{raw['on']['max_depth']} (off: {raw['off']['max_depth']}) "
            f"-> {'PASS' if passed else 'FAIL'}"
        )
        if not passed:
            for name, value in checks.items():
                if not value:
                    print(f"  FAILED check: {name}")

    write_bench_report(
        out_path,
        benchmark="overload",
        wall_seconds=time.perf_counter() - bench_start,
        passed=ok,
        floors={"goodput_floor": GOODPUT_FLOOR, "admission_queue_depth": ADMISSION_DEPTH},
        detail=report,
    )
    print(f"wrote {out_path}")
    if not ok:
        sys.exit(1)


if __name__ == "__main__":
    main(*sys.argv[1:2])
