"""Aggregate BENCH_*.json acceptance reports into one summary table.

Every benchmark under ``benchmarks/*_bench.py`` writes its result
through :mod:`repro.bench.envelope`, so the files share a top level
(``benchmark``, ``wall_seconds``, ``acceptance.pass``,
``acceptance.floors``).  Pre-envelope files from older runs are
normalized on load, so a mixed directory still aggregates.

Usage::

    PYTHONPATH=src python benchmarks/bench_summary.py [DIR] [--out PATH]

Scans ``DIR`` (default: the repository root) for ``BENCH_*.json``,
prints a verdict table, writes ``BENCH_SUMMARY.json`` (or ``--out``),
and exits nonzero if any benchmark failed.  Files whose verdict cannot
be recovered count as unknown, not as failures.
"""

from __future__ import annotations

import glob
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.bench.envelope import load_bench_report  # noqa: E402

SUMMARY_NAME = "BENCH_SUMMARY.json"


def summarize(directory: str) -> dict:
    """Load every BENCH_*.json in ``directory`` into one summary doc."""
    rows = []
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        if os.path.basename(path) == SUMMARY_NAME:
            continue
        doc = load_bench_report(path)
        rows.append(
            {
                "file": os.path.basename(path),
                "benchmark": doc["benchmark"],
                "schema": doc["schema"],
                "wall_seconds": doc["wall_seconds"],
                "pass": doc["acceptance"]["pass"],
                "floors": doc["acceptance"]["floors"],
            }
        )
    verdicts = [row["pass"] for row in rows]
    return {
        "benchmarks": rows,
        "total": len(rows),
        "passed": sum(1 for v in verdicts if v is True),
        "failed": sum(1 for v in verdicts if v is False),
        "unknown": sum(1 for v in verdicts if v is None),
        "all_pass": bool(rows) and all(v is True for v in verdicts),
    }


def _verdict_text(value: bool | None) -> str:
    if value is True:
        return "PASS"
    if value is False:
        return "FAIL"
    return "?"


def main(argv: list[str]) -> int:
    out_path = None
    if "--out" in argv:
        at = argv.index("--out")
        if at + 1 >= len(argv):
            print("--out needs a path", file=sys.stderr)
            return 2
        out_path = argv[at + 1]
        argv = argv[:at] + argv[at + 2 :]
    directory = argv[0] if argv else os.path.join(
        os.path.dirname(os.path.abspath(__file__)), ".."
    )
    summary = summarize(directory)
    if not summary["benchmarks"]:
        print(f"no BENCH_*.json found in {directory}", file=sys.stderr)
        return 2

    width = max(len(row["benchmark"]) for row in summary["benchmarks"])
    print(f"{'benchmark':{width}s}  verdict  wall(s)  floors")
    for row in summary["benchmarks"]:
        floors = ", ".join(f"{k}={v}" for k, v in sorted(row["floors"].items()))
        print(
            f"{row['benchmark']:{width}s}  "
            f"{_verdict_text(row['pass']):7s}  "
            f"{row['wall_seconds']:7.1f}  "
            f"{floors or '-'}"
        )
    print(
        f"{summary['passed']}/{summary['total']} passed, "
        f"{summary['failed']} failed, {summary['unknown']} unknown"
    )

    if out_path is None:
        out_path = os.path.join(directory, SUMMARY_NAME)
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out_path}")
    return 0 if summary["failed"] == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
