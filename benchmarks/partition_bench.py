"""Partition-chaos benchmark: gray failure, majority/minority partition,
quorum-guarded metadata, and anti-entropy read-repair.

Two phases against Fusion:

* **Gray tail** — the TPC-H Q1 + taxi Q3 workload with one fail-slow
  node (50x disk and NIC service times, never timing out — the classic
  gray failure).  With greylist detection armed the health tracker
  deprioritizes the slow node and the workload's p99 must stay within
  2x of the healthy baseline; with detection off the same fault must
  cost at least 10x, demonstrating the detector earns its keep.
* **Partition** — 9 nodes, RS(5,3), 3 metadata replicas, a seeded
  majority/minority partition (plus a fail-slow node on the majority
  side).  Every metadata republish must either reach a majority of its
  replica holders or raise the typed ``QuorumLost`` — zero split-brain
  epoch installs — while majority-side Gets stay >= 90% available and
  bit-correct.  After heal, ``recover()`` converges stale minority
  replicas, the read-repair queue drains with separately-accounted
  ``read_repair_bytes``, and fsck comes back clean.

Writes ``BENCH_partition.json`` (bench-envelope/v1; exit 1 on floor
failure).  Run from the repo root::

    PYTHONPATH=src python benchmarks/partition_bench.py [output.json]
"""

from __future__ import annotations

import sys
import time

from repro.bench.envelope import write_bench_report
from repro.bench.experiments import dataset, dataset_scale
from repro.bench.harness import build_system, run_workload
from repro.cluster.cluster import ClusterConfig
from repro.cluster.faults import FaultEvent, FaultInjector
from repro.core.config import StoreConfig
from repro.core.repair import RepairManager
from repro.core.wal import QuorumLost
from repro.ec.reed_solomon import CodeParams
from repro.workloads import real_world_queries

NUM_CLIENTS = 10
NUM_QUERIES = 40
WARMUP_QUERIES = 16
GRAY_FACTOR = 400.0
GREYLIST_FACTOR = 3.0
FAULT_SEED = 7

# Phase B topology: 9 nodes and a 2-node minority; RS(5,3) keeps every
# stripe decodable (>= k shards) on the majority side.
PARTITION_NODES = 9
PARTITION_OBJECTS = 8
GETS_PER_OBJECT = 2


def _workload_sqls() -> list[str]:
    _ldata, ltable = dataset("lineitem")
    _tdata, ttable = dataset("taxi")
    queries = {q.name: q for q in real_world_queries(ltable, ttable)}
    return [queries["Q1"].sql, queries["Q3"].sql]


# ---------------------------------------------------------------------------
# Phase A — gray-failure tail latency
# ---------------------------------------------------------------------------


def _gray_config(greylist_factor: float) -> StoreConfig:
    # op_timeout_s is raised so the fail-slow node *answers* every op —
    # the gray failure mode by definition never trips the timeout-based
    # failure detector, isolating what latency detection buys.
    return StoreConfig(
        size_scale=dataset_scale("lineitem"),
        op_timeout_s=10.0,
        greylist_latency_factor=greylist_factor,
    )


def _gray_system(greylist_factor: float, fail_slow: bool):
    ldata, _lt = dataset("lineitem")
    tdata, _tt = dataset("taxi")
    system = build_system(
        "fusion",
        {"lineitem": ldata, "taxi": tdata},
        store_config=_gray_config(greylist_factor),
    )
    victim = None
    if fail_slow:
        # Persistent gray failure: applied directly (a timer-healed
        # fault would be undone by run-to-quiescence between phases).
        victim = next(n.node_id for n in system.cluster.nodes if n.stored_bytes)
        node = system.cluster.node(victim)
        node.disk.gray_factor = GRAY_FACTOR
        node.endpoint.gray_factor = GRAY_FACTOR
    return system, victim


def _gray_run(greylist_factor: float, fail_slow: bool):
    """Warmup (feeds the latency EWMAs), then a measured workload."""
    system, victim = _gray_system(greylist_factor, fail_slow)
    sqls = _workload_sqls()
    run_workload(system, sqls, num_clients=NUM_CLIENTS, num_queries=WARMUP_QUERIES)
    stats = run_workload(system, sqls, num_clients=NUM_CLIENTS, num_queries=NUM_QUERIES)
    return stats, system, victim


def _phase_gray() -> dict:
    healthy, _sys0, _ = _gray_run(GREYLIST_FACTOR, fail_slow=False)
    detected, sys_on, victim = _gray_run(GREYLIST_FACTOR, fail_slow=True)
    undetected, _sys_off, _ = _gray_run(0.0, fail_slow=True)

    # Correctness: sequential single-client pairs have deterministic
    # completion order, so results must be bit-identical to healthy.
    seq_ref, _s, _ = _gray_run_seq(GREYLIST_FACTOR, fail_slow=False)
    seq_on, _s, _ = _gray_run_seq(GREYLIST_FACTOR, fail_slow=True)
    seq_off, _s, _ = _gray_run_seq(0.0, fail_slow=True)
    wrong_reads = sum(
        0 if a.equals(b) else 1
        for run in (seq_on, seq_off)
        for a, b in zip(seq_ref.results, run.results)
    )

    ratio_on = detected.p99() / healthy.p99()
    ratio_off = undetected.p99() / healthy.p99()
    return {
        "victim": victim,
        "victim_greylisted": sys_on.cluster.health.is_greylisted(victim),
        "greylist_events": sum(
            1
            for nid in range(sys_on.cluster.num_nodes)
            if sys_on.cluster.health.is_greylisted(nid)
        ),
        "healthy_p99_s": healthy.p99(),
        "detection_on_p99_s": detected.p99(),
        "detection_off_p99_s": undetected.p99(),
        "p99_ratio_detection_on": ratio_on,
        "p99_ratio_detection_off": ratio_off,
        "detection_on_degraded_reads": sum(
            qm.degraded_reads for qm in detected.metrics
        ),
        "wrong_reads": wrong_reads,
        "gray_factor": GRAY_FACTOR,
    }


def _gray_run_seq(greylist_factor: float, fail_slow: bool):
    system, victim = _gray_system(greylist_factor, fail_slow)
    sqls = _workload_sqls()
    stats = run_workload(system, sqls, num_clients=1, num_queries=8)
    return stats, system, victim


# ---------------------------------------------------------------------------
# Phase B — majority/minority partition with quorum-guarded metadata
# ---------------------------------------------------------------------------


def _owning_store(store, name: str):
    if name in store.objects:
        return store
    return store.fallback_store


def _meta_holders(sub, name: str) -> tuple[int, ...]:
    obj = sub.objects[name]
    if hasattr(obj, "location_map"):
        return tuple(obj.location_map.replica_nodes)
    return tuple(obj.replica_nodes)


def _max_holder_epoch(cluster, name: str, holders) -> int:
    epochs = [
        replica.epoch
        for nid in holders
        if (replica := cluster.node(nid).get_meta(name)) is not None
    ]
    return max(epochs, default=-1)


def _phase_partition() -> dict:
    data, _table = dataset("ukpp")
    names = [f"obj{i:02d}" for i in range(PARTITION_OBJECTS)]
    system = build_system(
        "fusion",
        {name: data for name in names},
        cluster_config=ClusterConfig(num_nodes=PARTITION_NODES),
        store_config=StoreConfig(
            size_scale=dataset_scale("ukpp"),
            code=CodeParams(n=5, k=3),
            metadata_replicas=3,
            op_timeout_s=0.2,
            greylist_latency_factor=GREYLIST_FACTOR,
        ),
    )
    store, cluster, sim = system.store, system.cluster, system.sim

    # Deterministic minority: the coordinator of obj00 plus one node
    # holding none of obj00's metadata replicas — so at most one of that
    # object's three holders is reachable from its coordinator and at
    # least one republish is guaranteed to lose quorum.
    sub0 = _owning_store(store, names[0])
    c0 = cluster.coordinator_for(names[0]).node_id
    holders0 = set(_meta_holders(sub0, names[0]))
    partner = next(
        nid for nid in range(PARTITION_NODES) if nid != c0 and nid not in holders0
    )
    minority = sorted({c0, partner})
    majority = [nid for nid in range(PARTITION_NODES) if nid not in minority]
    fail_slow_node = majority[0]

    # duration=0 means no auto-heal timer: run-to-quiescence between the
    # Gets below must not silently repair the network mid-phase.
    schedule = [
        FaultEvent(
            at=sim.now + 1e-6,
            kind="partition",
            node_id=minority[0],
            nodes=tuple(minority),
            duration=0.0,
        ),
    ]
    FaultInjector(cluster, schedule, seed=FAULT_SEED).install()
    sim.run()  # apply the schedule
    slow = cluster.node(fail_slow_node)
    slow.disk.gray_factor = GRAY_FACTOR
    slow.endpoint.gray_factor = GRAY_FACTOR

    # Foreground Gets during the partition, from majority-side
    # coordinators (the availability floor's population).  Minority-side
    # coordinators cannot reach k shard holders, so their Gets fail by
    # construction — issuing them would only leave half-failed op
    # processes parked on simulator resources; they are counted as
    # expected-unavailable instead.
    majority_total = majority_ok = minority_skipped = 0
    wrong_reads = 0
    for _round in range(GETS_PER_OBJECT):
        for name in names:
            if cluster.coordinator_for(name).node_id in minority:
                minority_skipped += 1
                continue
            try:
                got = store.get(name)
            except Exception:
                got = None
            ok = got is not None
            if ok and got != data:
                wrong_reads += 1
                ok = False
            majority_total += 1
            majority_ok += ok

    # Every republish during the partition must reach a majority of its
    # meta-replica holders or raise the typed QuorumLost.
    republish_ok = republish_lost = 0
    for name in names:
        sub = _owning_store(store, name)
        try:
            sub._republish_meta(sub.objects[name])
            republish_ok += 1
        except QuorumLost:
            republish_lost += 1
    split_brain = sum(
        1
        for name in names
        for sub in [_owning_store(store, name)]
        if _max_holder_epoch(cluster, name, _meta_holders(sub, name))
        > sub.objects[name].meta_epoch
    )
    read_repairs_queued = len(cluster.read_repairs)

    # Heal, converge, drain the anti-entropy queue, and verify.
    cluster.network.links.clear()
    for node in cluster.nodes:
        node.disk.gray_factor = 1.0
        node.endpoint.gray_factor = 1.0
    recovery = store.recover()
    repair = RepairManager(store).repair_read_reported()
    fsck_clean = store.fsck().clean
    post_heal_wrong = sum(1 for name in names if store.get(name) != data)
    converged = all(
        _max_holder_epoch(
            cluster, name, _meta_holders(_owning_store(store, name), name)
        )
        == _owning_store(store, name).objects[name].meta_epoch
        for name in names
    )

    return {
        "num_nodes": PARTITION_NODES,
        "code": "RS(5,3)",
        "metadata_replicas": 3,
        "minority": minority,
        "fail_slow_node": fail_slow_node,
        "majority_gets": majority_total,
        "majority_get_successes": majority_ok,
        "majority_availability": majority_ok / majority_total,
        "minority_gets_skipped_expected_unavailable": minority_skipped,
        "wrong_reads": wrong_reads + post_heal_wrong,
        "republish_succeeded": republish_ok,
        "republish_quorum_lost": republish_lost,
        "quorum_lost_total": cluster.metrics.quorum_lost_total,
        "split_brain_epoch_installs": split_brain,
        "read_repairs_queued_during_partition": read_repairs_queued,
        "read_repair_bytes": cluster.metrics.read_repair_bytes,
        "blocks_read_repaired": cluster.metrics.blocks_read_repaired,
        "read_repair_stripes_repaired": repair.stripes_repaired,
        "meta_replicas_synced_on_recover": recovery.meta_replicas_synced,
        "post_heal_fsck_clean": fsck_clean,
        "post_heal_epochs_converged": converged,
    }


# ---------------------------------------------------------------------------


def main(out_path: str = "BENCH_partition.json") -> None:
    bench_start = time.perf_counter()
    gray = _phase_gray()
    partition = _phase_partition()

    floors = {
        "wrong_reads == 0": gray["wrong_reads"] + partition["wrong_reads"] == 0,
        "split_brain_epoch_installs == 0": partition["split_brain_epoch_installs"]
        == 0,
        "every republish reached quorum or raised QuorumLost": (
            partition["republish_succeeded"] + partition["republish_quorum_lost"]
            == PARTITION_OBJECTS
        ),
        "quorum_lost raised at least once": partition["republish_quorum_lost"] >= 1,
        "majority availability >= 0.9": partition["majority_availability"] >= 0.9,
        "fail-slow victim greylisted": gray["victim_greylisted"],
        "p99 with detection <= 2x healthy": gray["p99_ratio_detection_on"] <= 2.0,
        "p99 without detection >= 10x healthy": gray["p99_ratio_detection_off"]
        >= 10.0,
        "post-heal fsck clean": partition["post_heal_fsck_clean"],
        "post-heal epochs converged": partition["post_heal_epochs_converged"],
        "read_repair_bytes > 0": partition["read_repair_bytes"] > 0,
    }
    passed = all(floors.values())
    detail = {
        "system": "fusion",
        "fault_seed": FAULT_SEED,
        "gray_tail": gray,
        "partition": partition,
    }
    write_bench_report(
        out_path,
        "partition",
        time.perf_counter() - bench_start,
        passed,
        floors,
        detail,
    )
    status = "PASS" if passed else "FAIL"
    print(f"[partition_bench] {status} -> {out_path}")
    for name, ok in floors.items():
        print(f"  [{'ok' if ok else 'FAIL'}] {name}")
    if not passed:
        sys.exit(1)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "BENCH_partition.json")
