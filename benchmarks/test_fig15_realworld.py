"""Figure 15: real-world SQL queries (latency and network traffic)."""

from repro.bench.experiments import fig15a_realworld, fig15b_traffic


def test_fig15a_realworld_latency(run_experiment):
    result = run_experiment(fig15a_realworld, num_queries=30)
    raw = result.raw
    # Paper: Fusion reduces latency on all four queries (up to 48%/40% on
    # TPC-H, up to 32%/48% on taxi).
    for name in ("Q1", "Q2", "Q3", "Q4"):
        assert raw[name].p99_reduction > 0, name
    assert max(c.p50_reduction for c in raw.values()) > 30


def test_fig15b_network_traffic(run_experiment):
    result = run_experiment(fig15b_traffic, num_queries=30)
    raw = result.raw
    # Paper: Fusion generates up to 8.9x less traffic; always less.
    for name, comp in raw.items():
        assert comp.traffic_ratio > 1.0, name
    assert max(c.traffic_ratio for c in raw.values()) > 3.0
