"""Figure 6: per-column compression ratios of lineitem."""

import numpy as np

from repro.bench.experiments import fig6_compression


def test_fig6_compression(run_experiment):
    result = run_experiment(fig6_compression)
    ratios = result.raw["ratios"]
    # Paper: median 9.3, max 63.5; wide spread with both extremes present.
    assert 5 <= float(np.median(ratios)) <= 20
    assert max(ratios) > 30
    assert min(ratios) < 3
    # l_comment (15) is among the least compressible, l_linenumber (3)
    # among the most.
    assert ratios[15] < np.median(ratios)
    assert ratios[3] > np.median(ratios)
