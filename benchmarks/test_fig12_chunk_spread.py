"""Figure 12: how many nodes a baseline chunk spans, per column."""

from repro.bench.experiments import fig12_nodes_per_chunk


def test_fig12_nodes_per_chunk(run_experiment):
    result = run_experiment(fig12_nodes_per_chunk)
    raw = result.raw
    # The biggest column (l_comment, 15) spans several nodes; small
    # highly-compressed columns (l_linestatus, 9) stay near one.
    assert raw[15][0] > 2.5
    assert raw[9][0] < 1.5
    # Chunk size drives the spread: comment chunks dwarf linestatus chunks.
    assert raw[15][1] > 50 * raw[9][1]
