"""Metadata chaos benchmark: random Put/Delete/crash interleavings.

Runs the ``metadata-chaos`` experiment: seeded random Put/Delete
sequences on fresh clusters with the coordinator killed at a randomly
chosen WAL crash point each round, followed by WAL-replay recovery and a
full fsck.  Writes ``BENCH_metadata_chaos.json`` with per-store recovery
wall time, orphan blocks/bytes garbage-collected, and consistency
verdicts.

Acceptance (exit 1 on failure): every round ends fsck-clean, zero
objects are lost (committed Puts always roll forward from surviving
metadata replicas), and every surviving object Gets byte-identical data.

Run from the repo root::

    PYTHONPATH=src python benchmarks/metadata_chaos_bench.py [output.json]
"""

from __future__ import annotations

import json
import sys
import time

from repro.bench.envelope import write_bench_report
from repro.bench.experiments import metadata_chaos

ROUNDS = 10
SEED = 11


def main(out_path: str = "BENCH_metadata_chaos.json") -> None:
    bench_start = time.perf_counter()
    result = metadata_chaos(rounds=ROUNDS, seed=SEED)
    report: dict = {
        "benchmark": "metadata_chaos",
        "rounds": ROUNDS,
        "seed": SEED,
        "headers": result.headers,
        "rows": result.rows,
        "systems": result.raw,
    }
    ok = True
    for kind, stats in result.raw.items():
        passed = (
            stats["clean_rounds"] == stats["rounds"]
            and stats["gets_identical"]
            and stats["lost_objects"] == 0
        )
        report["systems"][kind]["passed"] = passed
        ok &= passed

    report["passed"] = ok
    report = json.loads(json.dumps(report, default=str))  # stringify non-JSON leaves
    write_bench_report(
        out_path,
        benchmark="metadata_chaos",
        wall_seconds=time.perf_counter() - bench_start,
        passed=ok,
        floors={"clean_rounds": ROUNDS, "lost_objects": 0},
        detail=report,
    )

    for row in result.rows:
        print("  ".join(str(c) for c in row))
    print(f"wrote {out_path}")
    if not ok:
        print("FAILED: inconsistent state after crash recovery", file=sys.stderr)
        raise SystemExit(1)
    print("metadata chaos acceptance: PASSED")


if __name__ == "__main__":
    main(*sys.argv[1:2])
