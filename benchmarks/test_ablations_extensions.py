"""Ablations of DESIGN.md's design choices and the extension bench."""

from repro.bench.experiments import (
    ablation_contention,
    ablation_cost_model,
    ablation_fac_policy,
    ablation_page_skipping,
    ablation_rpc_batching,
    ext_aggregate_pushdown,
    ext_degraded_reads,
    ext_grouped_query,
)


def test_ablation_cost_model(run_experiment):
    result = run_experiment(ablation_cost_model, num_queries=20)
    raw = result.raw
    # Favourable regime (c5 @ 1%): adaptive ~ always, both beat never.
    assert raw[(5, 0.01, "adaptive")] <= raw[(5, 0.01, "never")] * 0.9
    assert raw[(5, 0.01, "adaptive")] <= raw[(5, 0.01, "always")] * 1.15
    # Unfavourable regime (c4 @ 75%): adaptive ~ never, no worse than always.
    assert raw[(4, 0.75, "adaptive")] <= raw[(4, 0.75, "always")] * 1.1
    assert raw[(4, 0.75, "adaptive")] <= raw[(4, 0.75, "never")] * 1.15


def test_ablation_contention(run_experiment):
    result = run_experiment(ablation_contention, num_queries=30)
    solo_f, solo_b = result.raw[1]
    crowd_f, crowd_b = result.raw[10]
    # Queueing under 10 clients inflates latency for both systems.
    assert crowd_b.p99() > solo_b.p99()
    assert crowd_f.p99() > solo_f.p99()
    # And the baseline's tail inflates more in absolute terms (it funnels
    # far more bytes through the shared coordinator).
    assert (crowd_b.p99() - solo_b.p99()) > (crowd_f.p99() - solo_f.p99())


def test_ablation_fac_policy(run_experiment):
    result = run_experiment(ablation_fac_policy, runs=10)
    # Least-occupied never does materially worse than first-fit.
    for (n, skew), (least_occupied, first_fit) in result.raw.items():
        assert least_occupied <= first_fit + 0.1, (n, skew)


def test_ext_aggregate_pushdown(run_experiment):
    result = run_experiment(ext_aggregate_pushdown, num_queries=20)
    on = result.raw["aggregate pushdown"]
    off = result.raw["coordinator aggregates"]
    # The paper's future-work extension: less traffic and lower latency.
    assert on.network_bytes < off.network_bytes
    assert on.p50() < off.p50()


def test_ablation_rpc_batching(run_experiment):
    result = run_experiment(ablation_rpc_batching, num_queries=20)
    for kind in ("fusion", "baseline"):
        on = result.raw[(kind, True)]
        off = result.raw[(kind, False)]
        # Fewer wire messages, same traffic, and no latency regression.
        assert on.rpcs_issued < off.rpcs_issued
        assert on.rpcs_issued + on.rpcs_saved == off.rpcs_issued
        assert on.network_bytes == off.network_bytes
        assert on.mean_latency() <= off.mean_latency()


def test_ablation_page_skipping(run_experiment):
    result = run_experiment(ablation_page_skipping, num_queries=20)
    on = result.raw[True]
    off = result.raw[False]
    # Page stats only ever help (stats are conservative).
    assert on.p50() <= off.p50() * 1.01


def test_ext_degraded_reads(run_experiment):
    result = run_experiment(ext_degraded_reads, num_queries=20)
    healthy = result.raw["healthy"]
    degraded = result.raw["degraded"]
    recovered = result.raw["recovered"]
    # On-the-fly reconstruction is much more expensive than a healthy
    # read, and recovery restores the original latency.
    assert degraded.p50() > 2 * healthy.p50()
    assert recovered.p50() < 1.2 * healthy.p50()


def test_ext_grouped_query(run_experiment):
    result = run_experiment(ext_grouped_query, num_queries=20)
    comp = result.raw["comparison"]
    # The GROUP BY form of Q4 still favours Fusion strongly.
    assert comp.p50_reduction > 40
    assert result.raw["groups"] > 10
