"""Chaos benchmark: mid-workload node crash, degraded service, repair.

Drives the interleaved TPC-H Q1 + taxi Q3 workload through Fusion and
the baseline while a scripted :class:`FaultInjector` crashes a
data-holding node ~30% into the run, then repairs the damage with the
:class:`RepairManager` and re-scrubs.  Writes
``BENCH_fault_tolerance.json`` with availability, retry/hedge counts,
degraded-read counts, repair bytes, time-to-repair and the latency
penalty for both systems.

Acceptance (exit 1 on failure): every query completes (availability
1.0), faulted results are bit-identical to a no-fault run, the
post-repair scrub is clean, every placement points at a live node, and
post-repair queries need zero degraded reads.

Run from the repo root::

    PYTHONPATH=src python benchmarks/fault_tolerance_bench.py [output.json]
"""

from __future__ import annotations

import json
import sys
import time

from repro.bench.experiments import dataset, dataset_scale
from repro.bench.envelope import write_bench_report
from repro.bench.harness import WorkloadStats, build_system, run_workload
from repro.cluster.faults import FaultEvent, FaultInjector
from repro.cluster.metrics import QueryMetrics
from repro.core.config import StoreConfig
from repro.core.repair import RepairManager
from repro.workloads import real_world_queries

NUM_CLIENTS = 10
NUM_QUERIES = 40
CRASH_FRACTION = 0.3  # of the no-fault run's wall-clock
FAULT_SEED = 7


def _workload_sqls() -> dict[str, str]:
    _ldata, ltable = dataset("lineitem")
    _tdata, ttable = dataset("taxi")
    queries = {q.name: q for q in real_world_queries(ltable, ttable)}
    return {"tpch_q1": queries["Q1"].sql, "taxi_q3": queries["Q3"].sql}


def _build(kind: str):
    ldata, _lt = dataset("lineitem")
    tdata, _tt = dataset("taxi")
    cfg = StoreConfig(size_scale=dataset_scale("lineitem"))
    return build_system(kind, {"lineitem": ldata, "taxi": tdata}, store_config=cfg)


def _victim(system) -> int:
    return next(n.node_id for n in system.cluster.nodes if n.stored_bytes)


def _run(kind: str, crash_after_s: float | None, clients: int, queries: int):
    """One workload run; ``crash_after_s`` schedules a flaky window and
    then a crash that far into it (None = fault-free).  Returns
    (stats, system, victim or None)."""
    system = _build(kind)
    victim = None
    if crash_after_s is not None:
        victim = _victim(system)
        now = system.sim.now
        schedule = [
            # The link gets flaky first (exercises timeout + retry), then
            # the node dies outright (exercises fallback + degraded reads).
            FaultEvent(
                at=now + 0.2 * crash_after_s,
                kind="drop",
                node_id=victim,
                duration=0.6 * crash_after_s,
                rate=0.25,
            ),
            FaultEvent(at=now + crash_after_s, kind="crash", node_id=victim),
        ]
        FaultInjector(system.cluster, schedule, seed=FAULT_SEED).install()
    sqls = list(_workload_sqls().values())
    stats = run_workload(system, sqls, num_clients=clients, num_queries=queries)
    return stats, system, victim


def _summarise(stats: WorkloadStats) -> dict:
    return {
        "mean_latency_s": stats.mean_latency(),
        "p50_latency_s": stats.p50(),
        "p99_latency_s": stats.p99(),
        "network_bytes": stats.network_bytes,
        "num_queries": len(stats.metrics),
        "retries": sum(qm.retries for qm in stats.metrics),
        "timeouts": sum(qm.timeouts for qm in stats.metrics),
        "hedges": sum(qm.hedges for qm in stats.metrics),
        "degraded_reads": sum(qm.degraded_reads for qm in stats.metrics),
    }


def _post_repair_clean(system, victim: int) -> dict:
    """Repair the crashed node's blocks, then prove the damage is gone."""
    store = system.store
    report = RepairManager(store).repair_node(victim)
    scrub_clean = all(
        store.verify_object(name).clean for name in ("lineitem", "taxi")
    )
    alive = set(system.cluster.alive_nodes())
    placements_alive = _placements_all_in(store, alive)

    degraded_after = 0
    correct_after = True
    for sql in _workload_sqls().values():
        qm = QueryMetrics()
        proc = system.sim.process(store.query_process(sql, qm))
        system.sim.run()
        degraded_after += qm.degraded_reads
        correct_after &= proc.value.matched_rows > 0
    return {
        "repair_bytes": report.repair_bytes,
        "blocks_repaired": report.blocks_repaired,
        "stripes_repaired": report.stripes_repaired,
        "time_to_repair_s": report.time_to_repair,
        "cluster_repair_bytes": system.cluster.metrics.repair_bytes,
        "scrub_clean_after_repair": scrub_clean,
        "placements_all_on_live_nodes": placements_alive,
        "post_repair_degraded_reads": degraded_after,
        "post_repair_queries_nonempty": correct_after,
    }


def _placements_all_in(store, alive: set[int]) -> bool:
    """Every stripe placement and location-map entry names a live node."""
    stores = [store]
    fallback = getattr(store, "fallback_store", None)
    if fallback is not None:
        stores.append(fallback)
    for s in stores:
        for obj in s.objects.values():
            if hasattr(obj, "stripes"):  # FusionStore object
                for placement in obj.stripes:
                    if not set(placement.node_ids) <= alive:
                        return False
                for loc in obj.location_map.entries.values():
                    if loc.node_id not in alive:
                        return False
            else:  # BaselineStore object
                if not set(obj.data_block_nodes.values()) <= alive:
                    return False
                if not set(obj.parity_block_nodes.values()) <= alive:
                    return False
    return True


def main(out_path: str = "BENCH_fault_tolerance.json") -> None:
    bench_start = time.perf_counter()
    report: dict = {
        "benchmark": "fault_tolerance",
        "workload": _workload_sqls(),
        "clients": NUM_CLIENTS,
        "queries_per_run": NUM_QUERIES,
        "crash_fraction_of_no_fault_run": CRASH_FRACTION,
        "fault_seed": FAULT_SEED,
        "systems": {},
    }
    ok = True
    for kind in ("fusion", "baseline"):
        nofault, _sys0, _ = _run(kind, None, NUM_CLIENTS, NUM_QUERIES)
        crash_after = CRASH_FRACTION * nofault.wall_seconds
        faulted, system, victim = _run(kind, crash_after, NUM_CLIENTS, NUM_QUERIES)
        availability = len(faulted.metrics) / NUM_QUERIES

        # Correctness: completion order under 10 clients differs between
        # runs, so bit-identity is checked on a sequential pair (issue
        # order == completion order) with the crash scaled to its run.
        seq_ref, _s1, _ = _run(kind, None, 1, 8)
        seq_fault, _s2, _ = _run(kind, CRASH_FRACTION * seq_ref.wall_seconds, 1, 8)
        identical = all(
            a.equals(b) for a, b in zip(seq_ref.results, seq_fault.results)
        ) and len(seq_ref.results) == len(seq_fault.results)

        repair = _post_repair_clean(system, victim)
        entry = {
            "no_fault": _summarise(nofault),
            "faulted": _summarise(faulted),
            "availability": availability,
            "crash_node": victim,
            "crash_after_s": crash_after,
            "results_identical_to_no_fault": identical,
            "p99_penalty_pct": (
                (faulted.p99() - nofault.p99()) / nofault.p99() * 100.0
                if nofault.p99() > 0
                else 0.0
            ),
            "repair": repair,
        }
        report["systems"][kind] = entry
        passed = (
            availability == 1.0
            and identical
            and repair["scrub_clean_after_repair"]
            and repair["placements_all_on_live_nodes"]
            and repair["post_repair_degraded_reads"] == 0
            and repair["post_repair_queries_nonempty"]
        )
        ok &= passed
        print(
            f"{kind}: availability {availability:.2f}, "
            f"degraded reads {entry['faulted']['degraded_reads']}, "
            f"retries {entry['faulted']['retries']}, "
            f"p99 +{entry['p99_penalty_pct']:.1f}%, "
            f"repaired {repair['blocks_repaired']} blocks "
            f"({repair['repair_bytes'] / 1e9:.2f} GB) "
            f"in {repair['time_to_repair_s']:.2f}s, "
            f"clean={repair['scrub_clean_after_repair']}, "
            f"identical={identical} -> {'PASS' if passed else 'FAIL'}"
        )

    write_bench_report(
        out_path,
        benchmark="fault_tolerance",
        wall_seconds=time.perf_counter() - bench_start,
        passed=ok,
        floors={"availability": 1.0, "crash_fraction_of_no_fault_run": CRASH_FRACTION},
        detail=report,
    )
    print(f"wrote {out_path}")
    if not ok:
        sys.exit(1)


if __name__ == "__main__":
    main(*sys.argv[1:2])
