"""Figure 10: oracle runtime explosion and the pushdown trade-off grid."""

from repro.bench.experiments import fig10a_oracle_runtime, fig10b_tradeoff


def test_fig10a_oracle_runtime(run_experiment):
    result = run_experiment(
        fig10a_oracle_runtime, chunk_counts=(6, 10, 14, 18), time_cap_s=25.0
    )
    times = result.raw
    # The point of the figure: solve time grows rapidly with chunk count.
    assert max(times.values()) > 5 * min(times.values())


def test_fig10b_tradeoff(run_experiment):
    result = run_experiment(
        fig10b_tradeoff,
        column_ids=(5, 4),
        selectivities=(0.01, 0.5, 1.0),
        num_queries=16,
    )
    raw = result.raw
    # Always-on pushdown: big wins at low selectivity...
    assert raw[(5, 0.01)] > 30
    assert raw[(4, 0.01)] > 30
    # ...and it stops helping (or hurts) at full selectivity.
    assert raw[(5, 1.0)] < 15
    assert raw[(4, 1.0)] < 15
    # Within a column, lower selectivity is never worse.
    assert raw[(5, 0.01)] >= raw[(5, 1.0)]
