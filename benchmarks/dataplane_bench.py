"""Before/after benchmark for the vectorized, zero-copy data plane.

Measures the wall-clock throughput of each vectorized data-plane
component against the retained scalar references in
:mod:`repro.format._reference` (the seed implementations), then runs two
end-to-end workloads — a query workload in the style of the RPC-batching
bench and a fail-and-repair workload in the style of the fault-tolerance
bench — once with the production (vectorized) code and once with every
vectorized path patched back to its scalar reference in-process.

Simulated time, byte accounting, and query results are engine-level
quantities and do not change between modes (see
``tests/integration/test_dataplane_identity.py``); only wall-clock does.

Writes ``BENCH_dataplane.json`` and exits non-zero when any component
drops below its committed speedup floor (set ~25% under the ratios
measured at commit time, so a regression that costs more than a quarter
of a component's speedup fails CI).

Run from the repo root::

    PYTHONPATH=src python benchmarks/dataplane_bench.py [output.json]
"""

from __future__ import annotations

import json
import sys
import time

import numpy as np

from repro.bench.envelope import write_bench_report
from repro.cluster import Cluster, ClusterConfig, Simulator
from repro.core import FusionStore, RepairManager, StoreConfig
from repro.ec import gf256, reed_solomon
from repro.ec.reed_solomon import CodeParams, ReedSolomon
from repro.format import ColumnType, Table, write_table
from repro.format import _reference as ref
from repro.format import compression, encoding
from repro.format.compression import get_codec

#: Committed speedup floors (ratio of scalar-reference time to vectorized
#: time).  Measured ratios at commit time were roughly 22x (snappy), 14x
#: (RLE), 1.6x (string plain), 5x/10x/4x (RS encode / 1-loss / 3-loss
#: rebuild), 2.4x (query e2e), 3x (repair e2e); floors sit ~25% or more
#: below those so normal scheduler noise passes but a real regression —
#: e.g. a vectorized path silently falling back to its scalar loop —
#: fails the job.
FLOORS = {
    "snappy_roundtrip": 5.0,
    "rle_roundtrip": 5.0,
    "string_plain_roundtrip": 1.2,
    "rs_encode": 2.0,
    "rs_rebuild_1loss": 5.0,
    "rs_rebuild_3loss": 2.0,
    "e2e_query": 2.0,
    "e2e_repair": 2.0,
}

_REPS = 3


def _best_of(fn, reps: int = _REPS) -> float:
    fn()  # warm caches, lane tables, codec state
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class _Patcher:
    """Reversible setattr, so one process can run both modes."""

    def __init__(self) -> None:
        self._saved: list[tuple[object, str, object]] = []

    def set(self, obj: object, name: str, value: object) -> None:
        self._saved.append((obj, name, getattr(obj, name)))
        setattr(obj, name, value)

    def undo(self) -> None:
        for obj, name, value in reversed(self._saved):
            setattr(obj, name, value)
        self._saved.clear()


def _patch_scalar_data_plane(p: _Patcher) -> None:
    """Swap every vectorized data-plane path for its seed-era scalar form."""
    scalar = ref.ScalarSnappyCodec()
    p.set(
        compression.SnappyLikeCodec,
        "compress",
        lambda self, data: scalar.compress(data),
    )
    p.set(
        compression.SnappyLikeCodec,
        "decompress",
        lambda self, data: scalar.decompress(data),
    )
    p.set(encoding, "rle_encode", ref.rle_encode)
    p.set(encoding, "rle_decode", ref.rle_decode)
    p.set(encoding, "_encode_plain_strings", ref.encode_plain_strings)
    p.set(encoding, "_decode_plain_strings", ref.decode_plain_strings)
    p.set(
        gf256,
        "gf_matmul_blocks",
        lambda m, b: gf256.gf_matmul(
            np.asarray(m, dtype=np.uint8), np.ascontiguousarray(b, dtype=np.uint8)
        ),
    )
    p.set(
        reed_solomon,
        "build_encoding_matrix",
        lambda n, k: ref.build_vandermonde_encoding_matrix(n, k),
    )
    reed_solomon._CODER_CACHE.clear()


def _both_modes(fn) -> dict:
    """Run ``fn`` vectorized then scalar-patched; report times and ratio."""
    vec = _best_of(fn)
    p = _Patcher()
    _patch_scalar_data_plane(p)
    try:
        scalar = _best_of(fn)
    finally:
        p.undo()
        reed_solomon._CODER_CACHE.clear()
    return {"vectorized_s": vec, "scalar_s": scalar, "speedup": scalar / vec}


# -- component microbenchmarks ------------------------------------------------


def _snappy_component() -> dict:
    """Round-trip MB/s over a mixed corpus: runs, periodic data, base64
    text, and binary noise — the page payloads an analytics file holds."""
    rng = np.random.default_rng(7)
    b64 = np.frombuffer(
        b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_",
        dtype=np.uint8,
    )
    corpus = [
        b"\x00" * 262_144,
        bytes(rng.integers(0, 256, 512, dtype=np.uint8)) * 512,
        b64[rng.integers(0, 64, 262_144)].tobytes(),
        bytes(rng.integers(0, 256, 262_144, dtype=np.uint8)),
    ]
    total = sum(len(c) for c in corpus)
    vec_codec = get_codec("snappy")
    scalar = ref.ScalarSnappyCodec()
    for codec in (vec_codec, scalar):
        for raw in corpus:
            assert codec.decompress(codec.compress(raw)) == raw

    def roundtrip(codec):
        for raw in corpus:
            codec.decompress(codec.compress(raw))

    t_vec = _best_of(lambda: roundtrip(vec_codec))
    t_ref = _best_of(lambda: roundtrip(scalar), reps=1)
    return {
        "bytes": total,
        "vectorized_mb_s": total / t_vec / 1e6,
        "scalar_mb_s": total / t_ref / 1e6,
        "speedup": t_ref / t_vec,
    }


def _rle_component() -> dict:
    """RLE round-trip over run-structured dictionary codes (1M values)."""
    rng = np.random.default_rng(11)
    codes = np.repeat(rng.integers(0, 40, 40_000), 25).astype(np.int64)
    nbytes = codes.nbytes

    def vec():
        encoding.rle_decode(encoding.rle_encode(codes), len(codes))

    def scalar():
        ref.rle_decode(ref.rle_encode(codes), len(codes))

    t_vec = _best_of(vec)
    t_ref = _best_of(scalar, reps=1)
    return {
        "values": len(codes),
        "vectorized_mb_s": nbytes / t_vec / 1e6,
        "scalar_mb_s": nbytes / t_ref / 1e6,
        "speedup": t_ref / t_vec,
    }


def _string_plain_component() -> dict:
    """Plain string page encode+decode over 100k short ascii strings."""
    strings = np.array(
        [f"user-{i % 977:04d}/session/{i:07d}" for i in range(100_000)], dtype=object
    )
    blob = encoding.encode_plain(ColumnType.STRING, strings)
    nbytes = len(blob)

    def vec():
        b = encoding.encode_plain(ColumnType.STRING, strings)
        encoding.decode_plain(ColumnType.STRING, b, len(strings))

    def scalar():
        b = ref.encode_plain_strings(strings)
        ref.decode_plain_strings(b, len(strings))

    t_vec = _best_of(vec)
    t_ref = _best_of(scalar)
    return {
        "bytes": nbytes,
        "vectorized_mb_s": nbytes / t_vec / 1e6,
        "scalar_mb_s": nbytes / t_ref / 1e6,
        "speedup": t_ref / t_vec,
    }


def _rs_components() -> dict:
    """Whole-stripe encode and rebuild at in-context shard sizes.

    4 MiB shards with a (9, 6) code match what a multi-megabyte column
    chunk striped across a rack looks like; the vectorized coder runs
    one lane-table matmul per stripe, the reference walks coefficients
    with per-shard table lookups.
    """
    shard = 4 * 1024 * 1024
    params = CodeParams(9, 6)
    rng = np.random.default_rng(13)
    data = [rng.integers(0, 256, shard, dtype=np.uint8) for _ in range(params.k)]
    data_bytes = shard * params.k

    vec_coder = ReedSolomon(params)
    ref_coder = ref.ScalarReedSolomon(params.n, params.k)
    out: dict = {"shard_bytes": shard, "code": f"({params.n},{params.k})"}

    for name, coder in (("vectorized", vec_coder), ("scalar", ref_coder)):
        shards = list(data) + coder.encode(list(data))
        one = list(shards)
        one[2] = None
        three = list(shards)
        for i in (0, 4, 7):
            three[i] = None
        t_enc = _best_of(lambda: coder.encode(list(data)), reps=_REPS if name == "vectorized" else 1)
        t_r1 = _best_of(lambda: coder.decode(list(one)), reps=_REPS if name == "vectorized" else 1)
        t_r3 = _best_of(lambda: coder.decode(list(three)), reps=_REPS if name == "vectorized" else 1)
        out[name] = {
            "encode_mb_s": data_bytes / t_enc / 1e6,
            "rebuild_1loss_mb_s": shard / t_r1 / 1e6,
            "rebuild_3loss_mb_s": 3 * shard / t_r3 / 1e6,
            "_times": (t_enc, t_r1, t_r3),
        }
    vec_t = out["vectorized"].pop("_times")
    ref_t = out["scalar"].pop("_times")
    out["encode_speedup"] = ref_t[0] / vec_t[0]
    out["rebuild_1loss_speedup"] = ref_t[1] / vec_t[1]
    out["rebuild_3loss_speedup"] = ref_t[2] / vec_t[2]
    return out


# -- end-to-end workloads -----------------------------------------------------


def _query_table(rows: int = 40_000) -> Table:
    """A key-sorted fact table in the shape analytics files really have:
    a sorted key, a low-cardinality measure, clustered dimension strings
    (dictionary + RLE pages), and high-entropy digest columns (plain
    pages that stress the compressor's literal path)."""
    rng = np.random.default_rng(13)
    b64 = np.array(
        list("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_")
    )
    digest = np.array(
        ["".join(row) for row in b64[rng.integers(0, 64, (rows, 43))]], dtype=object
    )
    etag = np.array(
        ["".join(row) for row in b64[rng.integers(0, 64, (rows, 22))]], dtype=object
    )
    return Table.from_dict(
        {
            "id": (ColumnType.INT64, np.arange(rows, dtype=np.int64)),
            "qty": (ColumnType.INT64, rng.integers(1, 50, rows)),
            "tag": (
                ColumnType.STRING,
                np.array([f"shard-{i // 500}" for i in range(rows)], dtype=object),
            ),
            "digest": (ColumnType.STRING, digest),
            "etag": (ColumnType.STRING, etag),
            "url": (
                ColumnType.STRING,
                np.array(
                    [
                        f"https://objstore.example.com/buckets/b{i // 500}/data.parquet"
                        for i in range(rows)
                    ],
                    dtype=object,
                ),
            ),
        }
    )


_QUERY_SQLS = [
    "SELECT count(*), sum(qty) FROM tbl WHERE qty < 25",
    "SELECT id, digest FROM tbl WHERE qty < 3",
    "SELECT etag FROM tbl WHERE id < 20000",
    "SELECT tag, sum(qty) FROM tbl GROUP BY tag",
]


def _e2e_query(table: Table) -> None:
    """Write a snappy-coded table, load it, run the query mix (the
    rpc_batching bench's shape: one store, a batch of pushdown queries)."""
    data = write_table(table, row_group_rows=4_000, codec="snappy")
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=12))
    store = FusionStore(
        cluster,
        StoreConfig(
            size_scale=50.0, storage_overhead_threshold=0.1, block_size=500_000
        ),
    )
    store.put("tbl", data)
    for sql in _QUERY_SQLS:
        store.query(sql)


def _repair_table(rows: int = 2_000_000) -> Table:
    rng = np.random.default_rng(3)
    return Table.from_dict(
        {"k": (ColumnType.INT64, rng.integers(0, 2**40, rows))}
    )


def _e2e_repair(table: Table) -> None:
    """The fault-tolerance bench's shape: a FAC-placed object, four node
    losses each followed by a full repair, then a query over the
    recovered data.  Repair reads run the RS rebuild matmuls over every
    surviving stripe."""
    data = write_table(table, row_group_rows=250_000, codec="none")
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=12))
    store = FusionStore(
        cluster,
        StoreConfig(
            size_scale=50.0, storage_overhead_threshold=0.6, block_size=500_000
        ),
    )
    store.put("tbl", data)
    assert "tbl" in store.objects, "object must take the FAC (striped) path"
    victims = list(
        dict.fromkeys(
            node
            for stripe in store.objects["tbl"].stripes
            for node in stripe.node_ids
        )
    )[:4]
    repair = RepairManager(store)
    for victim in victims:
        cluster.fail_node(victim, wipe=True)
        repair.repair_node(victim)
    store.query("SELECT count(*) FROM tbl WHERE k < 1000000")


def main(out_path: str = "BENCH_dataplane.json") -> None:
    bench_start = time.perf_counter()
    report: dict = {"components": {}, "e2e": {}}

    components = report["components"]
    components["snappy_roundtrip"] = _snappy_component()
    components["rle_roundtrip"] = _rle_component()
    components["string_plain_roundtrip"] = _string_plain_component()
    rs = _rs_components()
    report["components"]["reed_solomon"] = rs

    query_table = _query_table()
    repair_table = _repair_table()
    report["e2e"]["query_pushdown"] = {
        "rows": 40_000,
        "queries": _QUERY_SQLS,
        **_both_modes(lambda: _e2e_query(query_table)),
    }
    report["e2e"]["fail_and_repair"] = {
        "rows": 2_000_000,
        "node_losses": 4,
        **_both_modes(lambda: _e2e_repair(repair_table)),
    }

    measured = {
        "snappy_roundtrip": components["snappy_roundtrip"]["speedup"],
        "rle_roundtrip": components["rle_roundtrip"]["speedup"],
        "string_plain_roundtrip": components["string_plain_roundtrip"]["speedup"],
        "rs_encode": rs["encode_speedup"],
        "rs_rebuild_1loss": rs["rebuild_1loss_speedup"],
        "rs_rebuild_3loss": rs["rebuild_3loss_speedup"],
        "e2e_query": report["e2e"]["query_pushdown"]["speedup"],
        "e2e_repair": report["e2e"]["fail_and_repair"]["speedup"],
    }
    report["acceptance"] = {
        name: {
            "speedup": ratio,
            "floor": FLOORS[name],
            "passes": ratio >= FLOORS[name],
        }
        for name, ratio in measured.items()
    }
    ok = all(entry["passes"] for entry in report["acceptance"].values())

    for name, ratio in measured.items():
        flag = "PASS" if ratio >= FLOORS[name] else "FAIL"
        print(f"{name}: {ratio:.1f}x (floor {FLOORS[name]}x) {flag}")

    write_bench_report(
        out_path,
        benchmark="dataplane",
        wall_seconds=time.perf_counter() - bench_start,
        passed=ok,
        floors={f"{name}_speedup": FLOORS[name] for name in FLOORS},
        detail=report,
    )
    print(f"wrote {out_path}")
    if not ok:
        sys.exit(1)


if __name__ == "__main__":
    main(*sys.argv[1:2])
