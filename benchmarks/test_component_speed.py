"""Microbenchmarks of the core components (real wall-clock, many rounds).

These are classic pytest-benchmark measurements of the library's hot
paths, complementing the one-shot figure reproductions: FAC layout speed
(the paper's "tens of microseconds" claim), Reed-Solomon throughput, and
chunk encode/decode.
"""

import numpy as np
import pytest

from repro.core import construct_stripes
from repro.ec import RS_9_6, encode_stripe, get_coder
from repro.format import decode_column_chunk, encode_column_chunk
from repro.format.schema import ColumnType
from repro.workloads import items_from_sizes, zipf_chunk_sizes


def test_fac_construction_speed(benchmark):
    """Paper: FAC runs in 10s-100s of microseconds for real files."""
    items = items_from_sizes(zipf_chunk_sizes(320, 0.5, seed=1))
    layout = benchmark(construct_stripes, RS_9_6, items)
    assert layout.overhead_vs_optimal < 0.02
    # Generous bound for CI noise; the paper's Go version is ~500us.
    assert benchmark.stats["mean"] < 0.05


def test_fac_scales_to_thousands_of_chunks(benchmark):
    items = items_from_sizes(zipf_chunk_sizes(2000, 0.5, seed=2))
    layout = benchmark(construct_stripes, RS_9_6, items)
    assert layout.overhead_vs_optimal < 0.01


def test_reed_solomon_encode_throughput(benchmark):
    rng = np.random.default_rng(0)
    blocks = [rng.integers(0, 256, size=256 * 1024, dtype=np.uint8) for _ in range(6)]
    coder = get_coder(RS_9_6)
    parity = benchmark(coder.encode, blocks)
    assert len(parity) == 3


def _lossy_stripe(block_size: int):
    # Small blocks mirror degraded reads of per-chunk bins, where the
    # GF(2^8) matrix inversion (not the multiply) dominates decode time.
    rng = np.random.default_rng(4)
    coder = get_coder(RS_9_6)
    blocks = [rng.integers(0, 256, size=block_size, dtype=np.uint8) for _ in range(6)]
    shards = blocks + coder.encode(blocks)
    shards[0] = shards[3] = None  # a fixed two-shard loss, as in repair
    return coder, blocks, shards


def test_reed_solomon_decode_memoised_inversion(benchmark):
    """Repeated loss pattern: recovery matrix comes from the memo cache."""
    coder, blocks, shards = _lossy_stripe(1024)
    recovered = benchmark(coder.decode, shards)
    assert np.array_equal(recovered[0], blocks[0])


def test_reed_solomon_decode_cold_inversion(benchmark):
    """Same decode with the memo cleared each round: pays the inversion."""
    coder, blocks, shards = _lossy_stripe(1024)

    def cold_decode():
        coder._inversion_cache.clear()
        return coder.decode(shards)

    recovered = benchmark(cold_decode)
    assert np.array_equal(recovered[0], blocks[0])


def test_stripe_encode_variable_blocks(benchmark):
    rng = np.random.default_rng(1)
    sizes = [200_000, 150_000, 120_000, 80_000, 50_000, 10_000]
    blocks = [rng.integers(0, 256, size=s, dtype=np.uint8) for s in sizes]
    stripe = benchmark(encode_stripe, RS_9_6, blocks)
    assert stripe.stats.parity_bytes == 3 * 200_000


def test_chunk_encode_speed(benchmark):
    rng = np.random.default_rng(2)
    values = rng.integers(0, 50, size=100_000)
    chunk = benchmark(
        encode_column_chunk, ColumnType.INT64, values, "zlib"
    )
    assert chunk.compressibility > 4


def test_chunk_decode_speed(benchmark):
    rng = np.random.default_rng(3)
    values = rng.integers(0, 50, size=100_000)
    chunk = encode_column_chunk(ColumnType.INT64, values, "zlib")
    out = benchmark(decode_column_chunk, chunk.data)
    assert np.array_equal(out, values)
