"""Operational benches: Put latency, recovery time, mixed workloads,
and the wide-code overhead variant."""

from repro.bench.experiments import (
    fig16a_wide_code,
    mixed_workload,
    put_latency,
    recovery_time,
)


def test_put_latency(run_experiment):
    result = run_experiment(put_latency)
    for name, (f_report, b_report) in result.raw.items():
        # FAC adds little Put cost over fixed-block striping (<50% here;
        # the paper's claim is that the layout algorithm itself is free).
        assert f_report.simulated_put_seconds < 1.5 * b_report.simulated_put_seconds, name
        assert f_report.layout_build_seconds < 0.05, name
        assert not f_report.fallback, name


def test_recovery_time(run_experiment):
    result = run_experiment(recovery_time)
    f_rebuilt, f_time = result.raw["fusion"]
    b_rebuilt, b_time = result.raw["baseline"]
    assert f_rebuilt > 0 and b_rebuilt > 0
    # Both systems use the same conventional RS repair; times are of the
    # same order of magnitude.
    assert f_time < 10 * b_time and b_time < 10 * f_time


def test_mixed_workload(run_experiment):
    result = run_experiment(mixed_workload, num_queries=40)
    comp = result.raw["comparison"]
    assert comp.p50_reduction > 30
    assert comp.p99_reduction > 30
    assert comp.traffic_ratio > 2


def test_fig16a_wide_code(run_experiment):
    result = run_experiment(fig16a_wide_code, chunk_counts=(50, 500), runs=10)
    raw = result.raw
    # The paper: RS(14,10) exhibits a similar pattern to RS(9,6).
    for code in ("RS(9,6)", "RS(14,10)"):
        assert raw[(code, 500)] < raw[(code, 50)]
        assert raw[(code, 500)] < 1.0
