"""Before/after benchmark for per-node scatter-gather RPC batching.

Drives one TPC-H query (Q1, projection heavy) and one taxi query (Q3,
aggregate) through Fusion and the baseline with ``enable_rpc_batching``
off and on, then writes ``BENCH_rpc_batching.json`` with mean/percentile
latency, RPC counts, and the acceptance check: with batching on, a
multi-row-group projection query issues at most one data-plane RPC pair
per (node, stage).

Run from the repo root::

    PYTHONPATH=src python benchmarks/rpc_batching_bench.py [output.json]
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import replace

from repro.bench.experiments import dataset, dataset_scale, store_config
from repro.bench.envelope import write_bench_report
from repro.bench.harness import WorkloadStats, build_system, reduction_pct, run_workload
from repro.cluster.metrics import QueryMetrics
from repro.workloads import real_world_queries

NUM_CLIENTS = 10
NUM_QUERIES = 40


def _workload_sqls() -> dict[str, str]:
    _ldata, ltable = dataset("lineitem")
    _tdata, ttable = dataset("taxi")
    queries = {q.name: q for q in real_world_queries(ltable, ttable)}
    return {"tpch_q1": queries["Q1"].sql, "taxi_q3": queries["Q3"].sql}


def _run(
    kind: str,
    batching: bool,
    clients: int = NUM_CLIENTS,
    queries: int = NUM_QUERIES,
) -> WorkloadStats:
    ldata, _lt = dataset("lineitem")
    tdata, _tt = dataset("taxi")
    cfg = replace(store_config("lineitem"), enable_rpc_batching=batching)
    system = build_system(kind, {"lineitem": ldata, "taxi": tdata}, store_config=cfg)
    sqls = list(_workload_sqls().values())
    return run_workload(system, sqls, num_clients=clients, num_queries=queries)


def _summarise(stats: WorkloadStats) -> dict:
    return {
        "mean_latency_s": stats.mean_latency(),
        "p50_latency_s": stats.p50(),
        "p99_latency_s": stats.p99(),
        "rpcs_issued": stats.rpcs_issued,
        "rpcs_saved": stats.rpcs_saved,
        "network_bytes": stats.network_bytes,
        "num_queries": len(stats.metrics),
    }


def _acceptance() -> dict:
    """Single multi-row-group projection query, batching on: the RPC bound."""
    ldata, _lt = dataset("lineitem")
    cfg = replace(store_config("lineitem"), enable_rpc_batching=True)
    system = build_system("fusion", {"lineitem": ldata}, store_config=cfg)
    sql = _workload_sqls()["tpch_q1"]
    qm = QueryMetrics()
    done = {}

    def driver():
        done["result"] = yield from system.store.query_process(sql, qm)

    system.sim.process(driver())
    system.sim.run()
    nodes_touched = len(set(system.store.chunk_nodes("lineitem").values()))
    # Two data-plane stages (filter, projection), one batched request per
    # touched node each (replies stream over the open exchange), plus the
    # final result transfer.
    bound = 2 * nodes_touched + 1
    return {
        "query": sql,
        "nodes_touched": nodes_touched,
        "rpcs_issued": qm.rpcs_issued,
        "rpc_bound_one_per_node_per_stage": bound,
        "passes": qm.rpcs_issued <= bound,
        "matched_rows": done["result"].matched_rows,
    }


def main(out_path: str = "BENCH_rpc_batching.json") -> None:
    bench_start = time.perf_counter()
    report: dict = {
        "benchmark": "rpc_batching",
        "workload": _workload_sqls(),
        "clients": NUM_CLIENTS,
        "queries_per_run": NUM_QUERIES,
        "systems": {},
    }
    ok = True
    for kind in ("fusion", "baseline"):
        off = _run(kind, batching=False)
        on = _run(kind, batching=True)
        # Completion order under 10 concurrent clients differs between
        # modes, so bit-identity is checked on a sequential pair (issue
        # order == completion order); traffic totals are order-free.
        seq_off = _run(kind, batching=False, clients=1, queries=4)
        seq_on = _run(kind, batching=True, clients=1, queries=4)
        identical = (
            all(a.equals(b) for a, b in zip(seq_off.results, seq_on.results))
            and seq_off.network_bytes == seq_on.network_bytes
            and off.network_bytes == on.network_bytes
        )
        entry = {
            "unbatched": _summarise(off),
            "batched": _summarise(on),
            "mean_latency_reduction_pct": reduction_pct(
                off.mean_latency(), on.mean_latency()
            ),
            "results_identical": identical,
        }
        report["systems"][kind] = entry
        ok &= identical and on.rpcs_issued < off.rpcs_issued
        print(
            f"{kind}: mean {off.mean_latency() * 1e3:.2f}ms -> "
            f"{on.mean_latency() * 1e3:.2f}ms "
            f"({entry['mean_latency_reduction_pct']:.1f}% lower), "
            f"RPCs {off.rpcs_issued} -> {on.rpcs_issued}, "
            f"identical={identical}"
        )

    report["acceptance"] = _acceptance()
    ok &= report["acceptance"]["passes"]
    print(
        "acceptance: {rpcs_issued} RPCs vs bound {bound} over {n} nodes -> {v}".format(
            rpcs_issued=report["acceptance"]["rpcs_issued"],
            bound=report["acceptance"]["rpc_bound_one_per_node_per_stage"],
            n=report["acceptance"]["nodes_touched"],
            v="PASS" if report["acceptance"]["passes"] else "FAIL",
        )
    )

    write_bench_report(
        out_path,
        benchmark="rpc_batching",
        wall_seconds=time.perf_counter() - bench_start,
        passed=ok,
        floors={"rpc_bound": "one_per_node_per_stage", "results_identical": True},
        detail=report,
    )
    print(f"wrote {out_path}")
    if not ok:
        sys.exit(1)


if __name__ == "__main__":
    main(*sys.argv[1:2])
