"""Figure 4: the motivation experiments (splits, breakdown, CDF, padding)."""

from repro.bench.experiments import (
    fig4a_chunk_splits,
    fig4b_baseline_breakdown,
    fig4c_chunk_cdf,
    fig4d_padding_overhead,
)


def test_fig4a_chunk_splits(run_experiment):
    result = run_experiment(fig4a_chunk_splits)
    lineitem = result.raw["tpc-h lineitem"]
    taxi = result.raw["taxi"]
    # Paper: splits remain significant even at 100MB blocks (~40% / ~24%),
    # and worsen monotonically as blocks shrink.
    assert 25 <= lineitem[100.0] <= 60
    assert 15 <= taxi[100.0] <= 40
    assert lineitem[0.1] >= lineitem[1.0] >= lineitem[10.0] >= lineitem[100.0]


def test_fig4b_baseline_breakdown(run_experiment):
    result = run_experiment(fig4b_baseline_breakdown, num_queries=20)
    frac = result.raw["fractions"]
    # Paper: ~50% of baseline time goes to network reassembly; disk small.
    assert frac["network"] > 0.4
    assert frac["network"] > frac["disk"]
    assert frac["network"] > frac["processing"]


def test_fig4c_chunk_cdf(run_experiment):
    result = run_experiment(fig4c_chunk_cdf)
    lineitem = result.raw["lineitem"]
    taxi = result.raw["taxi"]
    # Lineitem is bimodal: median tiny relative to max; taxi more uniform.
    assert lineitem[50] < 10
    assert taxi[75] > lineitem[75]


def test_fig4d_padding_overhead(run_experiment):
    result = run_experiment(fig4d_padding_overhead)
    # Padding overhead is substantial (tens of %) on every dataset.
    for (name, code), pct in result.raw.items():
        assert pct > 10, (name, code, pct)
