"""Figure 16: FAC storage/runtime overhead vs the oracle and padding."""

from repro.bench.experiments import fig16a_fac_overhead, fig16bc_strategy_compare


def test_fig16a_fac_overhead(run_experiment):
    result = run_experiment(
        fig16a_fac_overhead, chunk_counts=(50, 100, 500, 1000), skews=(0.0, 0.99), runs=10
    )
    raw = result.raw
    for skew in (0.0, 0.99):
        # Overhead decreases with chunk count and converges toward zero
        # (paper: ~3% at 100 chunks, 0.8% at 500).
        assert raw[(skew, 50)] >= raw[(skew, 500)]
        assert raw[(skew, 500)] < 1.0
        assert raw[(skew, 1000)] < 0.6
    # Skew barely matters (paper's surprising finding).
    assert abs(raw[(0.0, 500)] - raw[(0.99, 500)]) < 1.0


def test_fig16bc_strategy_compare(run_experiment):
    result = run_experiment(fig16bc_strategy_compare, oracle_time_limit_s=5.0)
    raw = result.raw
    for name in ("lineitem", "taxi", "recipe", "ukpp"):
        fac_overhead, fac_runtime, fac_runtime_pct = raw[(name, "fac")]
        pad_overhead, _pad_runtime, _ = raw[(name, "padding")]
        # Paper: FAC <= 1.24% overhead at negligible runtime; padding
        # overhead is 1-2 orders of magnitude worse.
        assert fac_overhead < 2.0, name
        assert fac_runtime < 0.05, name
        assert fac_runtime_pct < 1.0, name
        assert pad_overhead > 10 * fac_overhead, name
        if (name, "oracle") in raw:
            _o_overhead, oracle_runtime, _ = raw[(name, "oracle")]
            # The oracle is orders of magnitude slower than FAC.
            assert oracle_runtime > 100 * fac_runtime, name
