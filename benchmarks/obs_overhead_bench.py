"""Observability overhead benchmark: what does tracing cost, and does it
perturb the simulation?

Runs the same concurrent taxi workload through Fusion and the baseline
twice each — once with every observability knob off, once with tracing,
the metrics registry and the pushdown audit all on — and reports:

* the *simulated* fingerprint of both runs (must be identical: the
  observers never touch the event heap),
* the host wall-clock per run and the on/off overhead ratio,
* how much was observed (spans, instants, audit records, registry
  series).

Acceptance (exit 1 on failure): per-query fingerprints and results are
bit-identical with observability on vs off, and the instrumented run
actually captured spans and metrics.

Writes ``BENCH_obs_overhead.json``.  Run from the repo root::

    PYTHONPATH=src python benchmarks/obs_overhead_bench.py [output.json]
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import replace

from repro.bench.experiments import dataset, store_config
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.metrics import QueryMetrics
from repro.cluster.simcore import Simulator
from repro.core.baseline_store import BaselineStore
from repro.core.store import FusionStore
from repro.workloads import real_world_queries

NUM_CLIENTS = 10
NUM_QUERIES = 40


def _workload_sqls() -> list[str]:
    """The taxi-side real-world queries (Q3/Q4 run against ``taxi``)."""
    _ldata, ltable = dataset("lineitem")
    _tdata, ttable = dataset("taxi")
    queries = {q.name: q for q in real_world_queries(ltable, ttable)}
    return [queries["Q3"].sql, queries["Q4"].sql]


def _run(kind: str, obs_on: bool) -> dict:
    data, _table = dataset("taxi")
    config = replace(
        store_config("taxi"),
        tracing_enabled=obs_on,
        metrics_registry_enabled=obs_on,
        pushdown_audit_enabled=obs_on,
    )
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig())
    store_cls = FusionStore if kind == "fusion" else BaselineStore
    store = store_cls(cluster, config)
    started = time.perf_counter()
    store.put("taxi", data)

    sqls = _workload_sqls()
    metrics_out: list[QueryMetrics] = []
    results_out = []
    per_client = [NUM_QUERIES // NUM_CLIENTS] * NUM_CLIENTS
    for i in range(NUM_QUERIES % NUM_CLIENTS):
        per_client[i] += 1

    def client(cid: int, count: int):
        for qi in range(count):
            sql = sqls[(cid + qi * NUM_CLIENTS) % len(sqls)]
            qm = QueryMetrics()
            result = yield from store.query_process(sql, qm)
            metrics_out.append(qm)
            results_out.append(result)

    for cid, count in enumerate(per_client):
        if count:
            sim.process(client(cid, count))
    sim.run()
    wall = time.perf_counter() - started

    fingerprint = [
        (qm.start_time, qm.end_time, qm.network_bytes, qm.rpcs_issued)
        for qm in metrics_out
    ]
    observed = {
        "spans": len(sim.tracer.spans) if sim.tracer else 0,
        "instants": len(sim.tracer.instants) if sim.tracer else 0,
        "audit_records": len(store.audit.records),
        "registry_families": (
            len(cluster.metrics.registry.to_dict())
            if cluster.metrics.registry is not None
            else 0
        ),
    }
    return {
        "wall_seconds": wall,
        "simulated_seconds": sim.now,
        "fingerprint": fingerprint,
        "results": results_out,
        "observed": observed,
    }


def main(out_path: str) -> int:
    _workload_sqls()  # warm the dataset cache so timings exclude generation
    report: dict = {"workload": {"clients": NUM_CLIENTS, "queries": NUM_QUERIES}}
    failures: list[str] = []
    for kind in ("fusion", "baseline"):
        off = _run(kind, obs_on=False)
        on = _run(kind, obs_on=True)
        if off["fingerprint"] != on["fingerprint"]:
            failures.append(f"{kind}: fingerprints differ with obs on vs off")
        if not all(a.equals(b) for a, b in zip(off["results"], on["results"])):
            failures.append(f"{kind}: query results differ with obs on vs off")
        if not (on["observed"]["spans"] and on["observed"]["registry_families"]):
            failures.append(f"{kind}: instrumented run captured nothing")
        if off["observed"]["spans"] or off["observed"]["registry_families"]:
            failures.append(f"{kind}: uninstrumented run captured something")
        overhead = (
            on["wall_seconds"] / off["wall_seconds"] if off["wall_seconds"] else 0.0
        )
        report[kind] = {
            "wall_seconds_off": off["wall_seconds"],
            "wall_seconds_on": on["wall_seconds"],
            "wall_overhead_ratio": overhead,
            "simulated_seconds": on["simulated_seconds"],
            "event_stream_identical": off["fingerprint"] == on["fingerprint"],
            "observed": on["observed"],
        }
        print(
            f"{kind:9s} wall off {off['wall_seconds']:.2f}s on "
            f"{on['wall_seconds']:.2f}s (x{overhead:.2f}) | "
            f"{on['observed']['spans']} spans, "
            f"{on['observed']['audit_records']} audit records"
        )
    report["ok"] = not failures
    report["failures"] = failures
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(f"wrote {out_path}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    out = sys.argv[1] if len(sys.argv) > 1 else "BENCH_obs_overhead.json"
    raise SystemExit(main(out))
