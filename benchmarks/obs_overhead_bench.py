"""Continuous-telemetry benchmark: overhead, perturbation, and detection.

Four acceptance gates (exit 1 on any failure):

1. **Zero simulated perturbation** — the same concurrent taxi workload
   runs through Fusion and the baseline with every observability knob
   off and with *full* telemetry on (tracing, metrics registry, audit,
   scraper, SLO engine, exemplars); per-query fingerprints and results
   must be bit-identical.
2. **Bounded wall overhead** — full telemetry costs at most 1.5x the
   uninstrumented host wall-clock (best-of-2 per mode).
3. **Detection** — a chaos run (one node degraded by a ``slow`` fault
   and hammered by an ``overload`` storm) must fire the p99 burn-rate
   alert within two scrape intervals of the first over-threshold query
   completion, and the critical-path analyzer must attribute >= 80% of
   the affected queries' added latency to queue-wait on the stormed
   node.
4. **Exemplars** — the p99 latency bucket's exemplar must resolve to a
   query span present in the exported Chrome trace.

Writes ``BENCH_obs_overhead.json`` (bench-envelope/v1).  Run from the
repo root::

    PYTHONPATH=src python benchmarks/obs_overhead_bench.py [output.json]
"""

from __future__ import annotations

import sys
import time
from dataclasses import replace

from repro.bench.envelope import write_bench_report
from repro.bench.experiments import dataset, store_config
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.faults import FaultEvent, FaultInjector
from repro.cluster.metrics import QueryMetrics, percentile
from repro.cluster.simcore import Simulator
from repro.core.baseline_store import BaselineStore
from repro.core.store import FusionStore
from repro.obs.critpath import CriticalPathAnalyzer
from repro.obs.slo import SLOEngine, SLObjective
from repro.workloads import real_world_queries

NUM_CLIENTS = 10
NUM_QUERIES = 40
SCRAPE_INTERVAL_S = 0.25
OVERHEAD_CEILING = 1.5  # full telemetry vs uninstrumented wall-clock
QUEUE_WAIT_FLOOR = 0.8  # of affected queries' added latency
ALERT_WITHIN_INTERVALS = 2

# Chaos run: one node degraded and stormed mid-workload.  The storm is
# anchored to the *query phase* (Put takes most of the simulated run),
# starting this long after the dataset load finished.
CHAOS_NODE = 0
CHAOS_AFTER_PUT_S = 1.0
CHAOS_DURATION_S = 6.0
CHAOS_SLOW_FACTOR = 4.0
CHAOS_STORM_RATE = 3000.0  # background reads/s against the slowed disk
CHAOS_QUERIES = 60
#: Affected queries must exceed the healthy p99 by this margin, keeping
#: float jitter and the healthy run's own top percentile out of the
#: "affected" population.
AFFECTED_MARGIN = 1.25
#: The chaos pair runs "patient": ops wait out the storm in the queue
#: instead of timing out into degraded reads, so the added latency is
#: observable where it actually accrues (the stormed node's queues).
PATIENT_TIMEOUT_S = 60.0


def _workload_sqls() -> list[str]:
    """The taxi-side real-world queries (Q3/Q4 run against ``taxi``)."""
    _ldata, ltable = dataset("lineitem")
    _tdata, ttable = dataset("taxi")
    queries = {q.name: q for q in real_world_queries(ltable, ttable)}
    return [queries["Q3"].sql, queries["Q4"].sql]


def _build(kind: str, telemetry: bool, **overrides):
    data, _table = dataset("taxi")
    config = replace(
        store_config("taxi", **overrides),
        tracing_enabled=telemetry,
        metrics_registry_enabled=telemetry,
        pushdown_audit_enabled=telemetry,
        scrape_interval_s=SCRAPE_INTERVAL_S if telemetry else 0.0,
        slo_enabled=telemetry,
        exemplars_enabled=telemetry,
    )
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig())
    store_cls = FusionStore if kind == "fusion" else BaselineStore
    store = store_cls(cluster, config)
    return sim, cluster, store, data


def _drive(sim, store, data, queries: int, after_put=None) -> tuple[list[QueryMetrics], list]:
    store.put("taxi", data)
    if after_put is not None:
        after_put()
    sqls = _workload_sqls()
    metrics_out: list[QueryMetrics] = []
    results_out: list = []
    per_client = [queries // NUM_CLIENTS] * NUM_CLIENTS
    for i in range(queries % NUM_CLIENTS):
        per_client[i] += 1

    def client(cid: int, count: int):
        for qi in range(count):
            sql = sqls[(cid + qi * NUM_CLIENTS) % len(sqls)]
            qm = QueryMetrics()
            result = yield from store.query_process(sql, qm)
            metrics_out.append(qm)
            results_out.append(result)

    for cid, count in enumerate(per_client):
        if count:
            sim.process(client(cid, count))
    sim.run()
    return metrics_out, results_out


def _overhead_run(kind: str, telemetry: bool) -> dict:
    sim, cluster, store, data = _build(kind, telemetry)
    started = time.perf_counter()
    metrics, results = _drive(sim, store, data, NUM_QUERIES)
    wall = time.perf_counter() - started
    fingerprint = [
        (qm.start_time, qm.end_time, qm.network_bytes, qm.rpcs_issued)
        for qm in metrics
    ]
    observed = {
        "spans": len(sim.tracer.spans) if sim.tracer else 0,
        "instants": len(sim.tracer.instants) if sim.tracer else 0,
        "audit_records": len(store.audit.records),
        "registry_families": (
            len(cluster.metrics.registry.to_dict())
            if cluster.metrics.registry is not None
            else 0
        ),
        "scrape_samples": (
            len(cluster.scraper.times) if cluster.scraper is not None else 0
        ),
        "slo_objectives": (
            len(cluster.slo.objectives) if cluster.slo is not None else 0
        ),
    }
    return {
        "wall_seconds": wall,
        "simulated_seconds": sim.now,
        "fingerprint": fingerprint,
        "results": results,
        "observed": observed,
    }


def _overhead_phase(report: dict, failures: list[str]) -> None:
    for kind in ("fusion", "baseline"):
        # Best-of-2 per mode: one workload run is ~0.2s of host time, so
        # a single sample is noise-dominated at a 1.5x ceiling.
        offs = [_overhead_run(kind, telemetry=False) for _ in range(2)]
        ons = [_overhead_run(kind, telemetry=True) for _ in range(2)]
        off, on = offs[0], ons[0]
        if off["fingerprint"] != on["fingerprint"]:
            failures.append(f"{kind}: fingerprints differ with telemetry on vs off")
        if not all(a.equals(b) for a, b in zip(off["results"], on["results"])):
            failures.append(f"{kind}: query results differ with telemetry on vs off")
        obs = on["observed"]
        if not (obs["spans"] and obs["registry_families"] and obs["scrape_samples"]):
            failures.append(f"{kind}: instrumented run captured nothing")
        if off["observed"]["spans"] or off["observed"]["scrape_samples"]:
            failures.append(f"{kind}: uninstrumented run captured something")
        wall_off = min(r["wall_seconds"] for r in offs)
        wall_on = min(r["wall_seconds"] for r in ons)
        overhead = wall_on / wall_off if wall_off else 0.0
        if overhead > OVERHEAD_CEILING:
            failures.append(
                f"{kind}: telemetry wall overhead x{overhead:.2f} exceeds "
                f"x{OVERHEAD_CEILING}"
            )
        report[kind] = {
            "wall_seconds_off": wall_off,
            "wall_seconds_on": wall_on,
            "wall_overhead_ratio": overhead,
            "simulated_seconds": on["simulated_seconds"],
            "event_stream_identical": off["fingerprint"] == on["fingerprint"],
            "observed": obs,
        }
        print(
            f"{kind:9s} wall off {wall_off:.2f}s on {wall_on:.2f}s "
            f"(x{overhead:.2f}) | {obs['spans']} spans, "
            f"{obs['scrape_samples']} scrapes, "
            f"{obs['audit_records']} audit records"
        )


def _chaos_phase(report: dict, failures: list[str]) -> None:
    # Calm reference with the identical patient config calibrates the
    # healthy latency envelope the chaos run is judged against.
    sim0, _cluster0, store0, data0 = _build(
        "fusion", telemetry=True, op_timeout_s=PATIENT_TIMEOUT_S
    )
    calm_metrics, _ = _drive(sim0, store0, data0, CHAOS_QUERIES)
    calm_lat = [qm.latency for qm in calm_metrics]
    healthy_p50 = percentile(calm_lat, 50)
    healthy_p99 = percentile(calm_lat, 99)

    sim, cluster, store, data = _build(
        "fusion", telemetry=True, op_timeout_s=PATIENT_TIMEOUT_S
    )
    threshold = AFFECTED_MARGIN * healthy_p99
    # The acceptance objective watches "p99 above the healthy envelope",
    # alongside the stock objectives install_telemetry already wired up.
    watchdog = SLOEngine(
        cluster.scraper,
        [
            SLObjective(
                name="p99_vs_healthy",
                kind="latency_p99",
                target=0.99,
                threshold=threshold,
                series="repro_query_latency_seconds",
            )
        ],
        registry=cluster.metrics.registry,
        tracer=sim.tracer,
    )
    chaos_state: dict = {}

    def arm_chaos() -> None:
        chaos_at = sim.now + CHAOS_AFTER_PUT_S
        chaos_state["at"] = chaos_at
        FaultInjector(
            cluster,
            [
                FaultEvent(
                    at=chaos_at, kind="slow", node_id=CHAOS_NODE,
                    duration=CHAOS_DURATION_S, factor=CHAOS_SLOW_FACTOR,
                ),
                FaultEvent(
                    at=chaos_at, kind="overload", node_id=CHAOS_NODE,
                    duration=CHAOS_DURATION_S, rate=CHAOS_STORM_RATE,
                ),
            ],
        ).install()

    chaos_metrics, _ = _drive(sim, store, data, CHAOS_QUERIES, after_put=arm_chaos)
    chaos_at = chaos_state["at"]

    # Alert latency: from the first over-threshold completion (the
    # earliest instant the engine could possibly know) to the firing.
    bad_ends = sorted(
        qm.end_time
        for qm in chaos_metrics
        if qm.latency > threshold and qm.end_time >= chaos_at
    )
    first_bad = bad_ends[0] if bad_ends else None
    alert = next((a for a in watchdog.alerts if a.slo == "p99_vs_healthy"), None)
    alert_delay = (alert.time - first_bad) if alert and first_bad is not None else None
    alert_bound = ALERT_WITHIN_INTERVALS * SCRAPE_INTERVAL_S
    if first_bad is None:
        failures.append("chaos: storm produced no over-threshold completions")
    elif alert is None:
        failures.append("chaos: p99 burn-rate alert never fired")
    elif alert_delay > alert_bound + 1e-9:
        failures.append(
            f"chaos: alert fired {alert_delay:.3f}s after first bad completion "
            f"(bound {alert_bound:.3f}s)"
        )

    # Critical path: >= 80% of the affected queries' added latency must
    # land on queue-wait at the stormed node.
    analyzer = CriticalPathAnalyzer(sim.tracer)
    affected = [
        s
        for s in sim.tracer.find("query")
        if s.end is not None
        and s.end >= chaos_at
        and (s.end - s.start) > threshold
    ]
    agg = analyzer.aggregate(affected)
    added = agg["total_seconds"] - len(affected) * healthy_p50
    storm_wait = agg["queue_wait_by_node"].get(str(CHAOS_NODE), 0.0)
    wait_share = storm_wait / added if added > 0 else 0.0
    if not affected:
        failures.append("chaos: no affected query spans found in the trace")
    elif wait_share < QUEUE_WAIT_FLOOR:
        failures.append(
            f"chaos: queue-wait on node {CHAOS_NODE} explains only "
            f"{wait_share:.1%} of added latency (floor {QUEUE_WAIT_FLOOR:.0%})"
        )

    # Exemplars: the p99 bucket must link back to a real query span in
    # the exported trace.
    hist = cluster.metrics.registry.histogram(
        "repro_query_latency_seconds", "End-to-end query latency"
    )
    exemplar = hist.exemplar_for_quantile(0.99)
    exemplar_ok = False
    exemplar_detail: dict = {}
    if exemplar is not None:
        value, trace_id = exemplar
        span = next(
            (s for s in sim.tracer.spans if s.span_id == trace_id), None
        )
        exported = sim.tracer.chrome_trace()
        in_export = any(
            ev.get("ph") == "B" and ev.get("args", {}).get("span_id") == trace_id
            for ev in exported["traceEvents"]
        )
        exemplar_ok = span is not None and span.name == "query" and in_export
        exemplar_detail = {
            "value": value,
            "trace_id": trace_id,
            "span_name": span.name if span is not None else None,
            "in_exported_trace": in_export,
        }
    if not exemplar_ok:
        failures.append("chaos: p99 exemplar did not resolve to an exported query span")

    report["chaos"] = {
        "node": CHAOS_NODE,
        "slow_factor": CHAOS_SLOW_FACTOR,
        "storm_rate_rps": CHAOS_STORM_RATE,
        "healthy_p50_s": healthy_p50,
        "healthy_p99_s": healthy_p99,
        "affected_threshold_s": threshold,
        "chaos_at_s": chaos_at,
        "affected_queries": len(affected),
        "first_bad_completion_s": first_bad,
        "alert_time_s": alert.time if alert else None,
        "alert_delay_s": alert_delay,
        "alert_bound_s": alert_bound,
        "added_latency_s": added,
        "queue_wait_stormed_node_s": storm_wait,
        "queue_wait_share_of_added": wait_share,
        "attribution": {
            "by_category": agg["by_category"],
            "queue_wait_by_node": agg["queue_wait_by_node"],
        },
        "exemplar": exemplar_detail,
        "stock_alerts": [a.to_dict() for a in cluster.slo.alerts],
    }
    print(
        f"chaos     alert +{alert_delay:.3f}s of first bad completion "
        f"(bound {alert_bound:.2f}s), queue-wait share {wait_share:.1%}, "
        f"{len(affected)} affected queries, exemplar ok={exemplar_ok}"
        if alert_delay is not None
        else "chaos     FAILED to fire/measure the burn-rate alert"
    )


def main(out_path: str) -> int:
    bench_start = time.perf_counter()
    _workload_sqls()  # warm the dataset cache so timings exclude generation
    report: dict = {
        "workload": {
            "clients": NUM_CLIENTS,
            "queries": NUM_QUERIES,
            "chaos_queries": CHAOS_QUERIES,
            "scrape_interval_s": SCRAPE_INTERVAL_S,
        }
    }
    failures: list[str] = []
    _overhead_phase(report, failures)
    _chaos_phase(report, failures)
    report["failures"] = failures
    write_bench_report(
        out_path,
        benchmark="obs_overhead",
        wall_seconds=time.perf_counter() - bench_start,
        passed=not failures,
        floors={
            "wall_overhead_ceiling": OVERHEAD_CEILING,
            "alert_within_scrape_intervals": ALERT_WITHIN_INTERVALS,
            "queue_wait_share_floor": QUEUE_WAIT_FLOOR,
            "event_stream_identical": True,
        },
        detail=report,
    )
    print(f"wrote {out_path}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    out = sys.argv[1] if len(sys.argv) > 1 else "BENCH_obs_overhead.json"
    raise SystemExit(main(out))
