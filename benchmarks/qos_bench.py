"""Per-tenant QoS benchmark: noisy-neighbour isolation for both stores.

Runs the ``qos`` experiment (closed-loop capacity calibration, then an
isolated tenant-B run, a two-tenant storm, and a symmetric equal-weight
pair per system) and writes ``BENCH_qos.json`` with per-tenant goodput,
p99, typed-refusal counts and quota statistics.

Acceptance — the fairness floors (exit 1 on any violation), per system:

* storm: tenant B (closed-loop, within its share) keeps p99 under the
  deadline and goodput >= 80% of its isolated run while tenant A
  (open-loop at 2.5x capacity) absorbs *every* typed refusal — B is
  refused nothing, and A's refusals all surface as typed
  ``QuotaExceeded`` / ``QueueFull`` failures (anything untyped would
  have aborted the experiment);
* symmetric: two equal-weight closed-loop tenants end within 10% of
  each other's goodput.

Run from the repo root::

    PYTHONPATH=src python benchmarks/qos_bench.py [output.json]
"""

from __future__ import annotations

import json
import sys
import time

from repro.bench.envelope import write_bench_report
from repro.bench.experiments import tenant_qos

B_GOODPUT_FLOOR = 0.8  # of B's isolated-run goodput
SYMMETRY_FLOOR = 0.9  # min/max goodput ratio for equal-weight tenants
ARRIVALS = 100


def _accept(kind: str, raw: dict) -> tuple[bool, dict]:
    storm_a = raw["storm"]["A"]
    storm_b = raw["storm"]["B"]
    iso_b = raw["isolated"]["B"]
    stats_a = raw["qos_stats"].get("A", {})

    b_goodput_holds = (
        iso_b["goodput_qps"] > 0
        and storm_b["goodput_qps"] >= B_GOODPUT_FLOOR * iso_b["goodput_qps"]
    )
    checks = {
        "storm_b_p99_within_deadline": storm_b["p99"] <= raw["deadline_s"],
        "storm_b_goodput_at_least_80pct_of_isolated": b_goodput_holds,
        "storm_b_refused_nothing": storm_b["controlled"] == 0,
        "storm_a_absorbs_typed_refusals": storm_a["controlled"] > 0,
        "storm_a_all_arrivals_accounted": storm_a["issued"] == ARRIVALS,
        "storm_a_quota_refusals_typed": stats_a.get("quota_rejected", 0) > 0,
        "symmetric_tenants_within_10pct": raw["symmetric_ratio"] >= SYMMETRY_FLOOR,
    }
    return all(checks.values()), checks


def main(out_path: str = "BENCH_qos.json") -> None:
    bench_start = time.perf_counter()
    result = tenant_qos(arrivals=ARRIVALS)
    report: dict = {
        "benchmark": "qos",
        "title": result.title,
        "b_goodput_floor": B_GOODPUT_FLOOR,
        "symmetry_floor": SYMMETRY_FLOOR,
        "storm_arrivals": ARRIVALS,
        "systems": {},
    }
    ok = True
    for kind, raw in result.raw.items():
        passed, checks = _accept(kind, raw)
        ok &= passed
        report["systems"][kind] = {
            "capacity_qps": raw["capacity_qps"],
            "uncontended_p99_s": raw["uncontended_p99"],
            "deadline_s": raw["deadline_s"],
            "storm_rate_qps": raw["storm_rate_qps"],
            "isolated_b": raw["isolated"]["B"],
            "storm": {t: raw["storm"][t] for t in ("A", "B")},
            "symmetric_ratio": raw["symmetric_ratio"],
            "qos_stats": raw["qos_stats"],
            "tenant_metrics": raw["tenants"],
            "checks": checks,
        }
        ratio = (
            raw["storm"]["B"]["goodput_qps"] / raw["isolated"]["B"]["goodput_qps"]
            if raw["isolated"]["B"]["goodput_qps"]
            else 0.0
        )
        print(
            f"{kind}: capacity {raw['capacity_qps']:.1f} qps, storm "
            f"{raw['storm_rate_qps']:.1f} qps; B goodput {ratio:.2f}x "
            f"isolated, B p99 {raw['storm']['B']['p99'] * 1e3:.1f} ms "
            f"(deadline {raw['deadline_s'] * 1e3:.0f} ms), A refusals "
            f"{raw['storm']['A']['controlled']}, symmetric ratio "
            f"{raw['symmetric_ratio']:.2f} -> {'PASS' if passed else 'FAIL'}"
        )
        if not passed:
            for name, value in checks.items():
                if not value:
                    print(f"  FAILED check: {name}")

    write_bench_report(
        out_path,
        benchmark="qos",
        wall_seconds=time.perf_counter() - bench_start,
        passed=ok,
        floors={"b_goodput_floor": B_GOODPUT_FLOOR, "symmetry_floor": SYMMETRY_FLOOR},
        detail=report,
    )
    print(f"wrote {out_path}")
    if not ok:
        sys.exit(1)


if __name__ == "__main__":
    main(*sys.argv[1:2])
