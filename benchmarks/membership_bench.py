"""Membership-chaos benchmark: mid-workload join + drain with rebalance.

Drives the interleaved TPC-H Q1 + taxi Q3 workload through Fusion and
the baseline (both with ``membership_enabled=True``) while a scripted
:class:`FaultInjector` joins a new node ~25% into the run and drains a
data-holding node ~45% in; a background driver runs the
:class:`Rebalancer` until placement converges to the hash ring.  Writes
``BENCH_membership.json`` with availability, rebalance traffic,
convergence time and the latency penalty for both systems.

Acceptance (exit 1 on failure): every query completes (availability
1.0), churned results are bit-identical to a churn-free run, placement
converges to the ring within a bounded multiple of the calibrated
wall-clock, the drained node ends empty and removable, fsck is clean
afterwards, and rebalance traffic is accounted separately from repair
(zero repair bytes) and query traffic.

Run from the repo root::

    PYTHONPATH=src python benchmarks/membership_bench.py [output.json]
"""

from __future__ import annotations

import json
import sys
import time

from repro.bench.envelope import write_bench_report
from repro.bench.experiments import dataset, dataset_scale
from repro.bench.harness import WorkloadStats, build_system, run_workload
from repro.cluster.faults import FaultEvent, FaultInjector
from repro.core.config import StoreConfig
from repro.core.fsck import fsck
from repro.core.rebalance import Rebalancer
from repro.workloads import real_world_queries

NUM_CLIENTS = 10
NUM_QUERIES = 40
JOIN_FRACTION = 0.25  # of the churn-free run's wall-clock
DRAIN_FRACTION = 0.45
# Convergence is dominated by the bytes moved, so the ceiling is a
# multiple of the serial single-link transfer time for the migrated
# volume, plus one calibrated workload wall for scheduling slack.
CONVERGENCE_BOUND = 5.0
FAULT_SEED = 13


def _workload_sqls() -> dict[str, str]:
    _ldata, ltable = dataset("lineitem")
    _tdata, ttable = dataset("taxi")
    queries = {q.name: q for q in real_world_queries(ltable, ttable)}
    return {"tpch_q1": queries["Q1"].sql, "taxi_q3": queries["Q3"].sql}


def _build(kind: str):
    ldata, _lt = dataset("lineitem")
    tdata, _tt = dataset("taxi")
    cfg = StoreConfig(
        size_scale=dataset_scale("lineitem"), membership_enabled=True
    )
    return build_system(kind, {"lineitem": ldata, "taxi": tdata}, store_config=cfg)


def _run(kind: str, churn_after_s: float | None, clients: int, queries: int):
    """One workload run; ``churn_after_s`` schedules a join and a drain
    that far into it, plus a background rebalance driver (None =
    churn-free).  Returns (stats, system, rebalancer, victim, drain_at)."""
    system = _build(kind)
    rb = Rebalancer(system.store)
    victim = None
    drain_at = None
    if churn_after_s is not None:
        cluster = system.cluster
        victim = next(n.node_id for n in cluster.nodes if n.stored_bytes)
        now = system.sim.now
        join_at = now + JOIN_FRACTION / DRAIN_FRACTION * churn_after_s
        drain_at = now + churn_after_s
        FaultInjector(
            cluster,
            [
                FaultEvent(at=join_at, kind="join", node_id=-1),
                FaultEvent(at=drain_at, kind="drain", node_id=victim),
            ],
            seed=FAULT_SEED,
        ).install()

        churn_end = drain_at + 0.1 * churn_after_s
        interval = max(churn_after_s / 10.0, 1e-3)

        def driver():
            while system.sim.now < churn_end:
                yield system.sim.timeout(interval)
                if rb.misplaced() or cluster.migrations:
                    yield from rb.rebalance_process()
            for _ in range(50):  # bounded: one pass normally suffices
                if rb.converged():
                    break
                yield from rb.rebalance_process()
                yield system.sim.timeout(interval)

        system.sim.process(driver())
    sqls = list(_workload_sqls().values())
    stats = run_workload(system, sqls, num_clients=clients, num_queries=queries)
    return stats, system, rb, victim, drain_at


def _summarise(stats: WorkloadStats) -> dict:
    return {
        "mean_latency_s": stats.mean_latency(),
        "p50_latency_s": stats.p50(),
        "p99_latency_s": stats.p99(),
        "network_bytes": stats.network_bytes,
        "num_queries": len(stats.metrics),
        "retries": sum(qm.retries for qm in stats.metrics),
        "timeouts": sum(qm.timeouts for qm in stats.metrics),
        "degraded_reads": sum(qm.degraded_reads for qm in stats.metrics),
    }


def main(out_path: str = "BENCH_membership.json") -> None:
    bench_start = time.perf_counter()
    report: dict = {
        "benchmark": "membership",
        "workload": _workload_sqls(),
        "clients": NUM_CLIENTS,
        "queries_per_run": NUM_QUERIES,
        "join_fraction_of_churn_free_run": JOIN_FRACTION,
        "drain_fraction_of_churn_free_run": DRAIN_FRACTION,
        "convergence_bound_x_transfer_floor": CONVERGENCE_BOUND,
        "fault_seed": FAULT_SEED,
        "systems": {},
    }
    ok = True
    for kind in ("fusion", "baseline"):
        nofault, _s0, _rb0, _, _ = _run(kind, None, NUM_CLIENTS, NUM_QUERIES)
        churn_after = DRAIN_FRACTION * nofault.wall_seconds
        churned, system, rb, victim, drain_at = _run(
            kind, churn_after, NUM_CLIENTS, NUM_QUERIES
        )
        availability = len(churned.metrics) / NUM_QUERIES
        convergence_s = max(0.0, system.sim.now - drain_at)

        # Correctness: completion order under 10 clients differs between
        # runs, so bit-identity is checked on a sequential pair (issue
        # order == completion order) with the churn scaled to its run.
        seq_ref, _s1, _r1, _, _ = _run(kind, None, 1, 8)
        seq_churn, _s2, _r2, _, _ = _run(
            kind, DRAIN_FRACTION * seq_ref.wall_seconds, 1, 8
        )
        identical = all(
            a.equals(b) for a, b in zip(seq_ref.results, seq_churn.results)
        ) and len(seq_ref.results) == len(seq_churn.results)

        cluster = system.cluster
        metrics = cluster.metrics
        converged = rb.converged()
        drained_empty = not any(cluster.node(victim).block_ids())
        if converged and drained_empty:
            cluster.remove_node(victim)
        fsck_report = fsck(system.store)
        bandwidth = cluster.config.network.bandwidth_bps
        transfer_floor = metrics.rebalance_bytes / bandwidth
        bound_s = CONVERGENCE_BOUND * transfer_floor + nofault.wall_seconds
        bounded = convergence_s <= bound_s

        entry = {
            "churn_free": _summarise(nofault),
            "churned": _summarise(churned),
            "availability": availability,
            "drained_node": victim,
            "drain_after_s": churn_after,
            "results_identical_to_churn_free": identical,
            "p99_penalty_pct": (
                (churned.p99() - nofault.p99()) / nofault.p99() * 100.0
                if nofault.p99() > 0
                else 0.0
            ),
            "rebalance": {
                "rebalance_bytes": metrics.rebalance_bytes,
                "blocks_migrated": metrics.blocks_migrated,
                "repair_bytes": metrics.repair_bytes,
                "convergence_s": convergence_s,
                "convergence_bound_s": bound_s,
                "convergence_bounded": bounded,
                "ring_converged": converged,
                "drained_node_empty": drained_empty,
                "fsck_clean_after_remove": fsck_report.clean,
                "pending_migrations": len(fsck_report.pending_migrations),
            },
        }
        report["systems"][kind] = entry
        passed = (
            availability == 1.0
            and identical
            and converged
            and bounded
            and drained_empty
            and fsck_report.clean
            and metrics.rebalance_bytes > 0
            and metrics.repair_bytes == 0
        )
        ok &= passed
        print(
            f"{kind}: availability {availability:.2f}, "
            f"p99 +{entry['p99_penalty_pct']:.1f}%, "
            f"migrated {metrics.blocks_migrated} blocks "
            f"({metrics.rebalance_bytes / 1e9:.2f} GB) "
            f"converged in {convergence_s:.2f}s, "
            f"repair bytes {metrics.repair_bytes}, "
            f"clean={fsck_report.clean}, identical={identical} "
            f"-> {'PASS' if passed else 'FAIL'}"
        )

    write_bench_report(
        out_path,
        benchmark="membership",
        wall_seconds=time.perf_counter() - bench_start,
        passed=ok,
        floors={
            "availability": 1.0,
            "convergence_bound_x_transfer_floor": CONVERGENCE_BOUND,
        },
        detail=report,
    )
    print(f"wrote {out_path}")
    if not ok:
        sys.exit(1)


if __name__ == "__main__":
    main(*sys.argv[1:2])
