"""Shared fixtures: small deterministic tables, files and clusters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig, Simulator
from repro.core import BaselineStore, FusionStore, StoreConfig
from repro.format import ColumnType, Table, write_table


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def make_small_table(num_rows: int = 2000, seed: int = 9) -> Table:
    """A mixed-type table exercising every column type."""
    r = np.random.default_rng(seed)
    return Table.from_dict(
        {
            "id": (ColumnType.INT64, np.arange(num_rows)),
            "qty": (ColumnType.INT64, r.integers(1, 50, num_rows)),
            "price": (ColumnType.DOUBLE, np.round(r.uniform(0, 100, num_rows), 2)),
            "day": (ColumnType.DATE, r.integers(16_000, 17_000, num_rows)),
            "flag": (ColumnType.BOOL, r.integers(0, 2, num_rows).astype(bool)),
            "tag": (ColumnType.STRING, [f"tag-{i % 7}" for i in range(num_rows)]),
            "note": (
                ColumnType.STRING,
                [f"note {int(v)}" for v in r.integers(0, 10**9, num_rows)],
            ),
        }
    )


@pytest.fixture(scope="session")
def small_table() -> Table:
    return make_small_table()


@pytest.fixture(scope="session")
def small_file(small_table) -> bytes:
    return write_table(small_table, row_group_rows=500)


@pytest.fixture
def cluster():
    sim = Simulator()
    return Cluster(sim, ClusterConfig(num_nodes=9))


@pytest.fixture
def fusion_store(cluster):
    return FusionStore(cluster, StoreConfig(size_scale=100.0, storage_overhead_threshold=0.1, block_size=2_000_000))


@pytest.fixture
def baseline_store(cluster):
    return BaselineStore(cluster, StoreConfig(size_scale=100.0, storage_overhead_threshold=0.1, block_size=2_000_000))


@pytest.fixture
def loaded_fusion(small_file):
    """A FusionStore with the small table stored as 'tbl'."""
    sim = Simulator()
    cl = Cluster(sim, ClusterConfig(num_nodes=9))
    store = FusionStore(cl, StoreConfig(size_scale=100.0, storage_overhead_threshold=0.1, block_size=2_000_000))
    store.put("tbl", small_file)
    return store


@pytest.fixture
def loaded_baseline(small_file):
    """A BaselineStore with the small table stored as 'tbl'."""
    sim = Simulator()
    cl = Cluster(sim, ClusterConfig(num_nodes=9))
    store = BaselineStore(cl, StoreConfig(size_scale=100.0, storage_overhead_threshold=0.1, block_size=2_000_000))
    store.put("tbl", small_file)
    return store
