"""Tracer semantics: simulated-clock spans, per-process parent context,
Chrome trace_event export, and the zero-cost-when-disabled contract."""

from repro.cluster.simcore import Simulator
from repro.obs.tracer import Tracer, traced
from repro.obs.validate import validate_chrome_trace


def test_begin_finish_uses_simulated_clock():
    sim = Simulator()
    tracer = Tracer(sim)
    sim.tracer = tracer

    def work():
        span = tracer.begin("outer", cat="test", who="me")
        yield sim.timeout(2.5)
        tracer.finish(span, done=True)

    sim.process(work())
    sim.run()
    (span,) = tracer.spans
    assert span.start == 0.0
    assert span.end == 2.5
    assert span.duration == 2.5
    assert span.args == {"who": "me", "done": True}


def test_nesting_within_one_process():
    sim = Simulator()
    tracer = Tracer(sim)
    sim.tracer = tracer

    def work():
        outer = tracer.begin("outer")
        inner = tracer.begin("inner")
        yield sim.timeout(1.0)
        tracer.finish(inner)
        tracer.finish(outer)

    sim.process(work())
    sim.run()
    outer, inner = tracer.spans
    assert inner.parent_id == outer.span_id
    assert tracer.ancestors(inner) == [outer]
    assert tracer.path(inner) == "outer/inner"
    assert tracer.children_of(outer) == [inner]


def test_interleaved_processes_keep_separate_parent_context():
    """Two concurrent processes must not adopt each other's open spans."""
    sim = Simulator()
    tracer = Tracer(sim)
    sim.tracer = tracer

    def worker(name, delay):
        span = tracer.begin(name)
        yield sim.timeout(delay)
        child = tracer.begin(f"{name}.child")
        yield sim.timeout(delay)
        tracer.finish(child)
        tracer.finish(span)

    sim.process(worker("a", 1.0))
    sim.process(worker("b", 0.7))  # interleaves with a's steps
    sim.run()
    for name in ("a", "b"):
        (child,) = tracer.find(f"{name}.child")
        (parent,) = tracer.find(name)
        assert child.parent_id == parent.span_id


def test_child_process_inherits_spawners_open_span():
    sim = Simulator()
    tracer = Tracer(sim)
    sim.tracer = tracer

    def child():
        span = tracer.begin("child")
        yield sim.timeout(0.1)
        tracer.finish(span)

    def parent():
        span = tracer.begin("parent")
        yield sim.process(child())
        tracer.finish(span)

    sim.process(parent())
    sim.run()
    (c,) = tracer.find("child")
    (p,) = tracer.find("parent")
    assert c.parent_id == p.span_id


def test_traced_wraps_generator_and_passes_value_through():
    sim = Simulator()
    tracer = Tracer(sim)
    sim.tracer = tracer

    def body():
        yield sim.timeout(1.0)
        return 42

    proc = sim.process(traced(sim, body(), "wrapped", cat="test", k=1))
    sim.run()
    assert proc.value == 42
    (span,) = tracer.find("wrapped")
    assert span.duration == 1.0
    assert span.args == {"k": 1}


def test_traced_without_tracer_is_bare_passthrough():
    sim = Simulator()  # sim.tracer is None

    def body():
        yield sim.timeout(1.0)
        return "ok"

    proc = sim.process(traced(sim, body(), "wrapped"))
    sim.run()
    assert proc.value == "ok"


def test_instants_record_time_and_parent():
    sim = Simulator()
    tracer = Tracer(sim)
    sim.tracer = tracer

    def work():
        span = tracer.begin("outer")
        yield sim.timeout(0.5)
        tracer.instant("tick", cat="test", n=1)
        tracer.finish(span)

    sim.process(work())
    sim.run()
    ((when, name, cat, parent_id, args),) = tracer.instants
    assert when == 0.5
    assert name == "tick"
    assert parent_id == tracer.spans[0].span_id
    assert args == {"n": 1}


def test_chrome_trace_is_valid_and_balanced():
    sim = Simulator()
    tracer = Tracer(sim)
    sim.tracer = tracer

    def worker(name, delay):
        span = tracer.begin(name)
        yield sim.timeout(delay)
        inner = tracer.begin(f"{name}.inner")
        yield sim.timeout(delay)
        tracer.instant(f"{name}.instant")
        tracer.finish(inner)
        tracer.finish(span)

    for i in range(5):
        sim.process(worker(f"w{i}", 0.3 + 0.1 * i))
    sim.run()
    trace = tracer.chrome_trace(pid=3, process_name="test-proc")
    assert validate_chrome_trace(trace) == []
    events = trace["traceEvents"]
    assert sum(1 for e in events if e["ph"] == "B") == sum(
        1 for e in events if e["ph"] == "E"
    )
    assert any(
        e["ph"] == "M" and e["name"] == "process_name"
        and e["args"]["name"] == "test-proc"
        for e in events
    )
    assert sum(1 for e in events if e["ph"] == "i") == 5
    assert all(e["pid"] == 3 for e in events)


def test_chrome_trace_renders_open_spans_at_horizon_without_mutating():
    sim = Simulator()
    tracer = Tracer(sim)
    sim.tracer = tracer

    def work():
        tracer.begin("never_finished")
        yield sim.timeout(4.0)

    sim.process(work())
    sim.run()
    trace = tracer.chrome_trace()
    assert validate_chrome_trace(trace) == []
    # Export renders the open span as ending at the horizon and marks it
    # truncated, but the Span object itself stays open (a later finish()
    # still records the real end).
    (span,) = tracer.find("never_finished")
    assert span.end is None
    begin = next(
        e for e in trace["traceEvents"]
        if e["ph"] == "B" and e["name"] == "never_finished"
    )
    assert begin["args"]["truncated"] is True
    end = next(
        e for e in trace["traceEvents"]
        if e["ph"] == "E" and e["ts"] == 4.0 * 1e6
    )
    assert end is not None


def test_text_summary_aggregates_by_path():
    sim = Simulator()
    tracer = Tracer(sim)
    sim.tracer = tracer

    def work():
        for _ in range(3):
            outer = tracer.begin("op")
            inner = tracer.begin("step")
            yield sim.timeout(1.0)
            tracer.finish(inner)
            tracer.finish(outer)

    sim.process(work())
    sim.run()
    summary = tracer.text_summary()
    lines = {line.split()[-1]: line for line in summary.splitlines()[1:]}
    assert lines["op"].split()[0] == "3"
    assert lines["op;step"].split()[0] == "3"
    # op's time is all in its child, so its self time is ~0.
    assert float(lines["op"].split()[2]) == 0.0
    assert float(lines["op;step"].split()[2]) == 3.0
