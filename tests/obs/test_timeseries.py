"""Scraper semantics: simulated-clock sampling cadence, delta / rate /
windowed-quantile derivation, deterministic export, and the
install_telemetry knob wiring."""

import json
import math

import pytest

from repro.cluster import Cluster, ClusterConfig, Simulator
from repro.obs.registry import MetricsRegistry
from repro.obs.timeseries import Scraper, install_telemetry
from repro.obs.validate import validate_timeseries


def _cluster(num_nodes=4, registry=True):
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=num_nodes))
    if registry:
        cluster.metrics.registry = MetricsRegistry()
    return sim, cluster


def _idle(sim, until):
    def wait():
        yield sim.timeout(until)

    sim.process(wait())
    sim.run()


def test_samples_land_on_interval_boundaries():
    sim, cluster = _cluster()
    scraper = Scraper(cluster, 0.5)
    scraper.install()
    _idle(sim, 2.2)
    assert scraper.times == [0.5, 1.0, 1.5, 2.0]
    # Node gauges exist for every node at every sample.
    for nid in range(4):
        points = scraper._series("repro_node_up", {"node": str(nid)})
        assert [t for t, _v in points] == scraper.times
        assert all(v == 1.0 for _t, v in points)


def test_one_clock_advance_crossing_many_boundaries_samples_each():
    sim, cluster = _cluster()
    scraper = Scraper(cluster, 0.25)
    scraper.install()
    _idle(sim, 3.0)  # a single big timeout crosses 12 boundaries
    assert len(scraper.times) == 12
    assert scraper.times[0] == 0.25
    assert scraper.times[-1] == 3.0


def test_interval_must_be_positive():
    _sim, cluster = _cluster(registry=False)
    with pytest.raises(ValueError):
        Scraper(cluster, 0.0)


def test_install_is_idempotent():
    sim, cluster = _cluster()
    scraper = Scraper(cluster, 1.0)
    scraper.install()
    scraper.install()
    _idle(sim, 2.0)
    assert scraper.times == [1.0, 2.0]


def test_delta_and_rate_on_cumulative_counter():
    sim, cluster = _cluster()
    counter = cluster.metrics.registry.counter("work_total", "work done")

    def work():
        for _ in range(8):
            counter.inc(3.0)
            yield sim.timeout(0.5)

    scraper = Scraper(cluster, 1.0)
    scraper.install()
    sim.process(work())
    sim.run()
    # Counter rises 6.0 per sampled second.
    assert scraper.latest("work_total") == 24.0
    assert scraper.delta("work_total", window_s=1.0) == pytest.approx(6.0)
    assert scraper.delta("work_total") == pytest.approx(24.0)  # inf window
    assert scraper.rate("work_total", window_s=2.0) == pytest.approx(6.0)
    assert scraper.delta("work_total", window_s=1.0, at=2.0) == pytest.approx(6.0)


def test_window_values_and_missing_series():
    sim, cluster = _cluster()
    scraper = Scraper(cluster, 0.5)
    scraper.install()
    _idle(sim, 2.0)
    values = scraper.window_values("repro_node_up", {"node": "0"}, window_s=1.0)
    assert values == [1.0, 1.0]
    assert scraper.latest("nope") is None
    assert scraper.delta("nope") == 0.0
    assert scraper.window_values("nope") == []
    assert scraper.window_quantile("nope", 0.99) is None
    assert scraper.window_fraction_above("nope", 1.0) is None


def test_windowed_quantile_from_histogram_bucket_deltas():
    sim, cluster = _cluster()
    hist = cluster.metrics.registry.histogram(
        "lat_seconds", "latency", buckets=(0.1, 1.0, 10.0)
    )

    def work():
        # First second: fast observations; second second: slow ones.
        for _ in range(10):
            hist.observe(0.05)
        yield sim.timeout(1.0)
        for _ in range(10):
            hist.observe(5.0)
        yield sim.timeout(1.0)

    scraper = Scraper(cluster, 1.0)
    scraper.install()
    sim.process(work())
    sim.run()
    # Over everything: median at the 0.1 bucket bound, p99 at 10.0.
    assert scraper.window_quantile("lat_seconds", 0.5) == pytest.approx(0.1)
    assert scraper.window_quantile("lat_seconds", 0.99) == pytest.approx(10.0)
    # Trailing 1 s window isolates the slow burst.
    assert scraper.window_quantile("lat_seconds", 0.5, window_s=1.0) == pytest.approx(10.0)
    assert scraper.window_fraction_above("lat_seconds", 1.0, window_s=1.0) == pytest.approx(1.0)
    assert scraper.window_fraction_above("lat_seconds", 1.0) == pytest.approx(0.5)
    # A window before any observations has no data.
    assert scraper.window_quantile("lat_seconds", 0.5, window_s=1.0, at=0.0) is None


def test_to_json_is_deterministic_and_validates():
    def one_run():
        sim, cluster = _cluster()
        counter = cluster.metrics.registry.counter("ticks_total", "ticks")
        hist = cluster.metrics.registry.histogram("obs_seconds", "obs")

        def work():
            for i in range(6):
                counter.inc()
                hist.observe(0.01 * (i + 1))
                yield sim.timeout(0.4)

        scraper = Scraper(cluster, 0.5)
        scraper.install()
        sim.process(work())
        sim.run()
        return scraper

    a, b = one_run(), one_run()
    assert a.to_json() == b.to_json()  # byte-identical artifact
    doc = json.loads(a.to_json())
    assert validate_timeseries(doc) == []
    assert doc["samples"] == len(doc["times"])
    bounds = doc["histograms"]["obs_seconds"][0]["bounds"]
    assert bounds[-1] == "+Inf"


def test_openmetrics_text_has_types_timestamps_and_eof():
    sim, cluster = _cluster()
    cluster.metrics.registry.counter("ticks_total", "ticks").inc(5)
    scraper = Scraper(cluster, 1.0)
    scraper.install()
    _idle(sim, 2.0)
    text = scraper.openmetrics()
    assert text.endswith("# EOF\n")
    assert "# TYPE ticks_total counter" in text
    assert "ticks_total 5 1" in text  # value with simulated timestamp
    assert '# TYPE repro_node_up gauge' in text
    assert 'repro_node_up{node="0"} 1 2' in text


def test_install_telemetry_knobs():
    # All knobs off: nothing installed.
    sim, cluster = _cluster(registry=False)

    class Cfg:
        scrape_interval_s = 0.0
        slo_enabled = False
        exemplars_enabled = False

    install_telemetry(cluster, Cfg())
    assert getattr(cluster, "scraper", None) is None
    assert cluster.metrics.registry is None

    # Scrape knob: scraper + registry appear; idempotent reinstall.
    cfg = Cfg()
    cfg.scrape_interval_s = 0.5
    install_telemetry(cluster, cfg)
    assert cluster.scraper.interval_s == 0.5
    assert cluster.metrics.registry is not None
    first = cluster.scraper
    install_telemetry(cluster, cfg)
    assert cluster.scraper is first

    # SLO knob layers the engine on the existing scraper.
    cfg.slo_enabled = True
    install_telemetry(cluster, cfg)
    assert cluster.slo is not None
    assert cluster.slo.scraper is first

    # Exemplars force tracer + registry flag.
    cfg.exemplars_enabled = True
    install_telemetry(cluster, cfg)
    assert sim.tracer is not None
    assert cluster.metrics.registry.exemplars_enabled is True


def test_scraper_never_schedules_events():
    sim, cluster = _cluster()
    scheduled: list[float] = []
    orig = sim._schedule

    def recording(at, callback, arg):
        scheduled.append(at)
        orig(at, callback, arg)

    sim._schedule = recording
    scraper = Scraper(cluster, 0.1)
    scraper.install()
    before = list(scheduled)

    def work():
        yield sim.timeout(1.0)

    sim.process(work())
    sim.run()
    # The only scheduled events are the workload's own (process start at
    # t=0 and its timeout); 10 samples were taken without touching the
    # event queue.
    assert len(scraper.times) == 10
    assert scheduled[len(before):] == [0.0, 1.0]
    assert math.isclose(scheduled[-1], 1.0)
