"""Pushdown decision audit: record capture, ex-post judgement, and the
store-level guarantee of one record per projected chunk."""

from repro.cluster import Cluster, ClusterConfig, Simulator
from repro.cluster.simcore import Simulator as Sim
from repro.core import FusionStore, StoreConfig
from repro.core.cost_model import PushdownCostEstimator, PushdownMode
from repro.format import write_table
from repro.obs.audit import PushdownAuditLog
from repro.obs.tracer import Tracer
from tests.conftest import make_small_table


def _decision(selectivity=0.1, compressed=1000, plain=4000):
    return PushdownCostEstimator(PushdownMode.ADAPTIVE).decide(
        selectivity, compressed, plain
    )


def test_record_captures_decision_inputs():
    sim = Sim()
    log = PushdownAuditLog(sim)
    decision = _decision(selectivity=0.1, compressed=1000, plain=4000)
    rec = log.record("obj", (0, "col"), "projection", "adaptive", decision)
    assert rec.push_down is True
    assert rec.cost_product == decision.cost_product
    assert rec.est_pushdown_bytes == 400.0  # 0.1 * plain
    assert rec.est_fetch_bytes == 1000
    assert rec.decision == "pushdown"
    # Actuals unknown until the op executes.
    assert rec.ex_post_optimal is None
    assert rec.bytes_saved is None


def test_ex_post_judgement_and_summary():
    sim = Sim()
    log = PushdownAuditLog(sim)
    good = log.record("obj", (0, "a"), "projection", "adaptive", _decision(0.1))
    good.actual_chosen_bytes = 400
    good.actual_alternative_bytes = 1000
    bad = log.record("obj", (1, "a"), "projection", "adaptive", _decision(0.1))
    bad.actual_chosen_bytes = 1500
    bad.actual_alternative_bytes = 1000
    unjudged = log.record("obj", (2, "a"), "projection", "adaptive", _decision(0.9))
    assert unjudged.actual_chosen_bytes is None

    assert good.ex_post_optimal is True and good.bytes_saved == 600
    assert bad.ex_post_optimal is False and bad.bytes_saved == -500
    s = log.summary()
    assert s.total == 3
    assert s.judged == 2
    assert s.ex_post_optimal == 1
    assert s.accuracy == 0.5
    assert s.bytes_saved == 100


def test_zero_decision_summary_is_all_zeroes():
    # A run that never evaluated a pushdown decision (tiny workload, or
    # audit installed but no queries) must summarize without dividing by
    # zero anywhere.
    s = PushdownAuditLog(Sim()).summary()
    assert s.total == s.pushed == s.judged == 0
    assert s.accuracy == 0.0
    assert s.pushdown_fraction == 0.0
    assert s.judged_fraction == 0.0
    assert s.mean_bytes_saved == 0.0
    d = s.to_dict()
    assert d["accuracy"] == 0.0
    assert d["pushdown_fraction"] == 0.0
    assert d["judged_fraction"] == 0.0
    assert d["mean_bytes_saved"] == 0.0


def test_unjudged_only_summary_has_zero_judged_fractions():
    # Decisions recorded but no actual byte counts observed: fractions
    # over judged decisions stay 0, fractions over total do not.
    sim = Sim()
    log = PushdownAuditLog(sim)
    log.record("obj", (0, "a"), "projection", "adaptive", _decision(0.1))
    log.record("obj", (1, "a"), "projection", "adaptive", _decision(0.9))
    s = log.summary()
    assert s.total == 2 and s.judged == 0
    assert s.accuracy == 0.0
    assert s.mean_bytes_saved == 0.0
    assert 0.0 <= s.pushdown_fraction <= 1.0


def test_disabled_log_records_nothing():
    log = PushdownAuditLog(Sim(), enabled=False)
    assert log.record("obj", (0, "a"), "fused", "adaptive", _decision()) is None
    assert log.records == []


def test_record_emits_trace_instant_when_tracer_installed():
    sim = Sim()
    sim.tracer = Tracer(sim)
    log = PushdownAuditLog(sim)
    log.record("obj", (0, "a"), "fused", "adaptive", _decision())
    (instant,) = sim.tracer.instants
    assert instant[1] == "pushdown.decision"
    assert instant[4]["decision"] == "pushdown"


def test_fusion_store_audits_every_projected_chunk():
    """One audit record per (row group, projected column) evaluation,
    with the actual bytes of both branches filled in ex post."""
    table = make_small_table(num_rows=1000, seed=3)
    data = write_table(table, row_group_rows=250)
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=9))
    store = FusionStore(
        cluster,
        StoreConfig(size_scale=100.0, storage_overhead_threshold=0.1, block_size=2_000_000),
    )
    store.put("tbl", data)
    store.query("SELECT id, price FROM tbl WHERE qty < 10")
    records = store.audit.for_object("tbl")
    # 4 row groups x 2 projected columns (id=0, price=2), each chunk
    # decided exactly once.
    assert len(records) == 8
    assert {r.chunk_key for r in records} == {
        (rg, col) for rg in range(4) for col in (0, 2)
    }
    assert all(r.mode == "adaptive" for r in records)
    s = store.audit.summary()
    assert s.judged == s.total == 8
    # Both branches' actual bytes observed for every record.
    assert all(r.ex_post_optimal is not None for r in records)


def test_store_knob_disables_audit():
    table = make_small_table(num_rows=500, seed=3)
    data = write_table(table, row_group_rows=250)
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=9))
    store = FusionStore(
        cluster,
        StoreConfig(
            size_scale=100.0,
            storage_overhead_threshold=0.1,
            block_size=2_000_000,
            pushdown_audit_enabled=False,
        ),
    )
    store.put("tbl", data)
    store.query("SELECT id FROM tbl WHERE qty < 10")
    assert store.audit.records == []
