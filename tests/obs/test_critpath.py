"""Critical-path analyzer semantics: exact tiling of a root's duration,
category attribution, per-node queue-wait split, overlap handling, and
the slowest-roots tail selector."""

import pytest

from repro.cluster.simcore import Simulator
from repro.obs.critpath import (
    CATEGORIES,
    CriticalPathAnalyzer,
    slowest_roots,
)
from repro.obs.tracer import Tracer


def _sim():
    sim = Simulator()
    sim.tracer = Tracer(sim)
    return sim, sim.tracer


def _span(tracer, sim, name, delay, **args):
    """Run one traced leaf span of ``delay`` simulated seconds."""
    span = tracer.begin(name, **args)
    yield sim.timeout(delay)
    tracer.finish(span)


def test_sequential_children_tile_the_root_exactly():
    sim, tracer = _sim()

    def work():
        root = tracer.begin("query")
        yield from _span(tracer, sim, "queue.wait", 1.0, node=3)
        yield from _span(tracer, sim, "disk.read", 2.0, node=3)
        yield sim.timeout(0.5)  # coordinator's own time
        yield from _span(tracer, sim, "cpu.compute", 1.5)
        tracer.finish(root)

    sim.process(work())
    sim.run()
    (root,) = tracer.find("query")
    analyzer = CriticalPathAnalyzer(tracer)
    segments = analyzer.critical_path(root)
    # Segments are in time order and tile [start, end] with no gaps.
    assert segments[0].start == root.start
    assert segments[-1].end == root.end
    for a, b in zip(segments, segments[1:]):
        assert a.end == b.start
    assert sum(s.duration for s in segments) == pytest.approx(root.duration)

    attr = analyzer.attribute(root)
    assert attr["duration"] == pytest.approx(5.0)
    assert attr["by_category"]["queue_wait"] == pytest.approx(1.0)
    assert attr["by_category"]["disk"] == pytest.approx(2.0)
    assert attr["by_category"]["coord"] == pytest.approx(0.5)
    assert attr["by_category"]["cpu"] == pytest.approx(1.5)
    assert attr["queue_wait_by_node"] == {"3": pytest.approx(1.0)}
    assert set(attr["by_category"]) == set(CATEGORIES)


def test_overlapping_children_attribute_only_the_covering_tail():
    # Two children overlap; the backward walk follows whichever was
    # still running, so only the late child's un-overlapped tail plus
    # the full window of the early child appear on the path.
    sim, tracer = _sim()

    def late_child():
        yield from _span(tracer, sim, "net.transfer", 3.0)

    def work():
        root = tracer.begin("query")
        proc = sim.process(late_child())
        yield from _span(tracer, sim, "disk.read", 2.0)
        yield proc
        tracer.finish(root)

    sim.process(work())
    sim.run()
    (root,) = tracer.find("query")
    attr = CriticalPathAnalyzer(tracer).attribute(root)
    # Path: net.transfer covers [0, 3]; disk.read never on the path
    # (it ran shadowed by the longer transfer).
    assert attr["by_category"]["network"] == pytest.approx(3.0)
    assert attr["by_category"]["disk"] == pytest.approx(0.0)
    assert attr["duration"] == pytest.approx(3.0)


def test_nested_spans_credit_the_deepest_cover():
    # queue.wait nested inside cpu.compute (exactly how Node.compute
    # traces contention): the waited stretch must land on queue_wait,
    # only the serviced remainder on cpu.
    sim, tracer = _sim()

    def work():
        root = tracer.begin("query")
        outer = tracer.begin("cpu.compute", node=1)
        yield from _span(tracer, sim, "queue.wait", 2.0, node=1)
        yield sim.timeout(0.5)
        tracer.finish(outer)
        tracer.finish(root)

    sim.process(work())
    sim.run()
    (root,) = tracer.find("query")
    attr = CriticalPathAnalyzer(tracer).attribute(root)
    assert attr["by_category"]["queue_wait"] == pytest.approx(2.0)
    assert attr["by_category"]["cpu"] == pytest.approx(0.5)
    assert attr["queue_wait_by_node"] == {"1": pytest.approx(2.0)}


def test_open_spans_clamp_to_the_horizon():
    sim, tracer = _sim()

    def work():
        tracer.begin("query")
        yield from _span(tracer, sim, "disk.read", 1.0)
        yield sim.timeout(1.0)
        # Neither root nor this child ever finishes.
        tracer.begin("queue.wait", node=0)
        yield sim.timeout(2.0)

    sim.process(work())
    sim.run()
    (root,) = tracer.find("query")
    assert root.end is None
    attr = CriticalPathAnalyzer(tracer).attribute(root)
    assert attr["duration"] == pytest.approx(4.0)  # clamped to sim.now
    assert attr["by_category"]["disk"] == pytest.approx(1.0)
    assert attr["by_category"]["queue_wait"] == pytest.approx(2.0)
    assert attr["by_category"]["coord"] == pytest.approx(1.0)


def test_queue_wait_without_node_goes_to_unknown_bucket():
    sim, tracer = _sim()

    def work():
        root = tracer.begin("query")
        yield from _span(tracer, sim, "queue.wait", 1.0)  # no node arg
        tracer.finish(root)

    sim.process(work())
    sim.run()
    (root,) = tracer.find("query")
    attr = CriticalPathAnalyzer(tracer).attribute(root)
    assert attr["queue_wait_by_node"] == {"?": pytest.approx(1.0)}


def test_aggregate_and_report_over_a_population():
    sim, tracer = _sim()

    def one_query(wait, node):
        root = tracer.begin("query")
        yield from _span(tracer, sim, "queue.wait", wait, node=node)
        yield from _span(tracer, sim, "disk.read", 1.0, node=node)
        tracer.finish(root)

    def work():
        yield from one_query(3.0, 0)
        yield from one_query(1.0, 1)

    sim.process(work())
    sim.run()
    analyzer = CriticalPathAnalyzer(tracer)
    agg = analyzer.aggregate(tracer.find("query"))
    assert agg["queries"] == 2
    assert agg["total_seconds"] == pytest.approx(6.0)
    assert agg["by_category"]["queue_wait"] == pytest.approx(4.0)
    assert agg["fraction"]["queue_wait"] == pytest.approx(4.0 / 6.0)
    assert agg["queue_wait_by_node"] == {
        "0": pytest.approx(3.0), "1": pytest.approx(1.0)
    }
    text = analyzer.report(tracer.find("query"))
    assert "2 queries" in text
    assert "queue_wait" in text
    assert "node 0" in text


def test_aggregate_of_nothing_is_zeroes():
    sim, tracer = _sim()
    sim.run()
    agg = CriticalPathAnalyzer(tracer).aggregate([])
    assert agg["queries"] == 0
    assert agg["total_seconds"] == 0.0
    assert all(v == 0.0 for v in agg["fraction"].values())


def test_slowest_roots_selects_the_tail():
    sim, tracer = _sim()

    def work():
        for i in range(10):
            root = tracer.begin("query")
            yield sim.timeout(0.1 * (i + 1))
            tracer.finish(root)
        tracer.begin("query")  # still open: excluded
        yield sim.timeout(5.0)

    sim.process(work())
    sim.run()
    (slowest,) = slowest_roots(tracer, "query", fraction=0.01)
    assert slowest.duration == pytest.approx(1.0)
    top3 = slowest_roots(tracer, "query", fraction=0.3)
    assert [s.duration for s in top3] == [
        pytest.approx(1.0), pytest.approx(0.9), pytest.approx(0.8)
    ]
    assert slowest_roots(tracer, "no_such_span") == []
