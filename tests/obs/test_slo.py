"""SLO engine semantics: burn-rate math per objective kind, multi-window
gating, rising-edge alert lifecycle, and the alert side channels
(counter, tracer instant, subscription hook, export)."""

import pytest

from repro.cluster import Cluster, ClusterConfig, Simulator
from repro.core import StoreConfig
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_BURN_THRESHOLD,
    Alert,
    SLObjective,
    SLOEngine,
    default_objectives,
)
from repro.obs.timeseries import Scraper
from repro.obs.tracer import Tracer
from repro.obs.validate import validate_alerts


def _rig(objectives, interval=1.0, num_nodes=2):
    sim = Simulator()
    sim.tracer = Tracer(sim)
    cluster = Cluster(sim, ClusterConfig(num_nodes=num_nodes))
    cluster.metrics.registry = MetricsRegistry()
    scraper = Scraper(cluster, interval)
    scraper.install()
    engine = SLOEngine(
        scraper, objectives, registry=cluster.metrics.registry, tracer=sim.tracer
    )
    return sim, cluster, scraper, engine


def _run_plan(sim, cluster, plan):
    """plan: list of (good requests, bad requests) per simulated second."""

    def work():
        for good, bad in plan:
            for _ in range(good):
                cluster.metrics.queries.append(object())
            cluster.metrics.requests_shed += bad
            yield sim.timeout(1.0)

    sim.process(work())
    sim.run()


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        SLObjective(name="x", kind="latency_p50")


def test_availability_burn_rate_math():
    obj = SLObjective(name="avail", kind="availability", target=0.99)
    sim, cluster, scraper, engine = _rig([obj])
    # Sheds equal to 20% of completions at a 1% budget: burn 20, well
    # past the default page threshold of 10.
    _run_plan(sim, cluster, [(10, 2)] * 4)
    assert engine.burn_rate(obj, 4.0, 4.0) == pytest.approx(20.0)
    assert engine.burn_rate(obj, 1.0, 1.0) == pytest.approx(20.0)
    (alert,) = engine.alerts
    assert alert.slo == "avail"
    assert engine.firing == ["avail"]


def test_alert_needs_both_windows_burning():
    # One bad burst inside an otherwise-clean run: the short window burns
    # immediately, but the 4-interval long window stays under threshold,
    # so nothing pages.
    obj = SLObjective(name="avail", kind="availability", target=0.9)
    sim, cluster, scraper, engine = _rig([obj])
    _run_plan(sim, cluster, [(10, 0), (10, 0), (10, 0), (10, 3)])
    assert engine.burn_rate(obj, 1.0, 4.0) == pytest.approx(3.0)
    assert engine.burn_rate(obj, 4.0, 4.0) < 1.0
    assert engine.alerts == []
    assert engine.firing == []


def test_alert_rising_edge_and_resolution():
    obj = SLObjective(
        name="hot", kind="gauge_above", threshold=0.5,
        series="repro_node_disk_slow_factor", labels={"node": "0"},
    )
    sim, cluster, scraper, engine = _rig([obj])

    def work():
        cluster.nodes[0].disk.slow_factor = 2.0
        yield sim.timeout(6.0)
        cluster.nodes[0].disk.slow_factor = 0.0
        yield sim.timeout(6.0)

    sim.process(work())
    sim.run()
    # Exactly one alert despite six consecutive burning samples; resolved
    # once the long window fully drains of hot samples.
    (alert,) = engine.alerts
    assert alert.time == 1.0
    assert alert.severity == "page"
    assert alert.resolved_time is not None
    assert engine.firing == []
    # Side channels: counter, instants, both edges.
    counter = cluster.metrics.registry.counter(
        "repro_alerts_total", "SLO burn-rate alerts fired",
        slo="hot", severity="page",
    )
    assert counter.value == 1
    names = [name for _t, name, _c, _p, _a in sim.tracer.instants]
    assert names.count("slo.alert") == 1
    assert names.count("slo.resolve") == 1


def test_latency_p99_burn_from_histogram():
    obj = SLObjective(
        name="p99", kind="latency_p99", target=0.9, threshold=1.0,
        series="lat_seconds",
    )
    sim, cluster, scraper, engine = _rig([obj])
    hist = cluster.metrics.registry.histogram(
        "lat_seconds", "latency", buckets=(0.1, 1.0, 10.0)
    )

    def work():
        for _ in range(4):
            hist.observe(5.0)  # every observation blows the threshold
            yield sim.timeout(1.0)

    sim.process(work())
    sim.run()
    # 100% above threshold at a 10% budget: burn 10.
    assert engine.burn_rate(obj, 4.0, 4.0) == pytest.approx(10.0)
    (alert,) = engine.alerts
    assert alert.burn_short == pytest.approx(10.0)


def test_window_overrides_and_custom_burn_threshold():
    obj = SLObjective(
        name="slow-burn", kind="availability", target=0.99,
        short_window_s=2.0, long_window_s=8.0, burn_threshold=2.0,
    )
    sim, cluster, scraper, engine = _rig([obj])
    assert engine._windows(obj) == (2.0, 8.0)
    # Long window can never undercut the short one.
    tight = SLObjective(
        name="tight", kind="availability", short_window_s=5.0, long_window_s=1.0
    )
    assert engine._windows(tight) == (5.0, 5.0)
    # 2% bad at 1% budget = burn 2: fires at the custom threshold where
    # the default (10) would stay quiet.
    _run_plan(sim, cluster, [(98, 2)] * 8)
    assert any(a.slo == "slow-burn" for a in engine.alerts)


def test_subscribe_hook_sees_each_firing():
    obj = SLObjective(
        name="hot", kind="gauge_above", threshold=0.5,
        series="repro_node_disk_slow_factor", labels={"node": "0"},
    )
    sim, cluster, scraper, engine = _rig([obj])
    seen: list[Alert] = []
    engine.subscribe(seen.append)

    def work():
        cluster.nodes[0].disk.slow_factor = 2.0
        yield sim.timeout(3.0)

    sim.process(work())
    sim.run()
    assert [a.slo for a in seen] == ["hot"]
    assert seen[0] is engine.alerts[0]


def test_default_objectives_track_the_deadline():
    objs = {o.name: o for o in default_objectives(StoreConfig())}
    assert set(objs) == {"availability", "latency_p99", "repair_freshness"}
    assert objs["latency_p99"].threshold == 1.0  # no deadline set
    assert objs["repair_freshness"].severity == "ticket"
    with_deadline = {
        o.name: o
        for o in default_objectives(StoreConfig(default_deadline_s=0.25))
    }
    assert with_deadline["latency_p99"].threshold == 0.25
    for obj in objs.values():
        assert DEFAULT_BURN_THRESHOLD[obj.kind] > 0


def test_export_shape_validates():
    obj = SLObjective(
        name="hot", kind="gauge_above", threshold=0.5,
        series="repro_node_disk_slow_factor", labels={"node": "0"},
    )
    sim, cluster, scraper, engine = _rig([obj])

    def work():
        cluster.nodes[0].disk.slow_factor = 2.0
        yield sim.timeout(3.0)

    sim.process(work())
    sim.run()
    doc = engine.to_dict()
    assert validate_alerts(doc) == []
    assert doc["firing"] == ["hot"]
    (exported,) = doc["alerts"]
    assert exported["resolved_time"] is None
    assert "burn" in exported["message"]
