"""Metrics registry: counters/gauges/histograms, the ClusterMetrics feed,
and the Prometheus/JSON exports."""

import math

import pytest

from repro.cluster.metrics import ClusterMetrics, QueryMetrics
from repro.obs.registry import (
    BYTES_BUCKETS,
    Histogram,
    MetricsRegistry,
    export_merged,
    log_buckets,
)
from repro.obs.validate import validate_prometheus_text


def test_counter_monotone_and_labelled():
    reg = MetricsRegistry()
    c = reg.counter("repro_things_total", "things", kind="a")
    c.inc()
    c.inc(2)
    assert c.value == 3
    with pytest.raises(ValueError):
        c.inc(-1)
    # Same name+labels returns the same instance; new labels a new one.
    assert reg.counter("repro_things_total", kind="a") is c
    assert reg.counter("repro_things_total", kind="b") is not c


def test_name_and_type_collisions_rejected():
    reg = MetricsRegistry()
    reg.counter("repro_x_total")
    with pytest.raises(ValueError):
        reg.gauge("repro_x_total")
    with pytest.raises(ValueError):
        reg.counter("bad name")
    with pytest.raises(ValueError):
        reg.counter("repro_y_total", **{"0bad": "v"})


def test_log_buckets_geometric():
    bounds = log_buckets(1.0, 16.0)
    assert bounds == [1.0, 2.0, 4.0, 8.0, 16.0]
    with pytest.raises(ValueError):
        log_buckets(0.0, 10.0)


def test_histogram_quantiles_nearest_rank():
    h = Histogram({}, bounds=[1.0, 2.0, 4.0, 8.0])
    for v in [0.5, 1.5, 1.6, 3.0, 7.0, 20.0]:
        h.observe(v)
    assert h.count == 6
    assert h.sum == pytest.approx(33.6)
    # Ranks: p50 -> 3rd of 6 -> the le=2.0 bucket's bound.
    assert h.p50() == 2.0
    # p99 -> 6th of 6 -> overflow bucket, reported at the tracked max.
    assert h.p99() == 20.0
    assert h.quantile(0.0) == 1.0  # rank clamps to 1


def test_histogram_empty_quantile_zero():
    assert Histogram({}).p99() == 0.0


def _qm(latency=0.2, network=1000):
    qm = QueryMetrics()
    qm.start_time = 0.0
    qm.end_time = latency
    qm.network_bytes = network
    qm.pushed_down_chunks = 3
    qm.fallback_chunks = 1
    qm.rpcs_issued = 7
    qm.retries = 1
    qm.hedges = 2
    qm.add("network", 0.1)
    return qm


def test_record_query_feeds_named_metrics():
    reg = MetricsRegistry()
    reg.record_query(_qm())
    reg.record_query(_qm(latency=0.4))
    d = reg.to_dict()
    assert d["repro_queries_total"]["samples"][0]["value"] == 2
    lat = d["repro_query_latency_seconds"]["samples"][0]
    assert lat["count"] == 2
    assert lat["sum"] == pytest.approx(0.6)
    decisions = {
        s["labels"]["decision"]: s["value"]
        for s in d["repro_pushdown_chunks_total"]["samples"]
    }
    assert decisions == {"pushdown": 6, "fallback": 2}
    assert d["repro_hedged_reads_total"]["samples"][0]["value"] == 4


def test_cluster_metrics_duck_types_into_registry():
    cm = ClusterMetrics()
    reg = MetricsRegistry()
    cm.registry = reg
    cm.record_query(_qm())
    cm.record_repair(5000, 3, 1.5)
    d = reg.to_dict()
    assert d["repro_queries_total"]["samples"][0]["value"] == 1
    assert d["repro_repair_bytes_total"]["samples"][0]["value"] == 5000
    assert d["repro_repair_blocks_total"]["samples"][0]["value"] == 3


def test_prometheus_export_valid_and_has_inf_bucket():
    reg = MetricsRegistry(const_labels={"system": "fusion"})
    reg.record_query(_qm())
    text = reg.export()
    assert validate_prometheus_text(text) == []
    assert 'le="+Inf"' in text
    assert 'system="fusion"' in text


def test_export_merged_keeps_systems_distinct():
    a = MetricsRegistry(const_labels={"system": "fusion"})
    b = MetricsRegistry(const_labels={"system": "baseline"})
    a.record_query(_qm())
    b.record_query(_qm())
    b.record_query(_qm())
    text = export_merged([a, b])
    assert validate_prometheus_text(text) == []
    assert 'repro_queries_total{system="fusion"} 1' in text
    assert 'repro_queries_total{system="baseline"} 2' in text
    # One HELP/TYPE header per family, not per registry.
    assert text.count("# TYPE repro_queries_total") == 1


def test_bytes_buckets_cover_terabytes():
    assert BYTES_BUCKETS[0] == 64.0
    assert BYTES_BUCKETS[-1] >= 4e12
    assert all(not math.isinf(b) for b in BYTES_BUCKETS)


def test_label_values_escaped_in_export():
    reg = MetricsRegistry()
    reg.counter(
        "repro_weird_total", "odd labels", tenant='te"na\\nt\nwith newline'
    ).inc()
    text = reg.export()
    assert validate_prometheus_text(text) == []
    # Quote, backslash and (crucially) the literal newline are escaped —
    # an unescaped newline would split the sample line in two.
    assert 'tenant="te\\"na\\\\nt\\nwith newline"' in text
    # An unescaped newline would have split the sample across two lines.
    assert not any(line.startswith("with newline") for line in text.splitlines())


def test_tenant_labelled_families_share_one_header():
    reg = MetricsRegistry()
    for tenant in ("a", "b", "c"):
        qm = _qm()
        qm.tenant = tenant
        reg.record_query(qm)
    text = reg.export()
    assert validate_prometheus_text(text) == []
    # Three tenant label sets, exactly one HELP/TYPE header per family.
    assert text.count("# TYPE repro_tenant_queries_total") == 1
    assert text.count("# HELP repro_tenant_queries_total") == 1
    assert text.count("# TYPE repro_tenant_query_latency_seconds") == 1
    for tenant in ("a", "b", "c"):
        assert f'repro_tenant_queries_total{{tenant="{tenant}"}} 1' in text


def test_tenant_families_merge_across_registries_with_one_header():
    a = MetricsRegistry(const_labels={"system": "fusion"})
    b = MetricsRegistry(const_labels={"system": "baseline"})
    for reg, tenants in ((a, ("x", "y")), (b, ("x",))):
        for tenant in tenants:
            qm = _qm()
            qm.tenant = tenant
            reg.record_query(qm)
    text = export_merged([a, b])
    assert validate_prometheus_text(text) == []
    assert text.count("# TYPE repro_tenant_queries_total") == 1
    assert 'repro_tenant_queries_total{system="fusion",tenant="x"} 1' in text
    assert 'repro_tenant_queries_total{system="baseline",tenant="x"} 1' in text


def test_newline_in_help_text_escaped():
    reg = MetricsRegistry()
    reg.counter("repro_multiline_total", "line one\nline two").inc()
    text = reg.export()
    assert validate_prometheus_text(text) == []
    assert "# HELP repro_multiline_total line one\\nline two" in text


def test_empty_registry_exports_cleanly():
    # A registry that never saw an instrument: valid (empty) Prometheus
    # text, an empty JSON dump, and a clean merged export.
    reg = MetricsRegistry()
    text = reg.export()
    assert validate_prometheus_text(text) == []
    assert reg.to_dict() == {}
    merged = export_merged([reg, MetricsRegistry()])
    assert validate_prometheus_text(merged) == []
    assert export_merged([]) is not None


def test_zero_observation_histogram_exports_cleanly():
    reg = MetricsRegistry()
    reg.histogram("repro_idle_seconds", "never observed")
    text = reg.export()
    assert validate_prometheus_text(text) == []
    sample = reg.to_dict()["repro_idle_seconds"]["samples"][0]
    assert sample["count"] == 0
    assert sample["p99"] == 0.0
    assert sample["max"] == 0.0
    assert "exemplars" not in sample


def test_exemplars_capture_largest_trace_per_bucket():
    h = Histogram({}, bounds=[1.0, 10.0])
    h.observe(0.5, trace_id=11)
    h.observe(0.7, trace_id=12)  # larger value wins the bucket
    h.observe(5.0)  # no trace id: never an exemplar
    h.observe(50.0, trace_id=13)
    assert h.exemplars[0] == (0.7, 12)
    assert h.exemplars[2] == (50.0, 13)
    assert 1 not in h.exemplars
    # p99 rank lands in the overflow bucket; its exemplar comes back.
    assert h.exemplar_for_quantile(0.99) == (50.0, 13)
    # A quantile whose bucket holds no exemplar falls to the nearest
    # exemplared bucket (here: the le=10 bucket is bare, overflow wins).
    assert h.exemplar_for_quantile(0.6) == (50.0, 13)


def test_exemplar_for_quantile_without_exemplars_is_none():
    h = Histogram({}, bounds=[1.0])
    assert h.exemplar_for_quantile(0.99) is None
    h.observe(0.5)
    assert h.exemplar_for_quantile(0.99) is None


def test_record_query_exemplars_follow_the_registry_knob():
    off = MetricsRegistry()
    qm = _qm()
    qm.trace_id = 77
    off.record_query(qm)
    hist_off = off.histogram("repro_query_latency_seconds", "")
    assert hist_off.exemplars == {}

    on = MetricsRegistry(exemplars_enabled=True)
    qm2 = _qm()
    qm2.tenant = "t1"
    qm2.trace_id = 78
    on.record_query(qm2)
    hist_on = on.histogram("repro_query_latency_seconds", "")
    assert hist_on.exemplar_for_quantile(0.99) == (pytest.approx(0.2), 78)
    # The tenant-labelled latency family carries the exemplar too, and
    # the JSON export surfaces it.
    sample = on.to_dict()["repro_query_latency_seconds"]["samples"][0]
    assert any(e["trace_id"] == 78 for e in sample["exemplars"].values())
