"""Overload protection must be event-free until it acts: a fault-free
workload run with every protection knob armed (deadlines far away,
admission queues far deeper than any backlog, breakers with huge
thresholds, jitter enabled but never drawn) must produce an event stream
bit-identical to the default-knob run.  Jitter, when it *does* act, must
be deterministic per seed."""

import pytest

from repro.cluster import Cluster, ClusterConfig, QueryMetrics, Simulator
from repro.cluster.faults import FaultEvent, FaultInjector
from repro.core import BaselineStore, FusionStore, StoreConfig
from repro.format import write_table
from tests.conftest import make_small_table

QUERIES = [
    "SELECT id, price FROM tbl WHERE qty < 5",
    "SELECT price FROM tbl WHERE price < 5.0",
    "SELECT count(*), avg(price) FROM tbl WHERE flag = true",
    "SELECT tag, sum(qty) FROM tbl WHERE id < 800 GROUP BY tag",
]
NUM_CLIENTS = 4
NUM_QUERIES = 12


def _store_config(protection_on: bool) -> StoreConfig:
    base = dict(
        size_scale=50.0,
        storage_overhead_threshold=0.1,
        block_size=500_000,
    )
    if protection_on:
        # Armed but inert: nothing here can fire on a fault-free run.
        base.update(
            default_deadline_s=1e6,
            admission_queue_depth=10_000,
            admission_policy="reject",
            breaker_failure_threshold=1000,
            allow_partial_results=True,
            rpc_retry_jitter=0.5,
        )
    return StoreConfig(**base)


def _run(store_cls, protection_on: bool):
    """One concurrent workload; returns the full scheduled-event stream
    (time, seq) plus per-query metrics fingerprints and results."""
    table = make_small_table(num_rows=2500, seed=77)
    data = write_table(table, row_group_rows=500)
    sim = Simulator()

    stream: list[tuple[float, int]] = []
    orig_schedule = sim._schedule

    def recording_schedule(at, callback, arg):
        stream.append((at, sim._seq))
        orig_schedule(at, callback, arg)

    sim._schedule = recording_schedule

    cluster = Cluster(sim, ClusterConfig(num_nodes=12))
    store = store_cls(cluster, _store_config(protection_on))
    store.put("tbl", data)

    metrics_out: list[QueryMetrics] = []
    results_out = []
    per_client = [NUM_QUERIES // NUM_CLIENTS] * NUM_CLIENTS
    for i in range(NUM_QUERIES % NUM_CLIENTS):
        per_client[i] += 1

    def client(cid: int, count: int):
        for qi in range(count):
            sql = QUERIES[(cid + qi * NUM_CLIENTS) % len(QUERIES)]
            qm = QueryMetrics()
            result = yield from store.query_process(sql, qm)
            metrics_out.append(qm)
            results_out.append(result)

    for cid, count in enumerate(per_client):
        if count:
            sim.process(client(cid, count))
    sim.run()

    fingerprint = [
        (qm.start_time, qm.end_time, qm.network_bytes, qm.rpcs_issued, qm.hedges)
        for qm in metrics_out
    ]
    return stream, fingerprint, results_out, store, sim


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
def test_armed_protection_does_not_perturb_a_fault_free_run(store_cls):
    stream_off, fp_off, results_off, store_off, _ = _run(store_cls, False)
    stream_on, fp_on, results_on, store_on, sim_on = _run(store_cls, True)

    assert stream_on == stream_off  # every scheduled event at the same time
    assert fp_on == fp_off
    assert all(a.equals(b) for a, b in zip(results_on, results_off))

    # The armed run really installed the machinery; none of it fired.
    assert store_on.cluster.breakers is not None
    assert store_on.cluster.breakers.open_count() == 0
    assert store_off.cluster.breakers is None
    for node in store_on.cluster.nodes:
        assert node.cpu.max_queue == 10_000
        assert node.cpu.rejected_total == 0
    cm = store_on.cluster.metrics
    assert cm.deadline_exceeded == 0
    assert cm.requests_shed == 0
    assert cm.requests_rejected == 0
    assert cm.partial_results == 0


def test_default_config_keeps_protection_off():
    config = StoreConfig()
    assert config.default_deadline_s == 0.0
    assert config.admission_queue_depth == 0
    assert config.admission_policy == "reject"
    assert config.breaker_failure_threshold == 0
    assert config.allow_partial_results is False
    assert config.rpc_retry_jitter == 0.0


# ---------------------------------------------------------------------------
# Jitter: inert without retries, deterministic per seed, active under loss
# ---------------------------------------------------------------------------


def _run_with_drop_window(jitter: float, placement_seed: int = 17):
    """A workload whose RPCs to one node are dropped for a window, forcing
    the retry/backoff path.  Returns (event stream, total retries)."""
    table = make_small_table(num_rows=2500, seed=77)
    data = write_table(table, row_group_rows=500)
    sim = Simulator()

    stream: list[tuple[float, int]] = []
    orig_schedule = sim._schedule

    def recording_schedule(at, callback, arg):
        stream.append((at, sim._seq))
        orig_schedule(at, callback, arg)

    sim._schedule = recording_schedule

    cluster = Cluster(sim, ClusterConfig(num_nodes=12, placement_seed=placement_seed))
    store = FusionStore(
        cluster,
        StoreConfig(
            size_scale=50.0,
            storage_overhead_threshold=0.1,
            block_size=500_000,
            rpc_retry_jitter=jitter,
        ),
    )
    store.put("tbl", data)

    FaultInjector(
        cluster,
        [FaultEvent(at=0.0, kind="drop", node_id=3, duration=10.0, rate=1.0)],
        seed=5,
    ).install()

    metrics_out: list[QueryMetrics] = []

    def client():
        for qi in range(6):
            qm = QueryMetrics()
            yield from store.query_process(QUERIES[qi % len(QUERIES)], qm)
            metrics_out.append(qm)

    sim.process(client())
    sim.run()
    return stream, sum(qm.retries for qm in metrics_out)


def test_jitter_is_deterministic_and_changes_backoff_under_retries():
    stream_plain, retries_plain = _run_with_drop_window(jitter=0.0)
    assert retries_plain > 0  # the drop window really forced retries

    stream_j1, retries_j1 = _run_with_drop_window(jitter=0.5)
    stream_j2, retries_j2 = _run_with_drop_window(jitter=0.5)
    # Seeded: the jittered run is exactly reproducible.
    assert stream_j1 == stream_j2
    assert retries_j1 == retries_j2 > 0
    # And it genuinely perturbs backoff sleeps relative to no jitter.
    assert stream_j1 != stream_plain
