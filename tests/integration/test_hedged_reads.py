"""Hedged reads: when a remote op has not resolved ``hedge_after_s``
seconds after it was issued, the op's degraded-read fallback launches in
parallel and whichever path finishes first supplies the value.

Off by default (``hedge_after_s = 0.0``): no hedge processes are ever
scheduled, keeping fault-free runs event-identical to the seed."""

import pytest

from repro.cluster import Cluster, ClusterConfig, QueryMetrics, Simulator
from repro.core import FusionStore, StoreConfig
from repro.format import write_table
from repro.sql import execute_local
from tests.conftest import make_small_table

SQL = "SELECT id, price FROM tbl WHERE qty < 5"


def _run(hedge_after_s: float, slow_factor: float = 200.0, batched: bool = False):
    """One query against a cluster whose first data-holding node is slow."""
    table = make_small_table(num_rows=2500, seed=77)
    data = write_table(table, row_group_rows=500)
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=12))
    store = FusionStore(
        cluster,
        StoreConfig(
            size_scale=50.0,
            storage_overhead_threshold=0.1,
            block_size=500_000,
            enable_rpc_batching=batched,
            hedge_after_s=hedge_after_s,
            op_timeout_s=5.0,  # huge: only hedging can sidestep the slow node
        ),
    )
    store.put("tbl", data)
    victim = next(n for n in cluster.nodes if n.stored_bytes)
    victim.disk.slow_factor = slow_factor
    victim.endpoint.slow_factor = slow_factor
    qm = QueryMetrics()
    proc = sim.process(store.query_process(SQL, qm))
    sim.run()
    expected = execute_local(SQL, table)
    return proc.value, qm, cluster, expected


def test_hedge_fires_against_slow_node_and_result_is_correct():
    result, qm, cluster, expected = _run(hedge_after_s=0.01)
    assert qm.hedges > 0
    # Every hedge launched the degraded fallback; the race winner
    # supplied correct bytes either way.
    assert qm.degraded_reads >= qm.hedges
    assert result.equals(expected)
    # Cluster totals aggregate the per-query hedge count.
    assert cluster.metrics.hedges == qm.hedges


def test_hedging_disabled_by_default():
    result, qm, _cluster, expected = _run(hedge_after_s=0.0)
    assert qm.hedges == 0
    assert qm.degraded_reads == 0
    assert result.equals(expected)


def test_hedge_not_launched_when_primary_is_fast():
    # Healthy cluster: every op resolves long before the hedge delay.
    result, qm, _cluster, expected = _run(hedge_after_s=10.0, slow_factor=1.0)
    assert qm.hedges == 0
    assert result.equals(expected)


def test_hedging_works_in_batched_mode():
    result, qm, _cluster, expected = _run(hedge_after_s=0.01, batched=True)
    assert qm.hedges > 0
    assert result.equals(expected)


@pytest.mark.parametrize("batched", [False, True])
def test_hedged_run_is_deterministic(batched):
    result_a, qm_a, _ca, _e = _run(hedge_after_s=0.01, batched=batched)
    result_b, qm_b, _cb, _e = _run(hedge_after_s=0.01, batched=batched)
    assert result_a.equals(result_b)
    assert qm_a.hedges == qm_b.hedges
    assert (qm_a.start_time, qm_a.end_time) == (qm_b.start_time, qm_b.end_time)
    assert qm_a.network_bytes == qm_b.network_bytes
