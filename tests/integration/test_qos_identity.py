"""The QoS layer must be event-free until it acts: a fault-free workload
run with QoS armed but inert — fair queues installed, generous weights,
quotas far above the offered load — and **no tenant on any request**
must produce an event stream bit-identical to the pre-QoS default run.
Tenanted runs must be deterministic, and the default config keeps every
QoS knob off."""

import pytest

from repro.cluster import Cluster, ClusterConfig, QueryMetrics, Simulator
from repro.core import BaselineStore, FusionStore, StoreConfig
from repro.format import write_table
from tests.conftest import make_small_table

QUERIES = [
    "SELECT id, price FROM tbl WHERE qty < 5",
    "SELECT price FROM tbl WHERE price < 5.0",
    "SELECT count(*), avg(price) FROM tbl WHERE flag = true",
    "SELECT tag, sum(qty) FROM tbl WHERE id < 800 GROUP BY tag",
]
NUM_CLIENTS = 4
NUM_QUERIES = 12


def _store_config(qos_on: bool) -> StoreConfig:
    base = dict(
        size_scale=50.0,
        storage_overhead_threshold=0.1,
        block_size=500_000,
    )
    if qos_on:
        # Armed but inert: fair queues installed on every service loop,
        # quotas far above anything the workload offers.  Untenanted
        # requests must still take the legacy code path untouched.
        base.update(
            qos_enabled=True,
            tenant_weights={"a": 2.0, "b": 1.0},
            tenant_requests_per_s={"a": 1e9},
            tenant_bytes_per_s={"a": 1e15},
            tenant_queue_depth=10_000,
        )
    return StoreConfig(**base)


def _run(store_cls, qos_on: bool, tenant: str | None = None):
    """One concurrent workload; returns the full scheduled-event stream
    (time, seq) plus per-query metrics fingerprints and results."""
    table = make_small_table(num_rows=2500, seed=77)
    data = write_table(table, row_group_rows=500)
    sim = Simulator()

    stream: list[tuple[float, int]] = []
    orig_schedule = sim._schedule

    def recording_schedule(at, callback, arg):
        stream.append((at, sim._seq))
        orig_schedule(at, callback, arg)

    sim._schedule = recording_schedule

    cluster = Cluster(sim, ClusterConfig(num_nodes=12))
    store = store_cls(cluster, _store_config(qos_on))
    store.put("tbl", data)

    metrics_out: list[QueryMetrics] = []
    results_out = []
    per_client = [NUM_QUERIES // NUM_CLIENTS] * NUM_CLIENTS
    for i in range(NUM_QUERIES % NUM_CLIENTS):
        per_client[i] += 1

    def client(cid: int, count: int):
        for qi in range(count):
            sql = QUERIES[(cid + qi * NUM_CLIENTS) % len(QUERIES)]
            qm = QueryMetrics()
            result = yield from store.query_process(sql, qm, tenant=tenant)
            metrics_out.append(qm)
            results_out.append(result)

    for cid, count in enumerate(per_client):
        if count:
            sim.process(client(cid, count))
    sim.run()

    fingerprint = [
        (qm.start_time, qm.end_time, qm.network_bytes, qm.rpcs_issued, qm.hedges)
        for qm in metrics_out
    ]
    return stream, fingerprint, results_out, store, sim


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
def test_armed_qos_does_not_perturb_an_untenanted_run(store_cls):
    stream_off, fp_off, results_off, store_off, _ = _run(store_cls, False)
    stream_on, fp_on, results_on, store_on, _ = _run(store_cls, True)

    assert stream_on == stream_off  # every scheduled event at the same time
    assert fp_on == fp_off
    assert all(a.equals(b) for a, b in zip(results_on, results_off))

    # The armed run really installed the machinery; none of it fired.
    assert store_on.cluster.qos is not None
    assert store_off.cluster.qos is None
    for node in store_on.cluster.nodes:
        assert node.cpu.fair is not None
        assert node.cpu.fair.total == 0
        assert node.disk.device.fair is not None
    cm = store_on.cluster.metrics
    assert cm.quota_exceeded == 0
    assert cm.quota_demotions == 0
    assert cm.tenants == {}


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
def test_tenanted_run_is_deterministic_and_labelled(store_cls):
    stream_1, fp_1, results_1, store_1, _ = _run(store_cls, True, tenant="a")
    stream_2, fp_2, results_2, _store_2, _ = _run(store_cls, True, tenant="a")

    assert stream_1 == stream_2
    assert fp_1 == fp_2
    assert all(a.equals(b) for a, b in zip(results_1, results_2))

    cm = store_1.cluster.metrics
    assert set(cm.tenants) == {"a"}
    assert cm.tenants["a"]["queries"] == NUM_QUERIES
    assert cm.tenants["a"]["goodput"] == NUM_QUERIES
    assert store_1.cluster.qos.stats["a"]["admitted"] == NUM_QUERIES


def test_default_config_keeps_qos_off():
    config = StoreConfig()
    assert config.qos_enabled is False
    assert config.tenant_weights == {}
    assert config.tenant_requests_per_s == {}
    assert config.tenant_bytes_per_s == {}
    assert config.quota_policy == "reject"
    assert config.tenant_queue_depth == 0
