"""The example scripts must run end-to-end without error."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _run(name: str, timeout: int = 600) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = _run("quickstart.py")
    assert "Get round-trip: OK" in out
    assert "Fusion latency reduction" in out


@pytest.mark.slow
def test_analytics_queries():
    out = _run("analytics_queries.py")
    assert "matched the single-process reference executor" in out
    for q in ("Q1", "Q2", "Q3", "Q4"):
        assert q in out


def test_fault_tolerance():
    out = _run("fault_tolerance.py")
    assert "identical after three failures" in out
    assert "unrecoverable" in out


@pytest.mark.slow
def test_layout_explorer():
    out = _run("layout_explorer.py")
    assert "fac" in out
    assert "never splits" in out
