"""The observability knobs must be pure observers: a fault-free workload
scheduled with tracing + metrics + audit all on must produce an event
stream identical to the same workload with everything off."""

import pytest

from repro.cluster import Cluster, ClusterConfig, QueryMetrics, Simulator
from repro.core import BaselineStore, FusionStore, StoreConfig
from repro.format import write_table
from tests.conftest import make_small_table

QUERIES = [
    "SELECT id, price FROM tbl WHERE qty < 5",
    "SELECT price FROM tbl WHERE price < 5.0",
    "SELECT count(*), avg(price) FROM tbl WHERE flag = true",
    "SELECT tag, sum(qty) FROM tbl WHERE id < 800 GROUP BY tag",
]
NUM_CLIENTS = 4
NUM_QUERIES = 12


def _run(store_cls, obs_on: bool, telemetry_on: bool = False):
    """One concurrent workload; returns the full scheduled-event stream
    (time, seq) plus per-query metrics fingerprints and results."""
    table = make_small_table(num_rows=2500, seed=77)
    data = write_table(table, row_group_rows=500)
    sim = Simulator()

    stream: list[tuple[float, int]] = []
    orig_schedule = sim._schedule

    def recording_schedule(at, callback, arg):
        stream.append((at, sim._seq))
        orig_schedule(at, callback, arg)

    sim._schedule = recording_schedule

    cluster = Cluster(sim, ClusterConfig(num_nodes=12))
    store = store_cls(
        cluster,
        StoreConfig(
            size_scale=50.0,
            storage_overhead_threshold=0.1,
            block_size=500_000,
            tracing_enabled=obs_on,
            metrics_registry_enabled=obs_on,
            pushdown_audit_enabled=obs_on,
            # The whole workload lasts well under a simulated second, so
            # scrape on a millisecond cadence to actually collect samples.
            scrape_interval_s=0.005 if telemetry_on else 0.0,
            slo_enabled=telemetry_on,
            exemplars_enabled=telemetry_on,
        ),
    )
    store.put("tbl", data)

    metrics_out: list[QueryMetrics] = []
    results_out = []
    per_client = [NUM_QUERIES // NUM_CLIENTS] * NUM_CLIENTS
    for i in range(NUM_QUERIES % NUM_CLIENTS):
        per_client[i] += 1

    def client(cid: int, count: int):
        for qi in range(count):
            sql = QUERIES[(cid + qi * NUM_CLIENTS) % len(QUERIES)]
            qm = QueryMetrics()
            result = yield from store.query_process(sql, qm)
            metrics_out.append(qm)
            results_out.append(result)

    for cid, count in enumerate(per_client):
        if count:
            sim.process(client(cid, count))
    sim.run()

    fingerprint = [
        (qm.start_time, qm.end_time, qm.network_bytes, qm.rpcs_issued, qm.hedges)
        for qm in metrics_out
    ]
    return stream, fingerprint, results_out, store, sim


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
def test_obs_knobs_do_not_perturb_the_event_stream(store_cls):
    stream_off, fp_off, results_off, store_off, _sim = _run(store_cls, obs_on=False)
    stream_on, fp_on, results_on, store_on, sim_on = _run(store_cls, obs_on=True)

    assert stream_on == stream_off  # every scheduled event at the same time
    assert fp_on == fp_off
    assert all(a.equals(b) for a, b in zip(results_on, results_off))

    # The instrumented run actually observed things; the bare run did not.
    assert sim_on.tracer is not None and sim_on.tracer.spans
    assert store_on.cluster.metrics.registry is not None
    assert store_off.sim.tracer is None
    assert store_off.cluster.metrics.registry is None
    assert store_off.audit.records == []
    if store_cls is FusionStore:
        assert store_on.audit.records


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
def test_telemetry_knobs_do_not_perturb_the_event_stream(store_cls):
    """Scraper + SLO engine + exemplars armed on top of full observability
    must still leave the scheduled-event stream bit-identical."""
    stream_off, fp_off, results_off, _store, _sim = _run(
        store_cls, obs_on=False, telemetry_on=False
    )
    stream_on, fp_on, results_on, store_on, sim_on = _run(
        store_cls, obs_on=True, telemetry_on=True
    )

    assert stream_on == stream_off
    assert fp_on == fp_off
    assert all(a.equals(b) for a, b in zip(results_on, results_off))

    # And the telemetry plane actually observed the run.
    scraper = store_on.cluster.scraper
    assert scraper.times and scraper.times[0] == 0.005
    assert store_on.cluster.slo is not None
    hist = store_on.cluster.metrics.registry.histogram(
        "repro_query_latency_seconds", "End-to-end query latency"
    )
    assert hist.exemplar_for_quantile(0.99) is not None


def test_timeseries_export_is_byte_identical_across_runs():
    a = _run(FusionStore, obs_on=True, telemetry_on=True)
    b = _run(FusionStore, obs_on=True, telemetry_on=True)
    assert a[3].cluster.scraper.to_json() == b[3].cluster.scraper.to_json()
    import json

    from repro.obs.validate import validate_alerts, validate_timeseries

    doc = json.loads(a[3].cluster.scraper.to_json())
    assert validate_timeseries(doc) == []
    assert validate_alerts(a[3].cluster.slo.to_dict()) == []


def test_default_config_keeps_observers_off():
    config = StoreConfig()
    assert config.tracing_enabled is False
    assert config.metrics_registry_enabled is False
    assert config.hedge_after_s == 0.0
    assert config.pushdown_audit_enabled is True  # metadata-plane, zero events
    assert config.scrape_interval_s == 0.0
    assert config.slo_enabled is False
    assert config.exemplars_enabled is False
