"""End-to-end coverage for the two datasets the other integration tests
don't exercise (recipeNLG and UK property prices), plus determinism."""

import pytest

from repro.cluster import Cluster, ClusterConfig, Simulator
from repro.core import BaselineStore, FusionStore, StoreConfig
from repro.sql import execute_local
from repro.workloads import recipe_file, ukpp_file


@pytest.fixture(scope="module")
def recipe():
    return recipe_file(num_rows=1200, row_group_rows=300, seed=61)


@pytest.fixture(scope="module")
def ukpp():
    return ukpp_file(num_rows=2400, row_group_rows=600, seed=62)


def _store(kind, name, data):
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=9))
    cls = FusionStore if kind == "fusion" else BaselineStore
    store = cls(
        cluster,
        StoreConfig(size_scale=200.0, storage_overhead_threshold=0.1, block_size=1_000_000),
    )
    store.put(name, data)
    return store


RECIPE_QUERIES = [
    "SELECT title FROM recipes WHERE source = 'CookPad' LIMIT 20",
    "SELECT count(*) FROM recipes WHERE id BETWEEN 100 AND 500",
    "SELECT source, count(*) FROM recipes GROUP BY source",
    "SELECT directions FROM recipes WHERE id < 5",
]

UKPP_QUERIES = [
    "SELECT price, town FROM sales WHERE price > 1000000",
    "SELECT county, avg(price), count(*) FROM sales WHERE property_type = 'D' GROUP BY county LIMIT 10",
    "SELECT min(price), max(price) FROM sales WHERE date > '2020-01-01'",
    "SELECT postcode FROM sales WHERE old_new = 'Y' AND duration = 'L'",
]


class TestRecipeDataset:
    @pytest.mark.parametrize("sql", RECIPE_QUERIES)
    def test_both_stores_match_reference(self, recipe, sql):
        data, table = recipe
        expected = execute_local(sql, table)
        for kind in ("fusion", "baseline"):
            store = _store(kind, "recipes", data)
            result, _ = store.query(sql)
            assert result.equals(expected), (kind, sql)

    def test_text_heavy_chunks_stay_whole(self, recipe):
        data, _table = recipe
        store = _store("fusion", "recipes", data)
        obj = store.objects["recipes"]
        # Every chunk (including the huge directions chunks) on one node.
        assert len(obj.location_map) == len(obj.metadata.all_chunks())


class TestUkppDataset:
    @pytest.mark.parametrize("sql", UKPP_QUERIES)
    def test_both_stores_match_reference(self, ukpp, sql):
        data, table = ukpp
        expected = execute_local(sql, table)
        for kind in ("fusion", "baseline"):
            store = _store(kind, "sales", data)
            result, _ = store.query(sql)
            assert result.equals(expected), (kind, sql)

    def test_get_roundtrip(self, ukpp):
        data, _table = ukpp
        store = _store("fusion", "sales", data)
        assert store.get("sales") == data


class TestDeterminism:
    def test_simulation_is_reproducible(self, recipe):
        """Identical configs must give bit-identical latencies."""
        data, _table = recipe
        sql = RECIPE_QUERIES[0]
        latencies = []
        for _ in range(2):
            store = _store("fusion", "recipes", data)
            _result, metrics = store.query(sql)
            latencies.append(metrics.latency)
        assert latencies[0] == latencies[1]

    def test_generators_stable_across_calls(self):
        a, _t1 = recipe_file(num_rows=300, row_group_rows=100, seed=5)
        b, _t2 = recipe_file(num_rows=300, row_group_rows=100, seed=5)
        assert a == b
