"""Crash consistency of the rebalance migration protocol.

Kill the coordinator at each named migration crash point
(``migrate:after-copy`` — copies landed, metadata still points at the
sources; ``migrate:after-republish`` — metadata flipped, source GC
outstanding) and prove:

* fsck classifies the in-flight moves as *pending migrations*, never as
  orphan or missing blocks;
* queries stay correct mid-crash (the surviving placement serves, with
  degraded reads over the dead coordinator);
* recovery + one more rebalance run converge to ring-correct placement
  with a clean fsck and byte-identical query results.
"""

import pytest

from repro.cluster import Cluster, ClusterConfig, FaultInjector, Simulator
from repro.core import (
    MIGRATE_CRASH_POINTS,
    BaselineStore,
    CoordinatorCrash,
    FusionStore,
    Rebalancer,
    StoreConfig,
)
from repro.format import write_table
from tests.conftest import make_small_table

SQL = "SELECT id, price FROM tbl WHERE qty < 5"
DATA = write_table(make_small_table(), row_group_rows=500)


def _system(store_cls):
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=9))
    FaultInjector(cluster, [], seed=0).install()
    store = store_cls(
        cluster,
        StoreConfig(
            size_scale=100.0,
            storage_overhead_threshold=0.1,
            block_size=2_000_000,
            membership_enabled=True,
        ),
    )
    store.put("tbl", DATA)
    return store


@pytest.fixture(scope="module")
def reference():
    out = {}
    for cls in (FusionStore, BaselineStore):
        out[cls] = _system(cls).query(SQL)[0]
    return out


def _crash_mid_rebalance(store, point):
    rb = Rebalancer(store)
    store.cluster.add_node()
    store.cluster.faults.arm_crash_point(point)
    with pytest.raises(CoordinatorCrash):
        rb.rebalance()
    return rb


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
@pytest.mark.parametrize("point", MIGRATE_CRASH_POINTS)
class TestMigrationCrashPoints:
    def test_fsck_classifies_pending_not_orphan(self, store_cls, point, reference):
        store = _system(store_cls)
        _crash_mid_rebalance(store, point)
        report = store.fsck()
        assert report.pending_migrations, "in-flight moves must be visible"
        assert not report.orphan_blocks, (
            "an in-migration copy must never be reported as an orphan"
        )
        assert not report.missing_blocks
        assert not report.dangling_locations
        # The registry's published flags mirror the crash point exactly.
        flags = {
            store.cluster.migrations[bid].published
            for _name, bid in report.pending_migrations
        }
        assert flags == {point == "migrate:after-republish"}

    def test_queries_correct_mid_crash(self, store_cls, point, reference):
        store = _system(store_cls)
        _crash_mid_rebalance(store, point)
        assert store.query(SQL)[0].equals(reference[store_cls])

    def test_recover_then_rebalance_converges(self, store_cls, point, reference):
        store = _system(store_cls)
        rb = _crash_mid_rebalance(store, point)
        cluster = store.cluster
        for node in cluster.nodes:
            if not node.alive:
                cluster.restore_node(node.node_id)
        recovery = store.recover()
        assert recovery.migrations_resolved > 0
        assert not cluster.migrations
        final = rb.rebalance()
        assert rb.converged()
        assert store.fsck().clean, store.fsck().summary()
        assert store.query(SQL)[0].equals(reference[store_cls])
        # after-republish crashes only needed the source GC finished, so
        # the follow-up run re-moves at most what after-copy rolled back.
        if point == "migrate:after-republish":
            assert final.pending_resolved == 0

    def test_recovery_resolution_is_idempotent(self, store_cls, point, reference):
        store = _system(store_cls)
        _crash_mid_rebalance(store, point)
        cluster = store.cluster
        for node in cluster.nodes:
            if not node.alive:
                cluster.restore_node(node.node_id)
        first = store.recover()
        second = store.recover()
        assert first.migrations_resolved > 0
        assert second.migrations_resolved == 0


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
def test_dead_source_defers_resolution(store_cls, reference):
    """A published move whose source died before GC stays pending until
    the source restores (fsck keeps tracking the copy; nothing is lost)."""
    store = _system(store_cls)
    _crash_mid_rebalance(store, "migrate:after-republish")
    cluster = store.cluster
    # Kill one migration source (staying inside erasure tolerance) to
    # force the deferral path for its entry.
    victim = sorted(e.src for e in cluster.migrations.values())[0]
    if cluster.node(victim).alive:
        cluster.fail_node(victim)
    deferred = {
        bid for bid, e in cluster.migrations.items() if e.src == victim
    }
    store.recover()
    # Published entries with a dead source must still be registered.
    assert deferred <= set(cluster.migrations)
    # Queries still served from the (republished) destinations.
    assert store.query(SQL)[0].equals(reference[store_cls])
    for node in cluster.nodes:
        if not node.alive:
            cluster.restore_node(node.node_id)
    store.recover()
    assert not cluster.migrations
    assert store.fsck().clean
