"""Randomised equivalence: both distributed stores must agree with the
single-process reference executor on generated queries over generated
tables — the strongest end-to-end correctness property in the suite."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterConfig, Simulator
from repro.core import BaselineStore, FusionStore, StoreConfig
from repro.format import ColumnType, Table, write_table
from repro.sql import execute_local


def _random_table(seed: int, num_rows: int) -> Table:
    rng = np.random.default_rng(seed)
    return Table.from_dict(
        {
            "a": (ColumnType.INT64, rng.integers(-100, 100, num_rows)),
            "b": (ColumnType.DOUBLE, np.round(rng.uniform(-10, 10, num_rows), 3)),
            "c": (ColumnType.STRING, [f"s{v}" for v in rng.integers(0, 12, num_rows)]),
            "d": (ColumnType.DATE, rng.integers(18_000, 18_400, num_rows)),
            "e": (ColumnType.BOOL, rng.integers(0, 2, num_rows).astype(bool)),
        }
    )


_COLUMNS = {
    "a": st.integers(-120, 120),
    "b": st.floats(-12, 12).map(lambda v: round(v, 2)),
    "c": st.integers(0, 14).map(lambda v: f"s{v}"),
    "d": st.integers(17_990, 18_410),
}
_OPS = ["=", "!=", "<", "<=", ">", ">="]


@st.composite
def predicates(draw, depth: int = 2):
    """Random predicate SQL over the fixed random-table schema."""
    if depth == 0 or draw(st.booleans()):
        column = draw(st.sampled_from(list(_COLUMNS)))
        kind = draw(st.sampled_from(["cmp", "between", "in"]))
        if kind == "cmp" or column == "b":
            op = draw(st.sampled_from(_OPS))
            value = draw(_COLUMNS[column])
            return f"{column} {op} {_literal(column, value)}"
        if kind == "between":
            lo = draw(_COLUMNS[column])
            hi = draw(_COLUMNS[column])
            lo, hi = min(lo, hi), max(lo, hi)
            return f"{column} BETWEEN {_literal(column, lo)} AND {_literal(column, hi)}"
        values = draw(st.lists(_COLUMNS[column], min_size=1, max_size=4))
        return f"{column} IN ({', '.join(_literal(column, v) for v in values)})"
    left = draw(predicates(depth=depth - 1))
    right = draw(predicates(depth=depth - 1))
    join = draw(st.sampled_from(["AND", "OR"]))
    negate = draw(st.booleans())
    expr = f"({left} {join} {right})"
    return f"NOT {expr}" if negate else expr


def _literal(column: str, value) -> str:
    if column == "c":
        return f"'{value}'"
    if column == "d":
        from repro.sql import days_to_date

        return f"'{days_to_date(value)}'"
    return repr(value)


@st.composite
def select_lists(draw):
    kind = draw(st.sampled_from(["columns", "aggregates", "grouped"]))
    if kind == "columns":
        cols = draw(
            st.lists(st.sampled_from(["a", "b", "c", "d", "e"]), min_size=1, max_size=3, unique=True)
        )
        return ", ".join(cols), kind
    if kind == "aggregates":
        aggs = draw(
            st.lists(
                st.sampled_from(
                    ["count(*)", "sum(a)", "avg(b)", "min(a)", "max(b)", "count(d)"]
                ),
                min_size=1,
                max_size=3,
                unique=True,
            )
        )
        return ", ".join(aggs), kind
    agg = draw(st.sampled_from(["count(*)", "avg(b)", "sum(a)"]))
    return f"c, {agg}", "grouped"


@pytest.fixture(scope="module")
def systems():
    table = _random_table(seed=1234, num_rows=1500)
    data = write_table(table, row_group_rows=300)
    out = {}
    for cls in (FusionStore, BaselineStore):
        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(num_nodes=9))
        store = cls(
            cluster,
            StoreConfig(
                size_scale=100.0, storage_overhead_threshold=0.2, block_size=1_000_000
            ),
        )
        store.put("tbl", data)
        out[cls.__name__] = store
    return table, out


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(select=select_lists(), where=predicates())
def test_stores_agree_with_reference(systems, select, where):
    table, stores = systems
    select_sql, kind = select
    sql = f"SELECT {select_sql} FROM tbl WHERE {where}"
    if kind == "grouped":
        sql += " GROUP BY c"
    expected = execute_local(sql, table)
    for name, store in stores.items():
        result, _metrics = store.query(sql)
        assert result.equals(expected), f"{name} diverged on: {sql}"
