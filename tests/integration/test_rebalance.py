"""Elastic membership end-to-end: join/drain -> background rebalance ->
ring-converged placement with correct queries throughout.

Also the regression suite for the per-object cache invalidation that
rides every location-map republish: a migration that moves blocks must
evict decoded chunks, page indexes and degraded reconstructions derived
from the old placement (see ``_republish_meta`` in both stores).
"""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig, FaultInjector, Simulator
from repro.core import (
    BaselineStore,
    FusionStore,
    Rebalancer,
    StoreConfig,
    fsck,
)
from repro.format import write_table
from tests.conftest import make_small_table

SQL = "SELECT id, price FROM tbl WHERE qty < 5"
DATA = write_table(make_small_table(), row_group_rows=500)


def _system(store_cls, **config):
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=9))
    FaultInjector(cluster, [], seed=0).install()
    store = store_cls(
        cluster,
        StoreConfig(
            size_scale=100.0,
            storage_overhead_threshold=0.1,
            block_size=2_000_000,
            membership_enabled=True,
            **config,
        ),
    )
    store.put("tbl", DATA)
    return store


@pytest.fixture(scope="module")
def reference():
    out = {}
    for cls in (FusionStore, BaselineStore):
        store = _system(cls)
        out[cls] = store.query(SQL)[0]
    return out


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
class TestJoinRebalance:
    def test_join_converges_and_queries_stay_correct(self, store_cls, reference):
        store = _system(store_cls)
        rb = Rebalancer(store)
        assert rb.converged(), "fresh puts already land at ring positions"

        store.cluster.add_node()
        assert rb.misplaced(), "a join must leave existing data misplaced"
        report = rb.rebalance()
        assert report.blocks_moved > 0
        assert report.rebalance_bytes > 0
        assert rb.converged()
        assert store.fsck().clean
        assert store.query(SQL)[0].equals(reference[store_cls])
        # Every block now sits at its ring position (converged() above
        # proved it); the moved blocks' old copies are gone.
        assert not store.cluster.migrations

    def test_rebalance_traffic_separate_from_repair(self, store_cls, reference):
        store = _system(store_cls)
        rb = Rebalancer(store)
        store.cluster.add_node()
        query_bytes_before = store.cluster.metrics.network_bytes
        report = rb.rebalance()
        metrics = store.cluster.metrics
        assert metrics.rebalance_bytes == report.rebalance_bytes > 0
        assert metrics.blocks_migrated == report.blocks_moved
        assert metrics.repair_bytes == 0, "migration must not count as repair"
        assert metrics.network_bytes == query_bytes_before, (
            "migration must not count as query traffic"
        )

    def test_rebalance_is_idempotent(self, store_cls, reference):
        store = _system(store_cls)
        rb = Rebalancer(store)
        store.cluster.add_node()
        first = rb.rebalance()
        second = rb.rebalance()
        assert first.blocks_moved > 0
        assert second.blocks_moved == 0
        assert second.rebalance_bytes == 0


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
class TestDrainRebalance:
    def test_drain_empties_node_then_remove(self, store_cls, reference):
        store = _system(store_cls)
        cluster = store.cluster
        rb = Rebalancer(store)
        # Pick a node that actually holds blocks of the object.
        victim = next(
            n.node_id for n in cluster.nodes if any(n.block_ids())
        )
        cluster.drain_node(victim)
        rb.rebalance()
        assert rb.converged()
        assert not any(cluster.node(victim).block_ids()), (
            "rebalance must empty a draining node"
        )
        assert store.query(SQL)[0].equals(reference[store_cls])
        cluster.remove_node(victim)
        assert store.fsck().clean
        assert store.query(SQL)[0].equals(reference[store_cls])

    def test_meta_replicas_leave_draining_node(self, store_cls, reference):
        store = _system(store_cls)
        cluster = store.cluster
        obj = next(iter(store.objects.values()))
        replicas = (
            obj.location_map.replica_nodes
            if hasattr(obj, "stripes")
            else obj.replica_nodes
        )
        victim = replicas[0]
        cluster.drain_node(victim)
        rb = Rebalancer(store)
        report = rb.rebalance()
        assert report.meta_moved >= 1
        new_replicas = (
            obj.location_map.replica_nodes
            if hasattr(obj, "stripes")
            else obj.replica_nodes
        )
        assert victim not in new_replicas
        assert cluster.node(victim).get_meta("tbl") is None
        assert store.fsck().clean


class TestCacheInvalidationAcrossMigration:
    """Satellite regression: stale real-bytes caches across a migration.

    Before the fix, ``_republish_meta`` moved the placement but left the
    decode/page-index/degraded caches holding values derived from the old
    copies — a reader could keep serving chunks decoded from blocks that
    the migration's GC had already dropped.
    """

    def test_fusion_poisoned_decode_cache_evicted(self, reference):
        store = _system(FusionStore)
        ref = reference[FusionStore]
        store.query(SQL)  # populate the decode/page-index caches
        assert len(store._decode_cache) > 0
        # Poison every cached decode for the object: if any survives the
        # migration, the next query returns these garbage values.
        for key in list(store._decode_cache):
            store._decode_cache[key] = np.full(8, -1.0)
        store.cluster.add_node()
        report = Rebalancer(store).rebalance()
        assert report.blocks_moved > 0
        assert not any(k[0] == "tbl" for k in store._decode_cache), (
            "migration republish must evict the object's decode cache"
        )
        assert store.query(SQL)[0].equals(ref)

    def test_baseline_poisoned_decode_cache_evicted(self, reference):
        store = _system(BaselineStore)
        ref = reference[BaselineStore]
        store.query(SQL)
        assert len(store._decode_cache) > 0
        for key in list(store._decode_cache):
            store._decode_cache[key] = np.full(8, -1.0)
        store.cluster.add_node()
        report = Rebalancer(store).rebalance()
        assert report.blocks_moved > 0
        assert not any(k[0] == "tbl" for k in store._decode_cache)
        assert store.query(SQL)[0].equals(ref)

    def test_fusion_degraded_cache_evicted(self):
        store = _system(FusionStore)
        # Seed the degraded-bin cache with a sentinel for a data block
        # of the object, then migrate: the entry must not survive.
        bid = store.objects["tbl"].stripes[0].data_block_ids[0]
        store._degraded_bin_cache[bid] = np.zeros(4, dtype=np.uint8)
        store.cluster.add_node()
        Rebalancer(store).rebalance()
        assert bid not in store._degraded_bin_cache


def test_rebalancer_requires_membership():
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=9))
    store = FusionStore(cluster, StoreConfig(size_scale=100.0))
    with pytest.raises(RuntimeError):
        Rebalancer(store)


def test_fsck_skips_membership_record():
    """The replicated ``__membership__`` record must not be reported as a
    dangling metadata replica."""
    store = _system(FusionStore)
    store.cluster.drain_node(3)  # bump the epoch, republish the record
    report = fsck(store)
    assert report.clean, report.summary()
    assert not report.dangling_meta
