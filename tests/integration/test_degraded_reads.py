"""Degraded reads: queries and Gets keep working while nodes are down,
via on-the-fly erasure-code reconstruction (no prior recovery)."""

import pytest

from repro.cluster import Cluster, ClusterConfig, Simulator
from repro.core import BaselineStore, FusionStore, StoreConfig
from repro.ec import DecodeError
from repro.format import write_table
from repro.sql import execute_local
from tests.conftest import make_small_table

QUERIES = [
    "SELECT id, price FROM tbl WHERE qty < 5",
    "SELECT price FROM tbl WHERE price < 5.0",  # fused single-column path
    "SELECT count(*), avg(price) FROM tbl WHERE flag = true",
    "SELECT tag, sum(qty) FROM tbl WHERE id < 800 GROUP BY tag",
]


def _system(store_cls, num_nodes=12):
    table = make_small_table(num_rows=2500, seed=77)
    data = write_table(table, row_group_rows=500)
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=num_nodes))
    store = store_cls(
        cluster,
        StoreConfig(size_scale=50.0, storage_overhead_threshold=0.1, block_size=500_000),
    )
    store.put("tbl", data)
    return store, cluster, table, data


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
class TestDegradedQueries:
    def test_queries_survive_single_node_failure(self, store_cls):
        store, cluster, table, _data = _system(store_cls)
        used = {nid for node in cluster.nodes for nid in [node.node_id] if node.stored_bytes}
        victim = sorted(used)[0]
        cluster.fail_node(victim)
        for sql in QUERIES:
            result, _ = store.query(sql)
            assert result.equals(execute_local(sql, table)), sql

    def test_queries_survive_parity_many_failures(self, store_cls):
        store, cluster, table, _data = _system(store_cls)
        # Fail n-k = 3 nodes; every stripe still has k readable blocks.
        for victim in (0, 1, 2):
            cluster.fail_node(victim)
        sql = QUERIES[0]
        result, _ = store.query(sql)
        assert result.equals(execute_local(sql, table))

    def test_get_survives_failure(self, store_cls):
        store, cluster, _table, data = _system(store_cls)
        cluster.fail_node(1)
        assert store.get("tbl") == data
        assert store.get("tbl", 100, 5000) == data[100:5100]

    def test_restore_returns_to_normal(self, store_cls):
        store, cluster, table, _data = _system(store_cls)
        cluster.fail_node(2)
        sql = QUERIES[0]
        _degraded, m_degraded = store.query(sql)
        cluster.restore_node(2)
        result, m_normal = store.query(sql)
        assert result.equals(execute_local(sql, table))
        assert cluster.alive_nodes() == list(range(12))


class TestDegradedCosts:
    def test_degraded_read_is_more_expensive(self):
        store, cluster, table, _data = _system(FusionStore)
        sql = "SELECT note FROM tbl WHERE id < 300"
        _r, healthy = store.query(sql)
        # Fail up to n-k of the nodes that hold chunks this query touches.
        obj = store.objects["tbl"]
        touched = sorted(
            {
                obj.location_map.lookup(meta.key).node_id
                for meta in obj.metadata.all_chunks()
                if meta.column in ("id", "note")
            }
        )
        for nid in touched[: store.config.code.parity]:
            cluster.fail_node(nid)
        result, degraded = store.query(sql)
        assert result.equals(execute_local(sql, table))
        assert degraded.network_bytes > healthy.network_bytes

    def test_beyond_tolerance_raises(self):
        store, cluster, _table, _data = _system(FusionStore, num_nodes=9)
        # With 9 nodes, every stripe touches all nodes: failing 4 breaks
        # at least one stripe's k-survivor requirement.
        for victim in (0, 1, 2, 3):
            cluster.fail_node(victim)
        with pytest.raises(DecodeError):
            store.query("SELECT id FROM tbl WHERE qty < 100")

    def test_recovery_while_degraded_then_clean(self):
        store, cluster, table, data = _system(FusionStore)
        victim = store.objects["tbl"].stripes[0].node_ids[0]
        cluster.fail_node(victim)
        # Rebuild the dead node's blocks onto live nodes, then drop it for
        # good: reads must no longer touch the victim.
        store.recover_node(victim)
        sql = "SELECT id FROM tbl WHERE qty < 5"
        result, _ = store.query(sql)
        assert result.equals(execute_local(sql, table))
        assert store.get("tbl") == data
