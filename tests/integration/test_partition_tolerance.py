"""Partition and gray-failure tolerance: quorum-guarded metadata,
partition-straddling crash recovery, anti-entropy read-repair, and the
min-healthy-floor guard.

A network partition must never let a minority-side coordinator install a
bumped-epoch metadata snapshot (split-brain); repair defers such stripes
with a typed :class:`QuorumLost` and re-attempts after heal.  Degraded
foreground reads queue their stripe for background read-repair, and
recovery converges stale minority replicas onto the majority epoch."""

import pytest

from repro.cluster import Cluster, ClusterConfig, QueryMetrics, Simulator
from repro.core import BaselineStore, FusionStore, RepairManager, StoreConfig
from repro.core.wal import QuorumLost
from repro.format import write_table
from tests.conftest import make_small_table


def _system(store_cls, num_nodes=12, **config_kw):
    table = make_small_table(num_rows=2500, seed=77)
    data = write_table(table, row_group_rows=500)
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=num_nodes))
    config_kw.setdefault("block_size", 500_000)
    store = store_cls(
        cluster,
        StoreConfig(
            size_scale=50.0,
            storage_overhead_threshold=0.1,
            **config_kw,
        ),
    )
    store.put("tbl", data)
    return store, cluster, table, data


def _meta_holders(store, name: str) -> tuple[int, ...]:
    obj = store.objects[name]
    if isinstance(store, FusionStore):
        return tuple(obj.location_map.replica_nodes)
    return tuple(obj.replica_nodes)


def _sever(cluster, a: int, b: int) -> None:
    """Cut both directed legs between two nodes."""
    a_name = cluster.node(a).endpoint.name
    b_name = cluster.node(b).endpoint.name
    cluster.network.set_link(a_name, b_name, severed=True)
    cluster.network.set_link(b_name, a_name, severed=True)


def _heal_all(cluster) -> None:
    cluster.network.links.clear()


def _first_data_holder(store) -> int:
    """A node holding a data block of ``tbl`` (so its loss forces a
    degraded read on the Get path)."""
    obj = store.objects["tbl"]
    if isinstance(store, FusionStore):
        placement = obj.stripes[0]
        j = next(i for i, s in enumerate(placement.data_sizes) if s > 0)
        return placement.node_ids[j]
    return obj.data_block_nodes[0]


def _get_with_metrics(store, name: str):
    """Run a Get with an explicit QueryMetrics carrier."""
    qm = QueryMetrics()
    proc = store.sim.process(store.get_process(name, qm))
    store.sim.run()
    return proc.value, qm


def _corrupt_data_block_avoiding(store, cluster, avoid: set[int]) -> tuple[int, str]:
    """Corrupt one stripe-0 data block on a node outside ``avoid``."""
    obj = store.objects["tbl"]
    if isinstance(store, FusionStore):
        placement = obj.stripes[0]
        for j, size in enumerate(placement.data_sizes):
            if size > 0 and placement.node_ids[j] not in avoid:
                bid, nid = placement.data_block_ids[j], placement.node_ids[j]
                break
        else:
            pytest.fail("no data block outside the severed set")
    else:
        for index in sorted(obj.data_block_nodes):
            if obj.data_block_nodes[index] not in avoid:
                bid, nid = obj.data_block_id(index), obj.data_block_nodes[index]
                break
        else:
            pytest.fail("no data block outside the severed set")
    cluster.node(nid).corrupt_block(bid, offset=11)
    return nid, bid


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
class TestQuorumGuard:
    def test_minority_republish_raises_quorum_lost(self, store_cls):
        store, cluster, _table, _data = _system(store_cls, metadata_replicas=3)
        obj = store.objects["tbl"]
        holders = _meta_holders(store, "tbl")
        assert len(holders) == 3
        coordinator = cluster.coordinator_for("tbl").node_id
        epoch_before = obj.meta_epoch

        # Cut the coordinator off from every holder but itself: at most
        # one of three holders reachable < majority of two.
        for nid in holders:
            if nid != coordinator:
                _sever(cluster, coordinator, nid)

        with pytest.raises(QuorumLost):
            store._republish_meta(obj)
        assert obj.meta_epoch == epoch_before  # no minority-epoch install
        assert cluster.metrics.quorum_lost_total == 1
        # No holder carries an epoch newer than the object's.
        for nid in holders:
            replica = cluster.node(nid).get_meta("tbl")
            assert replica is None or replica.epoch <= obj.meta_epoch

        _heal_all(cluster)
        store._republish_meta(obj)
        assert obj.meta_epoch == epoch_before + 1
        for nid in holders:
            assert cluster.node(nid).get_meta("tbl").epoch == obj.meta_epoch

    def test_guard_inactive_below_three_replicas(self, store_cls):
        store, cluster, _table, _data = _system(store_cls, metadata_replicas=2)
        obj = store.objects["tbl"]
        coordinator = cluster.coordinator_for("tbl").node_id
        for nid in _meta_holders(store, "tbl"):
            if nid != coordinator:
                _sever(cluster, coordinator, nid)
        epoch_before = obj.meta_epoch
        store._republish_meta(obj)  # no quorum rule with < 3 holders
        assert obj.meta_epoch == epoch_before + 1
        assert cluster.metrics.quorum_lost_total == 0

    def test_repair_defers_then_heals(self, store_cls):
        store, cluster, _table, data = _system(store_cls, metadata_replicas=3)
        holders = _meta_holders(store, "tbl")
        coordinator = cluster.coordinator_for("tbl").node_id
        # Sever exactly two non-coordinator holders: quorum is lost
        # (<= 1 of 3 reachable) while every stripe keeps >= k readable
        # shards (at most two shard holders unreachable, RS tolerates 3).
        severed = [nid for nid in holders if nid != coordinator][:2]
        _corrupt_data_block_avoiding(store, cluster, set(severed))
        scrub = store.verify_object("tbl")
        assert scrub.corrupt_stripes
        for nid in severed:
            _sever(cluster, coordinator, nid)

        manager = RepairManager(store)
        deferred = manager.repair_from_scrub(scrub)
        assert deferred.stripes_quorum_deferred >= 1
        assert deferred.stripes_deferred >= deferred.stripes_quorum_deferred
        assert cluster.metrics.quorum_lost_total >= 1

        _heal_all(cluster)
        healed = manager.repair_from_scrub(scrub)
        assert healed.stripes_quorum_deferred == 0
        rescrub = store.verify_object("tbl")
        assert not rescrub.corrupt_stripes and not rescrub.incomplete_stripes
        assert store.get("tbl") == data


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
class TestPartitionStraddlingCrash:
    def test_recover_converges_on_majority_epoch(self, store_cls):
        store, cluster, _table, data = _system(store_cls, metadata_replicas=3)
        obj = store.objects["tbl"]
        holders = _meta_holders(store, "tbl")
        coordinator = cluster.coordinator_for("tbl").node_id
        epoch_before = obj.meta_epoch
        # Strand one non-coordinator holder alone on the minority side.
        minority = next(nid for nid in holders if nid != coordinator)
        _corrupt_data_block_avoiding(store, cluster, {minority})
        scrub = store.verify_object("tbl")
        for other in range(cluster.num_nodes):
            if other != minority:
                _sever(cluster, minority, other)

        # Majority side keeps full availability: repair succeeds and
        # bumps the epoch on the two reachable holders only.
        report = RepairManager(store).repair_from_scrub(scrub)
        assert report.stripes_quorum_deferred == 0
        assert report.stripes_repaired >= 1
        majority_epoch = obj.meta_epoch
        assert majority_epoch == epoch_before + 1
        assert cluster.node(minority).get_meta("tbl").epoch < majority_epoch
        assert store.get("tbl") == data  # majority-side reads stay correct

        # Heal, then lose the coordinator's in-memory state: recovery's
        # quorum read must pick the *majority* epoch, not the stale
        # minority replica, and anti-entropy resyncs the stale holder.
        _heal_all(cluster)
        del store.objects["tbl"]
        recovery = store.recover()
        assert "tbl" in recovery.rolled_forward
        assert store.objects["tbl"].meta_epoch == majority_epoch
        assert recovery.meta_replicas_synced >= 1
        assert cluster.node(minority).get_meta("tbl").epoch == majority_epoch
        assert store.fsck().clean
        assert store.get("tbl") == data


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
class TestReadRepair:
    def test_degraded_read_enqueues_and_drains(self, store_cls):
        store, cluster, _table, data = _system(store_cls)
        cluster.fail_node(_first_data_holder(store))
        assert store.get("tbl") == data  # degraded reconstruction
        assert cluster.read_repairs  # the reconstructed stripes queued

        repair_bytes_before = cluster.metrics.repair_bytes
        report = RepairManager(store).repair_read_reported()
        assert report.blocks_repaired >= 1
        assert not cluster.read_repairs
        assert cluster.metrics.read_repair_bytes > 0
        assert cluster.metrics.blocks_read_repaired >= 1
        # Accounted in its own bucket: scrub-repair totals untouched.
        assert cluster.metrics.repair_bytes == repair_bytes_before

        # Repaired onto live nodes: the next Get is clean and enqueues
        # nothing new.
        assert store.get("tbl") == data
        assert not cluster.read_repairs

    def test_knob_disables_enqueue(self, store_cls):
        store, cluster, _table, data = _system(store_cls, read_repair_enabled=False)
        cluster.fail_node(_first_data_holder(store))
        assert store.get("tbl") == data
        assert not cluster.read_repairs


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
class TestMinHealthyFloor:
    def _stripe_zero(self, store):
        """(block handle, holder node ids) for the object's first stripe."""
        obj = store.objects["tbl"]
        if isinstance(store, FusionStore):
            placement = obj.stripes[0]
            j = next(i for i, s in enumerate(placement.data_sizes) if s > 0)
            return obj, placement.data_block_ids[j], list(placement.node_ids)
        holder_ids = [
            obj.data_block_nodes[b.index] for b in obj.layout.stripe_blocks(0)
        ] + [nid for (s, _j), nid in obj.parity_block_nodes.items() if s == 0]
        return obj, 0, holder_ids

    def _greylist(self, cluster, node_ids):
        """Warm every node's EWMA, then push ``node_ids`` far over the
        cluster median so the tracker greylists them."""
        health = cluster.health
        health.greylist_factor = 3.0
        for nid in range(cluster.num_nodes):
            for _ in range(10):
                health.record_success(nid, 0.001)
        for nid in node_ids:
            for _ in range(10):
                health.record_success(nid, 1.0)
        for nid in node_ids:
            assert health.is_greylisted(nid)

    def test_floor_attempts_when_usable_below_k(self, store_cls):
        store, cluster, _table, data = _system(store_cls)
        obj, block, holder_ids = self._stripe_zero(store)
        k = store.config.code.k
        # Greylist enough distinct stripe-0 holders that its usable
        # count drops below k (a trailing partial stripe can have fewer
        # than n holders, so count from the stripe's own holder set).
        distinct = list(dict.fromkeys(holder_ids))
        victims = distinct[: len(distinct) - k + 1]
        self._greylist(cluster, victims)
        assert store._floor_attempt(obj, block)
        # The Get still routes direct attempts at greylisted (but
        # alive) holders of below-floor stripes instead of a
        # guaranteed-degraded reconstruction.
        result, metrics = _get_with_metrics(store, "tbl")
        assert result == data
        if isinstance(store, FusionStore):
            # Chunks on greylisted holders split: below-floor stripes
            # attempt direct, healthy-majority stripes reconstruct.
            grey_chunks = [
                loc
                for loc in obj.location_map.entries.values()
                if cluster.health.is_greylisted(loc.node_id)
            ]
            saved = [
                loc
                for loc in grey_chunks
                if store._floor_attempt(obj, loc.block_id)
            ]
            assert saved
            assert metrics.degraded_reads <= len(grey_chunks) - len(saved)
        else:
            # The baseline object here is a single stripe: every block
            # is floor-guarded, so no read degrades at all.
            assert metrics.degraded_reads == 0

    def test_floor_idle_while_k_usable(self, store_cls):
        store, cluster, _table, _data = _system(store_cls)
        obj, block, holder_ids = self._stripe_zero(store)
        k = store.config.code.k
        distinct = list(dict.fromkeys(holder_ids))
        self._greylist(cluster, distinct[: len(distinct) - k])  # k still usable
        assert not store._floor_attempt(obj, block)
