"""Deadline propagation: Put/Get/Query armed with a too-small budget must
fail with the typed :class:`DeadlineExceeded` — not hang, not return
garbage — and must leave nothing behind: the simulator heap drains to
empty and every node resource is quiescent (no orphaned in-flight work,
no parked waiters)."""

import pytest

from repro.cluster import Cluster, ClusterConfig, QueryMetrics, Simulator
from repro.core import BaselineStore, DeadlineExceeded, FusionStore, StoreConfig
from repro.format import write_table
from tests.conftest import make_small_table

SQL = "SELECT id, price FROM tbl WHERE qty < 5"

# Uncontended on this workload: query ~4-5 ms, get ~3-4 ms, put ~6-18 ms
# of simulated time — every budget below guarantees expiry mid-flight.
QUERY_DEADLINES = [1e-6, 1e-4, 1e-3]
PUT_DEADLINES = [1e-6, 2e-3]


def _system(store_cls):
    """A loaded store with deadlines off (so the put succeeds)."""
    table = make_small_table(num_rows=2500, seed=77)
    data = write_table(table, row_group_rows=500)
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=12))
    store = store_cls(
        cluster,
        StoreConfig(size_scale=50.0, storage_overhead_threshold=0.1, block_size=500_000),
    )
    store.put("tbl", data)
    return store, cluster, sim, data


def _assert_quiescent(sim, cluster):
    """After the typed failure, the world must be clean: heap empty once
    drained, and no resource still held or queued on any node."""
    sim.run()
    assert not sim._heap
    for node in cluster.nodes:
        for resource in (
            node.cpu,
            node.disk.device,
            node.endpoint.egress,
            node.endpoint.ingress,
        ):
            assert resource.in_use == 0
            assert not resource._waiters


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
@pytest.mark.parametrize("deadline_s", QUERY_DEADLINES)
class TestQueryDeadline:
    def test_query_raises_typed_and_drains(self, store_cls, deadline_s):
        store, cluster, sim, _ = _system(store_cls)
        store.config.default_deadline_s = deadline_s
        metrics = QueryMetrics()
        proc = sim.process(store.query_process(SQL, metrics))
        with pytest.raises(DeadlineExceeded):
            sim.run()
        assert not proc.fired  # the query process never produced a value
        _assert_quiescent(sim, cluster)
        # The failure was counted on the query and rolled up cluster-wide.
        assert metrics.deadline_exceeded == 1
        assert cluster.metrics.deadline_exceeded == 1
        assert metrics.end_time is not None

    def test_store_remains_usable_after_deadline(self, store_cls, deadline_s):
        store, cluster, sim, _ = _system(store_cls)
        store.config.default_deadline_s = deadline_s
        with pytest.raises(DeadlineExceeded):
            store.query(SQL)
        _assert_quiescent(sim, cluster)
        # Lift the budget: the same store answers the same query correctly.
        store.config.default_deadline_s = 0.0
        result, _ = store.query(SQL)
        assert result.matched_rows > 0


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
class TestGetDeadline:
    @pytest.mark.parametrize("deadline_s", QUERY_DEADLINES)
    def test_get_raises_typed_and_drains(self, store_cls, deadline_s):
        store, cluster, sim, _ = _system(store_cls)
        store.config.default_deadline_s = deadline_s
        with pytest.raises(DeadlineExceeded):
            store.get("tbl")
        _assert_quiescent(sim, cluster)

    def test_parent_budget_propagates_to_get(self, store_cls):
        """A Get delegated with the caller's metrics inherits the caller's
        deadline rather than arming a fresh one."""
        store, cluster, sim, _ = _system(store_cls)
        store.config.default_deadline_s = 1e-4
        metrics = QueryMetrics()
        proc = sim.process(store.get_process("tbl", metrics))
        with pytest.raises(DeadlineExceeded):
            sim.run()
        assert not proc.fired
        assert metrics.deadline is not None
        assert metrics.deadline_exceeded == 1
        _assert_quiescent(sim, cluster)


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
@pytest.mark.parametrize("deadline_s", PUT_DEADLINES)
class TestPutDeadline:
    def test_put_raises_typed_and_drains(self, store_cls, deadline_s):
        store, cluster, sim, data = _system(store_cls)
        store.config.default_deadline_s = deadline_s
        with pytest.raises(DeadlineExceeded):
            store.put("tbl2", data)
        _assert_quiescent(sim, cluster)
        # The half-written object is not visible.
        assert "tbl2" not in getattr(store, "objects", {})
