"""The vectorized data plane must be invisible to the simulation.

A fault-free, default-knob workload run with the production (vectorized)
codecs must produce an event stream bit-identical to the same run with
every vectorized path swapped back to its retained scalar reference:
the rewrite changes wall-clock time, never simulated time, byte
accounting, or RPC counts.  This is the guard that catches a vectorized
codec leaking different compressed sizes (and hence different simulated
network costs) into the event loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig, QueryMetrics, Simulator
from repro.core import BaselineStore, FusionStore, StoreConfig
from repro.ec import gf256
from repro.format import _reference as ref
from repro.format import compression, encoding
from repro.format import write_table
from tests.conftest import make_small_table

QUERIES = [
    "SELECT id, price FROM tbl WHERE qty < 5",
    "SELECT price FROM tbl WHERE price < 5.0",
    "SELECT count(*), avg(price) FROM tbl WHERE flag = true",
    "SELECT tag, sum(qty) FROM tbl WHERE id < 800 GROUP BY tag",
]
NUM_CLIENTS = 4
QUERIES_PER_CLIENT = 3


def _run(store_cls):
    """One concurrent workload; returns the full scheduled-event stream
    plus per-query metrics fingerprints and results."""
    table = make_small_table(num_rows=2500, seed=77)
    data = write_table(table, row_group_rows=500)
    sim = Simulator()

    stream: list[tuple[float, int]] = []
    orig_schedule = sim._schedule

    def recording_schedule(at, callback, arg):
        stream.append((at, sim._seq))
        orig_schedule(at, callback, arg)

    sim._schedule = recording_schedule

    cluster = Cluster(sim, ClusterConfig(num_nodes=12))
    store = store_cls(
        cluster,
        StoreConfig(
            size_scale=50.0, storage_overhead_threshold=0.1, block_size=500_000
        ),
    )
    store.put("tbl", data)

    fingerprints = []
    results = []

    def client(cid: int):
        for qi in range(QUERIES_PER_CLIENT):
            qm = QueryMetrics()
            result = yield from store.query_process(
                QUERIES[(cid + qi * NUM_CLIENTS) % len(QUERIES)], qm
            )
            fingerprints.append(
                (qm.start_time, qm.end_time, qm.network_bytes, qm.rpcs_issued)
            )
            results.append(result)

    for cid in range(NUM_CLIENTS):
        sim.process(client(cid))
    sim.run()
    return stream, fingerprints, results


def _patch_scalar_data_plane(monkeypatch):
    """Swap every vectorized data-plane path for its scalar reference."""
    scalar = ref.ScalarSnappyCodec()
    monkeypatch.setattr(
        compression.SnappyLikeCodec,
        "compress",
        lambda self, data: scalar.compress(data),
    )
    monkeypatch.setattr(encoding, "rle_encode", ref.rle_encode)
    monkeypatch.setattr(encoding, "rle_decode", ref.rle_decode)
    monkeypatch.setattr(encoding, "_encode_plain_strings", ref.encode_plain_strings)
    monkeypatch.setattr(
        encoding, "_decode_plain_strings", ref.decode_plain_strings
    )

    def scalar_matmul_blocks(matrix, blocks):
        return gf256.gf_matmul(
            np.asarray(matrix, dtype=np.uint8),
            np.ascontiguousarray(blocks, dtype=np.uint8),
        )

    monkeypatch.setattr(gf256, "gf_matmul_blocks", scalar_matmul_blocks)


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
def test_vectorized_data_plane_is_event_invisible(store_cls, monkeypatch):
    vec_stream, vec_fp, vec_results = _run(store_cls)
    _patch_scalar_data_plane(monkeypatch)
    ref_stream, ref_fp, ref_results = _run(store_cls)

    assert vec_stream == ref_stream
    assert vec_fp == ref_fp
    for a, b in zip(vec_results, ref_results):
        assert a.equals(b)


def test_repeated_runs_are_deterministic():
    first = _run(FusionStore)
    second = _run(FusionStore)
    assert first[0] == second[0]
    assert first[1] == second[1]
