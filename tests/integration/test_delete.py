"""Delete API: block reclamation and name reuse."""

import pytest

from repro.cluster import Cluster, ClusterConfig, Simulator
from repro.core import BaselineStore, FusionStore, ObjectNotFound, StoreConfig
from repro.format import write_table
from tests.conftest import make_small_table


def _system(store_cls):
    table = make_small_table(num_rows=1500, seed=55)
    data = write_table(table, row_group_rows=300)
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=9))
    store = store_cls(
        cluster,
        StoreConfig(size_scale=50.0, storage_overhead_threshold=0.1, block_size=500_000),
    )
    store.put("tbl", data)
    return store, cluster, data


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
class TestDelete:
    def test_reclaims_all_blocks(self, store_cls):
        store, cluster, _data = _system(store_cls)
        assert cluster.stored_bytes > 0
        reclaimed = store.delete("tbl")
        assert reclaimed > 0
        assert cluster.stored_bytes == 0

    def test_object_gone_after_delete(self, store_cls):
        store, _cluster, _data = _system(store_cls)
        store.delete("tbl")
        with pytest.raises(ObjectNotFound):
            store.get("tbl")
        with pytest.raises(ObjectNotFound):
            store.query("SELECT id FROM tbl")

    def test_delete_unknown_raises(self, store_cls):
        store, _cluster, _data = _system(store_cls)
        with pytest.raises(ObjectNotFound):
            store.delete("missing")

    def test_name_reusable_after_delete(self, store_cls):
        store, _cluster, data = _system(store_cls)
        store.delete("tbl")
        store.put("tbl", data)
        assert store.get("tbl") == data

    def test_delete_one_of_many(self, store_cls):
        store, cluster, data = _system(store_cls)
        other = write_table(make_small_table(num_rows=500, seed=56), row_group_rows=250)
        store.put("other", other)
        store.delete("tbl")
        assert store.get("other") == other
        result, _ = store.query("SELECT id FROM other WHERE qty < 100")
        assert result.total_rows == 500


class TestFusionFallbackDelete:
    def test_delete_fallback_object(self):
        import numpy as np

        from repro.format import ColumnType, Table

        rng = np.random.default_rng(0)
        n = 2000
        table = Table.from_dict(
            {
                "k": (ColumnType.INT64, np.zeros(n, dtype=np.int64)),
                "pad": (ColumnType.STRING, ["x" * int(v) for v in rng.integers(300, 600, n)]),
            }
        )
        data = write_table(table, row_group_rows=n, codec="none")
        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(num_nodes=9))
        store = FusionStore(
            cluster, StoreConfig(size_scale=10.0, storage_overhead_threshold=0.02)
        )
        report = store.put("skewed", data)
        assert report.fallback
        assert store.delete("skewed") > 0
        assert cluster.stored_bytes == 0
