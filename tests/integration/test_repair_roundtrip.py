"""Corrupt/crash → scrub → RepairManager → clean: the full repair loop.

After repair, scrubbing must come back clean, placements must point only
at live nodes, and subsequent Gets/queries must need zero degraded
reads — with repair traffic accounted separately from query traffic."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig, QueryMetrics, Simulator
from repro.core import BaselineStore, FusionStore, RepairManager, StoreConfig
from repro.format import write_table
from repro.sql import execute_local
from tests.conftest import make_small_table

SQL = "SELECT id, price FROM tbl WHERE qty < 5"


def _system(store_cls, num_nodes=12):
    table = make_small_table(num_rows=2500, seed=77)
    data = write_table(table, row_group_rows=500)
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=num_nodes))
    store = store_cls(
        cluster,
        StoreConfig(size_scale=50.0, storage_overhead_threshold=0.1, block_size=500_000),
    )
    store.put("tbl", data)
    return store, cluster, table, data


def _corrupt_one_data_block(store, cluster) -> tuple[int, str]:
    """Flip a byte in one stored data block; returns (node_id, block_id)."""
    obj = store.objects["tbl"]
    if isinstance(store, FusionStore):
        placement = obj.stripes[0]
        i = next(j for j, s in enumerate(placement.data_sizes) if s > 0)
        bid = placement.data_block_ids[i]
        nid = placement.node_ids[i]
    else:
        bid = obj.data_block_id(0)
        nid = obj.data_block_nodes[0]
    cluster.node(nid).corrupt_block(bid, offset=11)
    return nid, bid


def _placement_nodes(store) -> set[int]:
    nodes: set[int] = set()
    stores = [store] + (
        [store.fallback_store] if isinstance(store, FusionStore) else []
    )
    for s in stores:
        for obj in s.objects.values():
            if hasattr(obj, "stripes"):
                for placement in obj.stripes:
                    nodes |= set(placement.node_ids)
                nodes |= {
                    loc.node_id for loc in obj.location_map.entries.values()
                }
            else:
                nodes |= set(obj.data_block_nodes.values())
                nodes |= set(obj.parity_block_nodes.values())
    return nodes


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
class TestCorruptionRepair:
    def test_corrupt_scrub_repair_rescrub_clean(self, store_cls):
        store, cluster, table, data = _system(store_cls)
        _corrupt_one_data_block(store, cluster)

        report = store.verify_object("tbl")
        assert report.corrupt_stripes and not report.incomplete_stripes

        query_bytes_before = cluster.metrics.network_bytes
        repair = RepairManager(store).repair_from_scrub(report)
        assert repair.blocks_repaired >= 1
        assert repair.repair_bytes > 0
        assert repair.time_to_repair > 0
        # Repair traffic lands in its own bucket, not in query totals.
        assert cluster.metrics.repair_bytes == repair.repair_bytes
        assert cluster.metrics.network_bytes == query_bytes_before

        assert store.verify_object("tbl").clean
        # The rewritten block serves correct bytes with no degraded reads.
        assert store.get("tbl") == data
        qm = QueryMetrics()
        proc = store.sim.process(store.query_process(SQL, qm))
        store.sim.run()
        assert proc.value.equals(execute_local(SQL, table))
        assert qm.degraded_reads == 0

    def test_repair_rewrites_in_place_on_live_node(self, store_cls):
        store, cluster, _table, _data = _system(store_cls)
        nid, bid = _corrupt_one_data_block(store, cluster)
        before = bytes(cluster.node(nid)._blocks[bid])
        RepairManager(store).repair_from_scrub(store.verify_object("tbl"))
        after = bytes(cluster.node(nid)._blocks[bid])
        assert after != before  # same node, same block id, healed bytes


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
class TestCrashRepair:
    def test_unreadable_nodes_report_incomplete_not_corrupt(self, store_cls):
        store, cluster, _table, _data = _system(store_cls)
        victim = sorted(_placement_nodes(store))[0]
        cluster.fail_node(victim)
        report = store.verify_object("tbl")
        assert report.incomplete_stripes and not report.corrupt_stripes

    def test_crash_repair_moves_placements_to_live_nodes(self, store_cls):
        store, cluster, table, data = _system(store_cls)
        victim = sorted(_placement_nodes(store))[0]
        cluster.fail_node(victim)

        repair = RepairManager(store).repair_node(victim)
        assert repair.blocks_repaired >= 1

        # Placements and the location map reference only live nodes now.
        alive = set(cluster.alive_nodes())
        assert victim not in _placement_nodes(store)
        assert _placement_nodes(store) <= alive

        # The scrub is clean even though the victim is still dead.
        assert store.verify_object("tbl").clean

        # Subsequent traffic needs no degraded reads and stays correct.
        qm = QueryMetrics()
        proc = store.sim.process(store.query_process(SQL, qm))
        store.sim.run()
        assert proc.value.equals(execute_local(SQL, table))
        assert qm.degraded_reads == 0
        assert store.get("tbl") == data

    def test_crash_while_corrupt_elsewhere_both_healed(self, store_cls):
        """Concurrent damage: one node dead and a *different* readable
        block corrupt — scrub sees corruption through the degradation,
        and one repair pass heals both."""
        store, cluster, _table, data = _system(store_cls)
        nid, _bid = _corrupt_one_data_block(store, cluster)
        victim = next(n for n in sorted(_placement_nodes(store)) if n != nid)
        cluster.fail_node(victim)

        report = store.verify_object("tbl")
        assert report.corrupt_stripes  # corruption not masked by the crash

        RepairManager(store).repair_node(victim)
        RepairManager(store).repair_from_scrub(report)
        assert store.verify_object("tbl").clean
        assert store.get("tbl") == data


class TestCacheInvalidation:
    def test_degraded_cache_cleared_on_liveness_change(self):
        store, cluster, table, _data = _system(FusionStore)
        victim = sorted(_placement_nodes(store))[0]
        cluster.fail_node(victim)
        _r, _m = store.query(SQL)  # primes degraded reconstruction caches
        assert len(store._degraded_bin_cache) > 0
        cluster.restore_node(victim)
        assert len(store._degraded_bin_cache) == 0
        result, qm = store.query(SQL)
        assert result.equals(execute_local(SQL, table))
        assert qm.degraded_reads == 0

    def test_throttled_repair_takes_longer(self):
        def repair_time(throttle):
            sim = Simulator()
            cluster = Cluster(sim, ClusterConfig(num_nodes=12))
            table = make_small_table(num_rows=2500, seed=77)
            data = write_table(table, row_group_rows=500)
            store = FusionStore(
                cluster,
                StoreConfig(
                    size_scale=50.0,
                    storage_overhead_threshold=0.1,
                    block_size=500_000,
                    repair_throttle_bps=throttle,
                ),
            )
            store.put("tbl", data)
            victim = sorted(_placement_nodes(store))[0]
            cluster.fail_node(victim)
            report = RepairManager(store).repair_node(victim)
            assert store.verify_object("tbl").clean
            return report.time_to_repair

        unthrottled = repair_time(0.0)
        throttled = repair_time(1e6)  # 1 MB/s of simulated repair traffic
        assert throttled > unthrottled * 2
