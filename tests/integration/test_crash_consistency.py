"""Crash-consistent metadata: WAL crash points → failover → recovery.

The acceptance bar for the metadata-durability work: killing a
coordinator at *every* named WAL crash point during Put and Delete must
leave the cluster recoverable — after ``recover()`` the WAL has no open
operations, ``fsck`` comes back clean (no orphans, no dangling map
entries, replicas in quorum), and Get/Query against the recovered
cluster return byte-identical results to a crash-free reference.
"""

import pytest

from repro.cluster import Cluster, ClusterConfig, FaultInjector, Simulator
from repro.core import (
    DELETE_CRASH_POINTS,
    PUT_CRASH_POINTS,
    BaselineStore,
    CoordinatorCrash,
    FusionStore,
    ObjectNotFound,
    RepairManager,
    StoreConfig,
    StoredFusionObject,
)
from repro.format import write_table
from tests.conftest import make_small_table

SQL = "SELECT id, price FROM tbl WHERE qty < 5"
DATA = write_table(make_small_table(), row_group_rows=500)


def _system(store_cls, put=True, **config):
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=9))
    FaultInjector(cluster, [], seed=0).install()
    store = store_cls(
        cluster,
        StoreConfig(
            size_scale=100.0,
            storage_overhead_threshold=0.1,
            block_size=2_000_000,
            **config,
        ),
    )
    if put:
        store.put("tbl", DATA)
    return store


@pytest.fixture(scope="module")
def reference():
    """Crash-free Get/Query results both stores must reproduce."""
    out = {}
    for cls in (FusionStore, BaselineStore):
        store = _system(cls)
        out[cls] = (bytes(store.get("tbl")), store.query(SQL)[0])
    return out


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
@pytest.mark.parametrize("point", PUT_CRASH_POINTS)
class TestPutCrashPoints:
    def test_recover_then_fsck_clean(self, store_cls, point, reference):
        store = _system(store_cls, put=False)
        store.cluster.faults.arm_crash_point(point)
        with pytest.raises(CoordinatorCrash):
            store.put("tbl", DATA)

        recovery = store.recover()
        report = store.fsck()
        assert report.clean, report.summary()

        ref_get, ref_query = reference[store_cls]
        if point == "put:after-commit":
            # Commit is the durability point: recovery rolls the Put
            # forward from the surviving metadata replicas and the object
            # serves identical bytes (degraded reads cover the blocks
            # stranded on the dead coordinator).
            assert recovery.rolled_forward == ["tbl"]
            assert bytes(store.get("tbl")) == ref_get
            assert store.query(SQL)[0].equals(ref_query)
        else:
            # Before commit the Put never happened: rolled back, blocks
            # GC'd, name free for reuse.
            assert recovery.rolled_back == ["tbl"]
            with pytest.raises(ObjectNotFound):
                store.get("tbl")

    def test_recovery_is_idempotent(self, store_cls, point):
        store = _system(store_cls, put=False)
        store.cluster.faults.arm_crash_point(point)
        with pytest.raises(CoordinatorCrash):
            store.put("tbl", DATA)
        first = store.recover()
        second = store.recover()
        assert first.resolved_ops >= (0 if point == "put:after-commit" else 1)
        assert second.resolved_ops == 0
        assert second.orphan_blocks_gcd == 0
        assert store.fsck().clean

    def test_name_reusable_after_recovery(self, store_cls, point, reference):
        store = _system(store_cls, put=False)
        store.cluster.faults.arm_crash_point(point)
        with pytest.raises(CoordinatorCrash):
            store.put("tbl", DATA)
        store.recover()
        if point != "put:after-commit":
            store.put("tbl", DATA)  # rolled back: the name must be free
        assert bytes(store.get("tbl")) == reference[store_cls][0]
        assert store.fsck().clean


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
@pytest.mark.parametrize("point", DELETE_CRASH_POINTS)
class TestDeleteCrashPoints:
    def test_recover_then_fsck_clean(self, store_cls, point):
        store = _system(store_cls)
        store.cluster.faults.arm_crash_point(point)
        with pytest.raises(CoordinatorCrash):
            store.delete("tbl")

        recovery = store.recover()
        report = store.fsck()
        assert report.clean, report.summary()
        # A logged Delete is durable: whatever stage the coordinator died
        # at, recovery redoes the remaining stages and the object is gone.
        with pytest.raises(ObjectNotFound):
            store.get("tbl")
        if point != "delete:after-commit":
            assert recovery.redone_deletes == ["tbl"]

    def test_no_blocks_survive_on_live_nodes(self, store_cls, point):
        store = _system(store_cls)
        cluster = store.cluster
        cluster.faults.arm_crash_point(point)
        with pytest.raises(CoordinatorCrash):
            store.delete("tbl")
        store.recover()
        for node in cluster.nodes:
            if node.alive:
                assert node.block_ids() == []
                assert node.meta_names() == []


class TestWalDurability:
    def test_log_survives_dead_coordinator(self):
        """Records are mirrored to the metadata replica holders, so the
        cluster-wide log outlives the coordinator that wrote it."""
        store = _system(FusionStore, put=False)
        cluster = store.cluster
        cluster.faults.arm_crash_point("put:after-data")
        with pytest.raises(CoordinatorCrash):
            store.put("tbl", DATA)
        dead = [n for n in cluster.nodes if not n.alive]
        assert len(dead) == 1
        survivors = [r for n in cluster.nodes if n.alive for r in n.wal]
        assert any(r.phase == "intent" for r in survivors)

    def test_wal_disabled_writes_no_records(self):
        store = _system(FusionStore, wal_enabled=False)
        assert store.cluster.wal_records() == []
        assert store.fsck().clean

    def test_fault_free_put_leaves_resolved_log(self):
        store = _system(FusionStore)
        records = store.cluster.wal_records()
        intents = [r for r in records if r.phase == "intent"]
        commits = [r for r in records if r.phase == "commit"]
        assert len(intents) == 1
        assert len(commits) == 1
        assert store.fsck().pending_ops == []

    def test_fallback_routed_put_recovers_into_fallback(self):
        """A Put the FusionStore routed to its fixed-block fallback logs
        store_kind="fixed" and recovery reinstalls it there."""
        # Default row grouping routes this small file to the fallback.
        data = write_table(make_small_table())
        store = _system(FusionStore, put=False)
        store.cluster.faults.arm_crash_point("put:after-commit")
        with pytest.raises(CoordinatorCrash):
            store.put("tbl", data)
        recovery = store.recover()
        assert recovery.rolled_forward == ["tbl"]
        assert "tbl" in store.fallback_store.objects
        assert bytes(store.get("tbl")) == data
        assert store.fsck().clean


class TestCoordinatorFailover:
    @pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
    def test_queries_after_failover_match_reference(self, store_cls, reference):
        """With the Put coordinator dead, routing falls over to the next
        alive node and serves identical results (degraded reads cover the
        dead node's blocks)."""
        store = _system(store_cls, put=False)
        cluster = store.cluster
        cluster.faults.arm_crash_point("put:after-commit")
        with pytest.raises(CoordinatorCrash):
            store.put("tbl", DATA)
        store.recover()
        dead = [n.node_id for n in cluster.nodes if not n.alive]
        assert len(dead) == 1
        assert cluster.coordinator_for("tbl").node_id not in dead
        assert store.query(SQL)[0].equals(reference[store_cls][1])


class TestRepairAfterDelete:
    """Regression: repair scheduled for an object deleted before it ran
    must be a clean no-op, not a KeyError that kills the run."""

    @pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
    def test_repair_object_after_delete(self, store_cls):
        store = _system(store_cls)
        manager = RepairManager(store)
        store.delete("tbl")
        report = manager.repair_object("tbl")
        assert report.stripes_repaired == 0
        assert report.objects == []

    @pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
    def test_repair_from_stale_scrub(self, store_cls):
        store = _system(store_cls)
        scrub = store.verify_object("tbl")
        manager = RepairManager(store)
        store.delete("tbl")
        report = manager.repair_from_scrub(scrub)
        assert report.stripes_repaired == 0

    def test_node_repair_skips_deleted_object(self):
        store = _system(FusionStore)
        obj = store.objects["tbl"]
        assert isinstance(obj, StoredFusionObject)
        victim = obj.stripes[0].node_ids[0]
        store.cluster.fail_node(victim)
        manager = RepairManager(store)
        store.delete("tbl")
        report = manager.repair_node(victim)
        assert report.stripes_repaired == 0
        assert store.fsck().clean
