"""Overload protection end to end: the injected ``overload`` and
``slow_burst`` fault kinds really generate pressure, admission control
really refuses work under that pressure, a cluster that suffers overload
plus a crash converges back to full health (breakers closed, queries
answering), and ``allow_partial_results`` trades shed chunks for a typed
:class:`PartialResult` instead of a failure."""

import pytest

from repro.cluster import (
    Cluster,
    ClusterConfig,
    QueryMetrics,
    Simulator,
    install_admission_control,
    random_schedule,
)
from repro.cluster.faults import FaultEvent, FaultInjector
from repro.core import (
    BaselineStore,
    DeadlineExceeded,
    FusionStore,
    PartialResult,
    QueueFull,
    RemoteOpError,
    StoreConfig,
)
from repro.format import write_table
from tests.conftest import make_small_table

QUERIES = [
    "SELECT id, price FROM tbl WHERE qty < 5",
    "SELECT price FROM tbl WHERE price < 5.0",
    "SELECT count(*), avg(price) FROM tbl WHERE flag = true",
    "SELECT tag, sum(qty) FROM tbl WHERE id < 800 GROUP BY tag",
]


# ---------------------------------------------------------------------------
# The injected fault kinds
# ---------------------------------------------------------------------------


class TestOverloadFaultKind:
    def test_overload_drives_disk_traffic_during_window(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(num_nodes=4))
        FaultInjector(
            cluster,
            [FaultEvent(at=0.01, kind="overload", node_id=2, duration=0.1, rate=500.0)],
            seed=3,
        ).install()
        sim.run(until=0.005)
        assert cluster.node(2).disk.total_bytes == 0  # window not open yet
        sim.run()
        assert cluster.node(2).disk.total_bytes > 0
        # Only the targeted node was bombarded.
        assert cluster.node(0).disk.total_bytes == 0
        assert not sim._heap  # the driver wound down cleanly

    def test_admission_control_rejects_injected_background_requests(self):
        """Saturating requests at a bounded node get refused at the door
        (and swallowed: the injected tenant has no retry logic)."""
        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(num_nodes=4))
        install_admission_control(
            cluster, StoreConfig(admission_queue_depth=4, admission_policy="reject")
        )
        FaultInjector(
            cluster,
            [
                FaultEvent(
                    at=0.0, kind="overload", node_id=1, duration=0.2,
                    rate=2000.0, nbytes=4_000_000,
                )
            ],
            seed=3,
        ).install()
        sim.run()
        node = cluster.node(1)
        rejected = node.disk.device.rejected_total + node.cpu.rejected_total
        assert rejected > 0
        assert node.disk.device.max_queue == 4
        assert not sim._heap

    def test_slow_burst_sets_and_resets_factors(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(num_nodes=4))
        FaultInjector(
            cluster,
            [FaultEvent(at=0.02, kind="slow_burst", node_id=0, duration=0.05, factor=8.0)],
            seed=3,
        ).install()
        sim.run(until=0.03)
        assert cluster.node(0).disk.slow_factor == 8.0
        assert cluster.node(0).endpoint.slow_factor == 8.0
        sim.run()
        assert cluster.node(0).disk.slow_factor == 1.0
        assert cluster.node(0).endpoint.slow_factor == 1.0


class TestRandomSchedule:
    def test_new_families_are_drawn_and_valid(self):
        events = random_schedule(12, 10.0, seed=44, overloads=2, slow_bursts=1)
        overloads = [ev for ev in events if ev.kind == "overload"]
        bursts = [ev for ev in events if ev.kind == "slow_burst"]
        assert len(overloads) == 2 and len(bursts) == 1
        for ev in overloads:
            assert ev.rate > 0 and ev.duration > 0
        for ev in bursts:
            assert ev.factor >= 1.0 and ev.duration > 0

    def test_old_families_are_bit_identical_with_new_knobs_at_zero(self):
        """Adding the new families must not perturb what a seed already
        produced: the extended schedule minus the new kinds equals the
        original schedule exactly."""
        base = random_schedule(12, 10.0, seed=44)
        extended = random_schedule(12, 10.0, seed=44, overloads=3, slow_bursts=2)
        old_kinds = [ev for ev in extended if ev.kind not in ("overload", "slow_burst")]
        assert old_kinds == base


# ---------------------------------------------------------------------------
# Convergence: overload + crash + restore with full protection on
# ---------------------------------------------------------------------------


PROTECTED = dict(
    size_scale=50.0,
    storage_overhead_threshold=0.1,
    block_size=500_000,
    default_deadline_s=0.5,
    admission_queue_depth=32,
    admission_policy="shed-lowest-priority",
    breaker_failure_threshold=5,
    breaker_window_s=0.25,
    breaker_reset_s=0.05,
    allow_partial_results=True,
    rpc_retry_jitter=0.5,
)


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
def test_overload_crash_restore_converges(store_cls):
    """Protection on, then the works: an overload storm on two nodes plus
    a crash/restore of a third.  Every in-storm failure is a typed,
    controlled one; after the storm the cluster answers everything and
    every breaker is closed."""
    table = make_small_table(num_rows=2500, seed=77)
    data = write_table(table, row_group_rows=500)
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=12))
    store = store_cls(cluster, StoreConfig(**PROTECTED))
    store.put("tbl", data)

    FaultInjector(
        cluster,
        [
            FaultEvent(at=0.0, kind="overload", node_id=3, duration=0.25,
                       rate=3000.0, nbytes=2_000_000),
            FaultEvent(at=0.0, kind="overload", node_id=7, duration=0.25,
                       rate=3000.0, nbytes=2_000_000),
            FaultEvent(at=0.02, kind="crash", node_id=5),
            FaultEvent(at=0.20, kind="restore", node_id=5),
        ],
        seed=9,
    ).install()

    outcomes = {"ok": 0, "partial": 0, "controlled": 0}

    def client(cid):
        for qi in range(8):
            metrics = QueryMetrics()
            try:
                result = yield from store.query_process(
                    QUERIES[(cid + qi) % len(QUERIES)], metrics
                )
            except (DeadlineExceeded, QueueFull, RemoteOpError):
                outcomes["controlled"] += 1
            else:
                if isinstance(result, PartialResult):
                    outcomes["partial"] += 1
                else:
                    outcomes["ok"] += 1

    for cid in range(4):
        sim.process(client(cid))
    sim.run()
    assert not sim._heap  # everything drained, nothing orphaned
    assert sum(outcomes.values()) == 32
    assert outcomes["ok"] > 0  # the storm never took the whole cluster down

    # Post-storm: the cluster must converge — every query answers fully
    # and every breaker closes (half-open probes get their successes).
    for qi in range(12):
        result, _ = store.query(QUERIES[qi % len(QUERIES)])
        assert not isinstance(result, PartialResult)
    if cluster.breakers is not None:
        assert cluster.breakers.open_count() == 0
    for node in cluster.nodes:
        assert node.alive


# ---------------------------------------------------------------------------
# Partial results
# ---------------------------------------------------------------------------


def test_partial_result_under_saturating_overload():
    """With tiny admission queues and a saturating storm on most of the
    data nodes, ``allow_partial_results`` turns shed scan chunks into a
    typed PartialResult (or a typed failure) — never an untyped error,
    never a hang."""
    table = make_small_table(num_rows=2500, seed=77)
    data = write_table(table, row_group_rows=500)
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=12))
    store = FusionStore(
        cluster,
        StoreConfig(
            size_scale=50.0,
            storage_overhead_threshold=0.1,
            block_size=500_000,
            admission_queue_depth=1,
            admission_policy="reject",
            allow_partial_results=True,
            rpc_max_retries=0,
        ),
    )
    store.put("tbl", data)

    storm = [
        FaultEvent(at=0.0, kind="overload", node_id=n, duration=0.5,
                   rate=5000.0, nbytes=8_000_000)
        for n in range(12)
    ]
    FaultInjector(cluster, storm, seed=21).install()

    outcomes = {"ok": 0, "partial": 0, "controlled": 0}
    shed_chunks = 0

    def client(cid):
        for qi in range(6):
            metrics = QueryMetrics()
            try:
                result = yield from store.query_process(
                    QUERIES[(cid + qi) % len(QUERIES)], metrics
                )
            except (DeadlineExceeded, QueueFull, RemoteOpError):
                outcomes["controlled"] += 1
            else:
                if isinstance(result, PartialResult):
                    outcomes["partial"] += 1
                    nonlocal shed_chunks
                    shed_chunks += result.shed_chunks
                    assert result.partial
                    assert result.reason == "overload"
                else:
                    outcomes["ok"] += 1

    def start_clients():
        # Let the storm bite first so foreground work meets full queues.
        yield sim.timeout(0.01)
        for cid in range(6):
            sim.process(client(cid))

    sim.process(start_clients())
    sim.run()
    assert not sim._heap
    assert sum(outcomes.values()) == 36
    # The storm really shed foreground work into partial answers.
    assert outcomes["partial"] > 0
    assert shed_chunks > 0
    # Each shed *stage* counts, so the rollup is at least one per
    # client-visible PartialResult.
    assert cluster.metrics.partial_results >= outcomes["partial"]
    assert cluster.metrics.requests_shed + cluster.metrics.requests_rejected > 0
