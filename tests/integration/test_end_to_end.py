"""End-to-end: generated datasets through both stores, checked against the
single-process reference executor."""

import pytest

from repro.cluster import Cluster, ClusterConfig, Simulator
from repro.core import BaselineStore, FusionStore, StoreConfig
from repro.sql import execute_local
from repro.workloads import (
    lineitem_file,
    microbenchmark_query,
    real_world_queries,
    taxi_file,
)


@pytest.fixture(scope="module")
def datasets():
    ldata, ltable = lineitem_file(num_rows=6000, row_group_rows=1500, seed=21)
    tdata, ttable = taxi_file(num_rows=6000, row_group_rows=1500, seed=22)
    return {"lineitem": (ldata, ltable), "taxi": (tdata, ttable)}


def _store(kind, datasets):
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=9))
    config = StoreConfig(size_scale=1000.0, storage_overhead_threshold=0.05)
    store = (FusionStore if kind == "fusion" else BaselineStore)(cluster, config)
    for name, (data, _table) in datasets.items():
        store.put(name, data)
    return store


@pytest.fixture(scope="module")
def fusion(datasets):
    return _store("fusion", datasets)


@pytest.fixture(scope="module")
def baseline(datasets):
    return _store("baseline", datasets)


class TestRealWorldQueries:
    def test_q1_to_q4_match_reference_on_both_stores(self, datasets, fusion, baseline):
        _l, ltable = datasets["lineitem"]
        _t, ttable = datasets["taxi"]
        for q in real_world_queries(ltable, ttable):
            table = ltable if q.dataset == "tpch" else ttable
            expected = execute_local(q.sql, table)
            got_fusion, _ = fusion.query(q.sql)
            got_baseline, _ = baseline.query(q.sql)
            assert got_fusion.equals(expected), q.name
            assert got_baseline.equals(expected), q.name


class TestMicrobenchmarkSweep:
    @pytest.mark.parametrize("column_id", range(16))
    def test_every_lineitem_column(self, datasets, fusion, baseline, column_id):
        from repro.workloads import column_name

        _l, ltable = datasets["lineitem"]
        sql = microbenchmark_query(ltable, column_name(column_id), 0.01)
        expected = execute_local(sql, ltable)
        got_fusion, fm = fusion.query(sql)
        got_baseline, bm = baseline.query(sql)
        assert got_fusion.equals(expected)
        assert got_baseline.equals(expected)
        assert fm.network_bytes <= bm.network_bytes

    @pytest.mark.parametrize("selectivity", [0.001, 0.05, 0.5, 1.0])
    def test_selectivity_sweep(self, datasets, fusion, selectivity):
        _l, ltable = datasets["lineitem"]
        sql = microbenchmark_query(ltable, "l_extendedprice", selectivity)
        expected = execute_local(sql, ltable)
        got, _ = fusion.query(sql)
        assert got.equals(expected)


class TestObjectIntegrity:
    def test_get_roundtrips_both_stores(self, datasets, fusion, baseline):
        for name, (data, _table) in datasets.items():
            assert fusion.get(name) == data
            assert baseline.get(name) == data

    def test_fusion_traffic_advantage_on_q4(self, datasets, fusion, baseline):
        _t, ttable = datasets["taxi"]
        q4 = [q for q in real_world_queries(datasets["lineitem"][1], ttable) if q.name == "Q4"][0]
        _r, fm = fusion.query(q4.sql)
        _r, bm = baseline.query(q4.sql)
        assert fm.network_bytes < bm.network_bytes
