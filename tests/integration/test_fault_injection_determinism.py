"""Reproducible chaos: the same fault-schedule seed and workload must
replay bit-identically, and a mid-workload crash must not fail or
corrupt a single query."""

import pytest

from repro.cluster import (
    Cluster,
    ClusterConfig,
    FaultEvent,
    FaultInjector,
    QueryMetrics,
    Simulator,
    random_schedule,
)
from repro.core import BaselineStore, FusionStore, StoreConfig
from repro.format import write_table
from repro.sql import execute_local
from tests.conftest import make_small_table

QUERIES = [
    "SELECT id, price FROM tbl WHERE qty < 5",
    "SELECT price FROM tbl WHERE price < 5.0",
    "SELECT count(*), avg(price) FROM tbl WHERE flag = true",
    "SELECT tag, sum(qty) FROM tbl WHERE id < 800 GROUP BY tag",
]
NUM_CLIENTS = 4
NUM_QUERIES = 12


def _build(store_cls, schedule=None, fault_seed=0):
    table = make_small_table(num_rows=2500, seed=77)
    data = write_table(table, row_group_rows=500)
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=12))
    store = store_cls(
        cluster,
        StoreConfig(size_scale=50.0, storage_overhead_threshold=0.1, block_size=500_000),
    )
    store.put("tbl", data)
    injector = None
    if schedule is not None:
        injector = FaultInjector(cluster, schedule, seed=fault_seed).install()
    return store, cluster, table, data, injector


def _run_workload(store, num_clients=NUM_CLIENTS, num_queries=NUM_QUERIES):
    """Closed-loop concurrent workload (issue order is deterministic)."""
    sim = store.sim
    start = sim.now
    metrics_out: list[QueryMetrics] = []
    results_out = []
    per_client = [num_queries // num_clients] * num_clients
    for i in range(num_queries % num_clients):
        per_client[i] += 1

    def client(cid: int, count: int):
        for qi in range(count):
            sql = QUERIES[(cid + qi * num_clients) % len(QUERIES)]
            qm = QueryMetrics()
            result = yield from store.query_process(sql, qm)
            metrics_out.append(qm)
            results_out.append(result)

    for cid, count in enumerate(per_client):
        if count:
            sim.process(client(cid, count))
    sim.run()
    return results_out, metrics_out, sim.now - start


def _fingerprint(metrics: list[QueryMetrics], cluster) -> list:
    per_query = [
        (
            qm.start_time,
            qm.end_time,
            qm.network_bytes,
            qm.retries,
            qm.timeouts,
            qm.hedges,
            qm.degraded_reads,
            qm.rpcs_issued,
        )
        for qm in metrics
    ]
    totals = cluster.metrics
    return [
        per_query,
        totals.network_bytes,
        totals.retries,
        totals.timeouts,
        totals.degraded_reads,
        totals.rpcs_issued,
    ]


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
def test_same_fault_seed_replays_bit_identically(store_cls):
    # Calibrate the horizon so the schedule lands inside the workload.
    store, _cl, _t, _d, _ = _build(store_cls)
    _r, _m, horizon = _run_workload(store)
    assert horizon > 0

    def one_run():
        schedule = random_schedule(
            12,
            horizon,
            seed=33,
            crashes=2,
            blips=1,
            slow_windows=1,
            drop_windows=1,
            corruptions=0,
            max_concurrent_down=2,
        )
        store, cluster, _table, _data, injector = _build(
            store_cls, schedule, fault_seed=33
        )
        results, metrics, _ = _run_workload(store)
        log = [(a.at, a.event.kind, a.event.node_id) for a in injector.log]
        return results, _fingerprint(metrics, cluster), log

    results_a, fp_a, log_a = one_run()
    results_b, fp_b, log_b = one_run()
    assert len(results_a) == NUM_QUERIES
    assert all(a.equals(b) for a, b in zip(results_a, results_b))
    assert fp_a == fp_b
    assert log_a == log_b and log_a  # faults actually fired


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
def test_mid_workload_crash_zero_failed_queries(store_cls):
    # Ground truth and wall-clock from a fault-free run.
    store, _cl, table, _d, _ = _build(store_cls)
    clean_results, _m, horizon = _run_workload(store)

    store, cluster, _table, _data, _ = _build(store_cls)
    victim = next(n.node_id for n in cluster.nodes if n.stored_bytes)
    schedule = [
        FaultEvent(at=store.sim.now + 0.5 * horizon, kind="crash", node_id=victim)
    ]
    injector = FaultInjector(cluster, schedule, seed=1).install()
    results, metrics, _ = _run_workload(store)

    assert len(results) == NUM_QUERIES  # zero failed queries
    assert injector.log and not cluster.node(victim).alive  # crash fired
    expected = {sql: execute_local(sql, table) for sql in QUERIES}
    # Completion order may differ from the clean run, but every result
    # must match the ground truth for one of the workload's queries.
    for result in results:
        assert any(result.equals(exp) for exp in expected.values())
    for sql, exp in expected.items():
        assert any(r.equals(exp) for r in results), sql
    assert len(clean_results) == len(results)


def test_different_fault_seed_changes_drop_outcomes():
    """The schedule seed is load-bearing: different seeds give different
    drop decisions (sanity check that randomness is not ignored)."""
    outcomes = {}
    for seed in (1, 2):
        store, cluster, _t, _d, injector = _build(
            FusionStore,
            [FaultEvent(at=0.0, kind="drop", node_id=0, duration=1e9, rate=0.5)],
            fault_seed=seed,
        )
        store.sim.run()  # let the driver open the drop window
        decisions = tuple(injector.drop_rpc(0) for _ in range(64))
        outcomes[seed] = decisions
    assert outcomes[1] != outcomes[2]
