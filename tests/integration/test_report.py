"""The report-rendering utilities."""

from repro.bench.report import format_bytes, format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table("T", ["a", "long-header"], [[1, 2], ["xxx", 4.5]])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1] == "="
        # All body rows align to the same width.
        assert len(lines[3]) == len(lines[2])

    def test_float_formatting(self):
        out = format_table("T", ["v"], [[0.123456], [12345.6], [float("nan")]])
        assert "0.123" in out
        assert "1.23e+04" in out
        assert "nan" in out

    def test_bool_formatting(self):
        out = format_table("T", ["v"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_empty_rows(self):
        out = format_table("T", ["a"], [])
        assert "T" in out


class TestFormatBytes:
    def test_units(self):
        assert format_bytes(512) == "512B"
        assert format_bytes(2048) == "2.0KB"
        assert format_bytes(5 * 1024**2) == "5.0MB"
        assert format_bytes(3 * 1024**3) == "3.0GB"
        assert "TB" in format_bytes(2 * 1024**4)
