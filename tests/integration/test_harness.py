"""The bench harness itself: workload drivers and comparison stats."""

import pytest

from repro.bench import (
    Comparison,
    build_pair,
    build_system,
    reduction_pct,
    run_open_loop,
    run_workload,
)
from repro.core import StoreConfig
from repro.format import write_table
from repro.sql import execute_local
from tests.conftest import make_small_table


@pytest.fixture(scope="module")
def objects():
    table = make_small_table(num_rows=2000, seed=41)
    return {"tbl": write_table(table, row_group_rows=500)}, table


@pytest.fixture(scope="module")
def config():
    return StoreConfig(size_scale=200.0, storage_overhead_threshold=0.1, block_size=2_000_000)


class TestBuildSystem:
    def test_build_fusion_and_baseline(self, objects, config):
        data, _table = objects
        fusion = build_system("fusion", data, store_config=config)
        baseline = build_system("baseline", data, store_config=config)
        assert "tbl" in fusion.store.objects
        assert "tbl" in baseline.store.objects

    def test_unknown_kind_raises(self, objects, config):
        data, _ = objects
        with pytest.raises(ValueError):
            build_system("minio", data, store_config=config)

    def test_pair_shares_nothing(self, objects, config):
        data, _ = objects
        fusion, baseline = build_pair(data, store_config=config)
        assert fusion.sim is not baseline.sim
        assert fusion.cluster is not baseline.cluster


class TestRunWorkload:
    def test_closed_loop_counts(self, objects, config):
        data, table = objects
        system = build_system("fusion", data, store_config=config)
        sql = "SELECT id FROM tbl WHERE qty < 5"
        stats = run_workload(system, [sql], num_clients=4, num_queries=10)
        assert len(stats.metrics) == 10
        assert len(stats.results) == 10
        assert stats.network_bytes > 0
        assert stats.wall_seconds > 0

    def test_results_are_correct(self, objects, config):
        data, table = objects
        system = build_system("fusion", data, store_config=config)
        sql = "SELECT id FROM tbl WHERE qty < 5"
        stats = run_workload(system, [sql], num_clients=3, num_queries=6)
        expected = execute_local(sql, table)
        assert all(r.equals(expected) for r in stats.results)

    def test_percentiles_ordered(self, objects, config):
        data, _ = objects
        system = build_system("fusion", data, store_config=config)
        stats = run_workload(
            system, ["SELECT id FROM tbl WHERE qty < 5"], num_clients=5, num_queries=20
        )
        assert stats.p50() <= stats.p99()

    def test_concurrency_inflates_latency(self, objects, config):
        data, _ = objects
        sql = "SELECT note FROM tbl WHERE qty < 25"
        solo = run_workload(
            build_system("baseline", data, store_config=config), [sql], 1, 8
        )
        crowd = run_workload(
            build_system("baseline", data, store_config=config), [sql], 8, 8
        )
        assert crowd.p99() > solo.p99()

    def test_empty_inputs_rejected(self, objects, config):
        data, _ = objects
        system = build_system("fusion", data, store_config=config)
        with pytest.raises(ValueError):
            run_workload(system, [], 1, 1)
        with pytest.raises(ValueError):
            run_workload(system, ["SELECT id FROM tbl"], 0, 1)

    def test_cpu_accounting_positive(self, objects, config):
        data, _ = objects
        system = build_system("fusion", data, store_config=config)
        stats = run_workload(
            system, ["SELECT note FROM tbl WHERE qty < 25"], num_clients=2, num_queries=4
        )
        assert stats.cpu_busy_seconds > 0
        assert stats.cpu_seconds_per_query > 0


class TestOpenLoop:
    def test_open_loop_issues_rate_times_duration(self, objects, config):
        data, _ = objects
        system = build_system("fusion", data, store_config=config)
        stats = run_open_loop(
            system, ["SELECT id FROM tbl WHERE qty < 5"], rate_qps=10, duration_s=1.0
        )
        assert len(stats.metrics) == 10

    def test_invalid_rate(self, objects, config):
        data, _ = objects
        system = build_system("fusion", data, store_config=config)
        with pytest.raises(ValueError):
            run_open_loop(system, ["SELECT id FROM tbl"], rate_qps=0, duration_s=1)


class TestComparison:
    def test_reduction_pct(self):
        assert reduction_pct(10.0, 5.0) == pytest.approx(50.0)
        assert reduction_pct(10.0, 12.0) == pytest.approx(-20.0)
        assert reduction_pct(0.0, 5.0) == 0.0

    def test_comparison_properties(self, objects, config):
        data, _ = objects
        fusion, baseline = build_pair(data, store_config=config)
        sql = "SELECT note FROM tbl WHERE qty < 3"
        f = run_workload(fusion, [sql], 4, 8)
        b = run_workload(baseline, [sql], 4, 8)
        comp = Comparison(label="t", fusion=f, baseline=b)
        assert comp.traffic_ratio > 0
        assert -100 <= comp.p50_reduction <= 100
