"""Noisy-neighbour isolation at test scale: tenant A storms open-loop at
2.5x the calibrated capacity while tenant B stays closed-loop within its
share.  The QoS layer (DRR weights + A's quota) must keep B whole: B is
refused nothing, keeps >= 80% of its isolated goodput and its p99 under
the deadline, while every one of A's refusals is a *typed* failure."""

import pytest

from repro.cluster import Cluster, ClusterConfig, QueryMetrics, Simulator
from repro.cluster.overload import DeadlineExceeded
from repro.cluster.qos import QuotaExceeded
from repro.cluster.simcore import QueueFull
from repro.core import BaselineStore, FusionStore, StoreConfig
from repro.core.scatter_gather import RemoteOpError
from repro.format import write_table
from tests.conftest import make_small_table

QUERIES = [
    "SELECT id, price FROM tbl WHERE qty < 5",
    "SELECT count(*), avg(price) FROM tbl WHERE flag = true",
]
TYPED = (QuotaExceeded, DeadlineExceeded, QueueFull, RemoteOpError)


def _build(store_cls, **qos_overrides):
    table = make_small_table(num_rows=2500, seed=77)
    data = write_table(table, row_group_rows=500)
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=12))
    config = StoreConfig(
        size_scale=50.0,
        storage_overhead_threshold=0.1,
        block_size=500_000,
        **qos_overrides,
    )
    store = store_cls(cluster, config)
    store.put("tbl", data)
    return sim, cluster, store


def _drive(sim, store, duration_s, open_loop=None, closed_loop=None):
    """Mixed open-loop (tenant -> qps) / closed-loop (tenant -> clients)
    workload for ``duration_s``; returns per-tenant (ok latencies,
    refusal count).  An untyped failure propagates and fails the test."""
    open_loop = open_loop or {}
    closed_loop = closed_loop or {}
    start = sim.now
    oks = {t: [] for t in (*open_loop, *closed_loop)}
    refused = {t: 0 for t in oks}

    def one_query(sql, tenant, arrival):
        qm = QueryMetrics()
        try:
            yield from store.query_process(sql, qm, tenant=tenant)
        except TYPED:
            refused[tenant] += 1
        else:
            oks[tenant].append(sim.now - arrival)

    def storm(tenant, rate):
        for i in range(int(rate * duration_s)):
            sim.process(one_query(QUERIES[i % len(QUERIES)], tenant, sim.now))
            yield sim.timeout(1.0 / rate)

    def paced(tenant, cid):
        qi = 0
        while sim.now - start < duration_s:
            yield from one_query(QUERIES[(cid + qi) % len(QUERIES)], tenant, sim.now)
            qi += 1

    for tenant, rate in open_loop.items():
        sim.process(storm(tenant, rate))
    for tenant, clients in closed_loop.items():
        for cid in range(clients):
            sim.process(paced(tenant, cid))
    sim.run()
    return oks, refused


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
def test_storming_tenant_cannot_crowd_out_a_paced_one(store_cls):
    # Calibrate: closed-loop capacity and uncontended latency, QoS off.
    sim, _cluster, store = _build(store_cls)
    oks, _ = _drive(sim, store, 2.0, closed_loop={"cal": 6})
    capacity_qps = len(oks["cal"]) / 2.0
    deadline = 10.0 * max(oks["cal"])
    assert capacity_qps > 0

    storm_rate = 2.5 * capacity_qps
    duration = 60 / storm_rate
    policy = dict(
        qos_enabled=True,
        tenant_weights={"A": 1.0, "B": 4.0},
        tenant_requests_per_s={"A": 0.2 * capacity_qps},
        # At test scale the whole run lasts a fraction of a second, so
        # the burst window must shrink with it or A's storm is admitted
        # wholesale out of the initial bucket.
        quota_burst_s=duration / 10.0,
        admission_queue_depth=16,
        admission_policy="reject",
        tenant_queue_depth=16,
    )

    # Tenant B alone under the same policy: the isolation yardstick.
    sim, _cluster, store = _build(store_cls, **policy)
    store.config.default_deadline_s = deadline  # armed after the load
    iso_oks, iso_refused = _drive(sim, store, duration, closed_loop={"B": 3})
    assert iso_refused["B"] == 0
    iso_goodput = len(iso_oks["B"])

    # The storm: A open-loop at 2.5x capacity against the same paced B.
    sim, cluster, store = _build(store_cls, **policy)
    store.config.default_deadline_s = deadline
    oks, refused = _drive(
        sim, store, duration, open_loop={"A": storm_rate}, closed_loop={"B": 3}
    )

    # B is refused nothing and keeps its share of goodput and latency.
    assert refused["B"] == 0
    assert len(oks["B"]) >= 0.8 * iso_goodput
    assert max(oks["B"]) <= deadline

    # A absorbs the squeeze entirely as typed refusals (anything untyped
    # would have propagated out of _drive), most of them at the quota.
    assert refused["A"] > 0
    assert cluster.qos.stats["A"]["quota_rejected"] > 0

    # Both tenants surface in the per-tenant metrics roll-up.
    tenants = cluster.metrics.tenants
    assert set(tenants) == {"A", "B"}
    assert tenants["B"]["goodput"] == len(oks["B"])
    assert tenants["A"]["quota_exceeded"] == cluster.qos.stats["A"]["quota_rejected"]
