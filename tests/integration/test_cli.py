"""The `python -m repro.bench` CLI."""

import pytest

from repro.bench.__main__ import main
from repro.bench.experiments import ALL_EXPERIMENTS


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig13ab", "table3", "fig16bc"):
            assert name in out

    def test_help(self, capsys):
        assert main([]) == 0
        assert "experiments" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 1
        assert "unknown" in capsys.readouterr().err

    def test_runs_one_experiment(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "Q1" in out and "took" in out

    def test_registry_complete(self):
        # Every paper table/figure has an entry.
        for required in (
            "table3",
            "table4",
            "fig4a",
            "fig4b",
            "fig4c",
            "fig4d",
            "fig6",
            "fig10a",
            "fig10b",
            "fig12",
            "fig13ab",
            "fig13cd",
            "fig14ab",
            "fig14c",
            "fig14d",
            "fig15a",
            "fig15b",
            "fig16a",
            "fig16bc",
        ):
            assert required in ALL_EXPERIMENTS

    def test_every_experiment_has_docstring(self):
        for name, fn in ALL_EXPERIMENTS.items():
            assert fn.__doc__, name

    def test_json_export(self, tmp_path, capsys):
        import json

        assert main(["table4", "--json", str(tmp_path)]) == 0
        doc = json.loads((tmp_path / "table4.json").read_text())
        assert doc["experiment"] == "table4"
        assert doc["rows"]

    def test_json_flag_needs_dir(self, capsys):
        assert main(["table4", "--json"]) == 1
