"""Randomised fault injection: any sequence of node kills and recoveries
that never exceeds the code's tolerance must preserve every byte and every
query answer."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterConfig, Simulator
from repro.core import FusionStore, StoreConfig
from repro.format import write_table
from repro.sql import execute_local
from tests.conftest import make_small_table

NUM_NODES = 12


def _fresh_system():
    table = make_small_table(num_rows=1600, seed=88)
    data = write_table(table, row_group_rows=400)
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=NUM_NODES))
    store = FusionStore(
        cluster,
        StoreConfig(size_scale=20.0, storage_overhead_threshold=0.1),
    )
    store.put("tbl", data)
    return store, cluster, table, data


# Each step: (node_to_kill, recover_immediately?).  Keeping at most
# parity-many unrecovered failures alive preserves recoverability.
steps = st.lists(
    st.tuples(st.integers(0, NUM_NODES - 1), st.booleans()),
    min_size=1,
    max_size=5,
)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(plan=steps)
def test_data_survives_any_tolerable_failure_sequence(plan):
    store, cluster, table, data = _fresh_system()
    sql = "SELECT id, price FROM tbl WHERE qty < 6"
    expected = execute_local(sql, table)

    dead: set[int] = set()
    for node_id, recover in plan:
        if node_id in dead:
            continue
        # Never exceed tolerance: with parity 3 we allow at most 2
        # concurrently-degraded nodes so every stripe keeps k readable.
        if len(dead) >= 2 and not recover:
            continue
        for bid in list(cluster.node(node_id)._blocks):
            cluster.node(node_id).drop_block(bid)
        cluster.fail_node(node_id)
        if recover:
            store.recover_node(node_id)
            cluster.restore_node(node_id)
        else:
            dead.add(node_id)

        # Queries stay correct at every intermediate state.
        result, _ = store.query(sql)
        assert result.equals(expected)

    # Recover the remaining dead nodes and verify byte-level integrity.
    for node_id in dead:
        store.recover_node(node_id)
        cluster.restore_node(node_id)
    assert store.get("tbl") == data
    report = store.verify_object("tbl")
    assert not report.corrupt_stripes
