"""ISSUE 4 acceptance: a traced taxi-workload query must export valid
Chrome trace JSON whose device spans cover >= 95% of the accounted query
time, nest coordinator -> per-node RPC -> disk/CPU work, and leave at
least one pushdown audit record per projected chunk."""

import json

from repro.cluster import Cluster, ClusterConfig, QueryMetrics, Simulator
from repro.core import FusionStore, StoreConfig
from repro.obs.validate import validate_chrome_trace
from repro.workloads.taxi import taxi_file

NUM_ROWS = 20_000
ROW_GROUP_ROWS = 5_000
NUM_ROW_GROUPS = NUM_ROWS // ROW_GROUP_ROWS
SQL = "SELECT trip_distance, fare FROM taxi WHERE passenger_count > 4"

#: Device/wait spans and the QueryMetrics category each one charges.
DEVICE_CATEGORY = {
    "disk.read": "disk",
    "disk.write": "disk",
    "cpu.compute": "processing",
    "net.transfer": "network",
    "rpc.timeout_wait": "other",
}


def _traced_taxi_query():
    data, _table = taxi_file(num_rows=NUM_ROWS, row_group_rows=ROW_GROUP_ROWS)
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=12))
    store = FusionStore(
        cluster,
        StoreConfig(
            size_scale=100.0,
            storage_overhead_threshold=0.1,
            block_size=2_000_000,
            tracing_enabled=True,
            metrics_registry_enabled=True,
        ),
    )
    store.put("taxi", data)
    qm = QueryMetrics()
    proc = sim.process(store.query_process(SQL, qm))
    sim.run()
    return store, sim.tracer, qm, proc.value


def test_traced_query_meets_acceptance_criteria(tmp_path):
    store, tracer, qm, result = _traced_taxi_query()
    assert result.matched_rows > 0

    # --- spans nest coordinator -> per-node RPC -> device work ----------
    (query_span,) = tracer.find("query")
    in_query = [s for s in tracer.spans if query_span in tracer.ancestors(s)]
    device_spans = [s for s in in_query if s.name in DEVICE_CATEGORY]
    assert device_spans
    for span in device_spans:
        names = [a.name for a in tracer.ancestors(span)]
        assert "query" in names
        # Remote disk work always sits under an RPC span (coordinator
        # -> rpc.batch -> rpc.op -> disk.read); compute may also run
        # coordinator-local (bitmap combine), directly under its stage.
        if span.name == "disk.read":
            assert any(n.startswith("rpc") for n in names), names
    assert any(
        span.name == "cpu.compute"
        and any(a.name.startswith("rpc") for a in tracer.ancestors(span))
        for span in device_spans
    )

    # --- device spans cover >= 95% of the accounted query time ----------
    accounted = sum(qm.seconds.values())
    assert accounted > 0
    covered = sum(s.duration for s in device_spans)
    assert covered >= 0.95 * accounted, (covered, accounted)
    # And per category the span time never exceeds what was charged
    # overall (spans are exact charge windows, a query can overlap
    # nothing but its own work).
    per_cat = {c: 0.0 for c in set(DEVICE_CATEGORY.values())}
    for s in device_spans:
        per_cat[DEVICE_CATEGORY[s.name]] += s.duration
    for cat, seconds in per_cat.items():
        assert seconds <= qm.seconds[cat] + 1e-9, (cat, seconds, qm.seconds)

    # --- >= 1 audit record per projected chunk ---------------------------
    records = store.audit.for_object("taxi")
    chunk_keys = {r.chunk_key for r in records}
    assert len(chunk_keys) == NUM_ROW_GROUPS * 2  # two projected columns
    groups_seen = {key[0] for key in chunk_keys}
    assert groups_seen == set(range(NUM_ROW_GROUPS))

    # --- the export is loadable, valid Chrome trace JSON -----------------
    trace = tracer.chrome_trace(process_name="fusion")
    assert validate_chrome_trace(trace) == []
    path = tmp_path / "trace.json"
    tracer.write_chrome_trace(str(path), process_name="fusion")
    reloaded = json.loads(path.read_text())
    assert validate_chrome_trace(reloaded) == []
    assert any(e.get("name") == "pushdown.decision" for e in reloaded["traceEvents"])

    # --- registry fed by the query ---------------------------------------
    registry = store.cluster.metrics.registry
    assert registry is not None
    dump = registry.to_dict()
    assert dump["repro_queries_total"]["samples"][0]["value"] == 1


def test_text_summary_names_the_pipeline_stages():
    _store, tracer, _qm, _result = _traced_taxi_query()
    summary = tracer.text_summary()
    assert "query" in summary
    assert "rpc" in summary
    assert any(dev in summary for dev in ("disk.read", "net.transfer"))
