"""Scrubbing (parity verification) and the ranged Get API."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterConfig, Simulator
from repro.core import BaselineStore, FusionStore, StoreConfig, check_stripe
from repro.ec import RS_9_6
from repro.format import write_table
from tests.conftest import make_small_table


def _system(store_cls):
    table = make_small_table(num_rows=2000, seed=91)
    data = write_table(table, row_group_rows=400)
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=10))
    store = store_cls(
        cluster,
        StoreConfig(size_scale=50.0, storage_overhead_threshold=0.1, block_size=500_000),
    )
    store.put("tbl", data)
    return store, cluster, data


def _corrupt_one_block(cluster) -> str:
    for node in cluster.nodes:
        if node._blocks:
            bid = next(iter(node._blocks))
            node._blocks[bid] = node._blocks[bid].copy()
            node._blocks[bid][len(node._blocks[bid]) // 2] ^= 0x5A
            return bid
    raise AssertionError("no blocks stored")


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
class TestScrub:
    def test_fresh_object_is_clean(self, store_cls):
        store, _cluster, _data = _system(store_cls)
        report = store.verify_object("tbl")
        assert report.clean
        assert report.stripes_checked >= 1

    def test_detects_bit_rot(self, store_cls):
        store, cluster, _data = _system(store_cls)
        _corrupt_one_block(cluster)
        report = store.verify_object("tbl")
        assert not report.clean
        assert len(report.corrupt_stripes) == 1

    def test_missing_block_reported_incomplete(self, store_cls):
        store, cluster, _data = _system(store_cls)
        for node in cluster.nodes:
            if node._blocks:
                node.drop_block(next(iter(node._blocks)))
                break
        report = store.verify_object("tbl")
        assert report.incomplete_stripes
        assert not report.clean

    def test_dead_node_counts_as_incomplete(self, store_cls):
        store, cluster, _data = _system(store_cls)
        used = [n.node_id for n in cluster.nodes if n.stored_bytes]
        cluster.fail_node(used[0])
        report = store.verify_object("tbl")
        assert report.incomplete_stripes


class TestCheckStripe:
    def _stripe(self, sizes, seed=0):
        rng = np.random.default_rng(seed)
        blocks = [rng.integers(0, 256, size=s, dtype=np.uint8) for s in sizes]
        from repro.ec import encode_stripe

        encoded = encode_stripe(RS_9_6, blocks)
        return encoded.data_blocks, encoded.parity_blocks

    def test_ok(self):
        data, parity = self._stripe([100, 50, 25, 10, 5, 1])
        assert check_stripe(RS_9_6, data, parity) == "ok"

    def test_corrupt_data(self):
        data, parity = self._stripe([100, 50, 25, 10, 5, 1])
        data[0] = data[0].copy()
        data[0][3] ^= 1
        assert check_stripe(RS_9_6, data, parity) == "corrupt"

    def test_corrupt_parity(self):
        data, parity = self._stripe([64] * 6)
        parity[2] = parity[2].copy()
        parity[2][0] ^= 1
        assert check_stripe(RS_9_6, data, parity) == "corrupt"

    def test_incomplete(self):
        data, parity = self._stripe([64] * 6)
        data[1] = None
        assert check_stripe(RS_9_6, data, parity) == "incomplete"


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
class TestRangedGet:
    def test_full_get_default(self, store_cls):
        store, _cluster, data = _system(store_cls)
        assert store.get("tbl") == data

    def test_arbitrary_ranges(self, store_cls):
        store, _cluster, data = _system(store_cls)
        for offset, size in [(0, 1), (4, 100), (1000, 4096), (len(data) - 7, 7)]:
            assert store.get("tbl", offset, size) == data[offset : offset + size]

    def test_zero_size(self, store_cls):
        store, _cluster, _data = _system(store_cls)
        assert store.get("tbl", 10, 0) == b""

    def test_out_of_bounds_raises(self, store_cls):
        store, _cluster, data = _system(store_cls)
        proc = store.sim.process(store.get_process("tbl", offset=len(data), size=1))
        with pytest.raises(ValueError, match="outside"):
            store.sim.run()

    @settings(max_examples=15, deadline=None)
    @given(offset_frac=st.floats(0, 1), size_frac=st.floats(0, 1))
    def test_range_property(self, store_cls, offset_frac, size_frac):
        store, data = _get_cached_system(store_cls)
        offset = int(offset_frac * (len(data) - 1))
        size = int(size_frac * (len(data) - offset))
        assert store.get("tbl", offset, size) == data[offset : offset + size]


_SYSTEM_CACHE: dict = {}


def _get_cached_system(store_cls):
    if store_cls not in _SYSTEM_CACHE:
        store, _cluster, data = _system(store_cls)
        _SYSTEM_CACHE[store_cls] = (store, data)
    return _SYSTEM_CACHE[store_cls]
