"""Batched vs. unbatched scatter-gather equivalence (the A/B toggle).

Batching changes *when* messages travel, never *what* they carry: query
results must be bit-identical, traffic identical, and the RPC count
strictly lower whenever a node serves more than one op per stage.
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterConfig, Simulator
from repro.core import BaselineStore, FusionStore, StoreConfig
from tests.conftest import make_small_table
from repro.format import write_table

QUERIES = [
    "SELECT id, price FROM tbl WHERE qty < 25",
    "SELECT qty FROM tbl WHERE qty < 10",  # fused single-column path
    "SELECT tag, note FROM tbl WHERE price < 90 AND qty < 40",
    "SELECT sum(price), count(*) FROM tbl WHERE qty < 25",
]


def _build(kind: str, batching: bool, num_nodes: int = 9):
    # 20 row groups over 9 nodes guarantees multi-op node groups; the
    # small block size does the same for the baseline's fixed blocks.
    data = write_table(make_small_table(num_rows=4000), row_group_rows=200)
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=num_nodes))
    config = StoreConfig(
        size_scale=100.0,
        storage_overhead_threshold=0.1,
        block_size=500_000,
        enable_rpc_batching=batching,
    )
    store = (FusionStore if kind == "fusion" else BaselineStore)(cluster, config)
    store.put("tbl", data)
    return store, data


@pytest.mark.parametrize("kind", ["fusion", "baseline"])
class TestBatchingEquivalence:
    def test_results_and_traffic_identical_rpcs_lower(self, kind):
        batched, _ = _build(kind, batching=True)
        unbatched, _ = _build(kind, batching=False)
        for sql in QUERIES:
            r_on, m_on = batched.query(sql)
            r_off, m_off = unbatched.query(sql)
            assert r_on.equals(r_off), sql
            assert m_on.network_bytes == m_off.network_bytes, sql
            assert m_on.rpcs_issued < m_off.rpcs_issued, sql
            assert m_on.rpcs_issued + m_on.rpcs_saved == m_off.rpcs_issued, sql
            assert m_off.rpcs_saved == 0, sql

    def test_get_identical_bytes(self, kind):
        batched, data = _build(kind, batching=True)
        unbatched, _ = _build(kind, batching=False)
        assert batched.get("tbl") == data
        assert unbatched.get("tbl") == data
        assert batched.get("tbl", 100, 5000) == data[100:5100]

    def test_deterministic_latencies(self, kind):
        """Two identical batched runs produce identical latency traces."""

        def trace():
            store, _ = _build(kind, batching=True)
            out = []
            for sql in QUERIES:
                _result, m = store.query(sql)
                out.append((m.latency, m.network_bytes, m.rpcs_issued))
            return out

        assert trace() == trace()


class TestDegradedBatching:
    @pytest.mark.parametrize("kind", ["fusion", "baseline"])
    def test_degraded_reads_match_across_modes(self, kind):
        sql = "SELECT id, price FROM tbl WHERE qty < 25"
        batched, data = _build(kind, batching=True)
        unbatched, _ = _build(kind, batching=False)
        for store in (batched, unbatched):
            store.cluster.fail_node(0)
        r_on, m_on = batched.query(sql)
        r_off, m_off = unbatched.query(sql)
        assert r_on.equals(r_off)
        assert m_on.network_bytes == m_off.network_bytes
        assert m_on.rpcs_issued <= m_off.rpcs_issued
        assert batched.get("tbl") == data


class TestRpcAccounting:
    def test_cluster_metrics_accumulate(self):
        store, _ = _build("fusion", batching=True)
        store.query(QUERIES[0])
        cm = store.cluster.metrics
        assert cm.rpcs_issued > 0
        assert cm.rpcs_saved > 0
        assert store.cluster.network.rpcs_saved >= cm.rpcs_saved

    def test_fused_query_single_rpc_per_node(self):
        """The acceptance bound: ≤ one data-plane RPC per (node, stage)."""
        store, _ = _build("fusion", batching=True)
        result, m = store.query("SELECT qty FROM tbl WHERE qty < 10")
        assert result.matched_rows > 0
        nodes_touched = len(
            {loc for loc in store.chunk_nodes("tbl").values()}
        )
        # Fused stage: one batched request per touched node (replies
        # stream over the open exchange), plus the final result transfer
        # to the client.
        assert m.rpcs_issued <= nodes_touched + 1
