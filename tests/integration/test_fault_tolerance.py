"""Failure injection: lose nodes up to the code's tolerance, recover, and
verify both byte-level integrity and query correctness."""

import pytest

from repro.cluster import Cluster, ClusterConfig, Simulator
from repro.core import FusionStore, StoreConfig
from repro.ec import RS_9_6, CodeParams
from repro.format import write_table
from repro.sql import execute_local
from tests.conftest import make_small_table


@pytest.fixture
def system():
    table = make_small_table(num_rows=3000, seed=31)
    data = write_table(table, row_group_rows=600)
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=12))
    store = FusionStore(
        cluster, StoreConfig(size_scale=50.0, storage_overhead_threshold=0.1)
    )
    store.put("tbl", data)
    return store, cluster, table, data


def _kill(cluster, node_id):
    for bid in list(cluster.node(node_id)._blocks):
        cluster.node(node_id).drop_block(bid)


class TestProgressiveFailures:
    def test_recover_up_to_parity_nodes(self, system):
        store, cluster, table, data = system
        obj = store.objects["tbl"]
        victims = obj.stripes[0].node_ids[: RS_9_6.parity]
        for v in victims:
            _kill(cluster, v)
            store.recover_node(v)
        assert store.get("tbl") == data
        sql = "SELECT id FROM tbl WHERE qty < 5"
        result, _ = store.query(sql)
        assert result.equals(execute_local(sql, table))

    def test_sequential_failures_beyond_parity_with_recovery(self, system):
        """More total failures than n-k are fine when recovered one at a
        time (each recovery restores full redundancy)."""
        store, cluster, table, data = system
        obj = store.objects["tbl"]
        for round_ in range(4):
            victim = obj.stripes[0].node_ids[0]
            _kill(cluster, victim)
            store.recover_node(victim)
        assert store.get("tbl") == data

    def test_simultaneous_loss_beyond_tolerance_fails(self, system):
        store, cluster, _table, _data = system
        obj = store.objects["tbl"]
        victims = obj.stripes[0].node_ids[: RS_9_6.parity + 1]
        for v in victims:
            _kill(cluster, v)
        from repro.ec import DecodeError

        with pytest.raises(DecodeError):
            store.recover_node(victims[0])

    def test_parity_only_loss(self, system):
        store, cluster, _table, data = system
        obj = store.objects["tbl"]
        parity_node = obj.stripes[0].node_ids[RS_9_6.k]
        _kill(cluster, parity_node)
        rebuilt = store.recover_node(parity_node)
        assert rebuilt > 0
        assert store.get("tbl") == data

    def test_recovery_restores_redundancy_level(self, system):
        """After recovery, losing n-k *different* nodes is survivable again."""
        store, cluster, _table, data = system
        obj = store.objects["tbl"]
        first = obj.stripes[0].node_ids[0]
        _kill(cluster, first)
        store.recover_node(first)
        fresh_victims = obj.stripes[0].node_ids[:2]
        for v in fresh_victims:
            _kill(cluster, v)
            store.recover_node(v)
        assert store.get("tbl") == data


class TestWideCode:
    def test_rs_14_10_store_and_recover(self):
        table = make_small_table(num_rows=2000, seed=32)
        data = write_table(table, row_group_rows=500)
        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(num_nodes=16))
        store = FusionStore(
            cluster,
            StoreConfig(
                code=CodeParams(14, 10), size_scale=50.0, storage_overhead_threshold=0.2
            ),
        )
        store.put("tbl", data)
        obj = store.objects["tbl"]
        victims = obj.stripes[0].node_ids[:4]  # full parity budget
        for v in victims:
            _kill(cluster, v)
        for v in victims:
            store.recover_node(v)
        assert store.get("tbl") == data
