"""Per-page statistics and the page index reader."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.format.pages import (
    chunk_page_index,
    decode_column_chunk,
    encode_column_chunk,
)
from repro.format.schema import ColumnType
from repro.sql.ast_nodes import CompareOp, Comparison
from repro.sql.predicate import eval_leaf, leaf_may_match


class TestPageIndex:
    def test_page_boundaries(self):
        values = np.arange(2500, dtype=np.int64)
        chunk = encode_column_chunk(ColumnType.INT64, values, "zlib", page_values=1000)
        pages = chunk_page_index(chunk.data)
        assert [p.num_values for p in pages] == [1000, 1000, 500]
        assert [p.start_row for p in pages] == [0, 1000, 2000]

    def test_stats_match_page_contents(self):
        values = np.arange(3000, dtype=np.int64)
        chunk = encode_column_chunk(ColumnType.INT64, values, "zlib", page_values=1000)
        for p in chunk_page_index(chunk.data):
            assert p.min_value == p.start_row
            assert p.max_value == p.start_row + p.num_values - 1

    def test_string_stats(self):
        values = np.array([f"k{i:04d}" for i in range(1000)], dtype=object)
        chunk = encode_column_chunk(ColumnType.STRING, values, "none", page_values=500)
        pages = chunk_page_index(chunk.data)
        assert pages[0].min_value == "k0000"
        assert pages[1].max_value == "k0999"

    def test_long_strings_omit_stats(self):
        values = np.array(["x" * 100, "y" * 100], dtype=object)
        chunk = encode_column_chunk(ColumnType.STRING, values, "none", page_values=1)
        for p in chunk_page_index(chunk.data):
            assert p.min_value is None and p.max_value is None

    def test_double_and_date_and_bool(self):
        for type_, values in [
            (ColumnType.DOUBLE, np.linspace(0, 1, 100)),
            (ColumnType.DATE, np.arange(100, dtype=np.int32)),
            (ColumnType.BOOL, np.array([False] * 50 + [True] * 50)),
        ]:
            chunk = encode_column_chunk(type_, values, "zlib", page_values=50)
            pages = chunk_page_index(chunk.data)
            assert len(pages) == 2
            assert pages[0].min_value is not None

    def test_dictionary_encoded_chunk(self):
        values = np.array([i % 5 for i in range(2000)], dtype=np.int64)
        chunk = encode_column_chunk(ColumnType.INT64, values, "zlib", page_values=400)
        assert chunk.encoding == "dictionary"
        pages = chunk_page_index(chunk.data)
        assert len(pages) == 5
        assert all(p.min_value == 0 and p.max_value == 4 for p in pages)

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(1, 600),
        page_values=st.integers(1, 200),
        seed=st.integers(0, 50),
    )
    def test_index_consistent_with_decode(self, n, page_values, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(-50, 50, size=n)
        chunk = encode_column_chunk(ColumnType.INT64, values, "zlib", page_values=page_values)
        pages = chunk_page_index(chunk.data)
        decoded = decode_column_chunk(chunk.data)
        assert sum(p.num_values for p in pages) == n
        for p in pages:
            segment = decoded[p.start_row : p.start_row + p.num_values]
            assert p.min_value == segment.min()
            assert p.max_value == segment.max()


class TestPageSkippingConservative:
    """The invariant page skipping relies on: a pruned page has no match."""

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(1, 500),
        literal=st.integers(-60, 60),
        op=st.sampled_from(list(CompareOp)),
        seed=st.integers(0, 30),
    )
    def test_pruned_pages_have_no_matches(self, n, literal, op, seed):
        rng = np.random.default_rng(seed)
        values = np.sort(rng.integers(-50, 50, size=n))
        chunk = encode_column_chunk(ColumnType.INT64, values, "zlib", page_values=100)
        decoded = decode_column_chunk(chunk.data)
        leaf = Comparison("x", op, literal)
        for p in chunk_page_index(chunk.data):
            if not leaf_may_match(leaf, ColumnType.INT64, p.min_value, p.max_value):
                segment = decoded[p.start_row : p.start_row + p.num_values]
                assert not eval_leaf(leaf, ColumnType.INT64, segment).any()
