"""Table and Column: coercion, slicing, projection, equality."""

import numpy as np
import pytest

from repro.format import Column, ColumnType, Field, Table


class TestColumn:
    def test_coerces_dtype(self):
        col = Column(Field("x", ColumnType.INT64), [1, 2, 3])
        assert col.values.dtype == np.int64

    def test_string_column_rejects_non_str(self):
        with pytest.raises(TypeError, match="non-str"):
            Column(Field("s", ColumnType.STRING), ["a", 5])

    def test_take_and_slice(self):
        col = Column(Field("x", ColumnType.INT64), np.arange(10))
        assert col.take(np.array([1, 3])).values.tolist() == [1, 3]
        assert col.slice(2, 5).values.tolist() == [2, 3, 4]

    def test_plain_size_fixed_width(self):
        col = Column(Field("x", ColumnType.DOUBLE), np.zeros(10))
        assert col.plain_size() == 80
        date = Column(Field("d", ColumnType.DATE), np.zeros(10, dtype=np.int32))
        assert date.plain_size() == 40

    def test_plain_size_strings(self):
        col = Column(Field("s", ColumnType.STRING), ["ab", "c"])
        assert col.plain_size() == (4 + 2) + (4 + 1)


class TestTable:
    def test_requires_columns(self):
        with pytest.raises(ValueError):
            Table([])

    def test_rejects_unequal_lengths(self):
        a = Column(Field("a", ColumnType.INT64), [1, 2])
        b = Column(Field("b", ColumnType.INT64), [1, 2, 3])
        with pytest.raises(ValueError, match="unequal"):
            Table([a, b])

    def test_rejects_duplicate_names(self):
        a = Column(Field("a", ColumnType.INT64), [1])
        b = Column(Field("a", ColumnType.INT64), [2])
        with pytest.raises(ValueError, match="duplicate"):
            Table([a, b])

    def test_getitem_and_column(self, small_table):
        assert np.array_equal(small_table["id"], small_table.column("id").values)

    def test_unknown_column_raises(self, small_table):
        with pytest.raises(KeyError):
            small_table.column("nope")

    def test_select_order(self, small_table):
        sub = small_table.select(["price", "id"])
        assert sub.schema.names() == ["price", "id"]

    def test_slice_preserves_schema(self, small_table):
        sub = small_table.slice(10, 20)
        assert sub.num_rows == 10
        assert sub.schema == small_table.schema

    def test_take(self, small_table):
        idx = np.array([5, 1, 100])
        sub = small_table.take(idx)
        assert sub["id"].tolist() == [5, 1, 100]

    def test_equals_self(self, small_table):
        assert small_table.equals(small_table)

    def test_equals_detects_value_change(self, small_table):
        other = small_table.take(np.arange(small_table.num_rows))
        other["qty"][0] += 1
        assert not small_table.equals(other)

    def test_equals_detects_schema_change(self, small_table):
        assert not small_table.equals(small_table.select(["id", "qty"]))

    def test_equals_nan_safe(self):
        t1 = Table.from_dict({"x": (ColumnType.DOUBLE, [1.0, float("nan")])})
        t2 = Table.from_dict({"x": (ColumnType.DOUBLE, [1.0, float("nan")])})
        assert t1.equals(t2)

    def test_from_dict_preserves_order(self):
        t = Table.from_dict(
            {
                "b": (ColumnType.INT64, [1]),
                "a": (ColumnType.INT64, [2]),
            }
        )
        assert t.schema.names() == ["b", "a"]
