"""Whole-file writer/reader: round trips, footer facts, error handling."""

import struct

import numpy as np
import pytest

from repro.format import (
    ColumnType,
    FormatError,
    PaxFile,
    Table,
    decode_column_chunk,
    read_metadata,
    read_table,
    write_table,
)
from tests.conftest import make_small_table


class TestRoundTrip:
    @pytest.mark.parametrize("codec", ["none", "zlib", "snappy"])
    def test_full_roundtrip(self, small_table, codec):
        data = write_table(small_table, row_group_rows=700, codec=codec)
        assert read_table(data).equals(small_table)

    def test_column_subset(self, small_file, small_table):
        out = read_table(small_file, columns=["price", "tag"])
        assert out.equals(small_table.select(["price", "tag"]))

    def test_single_row_group(self, small_table):
        data = write_table(small_table, row_group_rows=10_000)
        f = PaxFile(data)
        assert f.metadata.num_row_groups == 1
        assert f.read_table().equals(small_table)

    def test_exact_row_group_boundary(self):
        table = make_small_table(num_rows=1000)
        data = write_table(table, row_group_rows=250)
        f = PaxFile(data)
        assert f.metadata.num_row_groups == 4
        assert all(rg.num_rows == 250 for rg in f.metadata.row_groups)
        assert f.read_table().equals(table)

    def test_trailing_partial_row_group(self):
        table = make_small_table(num_rows=1001)
        f = PaxFile(write_table(table, row_group_rows=250))
        assert f.metadata.num_row_groups == 5
        assert f.metadata.row_groups[-1].num_rows == 1

    def test_single_row_table(self):
        table = make_small_table(num_rows=1)
        assert read_table(write_table(table)).equals(table)


class TestChunkAccess:
    def test_chunk_bytes_are_self_contained(self, small_file, small_table):
        f = PaxFile(small_file)
        meta = f.metadata.chunk(1, "qty")
        values = decode_column_chunk(f.chunk_bytes(meta))
        assert np.array_equal(values, small_table["qty"][500:1000])

    def test_read_chunk(self, small_file, small_table):
        f = PaxFile(small_file)
        out = f.read_chunk(0, "tag")
        assert list(out) == list(small_table["tag"][:500])

    def test_read_column_concatenates_row_groups(self, small_file, small_table):
        f = PaxFile(small_file)
        assert np.array_equal(f.read_column("price"), small_table["price"])

    def test_chunks_are_contiguous(self, small_file):
        f = PaxFile(small_file)
        chunks = f.metadata.all_chunks()
        pos = 4  # after magic
        for c in chunks:
            assert c.offset == pos
            pos += c.size


class TestFooterFacts:
    def test_stats_match_values(self, small_file, small_table):
        f = PaxFile(small_file)
        meta = f.metadata.chunk(0, "qty")
        segment = small_table["qty"][:500]
        assert meta.stats.min_value == segment.min()
        assert meta.stats.max_value == segment.max()

    def test_plain_and_compressed_sizes(self, small_file):
        f = PaxFile(small_file)
        for c in f.metadata.all_chunks():
            assert c.size > 0
            assert c.plain_size > 0
            assert c.compressibility > 0

    def test_num_rows(self, small_file, small_table):
        assert PaxFile(small_file).num_rows == small_table.num_rows

    def test_data_size_excludes_footer(self, small_file):
        f = PaxFile(small_file)
        assert f.metadata.data_size < len(small_file)


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(FormatError, match="magic"):
            read_metadata(b"NOPE" + b"\x00" * 100 + b"NOPE")

    def test_too_small(self):
        with pytest.raises(FormatError, match="small"):
            read_metadata(b"FU")

    def test_bad_footer_length(self, small_file):
        corrupted = bytearray(small_file)
        struct.pack_into("<I", corrupted, len(corrupted) - 8, 2**31)
        with pytest.raises(FormatError, match="footer"):
            read_metadata(bytes(corrupted))

    def test_bad_row_group_rows(self, small_table):
        with pytest.raises(ValueError):
            write_table(small_table, row_group_rows=0)
