"""The `python -m repro.format inspect` CLI."""

import pytest

from repro.format.__main__ import describe, main
from repro.format.reader import PaxFile


@pytest.fixture
def pax_path(tmp_path, small_file):
    path = tmp_path / "table.pax"
    path.write_bytes(small_file)
    return str(path)


class TestDescribe:
    def test_summary_fields(self, small_file):
        text = describe(PaxFile(small_file))
        assert "rows:" in text and "row groups:" in text
        assert "schema:" in text
        assert "qty" in text

    def test_chunk_listing(self, small_file):
        text = describe(PaxFile(small_file), show_chunks=True)
        assert "encoding" in text
        assert "zlib" in text


class TestMain:
    def test_inspect(self, pax_path, capsys):
        assert main(["inspect", pax_path]) == 0
        out = capsys.readouterr().out
        assert "rows:" in out

    def test_inspect_chunks(self, pax_path, capsys):
        assert main(["inspect", pax_path, "--chunks"]) == 0
        assert "ratio" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["inspect", "/no/such/file.pax"]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.pax"
        bad.write_bytes(b"junk data, definitely not PAX")
        assert main(["inspect", str(bad)]) == 1
        assert "not a PAX file" in capsys.readouterr().err

    def test_usage(self, capsys):
        assert main([]) == 1
        assert main(["--help"]) == 0
