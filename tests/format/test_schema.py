"""Schema and type metadata."""

import numpy as np
import pytest

from repro.format import ColumnType, Field, Schema


class TestColumnType:
    def test_numpy_dtypes(self):
        assert ColumnType.INT64.numpy_dtype == np.int64
        assert ColumnType.DOUBLE.numpy_dtype == np.float64
        assert ColumnType.DATE.numpy_dtype == np.int32
        assert ColumnType.BOOL.numpy_dtype == np.bool_
        assert ColumnType.STRING.numpy_dtype is None

    def test_fixed_widths(self):
        assert ColumnType.INT64.fixed_width == 8
        assert ColumnType.DOUBLE.fixed_width == 8
        assert ColumnType.DATE.fixed_width == 4
        assert ColumnType.BOOL.fixed_width == 1
        assert ColumnType.STRING.fixed_width is None


class TestSchema:
    def _schema(self):
        return Schema([Field("a", ColumnType.INT64), Field("b", ColumnType.STRING)])

    def test_lookup(self):
        s = self._schema()
        assert s.field("b").type is ColumnType.STRING
        assert s.index_of("a") == 0
        assert "a" in s
        assert "z" not in s

    def test_unknown_field_raises_with_names(self):
        with pytest.raises(KeyError, match="have"):
            self._schema().field("z")
        with pytest.raises(KeyError):
            self._schema().index_of("z")

    def test_duplicate_names_raise(self):
        with pytest.raises(ValueError, match="duplicate"):
            Schema([Field("a", ColumnType.INT64), Field("a", ColumnType.INT64)])

    def test_len_iter_names(self):
        s = self._schema()
        assert len(s) == 2
        assert [f.name for f in s] == ["a", "b"]
        assert s.names() == ["a", "b"]

    def test_dict_roundtrip(self):
        s = self._schema()
        assert Schema.from_dict(s.to_dict()) == s

    def test_equality(self):
        assert self._schema() == self._schema()
        assert self._schema() != Schema([Field("a", ColumnType.INT64)])
