"""Differential tests: vectorized data plane vs retained scalar references.

The vectorized codecs in :mod:`repro.format.compression` /
:mod:`repro.format.encoding` and the whole-stripe RS matmul in
:mod:`repro.ec` replaced byte-at-a-time loops that are retained in
:mod:`repro.format._reference`.  These tests round-trip both
implementations against each other over randomized and adversarial
inputs:

* plain-string, RLE, and varint streams must be *byte-identical*;
* the two Snappy compressors emit different tokens but must each
  decompress the other's output exactly;
* the lane-table GF(2^8) matmul must match the scalar matrix product,
  and both coders must recover erased shards bit-exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ec import gf256
from repro.ec.reed_solomon import CodeParams, ReedSolomon
from repro.format import _reference as ref
from repro.format import encoding as enc
from repro.format.compression import get_codec
from repro.format.schema import ColumnType

VEC = get_codec("snappy")
GREEDY = get_codec("snappy-greedy")
SCALAR = ref.ScalarSnappyCodec()


def _string_corpus(rng: np.random.Generator, n: int, kind: str) -> np.ndarray:
    out = np.empty(n, dtype=object)
    if kind == "short":
        pool = [f"tag{i}" for i in range(8)]
        for i in range(n):
            out[i] = pool[int(rng.integers(len(pool)))]
    elif kind == "unicode":
        pool = ["héllo", "naïve", "日本語テキスト", "züri", "🦜🦜", ""]
        for i in range(n):
            out[i] = pool[int(rng.integers(len(pool)))] + str(int(rng.integers(100)))
    elif kind == "long":
        # >= 256-byte strings defeat the fast candidate-chain decoder and
        # must fall back to the scalar walk transparently.
        for i in range(n):
            out[i] = chr(ord("a") + i % 26) * int(rng.integers(200, 400))
    elif kind == "empty-heavy":
        for i in range(n):
            out[i] = "" if rng.random() < 0.5 else f"v{int(rng.integers(10))}"
    else:
        raise AssertionError(kind)
    return out


class TestPlainStrings:
    @pytest.mark.parametrize("kind", ["short", "unicode", "long", "empty-heavy"])
    @pytest.mark.parametrize("n", [0, 1, 7, 500])
    def test_encode_byte_identical_and_round_trips(self, kind, n):
        rng = np.random.default_rng(hash((kind, n)) % 2**32)
        values = _string_corpus(rng, n, kind)
        blob = enc.encode_plain(ColumnType.STRING, values)
        assert blob == ref.encode_plain_strings(values)
        assert np.array_equal(enc.decode_plain(ColumnType.STRING, blob, n), values)
        assert np.array_equal(ref.decode_plain_strings(blob, n), values)

    def test_nul_bytes_inside_strings(self):
        # NUL payload bytes collide with the vectorized decoder's
        # separator trick; it must detect them and fall back.
        values = np.array(["a\x00b", "\x00", "plain", "x\x00\x00y"], dtype=object)
        blob = enc.encode_plain(ColumnType.STRING, values)
        assert blob == ref.encode_plain_strings(values)
        assert np.array_equal(enc.decode_plain(ColumnType.STRING, blob, 4), values)

    def test_decode_accepts_buffer_views(self):
        values = np.array(["alpha", "beta", "gamma"], dtype=object)
        blob = enc.encode_plain(ColumnType.STRING, values)
        for buf in (memoryview(blob), np.frombuffer(blob, dtype=np.uint8)):
            assert np.array_equal(enc.decode_plain(ColumnType.STRING, buf, 3), values)


class TestVarints:
    @pytest.mark.parametrize(
        "values",
        [
            [],
            [0],
            [127],
            [128],
            [0, 1, 127, 128, 16383, 16384, 2**31, 2**63 - 1],
            list(range(1000)),
        ],
    )
    def test_stream_byte_identical(self, values):
        arr = np.array(values, dtype=np.uint64)
        blob = enc.encode_varint_array(arr).tobytes()
        expected = b"".join(ref._encode_varint(int(v)) for v in values)
        assert blob == expected
        decoded = enc.decode_varint_stream(np.frombuffer(blob, dtype=np.uint8))
        assert decoded.tolist() == [int(v) for v in values]

    def test_randomized_against_scalar(self):
        rng = np.random.default_rng(11)
        for _ in range(20):
            n = int(rng.integers(0, 400))
            magnitude = int(rng.integers(1, 60))
            arr = rng.integers(0, 2**magnitude, n, dtype=np.uint64)
            blob = enc.encode_varint_array(arr).tobytes()
            assert blob == b"".join(ref._encode_varint(int(v)) for v in arr)
            back = enc.decode_varint_stream(np.frombuffer(blob, dtype=np.uint8))
            assert np.array_equal(back.astype(np.uint64), arr)

    def test_overlong_varint_rejected(self):
        stream = np.frombuffer(b"\x80" * 10 + b"\x01", dtype=np.uint8)
        with pytest.raises(ValueError, match="varint too long"):
            enc.decode_varint_stream(stream)


class TestRLE:
    @pytest.mark.parametrize(
        "codes",
        [
            [],
            [0],
            [5] * 1000,  # one all-equal run
            [0, 0, 1, 1, 1, 2, 0, 0],
            list(range(200)),  # no runs at all
        ],
    )
    def test_byte_identical(self, codes):
        arr = np.array(codes, dtype=np.int64)
        blob = enc.rle_encode(arr)
        assert blob == ref.rle_encode(arr)
        if len(codes):
            assert np.array_equal(enc.rle_decode(blob, len(codes)), arr)
            assert np.array_equal(ref.rle_decode(blob, len(codes)), arr)

    def test_randomized_against_scalar(self):
        rng = np.random.default_rng(23)
        for _ in range(30):
            n = int(rng.integers(1, 3000))
            card = int(rng.integers(1, 20))
            codes = rng.integers(0, card, n).astype(np.int64)
            # Stretch into runs half the time.
            if rng.random() < 0.5:
                codes = np.repeat(codes[: max(1, n // 8)], 8)[:n]
            blob = enc.rle_encode(codes)
            assert blob == ref.rle_encode(codes)
            assert np.array_equal(enc.rle_decode(blob, len(codes)), codes)

    def test_count_overshoot_raises_like_scalar(self):
        blob = enc.rle_encode(np.array([7, 7, 7, 7], dtype=np.int64))
        with pytest.raises(ValueError, match="RLE stream decoded"):
            enc.rle_decode(blob, 3)
        with pytest.raises(ValueError):
            ref.rle_decode(blob, 3)


class TestDictionaryBuild:
    def test_matches_reference_order_and_codes(self):
        rng = np.random.default_rng(31)
        values = np.array(
            [f"k{int(rng.integers(40))}" for _ in range(2000)], dtype=object
        )
        uniq_v, codes_v = enc.build_dictionary(ColumnType.STRING, values)
        uniq_r, codes_r = ref.build_string_dictionary(values)
        assert np.array_equal(uniq_v, uniq_r)
        assert np.array_equal(codes_v, codes_r)


def _snappy_corpora(rng: np.random.Generator):
    yield b""
    yield b"ab"  # below _MIN_MATCH
    yield b"\x00" * 100_000  # one giant run
    yield bytes(rng.integers(0, 256, 70_000, dtype=np.uint8))  # > 64 KiB noise
    yield bytes(rng.integers(0, 4, 50_000, dtype=np.uint8))  # low-cardinality
    block = bytes(rng.integers(0, 256, 512, dtype=np.uint8))
    yield block * 200  # periodic
    yield (b"abcdefgh" * 1000) + bytes(rng.integers(0, 256, 333, dtype=np.uint8))


class TestSnappyCross:
    def test_cross_decompression(self):
        rng = np.random.default_rng(41)
        for raw in _snappy_corpora(rng):
            for compressor in (VEC, GREEDY, SCALAR):
                blob = compressor.compress(raw)
                assert VEC.decompress(blob) == raw
                assert SCALAR.decompress(blob) == raw

    def test_greedy_tokens_match_seed_compressor(self):
        # Bitmap wire sizes feed the simulated network model, so the
        # greedy codec must reproduce the original token stream exactly.
        rng = np.random.default_rng(43)
        for raw in _snappy_corpora(rng):
            assert GREEDY.compress(raw) == SCALAR.compress(raw)
        for sel in (0.0, 0.01, 0.5, 1.0):
            packed = np.packbits(rng.random(8192) < sel).tobytes()
            assert GREEDY.compress(packed) == SCALAR.compress(packed)

    def test_corrupt_streams_rejected(self):
        blob = VEC.compress(b"hello world, hello world, hello world")
        with pytest.raises(ValueError):
            VEC.decompress(blob[:2])  # truncated header
        with pytest.raises(ValueError):
            VEC.decompress(blob[:-1])  # truncated body
        bad = bytearray((100).to_bytes(4, "little"))
        bad += bytes([0x80 | 3, 0xFF, 0xFF])  # match with no history
        with pytest.raises(ValueError):
            VEC.decompress(bytes(bad))


class TestReedSolomonDifferential:
    @pytest.mark.parametrize("n,k", [(9, 6), (14, 10), (5, 3)])
    def test_matmul_matches_scalar_product(self, n, k):
        rng = np.random.default_rng(n * 100 + k)
        coder = ReedSolomon(CodeParams(n, k))
        blocks = np.ascontiguousarray(
            rng.integers(0, 256, (k, 1537), dtype=np.uint8)
        )
        fast = gf256.gf_matmul_blocks(coder.matrix[k:], blocks)
        slow = gf256.gf_matmul(coder.matrix[k:], blocks)
        assert np.array_equal(fast, slow)

    @pytest.mark.parametrize("losses", [1, 2, 3])
    def test_recovery_matches_reference_coder(self, losses):
        rng = np.random.default_rng(53 + losses)
        params = CodeParams(9, 6)
        coder = ReedSolomon(params)
        reference = ref.ScalarReedSolomon(9, 6)
        for _ in range(5):
            data = [rng.integers(0, 256, 2048, dtype=np.uint8) for _ in range(6)]
            for rs in (coder, reference):
                shards = list(data) + rs.encode(list(data))
                for idx in rng.choice(9, size=losses, replace=False):
                    shards[int(idx)] = None
                recovered = rs.decode(shards)
                for got, want in zip(recovered, data):
                    assert np.array_equal(got, want)

    def test_xor_parity_row(self):
        # The normalized Cauchy matrix makes parity 0 the plain XOR of
        # the data shards (RAID-5 compatible fast path).
        rng = np.random.default_rng(59)
        coder = ReedSolomon(CodeParams(9, 6))
        data = [rng.integers(0, 256, 512, dtype=np.uint8) for _ in range(6)]
        parity = coder.encode(list(data))
        xor = np.zeros(512, dtype=np.uint8)
        for block in data:
            xor ^= block
        assert np.array_equal(parity[0], xor)
