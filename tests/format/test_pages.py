"""Self-contained column chunks: encode/decode across types and codecs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.format.encoding import DICTIONARY, PLAIN
from repro.format.pages import chunk_type, decode_column_chunk, encode_column_chunk
from repro.format.schema import ColumnType


def _values(type_: ColumnType, n: int, seed: int = 0, cardinality: int = 10):
    rng = np.random.default_rng(seed)
    if type_ is ColumnType.INT64:
        return rng.integers(0, cardinality, size=n)
    if type_ is ColumnType.DOUBLE:
        return np.round(rng.uniform(0, 100, size=n), 2)
    if type_ is ColumnType.DATE:
        return rng.integers(15_000, 15_000 + cardinality, size=n).astype(np.int32)
    if type_ is ColumnType.BOOL:
        return rng.integers(0, 2, size=n).astype(bool)
    arr = np.empty(n, dtype=object)
    for i in range(n):
        arr[i] = f"value-{rng.integers(0, cardinality)}"
    return arr


ALL_TYPES = list(ColumnType)


@pytest.mark.parametrize("type_", ALL_TYPES)
@pytest.mark.parametrize("codec", ["none", "zlib", "snappy"])
class TestRoundTrip:
    def test_roundtrip(self, type_, codec):
        values = _values(type_, 500)
        chunk = encode_column_chunk(type_, values, codec_name=codec)
        out = decode_column_chunk(chunk.data)
        if type_ is ColumnType.STRING:
            assert list(out) == list(values)
        else:
            assert np.array_equal(out, np.asarray(values, dtype=type_.numpy_dtype))

    def test_multiple_pages(self, type_, codec):
        values = _values(type_, 1000)
        chunk = encode_column_chunk(type_, values, codec_name=codec, page_values=100)
        out = decode_column_chunk(chunk.data)
        if type_ is ColumnType.STRING:
            assert list(out) == list(values)
        else:
            assert np.array_equal(out, np.asarray(values, dtype=type_.numpy_dtype))


class TestEncodingChoice:
    def test_low_cardinality_uses_dictionary(self):
        values = _values(ColumnType.INT64, 1000, cardinality=5)
        chunk = encode_column_chunk(ColumnType.INT64, values, codec_name="zlib")
        assert chunk.encoding == DICTIONARY

    def test_unique_values_use_plain(self):
        values = np.arange(1000, dtype=np.int64)
        chunk = encode_column_chunk(ColumnType.INT64, values, codec_name="zlib")
        assert chunk.encoding == PLAIN

    def test_force_encoding(self):
        values = np.arange(100, dtype=np.int64)
        chunk = encode_column_chunk(
            ColumnType.INT64, values, codec_name="none", force_encoding=DICTIONARY
        )
        assert chunk.encoding == DICTIONARY
        assert np.array_equal(decode_column_chunk(chunk.data), values)

    def test_dictionary_compresses_repetitive(self):
        values = _values(ColumnType.STRING, 2000, cardinality=3)
        chunk = encode_column_chunk(ColumnType.STRING, values, codec_name="zlib")
        assert chunk.compressibility > 5


class TestChunkFacts:
    def test_plain_size_matches_plain_encoding(self):
        values = np.arange(100, dtype=np.int64)
        chunk = encode_column_chunk(ColumnType.INT64, values, codec_name="zlib")
        assert chunk.plain_size == 800

    def test_num_values(self):
        chunk = encode_column_chunk(
            ColumnType.DOUBLE, _values(ColumnType.DOUBLE, 321), codec_name="none"
        )
        assert chunk.num_values == 321

    def test_compressed_size_is_len_data(self):
        chunk = encode_column_chunk(
            ColumnType.INT64, np.arange(50, dtype=np.int64), codec_name="zlib"
        )
        assert chunk.compressed_size == len(chunk.data)

    def test_chunk_type_peek(self):
        for type_ in ALL_TYPES:
            chunk = encode_column_chunk(type_, _values(type_, 10), codec_name="none")
            assert chunk_type(chunk.data) is type_

    def test_empty_chunk_roundtrip(self):
        values = np.zeros(0, dtype=np.int64)
        chunk = encode_column_chunk(ColumnType.INT64, values, codec_name="zlib")
        assert chunk.num_values == 0
        assert len(decode_column_chunk(chunk.data)) == 0

    def test_bad_page_values_raises(self):
        with pytest.raises(ValueError):
            encode_column_chunk(
                ColumnType.INT64, np.arange(10, dtype=np.int64), "none", page_values=0
            )


class TestSelfContainment:
    """A chunk's bytes alone must suffice to decode it (the paper's
    smallest-computable-unit property)."""

    def test_decode_needs_only_chunk_bytes(self):
        values = _values(ColumnType.STRING, 300, cardinality=4)
        chunk = encode_column_chunk(ColumnType.STRING, values, codec_name="snappy")
        copied = bytes(bytearray(chunk.data))  # fresh buffer, no shared state
        assert list(decode_column_chunk(copied)) == list(values)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(1, 400),
        cardinality=st.integers(1, 50),
        seed=st.integers(0, 99),
    )
    def test_int_roundtrip_property(self, n, cardinality, seed):
        values = _values(ColumnType.INT64, n, seed=seed, cardinality=cardinality)
        chunk = encode_column_chunk(ColumnType.INT64, values, codec_name="zlib")
        assert np.array_equal(decode_column_chunk(chunk.data), values)
