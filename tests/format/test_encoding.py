"""Value encodings: plain, varint, bit-pack, RLE, dictionary."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.format import encoding as enc
from repro.format.schema import ColumnType


class TestPlain:
    @pytest.mark.parametrize(
        "type_,values",
        [
            (ColumnType.INT64, [0, -5, 2**62, -(2**62)]),
            (ColumnType.DOUBLE, [0.0, -1.5, 3.14159, 1e300]),
            (ColumnType.DATE, [0, 18000, -365]),
            (ColumnType.BOOL, [True, False, True]),
        ],
    )
    def test_numeric_roundtrip(self, type_, values):
        arr = np.asarray(values, dtype=type_.numpy_dtype)
        data = enc.encode_plain(type_, arr)
        out = enc.decode_plain(type_, data, len(values))
        assert np.array_equal(out, arr)

    def test_string_roundtrip(self):
        values = np.array(["", "a", "héllo wörld", "x" * 1000], dtype=object)
        data = enc.encode_plain(ColumnType.STRING, values)
        out = enc.decode_plain(ColumnType.STRING, data, 4)
        assert list(out) == list(values)

    def test_fixed_width_sizes(self):
        arr = np.arange(10, dtype=np.int64)
        assert len(enc.encode_plain(ColumnType.INT64, arr)) == 80
        days = np.arange(10, dtype=np.int32)
        assert len(enc.encode_plain(ColumnType.DATE, days)) == 40

    @given(st.lists(st.floats(allow_nan=False), max_size=50))
    def test_double_property(self, values):
        arr = np.asarray(values, dtype=np.float64)
        out = enc.decode_plain(
            ColumnType.DOUBLE, enc.encode_plain(ColumnType.DOUBLE, arr), len(values)
        )
        assert np.array_equal(out, arr)

    @given(st.lists(st.text(max_size=20), max_size=30))
    def test_string_property(self, values):
        arr = np.empty(len(values), dtype=object)
        for i, v in enumerate(values):
            arr[i] = v
        out = enc.decode_plain(
            ColumnType.STRING, enc.encode_plain(ColumnType.STRING, arr), len(values)
        )
        assert list(out) == values


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**32, 2**60])
    def test_roundtrip(self, value):
        data = enc.encode_varint(value)
        out, pos = enc.decode_varint(data, 0)
        assert out == value
        assert pos == len(data)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            enc.encode_varint(-1)

    def test_single_byte_for_small(self):
        assert len(enc.encode_varint(127)) == 1
        assert len(enc.encode_varint(128)) == 2

    @given(st.lists(st.integers(0, 2**50), min_size=1, max_size=20))
    def test_stream_roundtrip(self, values):
        data = b"".join(enc.encode_varint(v) for v in values)
        pos = 0
        out = []
        for _ in values:
            v, pos = enc.decode_varint(data, pos)
            out.append(v)
        assert out == values


class TestBitpack:
    @pytest.mark.parametrize("bit_width", [1, 2, 3, 7, 8, 13, 20])
    def test_roundtrip(self, bit_width, rng):
        codes = rng.integers(0, 2**bit_width, size=100)
        data = enc.bitpack_encode(codes, bit_width)
        out = enc.bitpack_decode(data, bit_width, 100)
        assert np.array_equal(out, codes)

    def test_empty(self):
        assert enc.bitpack_encode(np.zeros(0, dtype=np.int64), 4) == b""
        assert len(enc.bitpack_decode(b"", 4, 0)) == 0

    def test_value_exceeding_width_raises(self):
        with pytest.raises(ValueError):
            enc.bitpack_encode(np.array([8]), 3)

    def test_packed_size(self):
        # 100 values at 3 bits = 300 bits = 38 bytes.
        data = enc.bitpack_encode(np.ones(100, dtype=np.int64), 3)
        assert len(data) == 38

    def test_bit_width_for(self):
        assert enc.bit_width_for(0) == 1
        assert enc.bit_width_for(1) == 1
        assert enc.bit_width_for(2) == 2
        assert enc.bit_width_for(255) == 8
        assert enc.bit_width_for(256) == 9

    def test_bit_width_for_negative_raises(self):
        with pytest.raises(ValueError):
            enc.bit_width_for(-1)


class TestRle:
    def test_roundtrip_runs(self):
        codes = np.array([5] * 100 + [2] * 50 + [5] * 3)
        data = enc.rle_encode(codes)
        assert np.array_equal(enc.rle_decode(data, len(codes)), codes)

    def test_compresses_runs(self):
        codes = np.zeros(10_000, dtype=np.int64)
        assert len(enc.rle_encode(codes)) < 10

    def test_empty(self):
        assert enc.rle_encode(np.zeros(0, dtype=np.int64)) == b""

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            enc.rle_encode(np.array([-1]))

    @given(st.lists(st.integers(0, 10), max_size=200))
    def test_property(self, values):
        codes = np.asarray(values, dtype=np.int64)
        if len(codes) == 0:
            return
        data = enc.rle_encode(codes)
        assert np.array_equal(enc.rle_decode(data, len(codes)), codes)


class TestIndexStream:
    def test_picks_rle_for_runs(self):
        codes = np.zeros(1000, dtype=np.int64)
        data = enc.encode_index_stream(codes, 1)
        assert data[0] == 0  # RLE marker
        assert np.array_equal(enc.decode_index_stream(data, 1, 1000), codes)

    def test_picks_bitpack_for_random(self, rng):
        codes = rng.integers(0, 16, size=1000)
        data = enc.encode_index_stream(codes, 4)
        assert data[0] == 1  # bitpack marker
        assert np.array_equal(enc.decode_index_stream(data, 4, 1000), codes)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="kind"):
            enc.decode_index_stream(b"\x07abc", 4, 10)

    def test_empty_stream(self):
        assert len(enc.decode_index_stream(b"", 4, 0)) == 0


class TestDictionary:
    def test_first_appearance_order(self):
        values = np.array(["b", "a", "b", "c", "a"], dtype=object)
        uniques, codes = enc.build_dictionary(ColumnType.STRING, values)
        assert list(uniques) == ["b", "a", "c"]
        assert codes.tolist() == [0, 1, 0, 2, 1]

    def test_numeric_first_appearance_order(self):
        values = np.array([30, 10, 30, 20], dtype=np.int64)
        uniques, codes = enc.build_dictionary(ColumnType.INT64, values)
        assert uniques.tolist() == [30, 10, 20]
        assert codes.tolist() == [0, 1, 0, 2]

    def test_codes_reconstruct_values(self, rng):
        values = rng.integers(0, 20, size=500)
        uniques, codes = enc.build_dictionary(ColumnType.INT64, values)
        assert np.array_equal(uniques[codes], values)

    def test_should_use_dictionary_heuristic(self):
        assert enc.should_use_dictionary(1000, 10)
        assert enc.should_use_dictionary(1000, 500)
        assert not enc.should_use_dictionary(1000, 501)
        assert not enc.should_use_dictionary(0, 0)
