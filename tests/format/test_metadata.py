"""Footer metadata structures and JSON serialisation."""

import numpy as np
import pytest

from repro.format import ColumnType, PaxFile, write_table
from repro.format.metadata import (
    ChunkStats,
    ColumnChunkMeta,
    FileMetadata,
    RowGroupMeta,
    compute_stats,
)
from repro.format.schema import Field, Schema


def _chunk(rg=0, col=0, name="x", offset=4, size=10):
    return ColumnChunkMeta(
        column=name,
        type=ColumnType.INT64,
        row_group=rg,
        column_index=col,
        offset=offset,
        size=size,
        plain_size=40,
        num_values=5,
        encoding="plain",
        codec="zlib",
        stats=ChunkStats(min_value=1, max_value=9),
    )


class TestColumnChunkMeta:
    def test_derived_fields(self):
        c = _chunk()
        assert c.end_offset == 14
        assert c.key == (0, 0)
        assert c.compressibility == pytest.approx(4.0)

    def test_zero_size_compressibility(self):
        c = _chunk(size=0)
        assert c.compressibility == 1.0

    def test_dict_roundtrip(self):
        c = _chunk()
        assert ColumnChunkMeta.from_dict(c.to_dict()) == c


class TestRowGroupMeta:
    def test_column_lookup(self):
        rg = RowGroupMeta(index=0, num_rows=5, columns=(_chunk(name="a"), _chunk(col=1, name="b")))
        assert rg.column("b").column_index == 1
        with pytest.raises(KeyError):
            rg.column("z")


class TestFileMetadata:
    def _meta(self):
        schema = Schema([Field("a", ColumnType.INT64)])
        rgs = [
            RowGroupMeta(index=0, num_rows=5, columns=(_chunk(name="a"),)),
            RowGroupMeta(index=1, num_rows=5, columns=(_chunk(rg=1, name="a", offset=14),)),
        ]
        return FileMetadata(schema=schema, num_rows=10, row_groups=rgs)

    def test_all_chunks_order(self):
        meta = self._meta()
        assert [c.row_group for c in meta.all_chunks()] == [0, 1]

    def test_chunks_for_column(self):
        assert len(self._meta().chunks_for_column("a")) == 2

    def test_json_roundtrip(self):
        meta = self._meta()
        restored = FileMetadata.from_json(meta.to_json())
        assert restored.schema == meta.schema
        assert restored.num_rows == meta.num_rows
        assert restored.all_chunks() == meta.all_chunks()

    def test_data_size(self):
        assert self._meta().data_size == 20


class TestComputeStats:
    def test_numeric(self):
        stats = compute_stats(ColumnType.INT64, np.array([5, 1, 9]))
        assert (stats.min_value, stats.max_value) == (1, 9)
        assert isinstance(stats.min_value, int)

    def test_double(self):
        stats = compute_stats(ColumnType.DOUBLE, np.array([1.5, -2.25]))
        assert stats.min_value == -2.25
        assert isinstance(stats.max_value, float)

    def test_string(self):
        arr = np.array(["b", "a", "c"], dtype=object)
        stats = compute_stats(ColumnType.STRING, arr)
        assert (stats.min_value, stats.max_value) == ("a", "c")

    def test_bool(self):
        stats = compute_stats(ColumnType.BOOL, np.array([True, False]))
        assert (stats.min_value, stats.max_value) == (False, True)

    def test_empty(self):
        stats = compute_stats(ColumnType.INT64, np.zeros(0, dtype=np.int64))
        assert stats.min_value is None and stats.max_value is None

    def test_stats_survive_json(self, small_table):
        data = write_table(small_table, row_group_rows=500)
        meta = PaxFile(data).metadata
        c = meta.chunk(0, "day")
        assert isinstance(c.stats.min_value, int)
