"""Compression codecs: round trips, ratio sanity, corruption handling."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.format.compression import (
    DEFAULT_CODEC,
    SnappyLikeCodec,
    codec_names,
    get_codec,
)


class TestRegistry:
    def test_known_codecs(self):
        assert set(codec_names()) == {"none", "zlib", "snappy", "snappy-greedy"}

    def test_default_exists(self):
        assert DEFAULT_CODEC in codec_names()

    def test_unknown_codec_raises(self):
        with pytest.raises(KeyError, match="unknown codec"):
            get_codec("lz4")

    @pytest.mark.parametrize("name", ["none", "zlib", "snappy"])
    def test_name_attribute(self, name):
        assert get_codec(name).name == name


@pytest.mark.parametrize("name", ["none", "zlib", "snappy"])
class TestRoundTrips:
    def test_empty(self, name):
        codec = get_codec(name)
        assert codec.decompress(codec.compress(b"")) == b""

    def test_short(self, name):
        codec = get_codec(name)
        for data in (b"a", b"ab", b"abc", b"abcd"):
            assert codec.decompress(codec.compress(data)) == data

    def test_repetitive(self, name):
        codec = get_codec(name)
        data = b"abcdefgh" * 10_000
        assert codec.decompress(codec.compress(data)) == data

    def test_binary(self, name, rng):
        codec = get_codec(name)
        data = rng.integers(0, 256, size=50_000, dtype="u1").tobytes()
        assert codec.decompress(codec.compress(data)) == data

    @settings(max_examples=30, deadline=None)
    @given(data=st.binary(max_size=2000))
    def test_property(self, name, data):
        codec = get_codec(name)
        assert codec.decompress(codec.compress(data)) == data


class TestSnappyLike:
    def test_compresses_repetitive_data(self):
        codec = SnappyLikeCodec()
        data = b"the quick brown fox " * 1000
        compressed = codec.compress(data)
        assert len(compressed) < len(data) / 5

    def test_incompressible_data_grows_bounded(self, rng):
        codec = SnappyLikeCodec()
        data = rng.integers(0, 256, size=10_000, dtype="u1").tobytes()
        compressed = codec.compress(data)
        # Literal framing adds at most 1 byte per 128 plus the 4-byte header.
        assert len(compressed) <= len(data) + len(data) // 128 + 16

    def test_overlapping_copy(self):
        # Run replication requires overlapping back-references.
        codec = SnappyLikeCodec()
        data = b"ab" * 5000
        assert codec.decompress(codec.compress(data)) == data

    def test_long_runs_of_one_byte(self):
        codec = SnappyLikeCodec()
        data = b"\x00" * 100_000
        compressed = codec.compress(data)
        assert codec.decompress(compressed) == data
        # Max match length is 131 bytes, so ~770 copy tokens of 3 bytes.
        assert len(compressed) < 4000

    def test_corrupt_offset_raises(self):
        codec = SnappyLikeCodec()
        # Header says 10 bytes; a match token with offset 0 is invalid.
        bad = struct.pack("<I", 10) + bytes([0x80, 0x00, 0x00])
        with pytest.raises(ValueError, match="offset"):
            codec.decompress(bad)

    def test_truncated_stream_raises(self):
        codec = SnappyLikeCodec()
        good = codec.compress(b"hello world, hello world, hello world")
        with pytest.raises((ValueError, IndexError)):
            codec.decompress(good[:-3] + struct.pack("<I", 999)[:3])
