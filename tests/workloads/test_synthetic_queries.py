"""Synthetic chunk profiles and the query workloads."""

import numpy as np
import pytest

from repro.sql import execute_local
from repro.workloads import (
    LINEITEM_CHUNK_MB,
    MB,
    TAXI_CHUNK_MB,
    items_from_sizes,
    lineitem_table,
    microbenchmark_query,
    paper_scale_chunk_ranges,
    real_world_queries,
    taxi_table,
    uniform_chunk_sizes,
    zipf_chunk_sizes,
)


class TestSyntheticSizes:
    def test_range_respected(self):
        sizes = zipf_chunk_sizes(500, 0.5, min_size=MB, max_size=100 * MB, seed=1)
        assert len(sizes) == 500
        assert min(sizes) >= MB
        assert max(sizes) <= 100 * MB

    def test_zipf_skew_shifts_mass_to_small(self):
        uniform = np.median(zipf_chunk_sizes(2000, 0.0, seed=2))
        skewed = np.median(zipf_chunk_sizes(2000, 0.99, seed=2))
        assert skewed < uniform

    def test_deterministic(self):
        assert zipf_chunk_sizes(100, 0.5, seed=3) == zipf_chunk_sizes(100, 0.5, seed=3)

    def test_uniform_alias(self):
        assert uniform_chunk_sizes(50, seed=4) == zipf_chunk_sizes(50, 0.0, seed=4)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_chunk_sizes(0, 0.5)
        with pytest.raises(ValueError):
            zipf_chunk_sizes(10, -1)

    def test_items_from_sizes_keys(self):
        items = items_from_sizes([5, 6])
        assert [i.key for i in items] == [(0, 0), (0, 1)]


class TestPaperProfiles:
    def test_ranges_are_contiguous(self):
        ranges = paper_scale_chunk_ranges(LINEITEM_CHUNK_MB, num_row_groups=10)
        assert len(ranges) == 160
        pos = 0
        for offset, size in ranges:
            assert offset == pos
            pos += size

    def test_sizes_near_profile(self):
        ranges = paper_scale_chunk_ranges(TAXI_CHUNK_MB, num_row_groups=16, jitter=0.1)
        assert len(ranges) == 320
        first_col = [ranges[i * 20][1] for i in range(16)]
        mean_mb = np.mean(first_col) / MB
        assert TAXI_CHUNK_MB[0] * 0.85 <= mean_mb <= TAXI_CHUNK_MB[0] * 1.15


class TestMicrobenchmarkQuery:
    @pytest.fixture(scope="class")
    def table(self):
        return lineitem_table(num_rows=8000, seed=2)

    @pytest.mark.parametrize("column", ["l_extendedprice", "l_shipdate", "l_comment"])
    def test_continuous_columns_hit_target(self, table, column):
        sql = microbenchmark_query(table, column, 0.01)
        sel = execute_local(sql, table).selectivity
        assert 0.005 <= sel <= 0.02

    @pytest.mark.parametrize(
        "column", ["l_quantity", "l_discount", "l_returnflag", "l_linenumber"]
    )
    def test_discrete_columns_never_degenerate(self, table, column):
        """Low-cardinality columns get the nearest achievable selectivity,
        never a zero-row query."""
        sql = microbenchmark_query(table, column, 0.01)
        result = execute_local(sql, table)
        assert result.matched_rows > 0

    def test_full_scan(self, table):
        sql = microbenchmark_query(table, "l_quantity", 1.0)
        assert execute_local(sql, table).selectivity == 1.0

    def test_selectivity_monotone(self, table):
        sels = []
        for target in (0.01, 0.1, 0.5):
            sql = microbenchmark_query(table, "l_extendedprice", target)
            sels.append(execute_local(sql, table).selectivity)
        assert sels == sorted(sels)

    def test_invalid_selectivity(self, table):
        with pytest.raises(ValueError):
            microbenchmark_query(table, "l_quantity", 0.0)


class TestRealWorldQueries:
    def test_selectivities_near_table4(self):
        lineitem = lineitem_table(num_rows=8000, seed=2)
        taxi = taxi_table(num_rows=8000, seed=2)
        targets = {"Q1": 0.014, "Q2": 0.054, "Q3": 0.375, "Q4": 0.063}
        for q in real_world_queries(lineitem, taxi):
            table = lineitem if q.dataset == "tpch" else taxi
            sel = execute_local(q.sql, table).selectivity
            target = targets[q.name]
            assert target * 0.5 <= sel <= target * 1.8, (q.name, sel)

    def test_descriptors_match_table4(self):
        lineitem = lineitem_table(num_rows=1000, seed=2)
        taxi = taxi_table(num_rows=1000, seed=2)
        queries = {q.name: q for q in real_world_queries(lineitem, taxi)}
        assert queries["Q1"].num_filters == 1 and queries["Q1"].num_projections == 6
        assert queries["Q2"].num_filters == 3 and queries["Q2"].num_projections == 2
        assert queries["Q3"].num_filters == 1 and queries["Q3"].num_projections == 1
        assert queries["Q4"].num_filters == 1 and queries["Q4"].num_projections == 2
