"""Text-generation helpers behind the dataset generators."""

import numpy as np

from repro.workloads.text import pick, random_codes, random_sentences


class TestRandomSentences:
    def test_count_and_type(self, rng):
        out = random_sentences(rng, 50)
        assert len(out) == 50
        assert all(isinstance(s, str) for s in out)

    def test_word_count_bounds(self, rng):
        out = random_sentences(rng, 100, min_words=3, max_words=5)
        for s in out:
            assert 3 <= len(s.split()) <= 5

    def test_diverse(self, rng):
        out = random_sentences(rng, 200)
        assert len(set(out)) > 150  # near-unique: resists dictionaries

    def test_deterministic(self):
        a = random_sentences(np.random.default_rng(5), 20)
        b = random_sentences(np.random.default_rng(5), 20)
        assert list(a) == list(b)


class TestRandomCodes:
    def test_format(self, rng):
        out = random_codes(rng, 10, "TX", 100)
        assert all(s.startswith("TX-") and len(s) == 12 for s in out)

    def test_span_bounds_cardinality(self, rng):
        out = random_codes(rng, 1000, "A", 5)
        assert len(set(out)) <= 5


class TestPick:
    def test_choices_only(self, rng):
        out = pick(rng, 100, ["a", "b"])
        assert set(out) <= {"a", "b"}

    def test_probabilities_respected(self, rng):
        out = pick(rng, 5000, ["x", "y"], p=[0.95, 0.05])
        assert (out == "x").mean() > 0.9
