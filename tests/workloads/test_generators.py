"""Dataset generators: schemas, determinism, paper-profile properties."""

import numpy as np
import pytest

from repro.format import PaxFile
from repro.sql import date_to_days
from repro.workloads import (
    lineitem_file,
    lineitem_table,
    recipe_table,
    taxi_file,
    taxi_table,
    ukpp_table,
)
from repro.workloads.tpch import COLUMN_NAMES, column_name


class TestLineitem:
    @pytest.fixture(scope="class")
    def table(self):
        return lineitem_table(num_rows=5000, seed=1)

    def test_schema(self, table):
        assert table.schema.names() == COLUMN_NAMES
        assert len(table.schema) == 16

    def test_column_name_mapping(self):
        assert column_name(5) == "l_extendedprice"
        assert column_name(15) == "l_comment"

    def test_deterministic(self):
        a = lineitem_table(num_rows=500, seed=7)
        b = lineitem_table(num_rows=500, seed=7)
        assert a.equals(b)

    def test_seed_changes_data(self):
        a = lineitem_table(num_rows=500, seed=7)
        b = lineitem_table(num_rows=500, seed=8)
        assert not a.equals(b)

    def test_value_domains(self, table):
        assert table["l_quantity"].min() >= 1
        assert table["l_quantity"].max() <= 50
        assert table["l_discount"].min() >= 0.0
        assert table["l_discount"].max() <= 0.10
        assert set(np.unique(table["l_returnflag"])) <= {"R", "A", "N"}
        assert set(np.unique(table["l_linestatus"])) <= {"O", "F"}

    def test_orderkey_sorted(self, table):
        ok = table["l_orderkey"]
        assert (np.diff(ok) >= 0).all()

    def test_linenumber_restarts_per_order(self, table):
        ok, ln = table["l_orderkey"], table["l_linenumber"]
        starts = np.flatnonzero(np.diff(ok)) + 1
        assert (ln[starts] == 1).all()

    def test_receipt_after_ship(self, table):
        assert (table["l_receiptdate"] > table["l_shipdate"]).all()

    def test_extendedprice_consistent(self, table):
        ratio = table["l_extendedprice"] / table["l_quantity"]
        assert ratio.min() >= 899
        assert ratio.max() <= 2101

    def test_shipdate_time_correlated(self, table):
        """Row-group min/max ranges should be roughly disjoint (pruning)."""
        days = table["l_shipdate"]
        half = len(days) // 2
        assert np.median(days[:half]) < np.median(days[half:])

    def test_bimodal_chunk_sizes(self):
        data, _t = lineitem_file(num_rows=8000, row_group_rows=2000)
        meta = PaxFile(data).metadata
        sizes = np.array([c.size for c in meta.all_chunks()])
        assert sizes.max() / sizes.min() > 20  # paper Fig 4c: heavy bimodality

    def test_invalid_rows(self):
        with pytest.raises(ValueError):
            lineitem_table(num_rows=0)


class TestTaxi:
    @pytest.fixture(scope="class")
    def table(self):
        return taxi_table(num_rows=5000, seed=1)

    def test_schema_width(self, table):
        assert len(table.schema) == 20

    def test_date_range_gives_q3_selectivity(self, table):
        cutoff = date_to_days("2015-12-31")
        sel = float((table["date"] < cutoff).mean())
        assert 0.33 <= sel <= 0.42  # paper: 37.5%

    def test_q4_selectivity(self, table):
        cutoff = date_to_days("2015-03-01")
        sel = float((table["date"] < cutoff).mean())
        assert 0.04 <= sel <= 0.09  # paper: 6.3%

    def test_fare_highly_compressed_date_not(self):
        data, _t = taxi_file(num_rows=12_000, row_group_rows=3000)
        meta = PaxFile(data).metadata
        fare = np.mean([c.compressibility for c in meta.chunks_for_column("fare")])
        date = np.mean([c.compressibility for c in meta.chunks_for_column("date")])
        # Cost-equation regimes of Q3/Q4: date product < 1, fare product > 1.
        assert 0.375 * date < 1.0
        assert 0.063 * fare > 1.0

    def test_dropoff_after_pickup(self, table):
        assert (table["dropoff_time"] > table["pickup_time"]).all()

    def test_totals_consistent(self, table):
        total = (
            table["fare"]
            + table["extra"]
            + table["mta_tax"]
            + table["tip_amount"]
            + table["tolls_amount"]
        )
        assert np.allclose(total, table["total_amount"], atol=0.01)

    def test_deterministic(self):
        assert taxi_table(300, seed=3).equals(taxi_table(300, seed=3))


class TestRecipeAndUkpp:
    def test_recipe_schema(self):
        t = recipe_table(num_rows=200)
        assert len(t.schema) == 7
        # Text-heavy: directions strings are long.
        assert np.mean([len(v) for v in t["directions"]]) > 200

    def test_ukpp_schema(self):
        t = ukpp_table(num_rows=200)
        assert len(t.schema) == 16
        assert (t["price"] > 0).all()

    def test_deterministic(self):
        assert recipe_table(100, seed=2).equals(recipe_table(100, seed=2))
        assert ukpp_table(100, seed=2).equals(ukpp_table(100, seed=2))

    def test_invalid_rows(self):
        with pytest.raises(ValueError):
            recipe_table(num_rows=-1)
        with pytest.raises(ValueError):
            ukpp_table(num_rows=0)
