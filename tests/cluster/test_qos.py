"""Per-tenant QoS mechanism layer: token buckets, DRR fair queues,
quota admission, and the tenant_storm fault family."""

import pytest

from repro.cluster import Cluster, ClusterConfig, Simulator
from repro.cluster.faults import FaultEvent, FaultInjector, random_schedule
from repro.cluster.metrics import QueryMetrics
from repro.cluster.overload import BACKGROUND_PRIORITY, FOREGROUND_PRIORITY
from repro.cluster.qos import (
    FairQueue,
    QuotaExceeded,
    TenantQos,
    TokenBucket,
    install_qos,
)
from repro.cluster.simcore import QueueFull, Resource
from repro.core.config import StoreConfig


# ---------------------------------------------------------------------------
# TokenBucket
# ---------------------------------------------------------------------------


class TestTokenBucket:
    def test_refills_on_simulated_clock(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate=10.0, burst_s=1.0)  # capacity 10
        for _ in range(10):
            assert bucket.try_consume(1.0)
        assert not bucket.try_consume(1.0)  # dry
        sim.run(until=0.5)  # refills 5 tokens
        for _ in range(5):
            assert bucket.try_consume(1.0)
        assert not bucket.try_consume(1.0)

    def test_capacity_clamps_refill(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate=10.0, burst_s=1.0)
        sim.run(until=100.0)  # a long idle period cannot bank tokens
        assert bucket.try_consume(10.0)
        assert not bucket.try_consume(1.0)

    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            TokenBucket(Simulator(), rate=0.0)


# ---------------------------------------------------------------------------
# FairQueue on a Resource: DRR dispatch, per-tenant depth, tenant-local shed
# ---------------------------------------------------------------------------


def _fair_resource(sim, qos, capacity=1):
    resource = Resource(sim, capacity=capacity)
    resource.fair = FairQueue(qos)
    return resource


def _saturate(sim, resource):
    def hold():
        with (yield from resource.acquire()):
            yield sim.event()  # never fires

    resource.holder = sim.process(hold())
    sim.run(until=0.0)
    assert resource.in_use == 1


class TestFairQueueDispatch:
    def _served_order(self, weights, submissions, service_s=0.01):
        """Run one saturated resource; return tenants in service order.

        ``submissions`` is a list of (tenant, cost) queued while the
        slot is held; the holder releases at t=0 and each admitted
        request holds the slot ``service_s``.
        """
        sim = Simulator()
        qos = TenantQos(sim, weights=weights)
        resource = _fair_resource(sim, qos)
        release = sim.event()
        served = []

        def hold():
            with (yield from resource.acquire()):
                yield release

        sim.process(hold())
        sim.run(until=0.0)

        def worker(tenant, cost):
            with (
                yield from resource.acquire(
                    FOREGROUND_PRIORITY, tenant=tenant, cost=cost
                )
            ):
                served.append(tenant)
                yield sim.timeout(service_s)

        for tenant, cost in submissions:
            sim.process(worker(tenant, cost))
        sim.run(until=0.0)
        release.succeed()
        sim.run()
        return served

    def test_equal_weights_interleave(self):
        served = self._served_order(
            {},
            [("a", 1.0)] * 3 + [("b", 1.0)] * 3,
        )
        # DRR with equal weights alternates instead of draining tenant a
        # (FIFO order) first.
        assert served[:4] in (["a", "b", "a", "b"], ["b", "a", "b", "a"])
        assert sorted(served) == ["a", "a", "a", "b", "b", "b"]

    def test_weights_bias_service_share(self):
        served = self._served_order(
            {"heavy": 3.0, "light": 1.0},
            [("heavy", 1.0)] * 8 + [("light", 1.0)] * 8,
        )
        # In the first DRR rounds the heavy tenant is served ~3x as often.
        first_eight = served[:8]
        assert first_eight.count("heavy") >= 2 * first_eight.count("light")

    def test_costs_measured_not_counts(self):
        # Tenant a queues one huge request, tenant b several small ones:
        # equal weights mean equal *cost* shares, so b's small requests
        # are not starved behind a's big one round after round.
        served = self._served_order(
            {},
            [("a", 8.0)] + [("b", 1.0)] * 4,
        )
        assert served.index("b") <= 1

    def test_higher_priority_tier_drains_first(self):
        sim = Simulator()
        qos = TenantQos(sim)
        resource = _fair_resource(sim, qos)
        release = sim.event()
        served = []

        def hold():
            with (yield from resource.acquire()):
                yield release

        sim.process(hold())
        sim.run(until=0.0)

        def worker(tag, priority):
            with (yield from resource.acquire(priority, tenant="t", cost=1.0)):
                served.append(tag)
                yield sim.timeout(0.01)

        sim.process(worker("bg", BACKGROUND_PRIORITY))
        sim.process(worker("fg", FOREGROUND_PRIORITY))
        sim.run(until=0.0)
        release.succeed()
        sim.run()
        assert served == ["fg", "bg"]

    def test_legacy_fifo_served_before_fair_queue(self):
        # Untenanted (internal/control) waiters never starve behind
        # tenant backlogs: the legacy FIFO drains first on release.
        sim = Simulator()
        qos = TenantQos(sim)
        resource = _fair_resource(sim, qos)
        release = sim.event()
        served = []

        def hold():
            with (yield from resource.acquire()):
                yield release

        sim.process(hold())
        sim.run(until=0.0)

        def tenant_worker():
            with (
                yield from resource.acquire(
                    FOREGROUND_PRIORITY, tenant="t", cost=1.0
                )
            ):
                served.append("tenant")
                yield sim.timeout(0.01)

        def internal_worker():
            with (yield from resource.acquire(None)):
                served.append("internal")
                yield sim.timeout(0.01)

        sim.process(tenant_worker())
        sim.process(internal_worker())
        sim.run(until=0.0)
        release.succeed()
        sim.run()
        assert served == ["internal", "tenant"]

    def test_cancelled_fair_waiter_withdraws_entry(self):
        sim = Simulator()
        qos = TenantQos(sim)
        resource = _fair_resource(sim, qos)
        _saturate(sim, resource)

        def worker():
            with (
                yield from resource.acquire(
                    FOREGROUND_PRIORITY, tenant="t", cost=1.0
                )
            ):
                pass

        proc = sim.process(worker())
        sim.run(until=0.0)
        assert resource.queue_length == 1
        proc.cancel()
        assert resource.queue_length == 0
        assert resource.fair.total == 0


class TestPerTenantDepth:
    def _resource(self, sim, depth, shed=False, weights=None):
        qos = TenantQos(sim, weights=weights, depth_limit=depth)
        resource = _fair_resource(sim, qos)
        resource.shed_low_priority = shed
        _saturate(sim, resource)
        return resource

    def test_depth_is_per_tenant_not_global(self):
        sim = Simulator()
        resource = self._resource(sim, depth=2)
        outcomes = []

        def worker(tag, tenant):
            try:
                with (
                    yield from resource.acquire(
                        FOREGROUND_PRIORITY, tenant=tenant, cost=1.0
                    )
                ):
                    pass
            except QueueFull as exc:
                outcomes.append((tag, exc.shed))

        for i in range(3):
            sim.process(worker(f"a{i}", "a"))  # a2 refused at depth 2
        for i in range(2):
            sim.process(worker(f"b{i}", "b"))  # b admits despite a's backlog
        sim.run(until=0.1)
        assert outcomes == [("a2", False)]
        assert resource.fair.depth("a") == 2
        assert resource.fair.depth("b") == 2
        assert resource.rejected_total == 1

    def test_shed_stays_within_the_offending_tenant(self):
        sim = Simulator()
        resource = self._resource(sim, depth=2, shed=True)
        outcomes = []

        def worker(tag, tenant, priority):
            try:
                with (
                    yield from resource.acquire(
                        priority, tenant=tenant, cost=1.0
                    )
                ):
                    pass
            except QueueFull as exc:
                outcomes.append((tag, exc.shed))

        # Tenant b has a background waiter that a *naive* global shed
        # would evict when tenant a hits its depth.
        sim.process(worker("b-bg", "b", BACKGROUND_PRIORITY))
        sim.process(worker("a-bg", "a", BACKGROUND_PRIORITY))
        sim.process(worker("a-fg0", "a", FOREGROUND_PRIORITY))
        # a is at depth 2; its arriving foreground request sheds a's own
        # background waiter, never b's.
        sim.process(worker("a-fg1", "a", FOREGROUND_PRIORITY))
        sim.run(until=0.1)
        assert outcomes == [("a-bg", True)]
        assert resource.fair.depth("b") == 1
        assert resource.shed_total == 1

    def test_rejects_when_no_lower_priority_within_tenant(self):
        sim = Simulator()
        resource = self._resource(sim, depth=1, shed=True)
        outcomes = []

        def worker(tag, tenant, priority):
            try:
                with (
                    yield from resource.acquire(
                        priority, tenant=tenant, cost=1.0
                    )
                ):
                    pass
            except QueueFull as exc:
                outcomes.append((tag, exc.shed))

        sim.process(worker("b-bg", "b", BACKGROUND_PRIORITY))
        sim.process(worker("a-fg0", "a", FOREGROUND_PRIORITY))
        sim.process(worker("a-fg1", "a", FOREGROUND_PRIORITY))
        sim.run(until=0.1)
        # a-fg1 found no lower-priority waiter *of tenant a* to evict —
        # b's background waiter is not a candidate — so it was rejected.
        assert outcomes == [("a-fg1", False)]
        assert resource.rejected_total == 1
        assert resource.shed_total == 0


# ---------------------------------------------------------------------------
# TenantQos quotas
# ---------------------------------------------------------------------------


class TestQuotas:
    def test_request_quota_raises_typed_refusal(self):
        sim = Simulator()
        qos = TenantQos(sim, requests_per_s={"a": 2.0}, burst_s=1.0)
        metrics = QueryMetrics(tenant="a")
        qos.admit("a", metrics)
        qos.admit("a", metrics)
        with pytest.raises(QuotaExceeded) as exc:
            qos.admit("a", metrics)
        assert exc.value.tenant == "a"
        assert exc.value.resource == "requests"
        assert metrics.quota_exceeded == 1
        assert qos.stats["a"]["quota_rejected"] == 1
        assert qos.stats["a"]["admitted"] == 2

    def test_bytes_quota_charged_separately(self):
        sim = Simulator()
        qos = TenantQos(sim, bytes_per_s={"a": 100.0}, burst_s=1.0)
        qos.admit("a", nbytes=100)
        with pytest.raises(QuotaExceeded) as exc:
            qos.admit("a", nbytes=1)
        assert exc.value.resource == "bytes"

    def test_unmetered_tenant_never_refused(self):
        sim = Simulator()
        qos = TenantQos(sim, requests_per_s={"a": 1.0})
        for _ in range(100):
            qos.admit("b")  # no quota configured for b

    def test_quota_refills_on_simulated_clock(self):
        sim = Simulator()
        qos = TenantQos(sim, requests_per_s={"a": 10.0}, burst_s=0.1)
        qos.admit("a")
        with pytest.raises(QuotaExceeded):
            qos.admit("a")
        sim.run(until=0.2)
        qos.admit("a")

    def test_demote_policy_rewrites_priority(self):
        sim = Simulator()
        qos = TenantQos(sim, requests_per_s={"a": 1.0}, policy="demote")
        first = QueryMetrics(tenant="a", priority=FOREGROUND_PRIORITY)
        qos.admit("a", first)
        assert first.priority == FOREGROUND_PRIORITY
        demoted = QueryMetrics(tenant="a", priority=FOREGROUND_PRIORITY)
        qos.admit("a", demoted)  # over quota: demoted, not refused
        assert demoted.priority == BACKGROUND_PRIORITY
        assert demoted.quota_demotions == 1
        assert qos.stats["a"]["demoted"] == 1

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            TenantQos(Simulator(), policy="tarpit")


# ---------------------------------------------------------------------------
# install_qos wiring
# ---------------------------------------------------------------------------


class TestInstallQos:
    def test_noop_when_disabled(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(num_nodes=3))
        install_qos(cluster, StoreConfig())
        assert cluster.qos is None
        assert cluster.node(0).cpu.fair is None

    def test_installs_fair_queues_on_all_service_loops(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(num_nodes=3))
        config = StoreConfig(qos_enabled=True, tenant_weights={"a": 2.0})
        install_qos(cluster, config)
        assert cluster.qos is not None
        assert cluster.qos.weight("a") == 2.0
        assert cluster.qos.weight("unknown") == 1.0
        for node in cluster.nodes:
            for resource in (
                node.cpu,
                node.disk.device,
                node.endpoint.egress,
                node.endpoint.ingress,
            ):
                assert resource.fair is not None

    def test_idempotent_for_store_pair(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(num_nodes=2))
        config = StoreConfig(qos_enabled=True)
        install_qos(cluster, config)
        board = cluster.qos
        install_qos(cluster, config)
        assert cluster.qos is board

    def test_runtime_added_node_gets_fair_queues(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(num_nodes=2))
        install_qos(cluster, StoreConfig(qos_enabled=True))
        node_id = cluster.add_node()
        assert cluster.node(node_id).cpu.fair is not None

    def test_depth_falls_back_to_admission_depth(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(num_nodes=2))
        install_qos(
            cluster,
            StoreConfig(qos_enabled=True, admission_queue_depth=7),
        )
        assert cluster.qos.depth_limit == 7
        sim2 = Simulator()
        cluster2 = Cluster(sim2, ClusterConfig(num_nodes=2))
        install_qos(
            cluster2,
            StoreConfig(
                qos_enabled=True,
                admission_queue_depth=7,
                tenant_queue_depth=3,
            ),
        )
        assert cluster2.qos.depth_limit == 3


# ---------------------------------------------------------------------------
# tenant_storm fault family
# ---------------------------------------------------------------------------


class TestTenantStormFault:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(at=0.0, kind="tenant_storm", node_id=0, rate=10.0,
                       duration=1.0)  # missing tenant
        with pytest.raises(ValueError):
            FaultEvent(at=0.0, kind="tenant_storm", node_id=0, tenant="a",
                       duration=1.0)  # missing rate
        with pytest.raises(ValueError):
            FaultEvent(at=0.0, kind="tenant_storm", node_id=0, tenant="a",
                       rate=10.0)  # missing duration

    def test_storm_fills_tenant_quota_and_queues(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(num_nodes=2))
        install_qos(
            cluster,
            StoreConfig(qos_enabled=True, tenant_requests_per_s={"noisy": 50.0}),
        )
        schedule = [
            FaultEvent(at=0.0, kind="tenant_storm", node_id=0,
                       duration=0.5, rate=400.0, tenant="noisy", nbytes=4096)
        ]
        FaultInjector(cluster, schedule, seed=1).install()
        sim.run(until=1.0)
        stats = cluster.qos.stats["noisy"]
        # 400 req/s against a 50 req/s quota: most of the storm refused.
        assert stats["quota_rejected"] > stats["admitted"]
        assert stats["admitted"] > 0

    def test_random_schedule_old_seeds_bit_identical(self):
        base = random_schedule(
            num_nodes=6, horizon_s=10.0, seed=42,
            overloads=2, slow_bursts=1, membership=2,
        )
        with_storms = random_schedule(
            num_nodes=6, horizon_s=10.0, seed=42,
            overloads=2, slow_bursts=1, membership=2, tenant_storms=2,
        )
        # The storm family draws strictly after every existing family,
        # so removing the storm events recovers the old schedule exactly.
        assert [e for e in with_storms if e.kind != "tenant_storm"] == base
        storms = [e for e in with_storms if e.kind == "tenant_storm"]
        assert len(storms) == 2
        assert sorted(e.tenant for e in storms) == ["storm-0", "storm-1"]
