"""Nearest-rank percentile boundary cases.

The seed's implementation computed ``int(round(pct / 100 * n + 0.5))``,
which double-rounds: banker's rounding on the ``+ 0.5`` shifted ranks up
at exact midpoints (e.g. p50 of 10 elements picked rank 6, not 5).  The
fix is the textbook nearest-rank definition ``ceil(pct / 100 * n)``.
"""

import pytest

from repro.cluster.metrics import percentile


@pytest.mark.parametrize("values", [[7.0], [1.0, 2.0], [1.0, 2.0, 3.0, 4.0]])
def test_p0_is_minimum(values):
    assert percentile(values, 0) == min(values)


@pytest.mark.parametrize("values", [[7.0], [1.0, 2.0], [1.0, 2.0, 3.0, 4.0]])
def test_p100_is_maximum(values):
    assert percentile(values, 100) == max(values)


def test_p50_single_element():
    assert percentile([7.0], 50) == 7.0


def test_p50_two_elements_is_lower():
    # ceil(0.5 * 2) = 1 -> the lower of the two (nearest-rank, not interpolated).
    assert percentile([1.0, 2.0], 50) == 1.0


def test_p50_four_elements():
    # ceil(0.5 * 4) = 2 -> the second order statistic.
    assert percentile([4.0, 1.0, 3.0, 2.0], 50) == 2.0


def test_p50_ten_elements_no_double_rounding():
    # The old double-rounding picked rank 6 (value 6.0) here.
    values = [float(i) for i in range(1, 11)]
    assert percentile(values, 50) == 5.0


def test_p99_hundred_elements():
    values = [float(i) for i in range(1, 101)]
    assert percentile(values, 99) == 99.0
    assert percentile(values, 100) == 100.0


def test_empty_list_rejected():
    with pytest.raises(ValueError):
        percentile([], 50)


def test_unsorted_input_is_sorted_first():
    assert percentile([9.0, 1.0, 5.0], 100) == 9.0
    assert percentile([9.0, 1.0, 5.0], 0) == 1.0
