"""Overload-protection mechanism layer: admission-bounded resources,
deadlines, cancel scopes, and the per-node circuit breaker board."""

import pytest

from repro.cluster import (
    Cluster,
    ClusterConfig,
    Simulator,
)
from repro.cluster.overload import (
    ADMISSION_POLICIES,
    BACKGROUND_PRIORITY,
    CLOSED,
    FOREGROUND_PRIORITY,
    HALF_OPEN,
    OPEN,
    CancelScope,
    CircuitBreakerBoard,
    Deadline,
    DeadlineExceeded,
    PartialResult,
    install_admission_control,
    install_circuit_breakers,
)
from repro.cluster.simcore import QueueFull, Resource
from repro.core.config import StoreConfig


# ---------------------------------------------------------------------------
# Admission-bounded Resource
# ---------------------------------------------------------------------------


class TestResourceAdmission:
    def _saturated(self, sim, max_queue):
        """A capacity-1 resource whose slot is held forever."""
        resource = Resource(sim, capacity=1, max_queue=max_queue)

        def hold():
            with (yield from resource.acquire()):
                yield sim.event()  # never fires

        # Anchor the holder: a parked process with no outside reference is
        # garbage-collected, which closes its generator and releases the slot.
        resource.holder = sim.process(hold())
        sim.run(until=0.0)
        assert resource.in_use == 1
        return resource

    def test_reject_at_depth(self):
        sim = Simulator()
        resource = self._saturated(sim, max_queue=1)
        outcomes = []

        def worker(tag):
            try:
                with (yield from resource.acquire(FOREGROUND_PRIORITY)):
                    pass
            except QueueFull as exc:
                outcomes.append((tag, exc.shed))

        sim.process(worker("first"))  # queues (depth 1)
        sim.process(worker("second"))  # queue full -> rejected at the door
        sim.run(until=1.0)
        assert outcomes == [("second", False)]
        assert resource.rejected_total == 1
        assert resource.queue_length == 1

    def test_shed_lowest_priority_evicts_newest_background_waiter(self):
        sim = Simulator()
        resource = self._saturated(sim, max_queue=2)
        resource.shed_low_priority = True
        outcomes = []

        def worker(tag, priority):
            try:
                with (yield from resource.acquire(priority)):
                    pass
            except QueueFull as exc:
                outcomes.append((tag, exc.shed))

        sim.process(worker("bg-old", BACKGROUND_PRIORITY))
        sim.process(worker("bg-new", BACKGROUND_PRIORITY))
        sim.process(worker("fg", FOREGROUND_PRIORITY))  # evicts bg-new
        sim.run(until=1.0)
        assert outcomes == [("bg-new", True)]
        assert resource.shed_total == 1
        assert resource.rejected_total == 0
        # The foreground request took the evicted slot in the queue.
        assert resource.queue_length == 2

    def test_foreground_rejected_when_no_lower_priority_waiter(self):
        sim = Simulator()
        resource = self._saturated(sim, max_queue=1)
        resource.shed_low_priority = True
        outcomes = []

        def worker(tag, priority):
            try:
                with (yield from resource.acquire(priority)):
                    pass
            except QueueFull as exc:
                outcomes.append((tag, exc.shed))

        sim.process(worker("fg-old", FOREGROUND_PRIORITY))
        sim.process(worker("fg-new", FOREGROUND_PRIORITY))
        sim.run(until=1.0)
        assert outcomes == [("fg-new", False)]
        assert resource.rejected_total == 1

    def test_priority_none_is_exempt(self):
        sim = Simulator()
        resource = self._saturated(sim, max_queue=1)

        def internal():
            gate = yield from resource.acquire(None)
            gate.release()

        sim.process(internal())
        sim.process(internal())
        sim.run(until=1.0)
        # Both queued despite max_queue=1; nothing rejected or shed.
        assert resource.rejected_total == 0
        assert resource.shed_total == 0
        assert resource.queue_length == 2

    def test_cancelled_waiter_withdraws_its_queue_slot(self):
        sim = Simulator()
        release_me = []
        resource = Resource(sim, capacity=1, max_queue=4)

        def hold():
            ctx = yield from resource.acquire()
            release_me.append(ctx)
            yield sim.timeout(2.0)
            ctx.release()

        def waiter():
            with (yield from resource.acquire(FOREGROUND_PRIORITY)):
                pass

        sim.process(hold())
        sim.run(until=0.0)
        doomed = sim.process(waiter())
        sim.run(until=1.0)
        assert resource.queue_length == 1
        doomed.cancel()
        assert resource.queue_length == 0
        sim.run()
        # The held slot was released normally; no leaked slot, no waiter.
        assert resource.in_use == 0
        assert not resource._waiters
        assert not sim._heap


# ---------------------------------------------------------------------------
# Deadline and CancelScope
# ---------------------------------------------------------------------------


class TestDeadline:
    def test_check_raises_only_after_expiry(self):
        sim = Simulator()
        deadline = Deadline(sim, 1.0)
        deadline.check("start")  # fine at t=0
        sim.run(until=1.0)
        deadline.check("boundary")  # not strictly past the budget yet
        sim.run(until=1.5)
        assert deadline.expired
        assert deadline.remaining == pytest.approx(-0.5)
        with pytest.raises(DeadlineExceeded, match="at late"):
            deadline.check("late")

    def test_from_config_off_by_default(self):
        sim = Simulator()
        assert Deadline.from_config(sim, None) is None
        assert Deadline.from_config(sim, StoreConfig()) is None
        armed = Deadline.from_config(sim, StoreConfig(default_deadline_s=0.25))
        assert armed is not None and armed.expires_at == pytest.approx(0.25)


class TestCancelScope:
    def test_cancel_stops_pending_children_and_drains_heap(self):
        sim = Simulator()
        scope = CancelScope(sim)
        finished = []

        def child(tag, delay):
            yield sim.timeout(delay)
            finished.append(tag)

        procs = [scope.spawn(child(i, 10.0)) for i in range(3)]
        sim.run(until=1.0)
        cancelled = scope.cancel()
        assert cancelled == 3
        assert all(p.cancelled for p in procs)
        sim.run()
        assert finished == []
        assert not sim._heap  # lapsed timers drained; nothing orphaned

    def test_cancel_skips_finished_children(self):
        sim = Simulator()
        scope = CancelScope(sim)

        def quick():
            yield sim.timeout(0.1)

        scope.spawn(quick())
        sim.run()
        assert scope.cancel() == 0

    def test_note_deadline_fires_expired_once_via_heap(self):
        sim = Simulator()
        scope = CancelScope(sim)
        scope.note_deadline()
        scope.note_deadline()  # second note is a no-op
        assert not scope.expired.fired  # deferred through the event heap
        sim.run()
        assert scope.expired.fired


# ---------------------------------------------------------------------------
# Circuit breaker state machine
# ---------------------------------------------------------------------------


def _board(sim, threshold=3, window=1.0, reset=2.0, nodes=4):
    return CircuitBreakerBoard(sim, nodes, threshold, window, reset)


class TestCircuitBreaker:
    def test_trips_on_threshold_failures_within_window(self):
        sim = Simulator()
        board = _board(sim)
        assert board.record_failure(0) is False
        assert board.record_failure(0) is False
        assert board.record_failure(0) is True
        assert board.state[0] == OPEN
        assert board.opens[0] == 1
        assert board.open_count() == 1
        assert board.allow(0) is False
        # Other nodes are independent.
        assert board.state[1] == CLOSED and board.allow(1)

    def test_failures_outside_window_do_not_trip(self):
        sim = Simulator()
        board = _board(sim, threshold=3, window=1.0)
        board.record_failure(0)
        sim.run(until=0.6)
        board.record_failure(0)
        sim.run(until=1.2)  # first failure now older than the window
        assert board.record_failure(0) is False
        assert board.state[0] == CLOSED

    def test_half_open_grants_single_probe(self):
        sim = Simulator()
        board = _board(sim, threshold=1, reset=2.0)
        board.record_failure(0)
        assert board.state[0] == OPEN
        sim.run(until=2.5)  # past reset_s
        assert board.allow(0) is True  # the probe trial
        assert board.state[0] == HALF_OPEN
        assert board.allow(0) is False  # everyone else waits for the trial

    def test_probe_success_closes(self):
        sim = Simulator()
        board = _board(sim, threshold=1, reset=1.0)
        board.record_failure(0)
        sim.run(until=1.5)
        assert board.allow(0)
        board.record_success(0)
        assert board.state[0] == CLOSED
        assert board.allow(0)

    def test_probe_failure_reopens(self):
        sim = Simulator()
        board = _board(sim, threshold=1, reset=1.0)
        board.record_failure(0)
        sim.run(until=1.5)
        assert board.allow(0)
        assert board.record_failure(0) is True  # trial failed -> re-open
        assert board.state[0] == OPEN
        assert board.opens[0] == 2
        assert board.allow(0) is False
        sim.run(until=3.0)  # waits another full reset_s from the re-open
        assert board.allow(0)

    def test_liveness_restore_resets_breaker(self):
        sim = Simulator()
        board = _board(sim, threshold=1)
        board.record_failure(2)
        assert board.state[2] == OPEN
        board.on_liveness(2, alive=True)
        assert board.state[2] == CLOSED
        assert board.allow(2)

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            _board(Simulator(), threshold=0)


# ---------------------------------------------------------------------------
# Installers
# ---------------------------------------------------------------------------


class TestInstallers:
    def test_unknown_policy_rejected(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(num_nodes=3))
        with pytest.raises(ValueError, match="unknown admission_policy"):
            install_admission_control(
                cluster, StoreConfig(admission_queue_depth=4, admission_policy="drop-all")
            )
        assert "drop-all" not in ADMISSION_POLICIES

    @pytest.mark.parametrize(
        "depth,policy", [(0, "reject"), (-1, "reject"), (8, "block")]
    )
    def test_noop_configurations_leave_queues_unbounded(self, depth, policy):
        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(num_nodes=3))
        install_admission_control(
            cluster, StoreConfig(admission_queue_depth=depth, admission_policy=policy)
        )
        for node in cluster.nodes:
            assert node.cpu.max_queue is None
            assert node.disk.device.max_queue is None

    @pytest.mark.parametrize(
        "policy,shed", [("reject", False), ("shed-lowest-priority", True)]
    )
    def test_bounds_every_service_loop(self, policy, shed):
        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(num_nodes=3))
        install_admission_control(
            cluster, StoreConfig(admission_queue_depth=6, admission_policy=policy)
        )
        for node in cluster.nodes:
            for resource in (
                node.cpu,
                node.disk.device,
                node.endpoint.egress,
                node.endpoint.ingress,
            ):
                assert resource.max_queue == 6
                assert resource.shed_low_priority is shed

    def test_breaker_install_is_idempotent_and_off_by_default(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(num_nodes=3))
        install_circuit_breakers(cluster, StoreConfig())
        assert cluster.breakers is None  # threshold 0 = off
        install_circuit_breakers(cluster, StoreConfig(breaker_failure_threshold=5))
        board = cluster.breakers
        assert board is not None and board.failure_threshold == 5
        install_circuit_breakers(cluster, StoreConfig(breaker_failure_threshold=9))
        assert cluster.breakers is board  # first install wins

    def test_open_breaker_makes_node_unroutable(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(num_nodes=3))
        install_circuit_breakers(cluster, StoreConfig(breaker_failure_threshold=1))
        assert cluster.routable(1)
        cluster.breakers.record_failure(1)
        assert not cluster.routable(1)
        # fail/restore notifies the board through the liveness listener.
        cluster.fail_node(1)
        cluster.restore_node(1)
        assert cluster.routable(1)


class TestPartialResult:
    def test_shape(self):
        partial = PartialResult(result="rows", shed_chunks=3)
        assert partial.partial is True
        assert partial.reason == "overload"
        assert partial.shed_chunks == 3
        assert partial.result == "rows"


class TestJitterRng:
    def test_seeded_and_isolated_from_placement(self):
        a = Cluster(Simulator(), ClusterConfig(num_nodes=3, placement_seed=5))
        b = Cluster(Simulator(), ClusterConfig(num_nodes=3, placement_seed=5))
        c = Cluster(Simulator(), ClusterConfig(num_nodes=3, placement_seed=6))
        seq_a = [a.jitter_rng.random() for _ in range(4)]
        seq_b = [b.jitter_rng.random() for _ in range(4)]
        seq_c = [c.jitter_rng.random() for _ in range(4)]
        assert seq_a == seq_b
        assert seq_a != seq_c


# ---------------------------------------------------------------------------
# PR 8 satellites: eviction order, restore-during-half-open race, and
# once-per-logical-request refusal accounting.
# ---------------------------------------------------------------------------


class TestShedEvictionOrder:
    def test_never_evicts_equal_priority_ahead_of_lower(self):
        """shed-lowest-priority must pick a *strictly* lower-priority
        victim even when an equal-priority waiter is newer (pins the
        eviction order the QoS layer's per-tenant shedding builds on)."""
        sim = Simulator()
        resource = Resource(sim, capacity=1, max_queue=2)
        resource.shed_low_priority = True

        def hold():
            with (yield from resource.acquire()):
                yield sim.event()  # never fires

        resource.holder = sim.process(hold())
        sim.run(until=0.0)
        outcomes = []

        def worker(tag, priority):
            try:
                with (yield from resource.acquire(priority)):
                    pass
            except QueueFull as exc:
                outcomes.append((tag, exc.shed))

        # Queue order: background first, then a *newer* foreground waiter.
        sim.process(worker("bg-old", BACKGROUND_PRIORITY))
        sim.process(worker("fg-new", FOREGROUND_PRIORITY))
        # The arriving foreground request must evict bg-old, never fg-new
        # (fg-new is newest, but equal priority is not a valid victim).
        sim.process(worker("fg-arriving", FOREGROUND_PRIORITY))
        sim.run(until=1.0)
        assert outcomes == [("bg-old", True)]
        assert resource.shed_total == 1
        assert resource.rejected_total == 0

    def test_lowest_priority_victim_chosen_across_mixed_queue(self):
        """With several lower-priority waiters, the lowest lane loses
        (and within it the newest), not merely the newest lower one."""
        sim = Simulator()
        resource = Resource(sim, capacity=1, max_queue=3)
        resource.shed_low_priority = True

        def hold():
            with (yield from resource.acquire()):
                yield sim.event()

        resource.holder = sim.process(hold())
        sim.run(until=0.0)
        outcomes = []

        def worker(tag, priority):
            try:
                with (yield from resource.acquire(priority)):
                    pass
            except QueueFull as exc:
                outcomes.append((tag, exc.shed))

        sim.process(worker("mid", 1))
        sim.process(worker("low-old", 0))
        sim.process(worker("low-new", 0))
        sim.process(worker("arriving", 2))  # evicts low-new (lowest, newest)
        sim.run(until=1.0)
        assert outcomes == [("low-new", True)]


class TestRestoreDuringHalfOpenProbe:
    def test_stale_probe_failure_cannot_retrip_restored_node(self):
        """on_liveness restore mid half-open probe abandons the probe:
        its stale failure outcome must not flip the fresh breaker."""
        sim = Simulator()
        board = _board(sim, threshold=1, reset=1.0)
        board.record_failure(0)
        assert board.state[0] == OPEN
        sim.run(until=1.5)
        assert board.allow(0)  # half-open probe granted, now in flight
        assert board.state[0] == HALF_OPEN
        board.on_liveness(0, alive=True)  # node restored under the probe
        assert board.state[0] == CLOSED
        # The stale probe resolves as a failure: with threshold=1 this
        # would instantly re-trip a breaker that naively counted it.
        assert board.record_failure(0) is False
        assert board.state[0] == CLOSED
        # The abandoned-probe pardon is one-shot: a genuine new failure
        # trips as usual.
        assert board.record_failure(0) is True
        assert board.state[0] == OPEN

    def test_stale_probe_success_is_discarded_too(self):
        sim = Simulator()
        board = _board(sim, threshold=1, reset=1.0)
        board.record_failure(0)
        sim.run(until=1.5)
        assert board.allow(0)
        board.on_liveness(0, alive=True)
        board.record_success(0)  # stale success: consumed, no state change
        assert board.state[0] == CLOSED
        # Probe bookkeeping is clean: a later trip/half-open cycle works.
        board.record_failure(0)
        assert board.state[0] == OPEN
        sim.run(until=3.0)
        assert board.allow(0)
        board.record_success(0)
        assert board.state[0] == CLOSED

    def test_restore_resets_reopen_timer_atomically(self):
        """A trip after restore must wait its own full reset_s, not ride
        a stale _reopen_at from the pre-restore trip."""
        sim = Simulator()
        board = _board(sim, threshold=1, reset=10.0)
        board.record_failure(0)
        assert board.state[0] == OPEN
        sim.run(until=1.0)
        board.on_liveness(0, alive=True)
        # Fresh trip at t=1.0: reopen must be at 11.0.
        board.record_failure(0)
        assert board.state[0] == OPEN
        sim.run(until=5.0)
        assert board.allow(0) is False  # stale timer would have expired
        sim.run(until=11.5)
        assert board.allow(0) is True


class TestRefusalAccounting:
    def _env(self):
        from repro.core.scatter_gather import RemoteOp, _record_rejection
        from repro.cluster.metrics import QueryMetrics

        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(num_nodes=3))
        return cluster, QueryMetrics(), RemoteOp, _record_rejection

    def test_retried_refusal_counts_one_logical_request(self):
        cluster, metrics, RemoteOp, record = self._env()
        op = RemoteOp(node=cluster.node(0), execute=lambda: iter(()))
        record(cluster, 0, metrics, QueueFull("full"), (op,))
        # The executor retries rejected ops; a second refusal of the
        # same op is a new attempt, not a new refused request.
        record(cluster, 0, metrics, QueueFull("full"), (op,))
        assert metrics.requests_rejected == 1
        assert metrics.refusal_attempts == 2
        assert metrics.requests_shed == 0

    def test_group_refusal_counts_each_op_once(self):
        cluster, metrics, RemoteOp, record = self._env()
        group = [
            RemoteOp(node=cluster.node(0), execute=lambda: iter(()))
            for _ in range(3)
        ]
        record(cluster, 0, metrics, QueueFull("full"), group)
        record(cluster, 0, metrics, QueueFull("full"), group)
        assert metrics.requests_rejected == 3
        assert metrics.refusal_attempts == 6

    def test_shed_and_reject_split_by_refusal_shape(self):
        cluster, metrics, RemoteOp, record = self._env()
        shed_op = RemoteOp(node=cluster.node(1), execute=lambda: iter(()))
        record(cluster, 1, metrics, QueueFull("evicted", shed=True), (shed_op,))
        record(cluster, 1, metrics, QueueFull("evicted", shed=True), (shed_op,))
        assert metrics.requests_shed == 1
        assert metrics.requests_rejected == 0
        assert metrics.refusal_attempts == 2

    def test_opless_refusal_counts_once_per_call(self):
        # Coordinator-side refusals outside any scatter-gather stage have
        # no op identity; each call is its own logical request.
        cluster, metrics, _RemoteOp, record = self._env()
        record(cluster, None, metrics, QueueFull("full"))
        record(cluster, None, metrics, QueueFull("full"))
        assert metrics.requests_rejected == 2
        assert metrics.refusal_attempts == 2
