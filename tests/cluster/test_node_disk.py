"""Disk and StorageNode models."""

import numpy as np
import pytest

from repro.cluster.disk import Disk, DiskConfig
from repro.cluster.metrics import CPU, DISK, QueryMetrics
from repro.cluster.node import CpuConfig, StorageNode
from repro.cluster.simcore import Simulator


class TestDisk:
    def test_read_time(self):
        sim = Simulator()
        disk = Disk(sim, DiskConfig(bandwidth_bps=1e9, access_latency_s=0.001))
        sim.process(disk.read(500_000_000))
        sim.run()
        assert sim.now == pytest.approx(0.501)

    def test_reads_serialise(self):
        sim = Simulator()
        disk = Disk(sim, DiskConfig(bandwidth_bps=1e9, access_latency_s=0.0))
        for _ in range(3):
            sim.process(disk.read(1_000_000_000))
        sim.run()
        assert sim.now == pytest.approx(3.0)

    def test_write_same_cost(self):
        sim = Simulator()
        disk = Disk(sim, DiskConfig(bandwidth_bps=1e9, access_latency_s=0.0))
        sim.process(disk.write(1_000_000_000))
        sim.run()
        assert sim.now == pytest.approx(1.0)

    def test_metrics_charged(self):
        sim = Simulator()
        disk = Disk(sim, DiskConfig(bandwidth_bps=1e9, access_latency_s=0.0))
        qm = QueryMetrics()
        sim.process(disk.read(1_000_000, qm))
        sim.run()
        assert qm.seconds[DISK] == pytest.approx(0.001)
        assert disk.total_bytes == 1_000_000

    def test_negative_read_raises(self):
        sim = Simulator()
        disk = Disk(sim, DiskConfig())
        sim.process(disk.read(-1))
        with pytest.raises(ValueError):
            sim.run()


def _node(sim, cores=4):
    return StorageNode(
        sim,
        node_id=0,
        disk_config=DiskConfig(bandwidth_bps=1e9, access_latency_s=0.0),
        cpu_config=CpuConfig(cores=cores),
    )


class TestBlockStore:
    def test_put_has_drop(self):
        sim = Simulator()
        node = _node(sim)
        node.put_block("b", np.arange(10, dtype=np.uint8))
        assert node.has_block("b")
        assert node.block_size("b") == 10
        assert node.stored_bytes == 10
        node.drop_block("b")
        assert not node.has_block("b")

    def test_read_block_range_returns_slice(self):
        sim = Simulator()
        node = _node(sim)
        node.put_block("b", np.arange(100, dtype=np.uint8))
        p = sim.process(node.read_block_range("b", 10, 5, scale=1.0))
        sim.run()
        assert p.value.tolist() == [10, 11, 12, 13, 14]

    def test_read_missing_block_raises(self):
        sim = Simulator()
        node = _node(sim)
        sim.process(node.read_block("nope", scale=1.0))
        with pytest.raises(KeyError):
            sim.run()

    def test_out_of_bounds_raises(self):
        sim = Simulator()
        node = _node(sim)
        node.put_block("b", np.zeros(10, dtype=np.uint8))
        sim.process(node.read_block_range("b", 5, 10, scale=1.0))
        with pytest.raises(ValueError, match="out of bounds"):
            sim.run()

    def test_scale_multiplies_simulated_bytes(self):
        sim = Simulator()
        node = _node(sim)
        node.put_block("b", np.zeros(1000, dtype=np.uint8))
        sim.process(node.read_block("b", scale=1e6))
        sim.run()
        # 1000 real bytes * 1e6 = 1 GB simulated at 1 GB/s.
        assert sim.now == pytest.approx(1.0)


class TestCompute:
    def test_compute_charges_cpu_bucket(self):
        sim = Simulator()
        node = _node(sim)
        qm = QueryMetrics()
        sim.process(node.compute(0.25, qm))
        sim.run()
        assert qm.seconds[CPU] == pytest.approx(0.25)

    def test_cores_limit_parallelism(self):
        sim = Simulator()
        node = _node(sim, cores=2)
        for _ in range(4):
            sim.process(node.compute(1.0))
        sim.run()
        assert sim.now == pytest.approx(2.0)

    def test_negative_compute_raises(self):
        sim = Simulator()
        node = _node(sim)
        sim.process(node.compute(-0.1))
        with pytest.raises(ValueError):
            sim.run()

    def test_decode_seconds_formula(self):
        sim = Simulator()
        node = StorageNode(
            sim,
            0,
            DiskConfig(),
            CpuConfig(decompress_bps=1e9, materialize_bps=2e9, scan_bps=4e9),
        )
        assert node.decode_seconds(1_000_000, 2_000_000, scale=1.0) == pytest.approx(
            0.001 + 0.001
        )
        assert node.scan_seconds(2_000_000, scale=2.0) == pytest.approx(0.001)
