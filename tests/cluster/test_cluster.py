"""Cluster topology: routing, placement, metrics."""

import pytest

from repro.cluster import Cluster, ClusterConfig, Simulator
from repro.cluster.metrics import QueryMetrics, percentile


class TestRouting:
    def test_coordinator_is_deterministic(self, cluster):
        a = cluster.coordinator_for("object-1")
        b = cluster.coordinator_for("object-1")
        assert a is b

    def test_coordinator_spreads_objects(self, cluster):
        coords = {cluster.coordinator_for(f"obj-{i}").node_id for i in range(100)}
        assert len(coords) > 1


class TestPlacement:
    def test_stripe_nodes_distinct_when_possible(self, cluster):
        nodes = cluster.choose_stripe_nodes(9)
        assert len(set(nodes)) == 9

    def test_stripe_nodes_wrap_when_fewer_nodes(self):
        sim = Simulator()
        small = Cluster(sim, ClusterConfig(num_nodes=4))
        nodes = small.choose_stripe_nodes(9)
        assert len(nodes) == 9
        assert set(nodes) <= {0, 1, 2, 3}

    def test_placement_is_seeded(self):
        a = Cluster(Simulator(), ClusterConfig(num_nodes=9, placement_seed=5))
        b = Cluster(Simulator(), ClusterConfig(num_nodes=9, placement_seed=5))
        assert a.choose_stripe_nodes(9) == b.choose_stripe_nodes(9)

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            Cluster(Simulator(), ClusterConfig(num_nodes=0))


class TestMetrics:
    def test_record_query_accumulates(self, cluster):
        qm = QueryMetrics(start_time=0.0, end_time=1.5)
        qm.network_bytes = 100
        cluster.metrics.record_query(qm)
        assert cluster.metrics.network_bytes == 100
        assert cluster.metrics.latencies() == [1.5]

    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) in (2.0, 3.0)

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_breakdown_fractions_sum_to_one(self):
        qm = QueryMetrics()
        qm.add("disk", 1.0)
        qm.add("network", 3.0)
        frac = qm.breakdown_fractions()
        assert sum(frac.values()) == pytest.approx(1.0)
        assert frac["network"] == pytest.approx(0.75)

    def test_breakdown_empty_is_zero(self):
        assert sum(QueryMetrics().breakdown_fractions().values()) == 0.0

    def test_unknown_category_raises(self):
        with pytest.raises(KeyError):
            QueryMetrics().add("gpu", 1.0)

    def test_cpu_utilization_starts_zero(self, cluster):
        assert cluster.cpu_utilization() == 0.0
