"""NodeHealthTracker boundaries: suspicion edge cases, runtime growth,
and the EWMA-driven greylist tier under bursty latency."""

import pytest

from repro.cluster.health import (
    GREYLIST_MIN_SAMPLES,
    LATENCY_EWMA_ALPHA,
    TIERS,
    NodeHealthTracker,
)


def _warm(tracker, node_id, latency, samples=GREYLIST_MIN_SAMPLES):
    """Feed ``samples`` successful ops at a constant latency."""
    for _ in range(samples):
        tracker.record_success(node_id, latency)


class TestSuspicionBoundaries:
    def test_threshold_one_suspects_on_first_failure(self):
        tracker = NodeHealthTracker(4, suspicion_threshold=1)
        assert tracker.usable(2)
        tracker.record_failure(2)
        assert tracker.is_suspect(2)
        assert not tracker.usable(2)
        tracker.record_success(2)
        assert tracker.usable(2)

    def test_threshold_zero_rejected(self):
        with pytest.raises(ValueError):
            NodeHealthTracker(4, suspicion_threshold=0)

    def test_restore_during_suspicion_clears_it(self):
        tracker = NodeHealthTracker(4, suspicion_threshold=2)
        tracker.record_failure(1)
        tracker.record_failure(1)
        tracker.on_liveness(1, alive=False)
        assert tracker.tier(1) == "down"
        tracker.on_liveness(1, alive=True)
        assert tracker.consecutive_failures[1] == 0
        assert not tracker.is_suspect(1)
        assert tracker.tier(1) == "usable"

    def test_ensure_size_adds_healthy_nodes(self):
        tracker = NodeHealthTracker(3, suspicion_threshold=2, greylist_factor=4.0)
        tracker.record_failure(2)
        tracker.ensure_size(6)
        assert len(tracker.down) == 6
        for nid in (3, 4, 5):
            assert tracker.tier(nid) == "usable"
            assert tracker.latency_samples[nid] == 0
        # Pre-existing state survives the growth.
        assert tracker.consecutive_failures[2] == 1
        # Growing is idempotent and never shrinks.
        tracker.ensure_size(4)
        assert len(tracker.down) == 6


class TestGreylistTier:
    def test_disarmed_by_default(self):
        tracker = NodeHealthTracker(4)
        _warm(tracker, 0, 0.001)
        _warm(tracker, 1, 0.001)
        _warm(tracker, 2, 0.001)
        _warm(tracker, 3, 1.0)  # wildly slow, but factor == 0 disarms verdicts
        assert not tracker.is_greylisted(3)
        assert tracker.tier(3) == "usable"

    def test_outlier_node_greylisted(self):
        tracker = NodeHealthTracker(4, greylist_factor=4.0)
        for nid in range(3):
            _warm(tracker, nid, 0.001)
        _warm(tracker, 3, 0.050)
        assert tracker.is_greylisted(3)
        assert tracker.tier(3) == "greylisted"
        # Greylisted nodes remain usable for liveness-grade routing.
        assert tracker.usable(3)

    def test_needs_min_samples(self):
        tracker = NodeHealthTracker(4, greylist_factor=4.0)
        for nid in range(3):
            _warm(tracker, nid, 0.001)
        _warm(tracker, 3, 0.050, samples=GREYLIST_MIN_SAMPLES - 1)
        assert not tracker.is_greylisted(3)

    def test_recovery_clears_greylist_under_bursty_latency(self):
        """A burst of slow ops greylists; sustained fast ops clear it."""
        tracker = NodeHealthTracker(4, greylist_factor=4.0)
        flips = []
        tracker.on_tier_change.append(lambda nid, grey: flips.append((nid, grey)))
        for nid in range(3):
            _warm(tracker, nid, 0.001)
        _warm(tracker, 3, 0.050)
        assert flips == [(3, True)]
        # EWMA decays geometrically: enough fast samples pull the node
        # back under the factor * median line and the tier flips back.
        for _ in range(40):
            tracker.record_success(3, 0.001)
        assert not tracker.is_greylisted(3)
        assert flips == [(3, True), (3, False)]

    def test_single_spike_does_not_greylist(self):
        """One queueing spike must not flip a warmed-up healthy node."""
        tracker = NodeHealthTracker(4, greylist_factor=4.0)
        for nid in range(4):
            _warm(tracker, nid, 0.001, samples=30)
        tracker.record_success(0, 0.003)  # 3x one-off spike
        assert not tracker.is_greylisted(0)

    def test_subordinate_to_suspect_and_down(self):
        tracker = NodeHealthTracker(4, suspicion_threshold=1, greylist_factor=4.0)
        for nid in range(3):
            _warm(tracker, nid, 0.001)
        _warm(tracker, 3, 0.050)
        tracker.record_failure(3)
        assert tracker.tier(3) == "suspect"
        assert not tracker.is_greylisted(3)
        tracker.on_liveness(3, alive=False)
        assert tracker.tier(3) == "down"

    def test_restore_resets_latency_profile(self):
        tracker = NodeHealthTracker(4, greylist_factor=4.0)
        for nid in range(3):
            _warm(tracker, nid, 0.001)
        _warm(tracker, 3, 0.050)
        assert tracker.is_greylisted(3)
        tracker.on_liveness(3, alive=False)
        tracker.on_liveness(3, alive=True)
        assert not tracker.is_greylisted(3)
        assert tracker.latency_samples[3] == 0
        assert tracker.latency_ewma[3] == 0.0

    def test_ewma_math(self):
        tracker = NodeHealthTracker(1)
        tracker.record_latency(0, 0.010)
        assert tracker.latency_ewma[0] == pytest.approx(0.010)
        tracker.record_latency(0, 0.020)
        expected = LATENCY_EWMA_ALPHA * 0.020 + (1 - LATENCY_EWMA_ALPHA) * 0.010
        assert tracker.latency_ewma[0] == pytest.approx(expected)


class TestTierExport:
    def test_tier_values_index_tiers(self):
        tracker = NodeHealthTracker(4, suspicion_threshold=1, greylist_factor=4.0)
        for nid in range(3):
            _warm(tracker, nid, 0.001)
        _warm(tracker, 3, 0.050)
        tracker.record_failure(2)
        tracker.on_liveness(1, alive=False)
        assert [tracker.tier(nid) for nid in range(4)] == [
            "usable", "down", "suspect", "greylisted",
        ]
        for nid in range(4):
            assert TIERS[tracker.tier_value(nid)] == tracker.tier(nid)

    def test_snapshot_carries_tier_fields(self):
        tracker = NodeHealthTracker(2, greylist_factor=4.0)
        snap = tracker.snapshot()
        assert snap[0]["tier"] == "usable"
        assert snap[0]["greylisted"] is False
        assert snap[0]["latency_ewma_s"] == 0.0
