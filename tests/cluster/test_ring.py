"""Consistent-hash ring: determinism, balance, and minimal disruption."""

import pytest

from repro.cluster.ring import HashRing

KEYS = [f"obj-{i}/s{j}" for i in range(200) for j in range(10)]


def test_deterministic_across_instances():
    a = HashRing(seed=7, vnodes=64, node_ids=range(9))
    b = HashRing(seed=7, vnodes=64, node_ids=range(9))
    assert [a.lookup(k) for k in KEYS] == [b.lookup(k) for k in KEYS]
    assert a.nodes_for("x/s0", 9) == b.nodes_for("x/s0", 9)


def test_seed_changes_mapping():
    a = HashRing(seed=7, vnodes=64, node_ids=range(9))
    b = HashRing(seed=8, vnodes=64, node_ids=range(9))
    assert [a.lookup(k) for k in KEYS] != [b.lookup(k) for k in KEYS]


def test_balance():
    ring = HashRing(seed=0, vnodes=64, node_ids=range(9))
    counts = {nid: 0 for nid in range(9)}
    for k in KEYS:
        counts[ring.lookup(k)] += 1
    mean = len(KEYS) / 9
    # 64 virtual nodes keep every node within ~2x of its fair share.
    assert min(counts.values()) > mean * 0.4, counts
    assert max(counts.values()) < mean * 2.0, counts


def test_join_moves_only_to_new_node():
    ring = HashRing(seed=0, vnodes=64, node_ids=range(9))
    before = {k: ring.lookup(k) for k in KEYS}
    ring.add_node(9)
    moved = 0
    for k in KEYS:
        after = ring.lookup(k)
        if after != before[k]:
            # Consistency: a key only ever moves TO the new node.
            assert after == 9, (k, before[k], after)
            moved += 1
    # ...and roughly its fair share (1/10) does, not the whole keyspace.
    assert 0 < moved < len(KEYS) * 0.25, moved


def test_remove_restores_prior_mapping():
    ring = HashRing(seed=0, vnodes=64, node_ids=range(9))
    before = {k: ring.lookup(k) for k in KEYS}
    ring.add_node(9)
    ring.remove_node(9)
    assert {k: ring.lookup(k) for k in KEYS} == before


def test_nodes_for_distinct_then_wraps():
    ring = HashRing(seed=0, vnodes=64, node_ids=range(9))
    nine = ring.nodes_for("tbl/s0", 9)
    assert sorted(nine) == list(range(9))  # distinct: every member once
    twelve = ring.nodes_for("tbl/s0", 12)
    assert twelve[:9] == nine  # wrap continues the same walk
    assert twelve[9:] == nine[:3]


def test_preference_is_distinct_walk():
    ring = HashRing(seed=0, vnodes=64, node_ids=range(5))
    pref = ring.preference("anything")
    assert sorted(pref) == list(range(5))


def test_membership_queries_and_idempotence():
    ring = HashRing(seed=0, vnodes=8, node_ids=range(3))
    assert len(ring) == 3 and 2 in ring
    ring.remove_node(2)
    assert len(ring) == 2 and 2 not in ring
    ring.remove_node(2)  # idempotent
    assert len(ring) == 2
    ring.add_node(2)
    ring.add_node(2)  # idempotent: no duplicate tokens
    assert len(ring) == 3
    assert ring.members == (0, 1, 2)
    # Token count stays exactly members * vnodes after the churn.
    assert len(ring._tokens) == 3 * 8


def test_empty_ring_rejects_lookup():
    ring = HashRing(seed=0, vnodes=8)
    with pytest.raises(ValueError):
        ring.lookup("x")
