"""Network model: transfer timing, contention, loopback, CPU charging."""

import pytest

from repro.cluster.metrics import NETWORK, QueryMetrics
from repro.cluster.network import Network, NetworkConfig, NetworkEndpoint
from repro.cluster.simcore import Resource, Simulator


def _net(sim, bw=1e9, rtt=0.0, rpc=0.0, cpu_bps=0.0):
    return Network(sim, NetworkConfig(bandwidth_bps=bw, rtt_s=rtt, rpc_overhead_s=rpc, cpu_bps=cpu_bps))


class TestTransferTiming:
    def test_duration_is_bytes_over_bandwidth(self):
        sim = Simulator()
        net = _net(sim, bw=1e9)
        a, b = NetworkEndpoint(sim, "a"), NetworkEndpoint(sim, "b")
        sim.process(net.transfer(a, b, 500_000_000))
        sim.run()
        assert sim.now == pytest.approx(0.5)

    def test_rtt_and_rpc_overhead_added(self):
        sim = Simulator()
        net = _net(sim, bw=1e9, rtt=0.002, rpc=0.003)
        a, b = NetworkEndpoint(sim, "a"), NetworkEndpoint(sim, "b")
        sim.process(net.transfer(a, b, 0))
        sim.run()
        assert sim.now == pytest.approx(0.001 + 0.003)

    def test_loopback_is_free(self):
        sim = Simulator()
        net = _net(sim, bw=1, rtt=10, rpc=10)
        a = NetworkEndpoint(sim, "a")
        sim.process(net.transfer(a, a, 10**9))
        sim.run()
        assert sim.now == 0.0
        assert net.total_bytes == 0

    def test_negative_bytes_raise(self):
        sim = Simulator()
        net = _net(sim)
        a, b = NetworkEndpoint(sim, "a"), NetworkEndpoint(sim, "b")
        proc_gen = net.transfer(a, b, -1)
        sim.process(proc_gen)
        with pytest.raises(ValueError):
            sim.run()


class TestContention:
    def test_shared_egress_serialises(self):
        sim = Simulator()
        net = _net(sim, bw=1e9)
        src = NetworkEndpoint(sim, "src")
        dsts = [NetworkEndpoint(sim, f"d{i}") for i in range(3)]
        for d in dsts:
            sim.process(net.transfer(src, d, 1_000_000_000))
        sim.run()
        # Three 1s transfers through one egress pipe: 3 seconds.
        assert sim.now == pytest.approx(3.0)

    def test_distinct_pairs_run_in_parallel(self):
        sim = Simulator()
        net = _net(sim, bw=1e9)
        pairs = [
            (NetworkEndpoint(sim, f"s{i}"), NetworkEndpoint(sim, f"d{i}")) for i in range(3)
        ]
        for s, d in pairs:
            sim.process(net.transfer(s, d, 1_000_000_000))
        sim.run()
        assert sim.now == pytest.approx(1.0)

    def test_shared_ingress_serialises(self):
        sim = Simulator()
        net = _net(sim, bw=1e9)
        dst = NetworkEndpoint(sim, "dst")
        srcs = [NetworkEndpoint(sim, f"s{i}") for i in range(2)]
        for s in srcs:
            sim.process(net.transfer(s, dst, 1_000_000_000))
        sim.run()
        assert sim.now == pytest.approx(2.0)


class TestAccounting:
    def test_total_bytes(self):
        sim = Simulator()
        net = _net(sim)
        a, b = NetworkEndpoint(sim, "a"), NetworkEndpoint(sim, "b")
        sim.process(net.transfer(a, b, 123))
        sim.process(net.transfer(b, a, 77))
        sim.run()
        assert net.total_bytes == 200

    def test_query_metrics_charged(self):
        sim = Simulator()
        net = _net(sim, bw=1e9, rtt=0.002)
        a, b = NetworkEndpoint(sim, "a"), NetworkEndpoint(sim, "b")
        qm = QueryMetrics()
        sim.process(net.transfer(a, b, 1_000_000, qm))
        sim.run()
        assert qm.network_bytes == 1_000_000
        assert qm.seconds[NETWORK] == pytest.approx(0.002)

    def test_cpu_charged_at_endpoints(self):
        sim = Simulator()
        net = _net(sim, bw=1e9, cpu_bps=1e9)
        cpu_a, cpu_b = Resource(sim, 4), Resource(sim, 4)
        a = NetworkEndpoint(sim, "a", cpu=cpu_a)
        b = NetworkEndpoint(sim, "b", cpu=cpu_b)
        sim.process(net.transfer(a, b, 2_000_000_000))
        sim.run()
        cpu_a._account()
        cpu_b._account()
        assert cpu_a.busy_time == pytest.approx(2.0)
        assert cpu_b.busy_time == pytest.approx(2.0)

    def test_no_cpu_charge_without_cpu(self):
        sim = Simulator()
        net = _net(sim, cpu_bps=1e9)
        a, b = NetworkEndpoint(sim, "a"), NetworkEndpoint(sim, "b")
        sim.process(net.transfer(a, b, 1000))
        sim.run()  # must simply not crash

    def test_bandwidth_knob(self):
        sim = Simulator()
        net = _net(sim)
        net.set_bandwidth_gbps(10)
        assert net.config.bandwidth_bps == pytest.approx(10e9 / 8)


class TestBatchTransfer:
    def test_one_overhead_for_whole_batch(self):
        sim = Simulator()
        net = _net(sim, bw=1e9, rtt=0.002, rpc=0.003)
        a, b = NetworkEndpoint(sim, "a"), NetworkEndpoint(sim, "b")
        sim.process(net.batch_transfer(a, b, [500_000_000, 250_000_000, 250_000_000]))
        sim.run()
        # 1 GB of payload at 1 GB/s plus ONE half-RTT and ONE rpc overhead.
        assert sim.now == pytest.approx(1.0 + 0.001 + 0.003)

    def test_counts_issued_and_saved(self):
        sim = Simulator()
        net = _net(sim)
        a, b = NetworkEndpoint(sim, "a"), NetworkEndpoint(sim, "b")
        qm = QueryMetrics()
        sim.process(net.batch_transfer(a, b, [10, 20, 30], qm))
        sim.process(net.transfer(a, b, 5, qm))
        sim.run()
        assert net.rpcs_issued == 2
        assert net.rpcs_saved == 2
        assert qm.rpcs_issued == 2 and qm.rpcs_saved == 2
        assert qm.network_bytes == 65
        assert net.total_bytes == 65

    def test_empty_batch_is_noop(self):
        sim = Simulator()
        net = _net(sim, rtt=10, rpc=10)
        a, b = NetworkEndpoint(sim, "a"), NetworkEndpoint(sim, "b")
        sim.process(net.batch_transfer(a, b, []))
        sim.run()
        assert sim.now == 0.0
        assert net.rpcs_issued == 0

    def test_loopback_batch_is_free(self):
        sim = Simulator()
        net = _net(sim, rtt=10, rpc=10)
        a = NetworkEndpoint(sim, "a")
        sim.process(net.batch_transfer(a, a, [100, 200]))
        sim.run()
        assert sim.now == 0.0
        assert net.total_bytes == 0 and net.rpcs_issued == 0

    def test_negative_size_raises(self):
        sim = Simulator()
        net = _net(sim)
        a, b = NetworkEndpoint(sim, "a"), NetworkEndpoint(sim, "b")
        sim.process(net.batch_transfer(a, b, [10, -1]))
        with pytest.raises(ValueError):
            sim.run()

    def test_single_transfer_counts_one_issued(self):
        sim = Simulator()
        net = _net(sim)
        a, b = NetworkEndpoint(sim, "a"), NetworkEndpoint(sim, "b")
        sim.process(net.transfer(a, b, 100))
        sim.run()
        assert net.rpcs_issued == 1 and net.rpcs_saved == 0


class TestStreamTransfer:
    def test_pays_bytes_only(self):
        sim = Simulator()
        net = _net(sim, bw=1e9, rtt=0.002, rpc=0.003)
        a, b = NetworkEndpoint(sim, "a"), NetworkEndpoint(sim, "b")
        sim.process(net.stream_transfer(a, b, 500_000_000))
        sim.run()
        assert sim.now == pytest.approx(0.5)  # no RTT, no rpc overhead

    def test_half_rtt_for_first_reply(self):
        sim = Simulator()
        net = _net(sim, bw=1e9, rtt=0.002, rpc=0.003)
        a, b = NetworkEndpoint(sim, "a"), NetworkEndpoint(sim, "b")
        sim.process(net.stream_transfer(a, b, 0, half_rtt=True))
        sim.run()
        assert sim.now == pytest.approx(0.001)

    def test_counts_as_saved_not_issued(self):
        sim = Simulator()
        net = _net(sim)
        a, b = NetworkEndpoint(sim, "a"), NetworkEndpoint(sim, "b")
        qm = QueryMetrics()
        sim.process(net.stream_transfer(a, b, 42, qm))
        sim.run()
        assert net.rpcs_issued == 0 and net.rpcs_saved == 1
        assert qm.rpcs_issued == 0 and qm.rpcs_saved == 1
        assert qm.network_bytes == 42 and net.total_bytes == 42

    def test_loopback_is_free_and_uncounted(self):
        sim = Simulator()
        net = _net(sim, rtt=10, rpc=10)
        a = NetworkEndpoint(sim, "a")
        sim.process(net.stream_transfer(a, a, 1000, half_rtt=True))
        sim.run()
        assert sim.now == 0.0
        assert net.total_bytes == 0 and net.rpcs_saved == 0

    def test_negative_bytes_raise(self):
        sim = Simulator()
        net = _net(sim)
        a, b = NetworkEndpoint(sim, "a"), NetworkEndpoint(sim, "b")
        sim.process(net.stream_transfer(a, b, -5))
        with pytest.raises(ValueError):
            sim.run()

    def test_queues_through_pipes(self):
        sim = Simulator()
        net = _net(sim, bw=1e9)
        src = NetworkEndpoint(sim, "src")
        dsts = [NetworkEndpoint(sim, f"d{i}") for i in range(3)]
        for d in dsts:
            sim.process(net.stream_transfer(src, d, 1_000_000_000))
        sim.run()
        # Streamed payloads still serialise through the shared egress pipe.
        assert sim.now == pytest.approx(3.0)


class TestLinkFaultPlane:
    def test_set_and_clear_link(self):
        sim = Simulator()
        net = _net(sim)
        net.set_link("a", "b", severed=True)
        assert net.link("a", "b").severed
        assert net.link("b", "a") is None  # directed
        assert net.severed_link_count() == 1
        net.clear_link("a", "b")
        assert net.link("a", "b") is None
        assert not net.links  # empty matrix keeps the hot path guard true

    def test_set_link_all_clear_removes_entry(self):
        sim = Simulator()
        net = _net(sim)
        net.set_link("a", "b", drop_rate=0.5)
        assert net.link("a", "b").drop_rate == 0.5
        net.set_link("a", "b")  # all axes back to defaults
        assert not net.links

    def test_link_severed_either_direction(self):
        sim = Simulator()
        net = _net(sim)
        net.set_link("b", "a", severed=True)  # only the reply leg
        assert net.link_severed("a", "b")
        assert net.link_severed("b", "a")
        assert not net.link_severed("a", "c")

    def test_extra_latency_charged_to_one_direction(self):
        sim = Simulator()
        net = _net(sim, bw=1e9)
        a, b = NetworkEndpoint(sim, "a"), NetworkEndpoint(sim, "b")
        net.set_link("a", "b", extra_latency_s=0.25)
        start = sim.now
        sim.process(net.transfer(a, b, 1000))
        sim.run()
        degraded = sim.now - start
        start = sim.now
        sim.process(net.transfer(b, a, 1000))
        sim.run()
        reverse = sim.now - start
        assert degraded >= reverse + 0.25

    def test_empty_matrix_costs_nothing(self):
        """With no link faults installed, timings match a fresh network."""
        sim1 = Simulator()
        net1 = _net(sim1, bw=1e9, rtt=0.002)
        a1, b1 = NetworkEndpoint(sim1, "a"), NetworkEndpoint(sim1, "b")
        sim1.process(net1.transfer(a1, b1, 10_000_000))
        sim1.run()

        sim2 = Simulator()
        net2 = _net(sim2, bw=1e9, rtt=0.002)
        a2, b2 = NetworkEndpoint(sim2, "a"), NetworkEndpoint(sim2, "b")
        net2.set_link("a", "b", extra_latency_s=0.25)
        net2.clear_link("a", "b")
        sim2.process(net2.transfer(a2, b2, 10_000_000))
        sim2.run()
        assert sim2.now == sim1.now  # bit-identical, not approx
