"""Fault injector and health tracker: scripted schedules, seeded
randomness, and failure-detection bookkeeping."""

import numpy as np
import pytest

from repro.cluster import (
    Cluster,
    ClusterConfig,
    FaultEvent,
    FaultInjector,
    NodeHealthTracker,
    Simulator,
    random_schedule,
)


def _cluster(num_nodes: int = 9):
    sim = Simulator()
    return Cluster(sim, ClusterConfig(num_nodes=num_nodes)), sim


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(at=1.0, kind="meteor", node_id=0)

    def test_windowed_kinds_need_duration(self):
        for kind in ("blip", "slow", "drop"):
            with pytest.raises(ValueError):
                FaultEvent(at=1.0, kind=kind, node_id=0, duration=0.0, rate=0.5)

    def test_drop_rate_bounds(self):
        with pytest.raises(ValueError):
            FaultEvent(at=0.0, kind="drop", node_id=0, duration=1.0, rate=0.0)
        with pytest.raises(ValueError):
            FaultEvent(at=0.0, kind="drop", node_id=0, duration=1.0, rate=1.5)


class TestScriptedSchedule:
    def test_crash_and_restore_at_scheduled_times(self):
        cluster, sim = _cluster()
        schedule = [
            FaultEvent(at=1.0, kind="crash", node_id=3),
            FaultEvent(at=3.0, kind="restore", node_id=3),
        ]
        FaultInjector(cluster, schedule, seed=1).install()
        seen = {}

        def probe():
            yield sim.timeout(0.5)
            seen[0.5] = cluster.node(3).alive
            yield sim.timeout(1.5)  # t = 2.0
            seen[2.0] = cluster.node(3).alive
            yield sim.timeout(2.0)  # t = 4.0
            seen[4.0] = cluster.node(3).alive

        sim.process(probe())
        sim.run()
        assert seen == {0.5: True, 2.0: False, 4.0: True}

    def test_blip_restores_automatically(self):
        cluster, sim = _cluster()
        FaultInjector(
            cluster, [FaultEvent(at=1.0, kind="blip", node_id=2, duration=1.0)], seed=1
        ).install()
        seen = {}

        def probe():
            yield sim.timeout(1.5)
            seen["during"] = cluster.node(2).alive
            yield sim.timeout(1.0)  # t = 2.5
            seen["after"] = cluster.node(2).alive

        sim.process(probe())
        sim.run()
        assert seen == {"during": False, "after": True}

    def test_slow_window_sets_and_resets_factors(self):
        cluster, sim = _cluster()
        FaultInjector(
            cluster,
            [FaultEvent(at=1.0, kind="slow", node_id=4, duration=2.0, factor=5.0)],
            seed=1,
        ).install()
        seen = {}

        def probe():
            yield sim.timeout(2.0)
            node = cluster.node(4)
            seen["during"] = (node.disk.slow_factor, node.endpoint.slow_factor)
            yield sim.timeout(2.0)  # t = 4.0
            seen["after"] = (node.disk.slow_factor, node.endpoint.slow_factor)

        sim.process(probe())
        sim.run()
        assert seen["during"] == (5.0, 5.0)
        assert seen["after"] == (1.0, 1.0)

    def test_slow_disk_actually_slower(self):
        cluster, sim = _cluster()
        node = cluster.node(0)
        node.put_block("b", np.zeros(1_000_000, dtype=np.uint8))

        def timed_read():
            t0 = sim.now
            yield from node.read_block("b", 1.0)
            return sim.now - t0

        p1 = sim.process(timed_read())
        sim.run()
        node.disk.slow_factor = 4.0
        p2 = sim.process(timed_read())
        sim.run()
        assert p2.value > p1.value * 3

    def test_corrupt_flips_bytes_in_place(self):
        cluster, sim = _cluster()
        node = cluster.node(1)
        payload = np.arange(256, dtype=np.uint8)
        node.put_block("blk", payload.copy())
        injector = FaultInjector(
            cluster, [FaultEvent(at=0.5, kind="corrupt", node_id=1)], seed=3
        ).install()
        sim.run()
        stored = node._blocks["blk"]
        assert stored.size == payload.size
        assert not np.array_equal(stored, payload)
        assert injector.log[0].detail == "blk"

    def test_crash_with_wipe_discards_blocks(self):
        cluster, sim = _cluster()
        node = cluster.node(5)
        node.put_block("blk", np.ones(10, dtype=np.uint8))
        FaultInjector(
            cluster, [FaultEvent(at=1.0, kind="crash", node_id=5, wipe=True)], seed=1
        ).install()
        sim.run()
        assert not node.alive
        assert not node.has_block("blk")

    def test_drop_window_is_seed_deterministic(self):
        def decisions(seed):
            cluster, sim = _cluster()
            injector = FaultInjector(
                cluster,
                [FaultEvent(at=0.0, kind="drop", node_id=0, duration=10.0, rate=0.5)],
                seed=seed,
            ).install()
            out = []

            def probe():
                yield sim.timeout(1.0)
                for _ in range(50):
                    out.append(injector.drop_rpc(0))

            sim.process(probe())
            sim.run()
            return out

        first, second = decisions(42), decisions(42)
        assert first == second
        assert any(first) and not all(first)  # rate in (0, 1) drops some
        assert decisions(43) != first

    def test_drop_window_expires(self):
        cluster, sim = _cluster()
        injector = FaultInjector(
            cluster,
            [FaultEvent(at=0.0, kind="drop", node_id=0, duration=1.0, rate=1.0)],
            seed=1,
        ).install()
        seen = {}

        def probe():
            yield sim.timeout(0.5)
            seen["during"] = injector.drop_rpc(0)
            yield sim.timeout(1.0)  # t = 1.5, window over
            seen["after"] = injector.drop_rpc(0)

        sim.process(probe())
        sim.run()
        assert seen == {"during": True, "after": False}


class TestRandomSchedule:
    def test_same_seed_same_schedule(self):
        a = random_schedule(9, 100.0, seed=11)
        b = random_schedule(9, 100.0, seed=11)
        assert a == b
        assert random_schedule(9, 100.0, seed=12) != a

    def test_respects_max_concurrent_down(self):
        events = random_schedule(
            9, 100.0, seed=5, crashes=4, blips=4, max_concurrent_down=2
        )
        # Reconstruct downtime intervals from the schedule.
        intervals = []
        restores = {ev.node_id: ev.at for ev in events if ev.kind == "restore"}
        for ev in events:
            if ev.kind == "crash":
                intervals.append((ev.at, restores.get(ev.node_id, 100.0)))
            elif ev.kind == "blip":
                intervals.append((ev.at, ev.at + ev.duration))
        for start, end in intervals:
            concurrent = sum(1 for s, e in intervals if s < end and start < e)
            assert concurrent <= 2

    def test_applies_cleanly_end_to_end(self):
        cluster, sim = _cluster()
        schedule = random_schedule(9, 10.0, seed=21)
        injector = FaultInjector(cluster, schedule, seed=21).install()
        sim.run()
        assert len(injector.log) == len(schedule)
        # Blips all restored by end of schedule driver + waiters.
        assert all(
            cluster.node(ev.node_id).alive
            for ev in schedule
            if ev.kind in ("blip", "restore")
        )


class TestHealthTracker:
    def test_failures_accumulate_to_suspicion(self):
        tracker = NodeHealthTracker(4, suspicion_threshold=3)
        for _ in range(2):
            tracker.record_failure(1)
        assert not tracker.is_suspect(1)
        tracker.record_failure(1)
        assert tracker.is_suspect(1)
        assert not tracker.usable(1)
        assert tracker.usable(0)

    def test_success_resets_suspicion(self):
        tracker = NodeHealthTracker(4, suspicion_threshold=2)
        tracker.record_failure(2)
        tracker.record_failure(2)
        assert tracker.is_suspect(2)
        tracker.record_success(2)
        assert not tracker.is_suspect(2)
        assert tracker.usable(2)

    def test_cluster_liveness_feeds_tracker(self):
        cluster, _sim = _cluster()
        cluster.fail_node(3)
        assert not cluster.health.usable(3)
        cluster.restore_node(3)
        assert cluster.health.usable(3)

    def test_restore_clears_suspicion(self):
        cluster, _sim = _cluster()
        for _ in range(cluster.health.suspicion_threshold):
            cluster.health.record_failure(4)
        assert not cluster.health.usable(4)
        cluster.fail_node(4)
        cluster.restore_node(4)
        assert cluster.health.usable(4)

    def test_listeners_notified_on_transitions_only(self):
        cluster, _sim = _cluster()
        calls = []
        cluster.add_liveness_listener(lambda nid, alive: calls.append((nid, alive)))
        cluster.fail_node(1)
        cluster.fail_node(1)  # already dead: no second notification
        cluster.restore_node(1)
        cluster.restore_node(1)  # already alive: no notification
        assert calls == [(1, False), (1, True)]


class TestLinkFaultKinds:
    def test_partition_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(at=0.0, kind="partition", node_id=0, duration=1.0)  # no nodes
        with pytest.raises(ValueError):
            FaultEvent(at=0.0, kind="asym_link", node_id=0, peer=0, duration=1.0, rate=0.5)
        with pytest.raises(ValueError):
            FaultEvent(at=0.0, kind="asym_link", node_id=0, peer=1, duration=1.0)  # no axis
        with pytest.raises(ValueError):
            FaultEvent(at=0.0, kind="fail_slow", node_id=0, duration=1.0, factor=0.5)

    def test_partition_severs_and_heals(self):
        cluster, sim = _cluster(num_nodes=4)
        schedule = [
            FaultEvent(at=1.0, kind="partition", node_id=0, nodes=(0, 1), duration=2.0),
        ]
        FaultInjector(cluster, schedule, seed=1).install()
        seen = {}

        def probe():
            yield sim.timeout(1.5)
            seen["cut"] = (
                cluster.reachable(0, 2),
                cluster.reachable(0, 1),
                cluster.network.severed_link_count(),
            )
            yield sim.timeout(2.0)  # t = 3.5, past the heal
            seen["healed"] = (
                cluster.reachable(0, 2),
                cluster.network.severed_link_count(),
                len(cluster.network.links),
            )

        sim.process(probe())
        sim.run()
        # Both directed legs of each of the 2x2 cross pairs are severed;
        # intra-side links stay up.  Heal empties the matrix entirely.
        assert seen["cut"] == (False, True, 8)
        assert seen["healed"] == (True, 0, 0)

    def test_severed_link_drops_rpc_deterministically(self):
        cluster, sim = _cluster(num_nodes=4)
        schedule = [
            FaultEvent(at=0.0, kind="partition", node_id=0, nodes=(0,), duration=5.0),
        ]
        injector = FaultInjector(cluster, schedule, seed=1).install()

        def probe():
            yield sim.timeout(1.0)
            seen = [injector.drop_rpc(1, src_id=0) for _ in range(5)]
            seen += [injector.drop_rpc(0, src_id=1) for _ in range(5)]  # reverse leg
            seen += [injector.drop_rpc(2, src_id=1)]  # same side: fine
            assert seen == [True] * 10 + [False]

        sim.process(probe())
        sim.run()

    def test_asym_link_adds_latency_one_direction(self):
        cluster, sim = _cluster(num_nodes=3)
        schedule = [
            FaultEvent(
                at=0.0, kind="asym_link", node_id=0, peer=1,
                duration=5.0, latency_s=0.5,
            ),
        ]
        FaultInjector(cluster, schedule, seed=1).install()
        a = cluster.node(0).endpoint
        b = cluster.node(1).endpoint
        durations = {}

        def probe():
            yield sim.timeout(1.0)
            start = sim.now
            yield from cluster.network.transfer(a, b, 1000)
            durations["degraded"] = sim.now - start
            start = sim.now
            yield from cluster.network.transfer(b, a, 1000)
            durations["reverse"] = sim.now - start
            yield sim.timeout(10.0)  # past the reset
            start = sim.now
            yield from cluster.network.transfer(a, b, 1000)
            durations["healed"] = sim.now - start

        sim.process(probe())
        sim.run()
        assert durations["degraded"] >= durations["reverse"] + 0.5
        assert durations["healed"] == pytest.approx(durations["reverse"])
        assert not cluster.network.links  # pruned after reset

    def test_asym_link_drops_are_link_rng_only(self):
        """Directed drop draws come from the link RNG: the main stream's
        replay (windowed drops) is unperturbed by link consultations."""
        cluster, sim = _cluster(num_nodes=3)
        schedule = [
            FaultEvent(at=0.0, kind="asym_link", node_id=0, peer=1, duration=50.0, rate=0.5),
        ]
        injector = FaultInjector(cluster, schedule, seed=7).install()
        main_state_before = None
        results = {}

        def probe():
            yield sim.timeout(1.0)
            state = injector.rng.getstate()
            outcomes = [injector.drop_rpc(1, src_id=0) for _ in range(64)]
            results["dropped"] = sum(outcomes)
            results["main_rng_untouched"] = injector.rng.getstate() == state

        sim.process(probe())
        sim.run()
        assert results["main_rng_untouched"]
        assert 10 < results["dropped"] < 55  # ~50% drop rate, seeded

    def test_fail_slow_sets_and_resets_gray_factors(self):
        cluster, sim = _cluster(num_nodes=3)
        schedule = [
            FaultEvent(at=1.0, kind="fail_slow", node_id=2, duration=2.0, factor=16.0),
        ]
        FaultInjector(cluster, schedule, seed=1).install()
        seen = {}

        def probe():
            yield sim.timeout(1.5)
            node = cluster.node(2)
            seen["gray"] = (node.disk.gray_factor, node.endpoint.gray_factor)
            seen["slow_untouched"] = (node.disk.slow_factor, node.endpoint.slow_factor)
            yield sim.timeout(2.0)
            seen["reset"] = (node.disk.gray_factor, node.endpoint.gray_factor)

        sim.process(probe())
        sim.run()
        assert seen["gray"] == (16.0, 16.0)
        assert seen["slow_untouched"] == (1.0, 1.0)
        assert seen["reset"] == (1.0, 1.0)


class TestScheduleSeedCompatibility:
    """Adding the link-fault families must not shift any existing draw."""

    OLD_KW = dict(
        crashes=3, blips=2, slow_windows=2, drop_windows=2, corruptions=2,
        overloads=1, slow_bursts=1, membership=1, tenant_storms=1,
    )

    def test_old_args_bit_identical(self):
        a = random_schedule(12, 10.0, seed=42, **self.OLD_KW)
        b = random_schedule(12, 10.0, seed=42, **self.OLD_KW)
        assert a == b
        # Zero-count new families draw nothing: identical to never
        # passing them at all.
        c = random_schedule(
            12, 10.0, seed=42, **self.OLD_KW, partitions=0, asym_links=0, fail_slows=0
        )
        assert c == a

    def test_new_families_append_after_old_draws(self):
        old = random_schedule(12, 10.0, seed=42, **self.OLD_KW)
        new = random_schedule(
            12, 10.0, seed=42, **self.OLD_KW, partitions=2, asym_links=2, fail_slows=1
        )
        prefix = [e for e in new if e.kind not in ("partition", "asym_link", "fail_slow")]
        assert prefix == old
        assert len(new) - len(prefix) == 5

    def test_new_family_events_well_formed(self):
        events = random_schedule(
            9, 10.0, seed=3, crashes=0, blips=0, slow_windows=0, drop_windows=0,
            corruptions=0, partitions=2, asym_links=3, fail_slows=2,
        )
        kinds = [e.kind for e in events]
        assert kinds.count("partition") == 2
        assert kinds.count("asym_link") == 3
        assert kinds.count("fail_slow") == 2
        for e in events:
            if e.kind == "partition":
                assert e.nodes and len(e.nodes) <= 9 // 2
            elif e.kind == "asym_link":
                assert e.peer != e.node_id and 0 <= e.peer < 9
            elif e.kind == "fail_slow":
                assert e.factor >= 8.0 and e.duration > 0

    def test_asym_links_skip_single_node_cluster(self):
        events = random_schedule(
            1, 10.0, seed=3, crashes=0, blips=0, slow_windows=0, drop_windows=0,
            corruptions=0, asym_links=3,
        )
        assert events == []
