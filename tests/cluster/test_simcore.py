"""The DES kernel: clock, events, processes, resources."""

import pytest

from repro.cluster.simcore import (
    Event,
    Resource,
    SimulationError,
    Simulator,
    all_of,
)


class TestEvents:
    def test_timeout_advances_clock(self):
        sim = Simulator()
        fired = []

        def proc():
            yield sim.timeout(5.0)
            fired.append(sim.now)

        sim.process(proc())
        sim.run()
        assert fired == [5.0]

    def test_timeout_value_delivery(self):
        sim = Simulator()
        got = []

        def proc():
            value = yield sim.timeout(1.0, value="hello")
            got.append(value)

        sim.process(proc())
        sim.run()
        assert got == ["hello"]

    def test_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_event_fires_once(self):
        sim = Simulator()
        event = sim.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_callback_after_fire_runs_immediately(self):
        sim = Simulator()
        event = sim.event()
        event.succeed("x")
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []

        def proc(delay, tag):
            yield sim.timeout(delay)
            order.append(tag)

        sim.process(proc(3, "c"))
        sim.process(proc(1, "a"))
        sim.process(proc(2, "b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_tiebreak_at_same_time(self):
        sim = Simulator()
        order = []

        def proc(tag):
            yield sim.timeout(1.0)
            order.append(tag)

        for tag in "abcd":
            sim.process(proc(tag))
        sim.run()
        assert order == list("abcd")

    def test_run_until(self):
        sim = Simulator()
        fired = []

        def proc():
            yield sim.timeout(10)
            fired.append(True)

        sim.process(proc())
        sim.run(until=5)
        assert sim.now == 5 and not fired
        sim.run()
        assert fired


class TestProcesses:
    def test_return_value(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1)
            return 42

        p = sim.process(proc())
        sim.run()
        assert p.value == 42

    def test_process_joins_process(self):
        sim = Simulator()

        def child():
            yield sim.timeout(2)
            return "done"

        def parent():
            result = yield sim.process(child())
            return (result, sim.now)

        p = sim.process(parent())
        sim.run()
        assert p.value == ("done", 2)

    def test_yielding_non_event_raises(self):
        sim = Simulator()

        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError, match="must yield"):
            sim.run()

    def test_immediate_return(self):
        sim = Simulator()

        def proc():
            return 7
            yield  # pragma: no cover

        p = sim.process(proc())
        sim.run()
        assert p.value == 7


class TestResource:
    def test_capacity_enforced(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        finish = []

        def worker(i):
            with (yield from res.acquire()):
                yield sim.timeout(1.0)
            finish.append((i, sim.now))

        for i in range(5):
            sim.process(worker(i))
        sim.run()
        times = [t for _, t in finish]
        assert times == [1.0, 1.0, 2.0, 2.0, 3.0]

    def test_fifo_ordering(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def worker(i):
            with (yield from res.acquire()):
                order.append(i)
                yield sim.timeout(1)

        for i in range(4):
            sim.process(worker(i))
        sim.run()
        assert order == [0, 1, 2, 3]

    def test_queue_length(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def worker():
            with (yield from res.acquire()):
                yield sim.timeout(1)

        for _ in range(3):
            sim.process(worker())
        sim.run(until=0.5)
        assert res.in_use == 1
        assert res.queue_length == 2

    def test_bad_capacity_raises(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), capacity=0)

    def test_utilization_accounting(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)

        def worker():
            with (yield from res.acquire()):
                yield sim.timeout(4)

        sim.process(worker())
        sim.run()
        # One of two slots busy for 4 of 4 seconds -> 50%.
        assert res.utilization(sim.now) == pytest.approx(0.5)

    def test_release_is_idempotent(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def worker():
            ctx = yield from res.acquire()
            ctx.release()
            ctx.release()  # second release must be a no-op

        sim.process(worker())
        sim.run()
        assert res.in_use == 0


class TestAllOf:
    def test_gathers_values_in_order(self):
        sim = Simulator()

        def proc(delay, value):
            yield sim.timeout(delay)
            return value

        procs = [sim.process(proc(3, "a")), sim.process(proc(1, "b"))]
        gathered = []

        def waiter():
            values = yield all_of(sim, procs)
            gathered.append((values, sim.now))

        sim.process(waiter())
        sim.run()
        assert gathered == [(["a", "b"], 3)]

    def test_empty_list_fires_immediately(self):
        sim = Simulator()
        done = all_of(sim, [])
        assert done.fired and done.value == []

    def test_already_fired_events(self):
        sim = Simulator()
        e1 = sim.event()
        e1.succeed(1)
        e2 = sim.event()
        combined = all_of(sim, [e1, e2])
        assert not combined.fired
        e2.succeed(2)
        assert combined.fired and combined.value == [1, 2]
