"""Membership manager: install gating, join/drain/remove, replication,
routing, and the seeded-schedule compatibility guarantees."""

import pytest

from repro.cluster import (
    Cluster,
    ClusterConfig,
    FaultEvent,
    FaultInjector,
    MEMBERSHIP_META,
    Simulator,
    install_membership,
    random_schedule,
)
from repro.core import StoreConfig


def _cluster(num_nodes=9, **config):
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=num_nodes))
    install_membership(cluster, StoreConfig(**config))
    return cluster


def test_install_is_gated_and_idempotent():
    cluster = _cluster()  # default knob: off
    assert cluster.membership is None
    cluster = _cluster(membership_enabled=True)
    first = cluster.membership
    assert first is not None
    install_membership(cluster, StoreConfig(membership_enabled=True))
    assert cluster.membership is first  # second install is a no-op


def test_join_grows_cluster_and_ring():
    cluster = _cluster(membership_enabled=True)
    epoch0 = cluster.membership.epoch
    nid = cluster.add_node()
    assert nid == 9
    assert cluster.num_nodes == 10
    assert cluster.membership.epoch == epoch0 + 1
    assert cluster.membership.is_active(nid)
    assert nid in cluster.membership.active_members()
    # Support structures grew with the topology: no IndexError on the
    # new node's health slots, and it starts healthy.
    assert cluster.health.usable(nid)
    cluster.health.record_failure(nid)
    assert cluster.node(nid).alive


def test_drain_then_remove_lifecycle():
    cluster = _cluster(membership_enabled=True)
    m = cluster.membership
    cluster.drain_node(3)
    assert not m.is_active(3)
    assert 3 in m.record.members  # draining, still a member
    assert cluster.node(3).alive  # drained != dead
    with pytest.raises(ValueError):
        cluster.drain_node(3)  # already draining
    cluster.remove_node(3)
    assert 3 not in m.record.members
    assert not cluster.node(3).alive  # removed nodes are marked dead
    # The slot survives: ids stay stable indexes.
    assert cluster.num_nodes == 9


def test_remove_requires_drain_first():
    cluster = _cluster(membership_enabled=True)
    with pytest.raises(ValueError):
        cluster.membership.remove(4)


def test_drain_and_remove_require_membership():
    cluster = _cluster()  # membership off
    with pytest.raises(RuntimeError):
        cluster.drain_node(0)
    with pytest.raises(RuntimeError):
        cluster.remove_node(0)


def test_cannot_drain_last_active_member():
    cluster = _cluster(num_nodes=2, membership_enabled=True)
    cluster.drain_node(0)
    with pytest.raises(ValueError):
        cluster.drain_node(1)


def test_record_replicated_to_members():
    cluster = _cluster(membership_enabled=True)
    cluster.drain_node(2)
    for nid in cluster.membership.record.members:
        rec = cluster.node(nid).get_meta(MEMBERSHIP_META)
        assert rec is not None
        assert rec.epoch == cluster.membership.epoch
        assert rec.draining == (2,)


def test_coordinator_never_draining_or_dead():
    cluster = _cluster(membership_enabled=True)
    cluster.drain_node(0)
    cluster.fail_node(1)
    for i in range(50):
        coord = cluster.coordinator_for(f"obj-{i}")
        assert coord.alive
        assert coord.node_id != 0, "draining node must not coordinate"
        assert coord.node_id != 1, "dead node must not coordinate"


def test_placement_excludes_drained_node():
    cluster = _cluster(membership_enabled=True)
    cluster.drain_node(5)
    for i in range(50):
        nodes = cluster.place_stripe(f"obj-{i}/s0", 8)
        assert 5 not in nodes
        assert len(set(nodes)) == 8


def test_place_stripe_without_membership_uses_rng():
    """With membership off, place_stripe must consume the placement RNG
    exactly like choose_stripe_nodes (bit-identity with the seed)."""
    a = Cluster(Simulator(), ClusterConfig(num_nodes=9))
    b = Cluster(Simulator(), ClusterConfig(num_nodes=9))
    got = [a.place_stripe(f"k{i}", 9) for i in range(10)]
    want = [b.choose_stripe_nodes(9) for i in range(10)]
    assert got == want


def test_random_schedule_membership_off_is_bit_identical():
    base = random_schedule(9, 10.0, seed=42, overloads=2, slow_bursts=2)
    again = random_schedule(9, 10.0, seed=42, overloads=2, slow_bursts=2,
                            membership=0)
    assert base == again


def test_random_schedule_membership_draws_after_existing_families():
    base = random_schedule(9, 10.0, seed=42, overloads=2, slow_bursts=2)
    churn = random_schedule(9, 10.0, seed=42, overloads=2, slow_bursts=2,
                            membership=3)
    extra = [ev for ev in churn if ev not in base]
    assert len(churn) == len(base) + 3
    assert all(ev.kind in ("join", "drain", "flap") for ev in extra)
    for ev in extra:
        assert ev.at <= 0.8 * 10.0
        if ev.kind == "flap":
            assert ev.duration > 0 and ev.rate > 0


def test_flap_event_validation():
    with pytest.raises(ValueError):
        FaultInjector(
            _cluster(), [FaultEvent(at=0.0, kind="flap", node_id=0, duration=0.0)]
        )
    with pytest.raises(ValueError):
        FaultInjector(
            _cluster(),
            [FaultEvent(at=0.0, kind="flap", node_id=0, duration=1.0, rate=0.0)],
        )


def test_join_event_without_membership_is_noop():
    cluster = _cluster()  # membership off
    injector = FaultInjector(cluster, [FaultEvent(at=0.1, kind="join", node_id=-1)])
    injector.install()
    cluster.sim.run(until=1.0)
    assert cluster.num_nodes == 9
    assert any("join ignored" in f.detail for f in injector.log)


def test_join_and_drain_events_with_membership():
    cluster = _cluster(membership_enabled=True)
    injector = FaultInjector(
        cluster,
        [
            FaultEvent(at=0.1, kind="join", node_id=-1),
            FaultEvent(at=0.2, kind="drain", node_id=2),
            FaultEvent(at=0.3, kind="drain", node_id=2),  # refused: already draining
        ],
    )
    injector.install()
    cluster.sim.run(until=1.0)
    assert cluster.num_nodes == 10
    assert not cluster.membership.is_active(2)
    details = [f.detail for f in injector.log]
    assert any("joined" in d for d in details)
    assert any("drain refused" in d for d in details)


def test_flap_driver_ends_restored():
    cluster = _cluster(membership_enabled=True)
    injector = FaultInjector(
        cluster,
        [FaultEvent(at=0.1, kind="flap", node_id=4, duration=0.4, rate=10.0)],
    )
    injector.install()
    cluster.sim.run(until=1.0)
    assert cluster.node(4).alive
