"""Predicate evaluation and stats pruning.

Key property (hypothesis): min/max pruning must be *conservative* — a
pruned chunk can never contain a matching row.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.format.schema import ColumnType
from repro.sql import (
    And,
    Between,
    CompareOp,
    Comparison,
    InList,
    Not,
    Or,
    PredicateTypeError,
    combine_leaf_bitmaps,
    eval_leaf,
    eval_tree,
    leaf_may_match,
    tree_may_match,
)
from repro.sql.predicate import coerce_literal


class TestCoercion:
    def test_date_string(self):
        assert coerce_literal(ColumnType.DATE, "1970-01-02") == 1

    def test_date_invalid_string_raises(self):
        with pytest.raises(ValueError):
            coerce_literal(ColumnType.DATE, "not-a-date")

    def test_string_rejects_number(self):
        with pytest.raises(PredicateTypeError):
            coerce_literal(ColumnType.STRING, 5)

    def test_numeric_rejects_string(self):
        with pytest.raises(PredicateTypeError):
            coerce_literal(ColumnType.INT64, "five")

    def test_numeric_rejects_bool(self):
        with pytest.raises(PredicateTypeError):
            coerce_literal(ColumnType.DOUBLE, True)

    def test_bool_rejects_int(self):
        with pytest.raises(PredicateTypeError):
            coerce_literal(ColumnType.BOOL, 1)


class TestEvalLeaf:
    def test_all_numeric_ops(self):
        values = np.array([1, 2, 3, 4, 5], dtype=np.int64)
        cases = {
            CompareOp.EQ: [False, False, True, False, False],
            CompareOp.NE: [True, True, False, True, True],
            CompareOp.LT: [True, True, False, False, False],
            CompareOp.LE: [True, True, True, False, False],
            CompareOp.GT: [False, False, False, True, True],
            CompareOp.GE: [False, False, True, True, True],
        }
        for op, expected in cases.items():
            out = eval_leaf(Comparison("x", op, 3), ColumnType.INT64, values)
            assert out.tolist() == expected, op

    def test_string_ops(self):
        values = np.array(["apple", "banana", "cherry"], dtype=object)
        eq = eval_leaf(Comparison("s", CompareOp.EQ, "banana"), ColumnType.STRING, values)
        assert eq.tolist() == [False, True, False]
        lt = eval_leaf(Comparison("s", CompareOp.LT, "banana"), ColumnType.STRING, values)
        assert lt.tolist() == [True, False, False]

    def test_date_with_iso_literal(self):
        values = np.array([0, 10, 20], dtype=np.int32)
        out = eval_leaf(
            Comparison("d", CompareOp.LT, "1970-01-11"), ColumnType.DATE, values
        )
        assert out.tolist() == [True, False, False]

    def test_between_inclusive(self):
        values = np.array([1, 2, 3, 4], dtype=np.int64)
        out = eval_leaf(Between("x", 2, 3), ColumnType.INT64, values)
        assert out.tolist() == [False, True, True, False]

    def test_in_list_numeric_and_string(self):
        nums = np.array([1, 2, 3], dtype=np.int64)
        assert eval_leaf(InList("x", (1, 3)), ColumnType.INT64, nums).tolist() == [
            True,
            False,
            True,
        ]
        strs = np.array(["a", "b", "c"], dtype=object)
        assert eval_leaf(InList("s", ("b",)), ColumnType.STRING, strs).tolist() == [
            False,
            True,
            False,
        ]

    def test_non_leaf_raises(self):
        with pytest.raises(TypeError):
            eval_leaf(And(Comparison("x", CompareOp.EQ, 1), Comparison("x", CompareOp.EQ, 2)), ColumnType.INT64, np.array([1]))


class TestEvalTree:
    def _eval(self, pred, data):
        return eval_tree(
            pred,
            column_values=lambda name: data[name],
            column_type=lambda name: ColumnType.INT64,
        )

    def test_and_or_not(self):
        data = {"a": np.array([1, 2, 3, 4]), "b": np.array([10, 20, 30, 40])}
        pred = And(Comparison("a", CompareOp.GT, 1), Comparison("b", CompareOp.LT, 40))
        assert self._eval(pred, data).tolist() == [False, True, True, False]
        pred = Or(Comparison("a", CompareOp.EQ, 1), Comparison("b", CompareOp.EQ, 40))
        assert self._eval(pred, data).tolist() == [True, False, False, True]
        pred = Not(Comparison("a", CompareOp.LE, 2))
        assert self._eval(pred, data).tolist() == [False, False, True, True]


class TestCombineLeafBitmaps:
    def test_matches_direct_evaluation(self):
        data = {"a": np.array([1, 2, 3, 4]), "b": np.array([4, 3, 2, 1])}
        pred = Or(
            And(Comparison("a", CompareOp.GT, 2), Comparison("b", CompareOp.LT, 2)),
            Not(Comparison("a", CompareOp.EQ, 1)),
        )
        direct = eval_tree(
            pred, lambda n: data[n], lambda n: ColumnType.INT64
        )
        from repro.sql import leaves

        leaf_bms = [
            eval_leaf(leaf, ColumnType.INT64, data[leaf.column]) for leaf in leaves(pred)
        ]
        combined = combine_leaf_bitmaps(pred, leaf_bms)
        assert np.array_equal(direct, combined)

    def test_wrong_bitmap_count_raises(self):
        pred = Comparison("a", CompareOp.EQ, 1)
        with pytest.raises(ValueError, match="leaves"):
            combine_leaf_bitmaps(pred, [np.array([True]), np.array([True])])


class TestPruning:
    def test_leaf_may_match_eq(self):
        leaf = Comparison("x", CompareOp.EQ, 5)
        assert leaf_may_match(leaf, ColumnType.INT64, 1, 10)
        assert not leaf_may_match(leaf, ColumnType.INT64, 6, 10)

    def test_leaf_may_match_lt(self):
        leaf = Comparison("x", CompareOp.LT, 5)
        assert leaf_may_match(leaf, ColumnType.INT64, 1, 3)
        assert not leaf_may_match(leaf, ColumnType.INT64, 5, 9)

    def test_missing_stats_conservative(self):
        leaf = Comparison("x", CompareOp.EQ, 5)
        assert leaf_may_match(leaf, ColumnType.INT64, None, None)

    def test_between_overlap(self):
        assert leaf_may_match(Between("x", 5, 8), ColumnType.INT64, 1, 6)
        assert not leaf_may_match(Between("x", 5, 8), ColumnType.INT64, 9, 12)

    def test_in_list(self):
        assert leaf_may_match(InList("x", (1, 20)), ColumnType.INT64, 15, 30)
        assert not leaf_may_match(InList("x", (1, 2)), ColumnType.INT64, 10, 20)

    def test_not_is_conservative(self):
        pred = Not(Comparison("x", CompareOp.LT, 0))
        assert tree_may_match(pred, lambda n: ColumnType.INT64, lambda n: (5, 9))

    @settings(max_examples=200, deadline=None)
    @given(
        values=st.lists(st.integers(-100, 100), min_size=1, max_size=30),
        op=st.sampled_from(list(CompareOp)),
        literal=st.integers(-100, 100),
    )
    def test_pruning_never_loses_matches(self, values, op, literal):
        """If the stats say 'cannot match', no row may actually match."""
        arr = np.asarray(values, dtype=np.int64)
        leaf = Comparison("x", op, literal)
        may = leaf_may_match(leaf, ColumnType.INT64, int(arr.min()), int(arr.max()))
        matches = eval_leaf(leaf, ColumnType.INT64, arr)
        if not may:
            assert not matches.any()

    @settings(max_examples=100, deadline=None)
    @given(
        values=st.lists(st.integers(-50, 50), min_size=1, max_size=30),
        low=st.integers(-60, 60),
        high=st.integers(-60, 60),
    )
    def test_between_pruning_conservative(self, values, low, high):
        arr = np.asarray(values, dtype=np.int64)
        leaf = Between("x", min(low, high), max(low, high))
        may = leaf_may_match(leaf, ColumnType.INT64, int(arr.min()), int(arr.max()))
        if not may:
            assert not eval_leaf(leaf, ColumnType.INT64, arr).any()
