"""Aggregates: direct evaluation and partial-state merging.

Key property (hypothesis): merging per-chunk partial aggregates must give
exactly the same answer as computing the aggregate over all values — the
invariant the aggregate-pushdown extension relies on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import Aggregate, AggregateFunc
from repro.sql.aggregates import (
    compute_aggregate,
    merge_partial_aggregates,
    partial_aggregate,
)


class TestComputeAggregate:
    def test_count_star(self):
        agg = Aggregate(AggregateFunc.COUNT, None)
        assert compute_aggregate(agg, None, 42) == 42

    def test_count_column(self):
        agg = Aggregate(AggregateFunc.COUNT, "x")
        assert compute_aggregate(agg, np.array([1, 2, 3]), 3) == 3

    def test_sum_avg_min_max(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        assert compute_aggregate(Aggregate(AggregateFunc.SUM, "x"), values, 4) == 10.0
        assert compute_aggregate(Aggregate(AggregateFunc.AVG, "x"), values, 4) == 2.5
        assert compute_aggregate(Aggregate(AggregateFunc.MIN, "x"), values, 4) == 1.0
        assert compute_aggregate(Aggregate(AggregateFunc.MAX, "x"), values, 4) == 4.0

    def test_empty_returns_null(self):
        empty = np.zeros(0)
        for func in (AggregateFunc.SUM, AggregateFunc.AVG, AggregateFunc.MIN, AggregateFunc.MAX):
            assert compute_aggregate(Aggregate(func, "x"), empty, 0) is None

    def test_string_min_max(self):
        values = np.array(["b", "a", "c"], dtype=object)
        assert compute_aggregate(Aggregate(AggregateFunc.MIN, "s"), values, 3) == "a"
        assert compute_aggregate(Aggregate(AggregateFunc.MAX, "s"), values, 3) == "c"

    def test_sum_of_strings_raises(self):
        values = np.array(["a"], dtype=object)
        with pytest.raises(TypeError):
            compute_aggregate(Aggregate(AggregateFunc.SUM, "s"), values, 1)


class TestPartialMerge:
    @pytest.mark.parametrize(
        "func",
        [AggregateFunc.COUNT, AggregateFunc.SUM, AggregateFunc.AVG, AggregateFunc.MIN, AggregateFunc.MAX],
    )
    def test_merge_equals_direct(self, func, rng):
        agg = Aggregate(func, "x")
        chunks = [rng.uniform(-10, 10, size=n) for n in (5, 0, 17, 3)]
        partials = [partial_aggregate(agg, c, len(c)) for c in chunks]
        merged = merge_partial_aggregates(agg, partials)
        combined = np.concatenate(chunks)
        direct = compute_aggregate(agg, combined, len(combined))
        if isinstance(direct, float):
            assert merged == pytest.approx(direct)
        else:
            assert merged == direct

    def test_all_empty_partials(self):
        agg = Aggregate(AggregateFunc.AVG, "x")
        assert merge_partial_aggregates(agg, [{"count": 0}, {"count": 0}]) is None

    def test_count_star_partials(self):
        agg = Aggregate(AggregateFunc.COUNT, None)
        partials = [partial_aggregate(agg, None, 7), partial_aggregate(agg, None, 3)]
        assert merge_partial_aggregates(agg, partials) == 10

    @settings(max_examples=100, deadline=None)
    @given(
        chunks=st.lists(
            st.lists(st.integers(-1000, 1000), max_size=20), min_size=1, max_size=5
        ),
        func=st.sampled_from(
            [AggregateFunc.SUM, AggregateFunc.AVG, AggregateFunc.MIN, AggregateFunc.MAX]
        ),
    )
    def test_merge_property(self, chunks, func):
        agg = Aggregate(func, "x")
        arrays = [np.asarray(c, dtype=np.int64) for c in chunks]
        partials = [partial_aggregate(agg, a, len(a)) for a in arrays]
        merged = merge_partial_aggregates(agg, partials)
        combined = np.concatenate(arrays) if arrays else np.zeros(0, dtype=np.int64)
        direct = compute_aggregate(agg, combined, len(combined))
        if direct is None:
            assert merged is None
        elif isinstance(direct, float):
            assert merged == pytest.approx(direct)
        else:
            assert merged == direct
