"""Bitmaps and their compressed wire form."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import Bitmap


class TestOps:
    def test_and_or_invert(self):
        a = Bitmap(np.array([True, True, False, False]))
        b = Bitmap(np.array([True, False, True, False]))
        assert (a & b).bits.tolist() == [True, False, False, False]
        assert (a | b).bits.tolist() == [True, True, True, False]
        assert (~a).bits.tolist() == [False, False, True, True]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatch"):
            Bitmap.zeros(3) & Bitmap.zeros(4)

    def test_count_and_selectivity(self):
        bm = Bitmap(np.array([True, False, True, False]))
        assert bm.count() == 2
        assert bm.selectivity() == pytest.approx(0.5)

    def test_empty_selectivity(self):
        assert Bitmap.zeros(0).selectivity() == 0.0

    def test_indices(self):
        bm = Bitmap(np.array([False, True, False, True]))
        assert bm.indices().tolist() == [1, 3]

    def test_constructors(self):
        assert Bitmap.ones(5).count() == 5
        assert Bitmap.zeros(5).count() == 0

    def test_equality(self):
        assert Bitmap.ones(3) == Bitmap.ones(3)
        assert Bitmap.ones(3) != Bitmap.zeros(3)


class TestWire:
    def test_roundtrip(self, rng):
        bm = Bitmap(rng.integers(0, 2, size=1000).astype(bool))
        assert Bitmap.from_wire(bm.to_wire()) == bm

    def test_non_multiple_of_eight(self):
        bm = Bitmap(np.array([True, False, True]))
        assert Bitmap.from_wire(bm.to_wire()) == bm

    def test_sparse_bitmap_compresses(self, rng):
        bits = np.zeros(100_000, dtype=bool)
        bits[rng.integers(0, 100_000, size=100)] = True
        bm = Bitmap(bits)
        # Packed raw is 12.5 KB; sparse content should compress well below.
        assert bm.wire_size() < 6_000

    def test_zlib_codec_option(self, rng):
        bm = Bitmap(rng.integers(0, 2, size=500).astype(bool))
        wire = bm.to_wire(codec_name="zlib")
        assert Bitmap.from_wire(wire, codec_name="zlib") == bm

    @settings(max_examples=50, deadline=None)
    @given(bits=st.lists(st.booleans(), max_size=300))
    def test_roundtrip_property(self, bits):
        bm = Bitmap(np.asarray(bits, dtype=bool))
        assert Bitmap.from_wire(bm.to_wire()) == bm
