"""LIKE predicates: matching semantics, pruning, distributed execution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.format.schema import ColumnType
from repro.sql import Like, PlanError, SqlSyntaxError, execute_local, parse, plan
from repro.sql.predicate import eval_leaf, leaf_may_match


class TestParsing:
    def test_like_parsed(self):
        q = parse("SELECT a FROM t WHERE name LIKE 'bob%'")
        assert q.where == Like("name", "bob%")

    def test_non_string_pattern_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM t WHERE name LIKE 5")

    def test_literal_prefix(self):
        assert Like("c", "abc%def").literal_prefix == "abc"
        assert Like("c", "%abc").literal_prefix == ""
        assert Like("c", "a_c").literal_prefix == "a"
        assert Like("c", "plain").literal_prefix == "plain"


class TestMatching:
    def _match(self, pattern, values):
        arr = np.empty(len(values), dtype=object)
        for i, v in enumerate(values):
            arr[i] = v
        return eval_leaf(Like("c", pattern), ColumnType.STRING, arr).tolist()

    def test_prefix(self):
        assert self._match("ab%", ["abc", "ab", "xab", "b"]) == [True, True, False, False]

    def test_suffix(self):
        assert self._match("%ing", ["going", "ring", "ingot"]) == [True, True, False]

    def test_contains(self):
        assert self._match("%mid%", ["amidst", "mid", "m-i-d"]) == [True, True, False]

    def test_underscore_single_char(self):
        assert self._match("a_c", ["abc", "ac", "abbc"]) == [True, False, False]

    def test_exact_when_no_wildcards(self):
        assert self._match("abc", ["abc", "abcd"]) == [True, False]

    def test_regex_metachars_are_literal(self):
        assert self._match("a.c%", ["a.cd", "abcd"]) == [True, False]
        assert self._match("a*b", ["a*b", "aXb", "ab"]) == [True, False, False]
        assert self._match("a[b]%", ["a[b]x", "ab"]) == [True, False]

    def test_non_string_column_raises(self):
        from repro.sql import PredicateTypeError

        with pytest.raises(PredicateTypeError):
            eval_leaf(Like("c", "a%"), ColumnType.INT64, np.array([1, 2]))


class TestPruning:
    def test_prefix_prunes_disjoint_ranges(self):
        leaf = Like("c", "zz%")
        assert not leaf_may_match(leaf, ColumnType.STRING, "aaa", "mmm")
        assert leaf_may_match(leaf, ColumnType.STRING, "ya", "zzz")

    def test_leading_wildcard_never_prunes(self):
        leaf = Like("c", "%zz")
        assert leaf_may_match(leaf, ColumnType.STRING, "aaa", "bbb")

    def test_missing_stats_conservative(self):
        assert leaf_may_match(Like("c", "a%"), ColumnType.STRING, None, None)

    @settings(max_examples=100, deadline=None)
    @given(
        values=st.lists(
            st.text(alphabet="abcdef", min_size=1, max_size=6), min_size=1, max_size=25
        ),
        prefix=st.text(alphabet="abcdef", min_size=1, max_size=3),
    )
    def test_pruning_never_loses_matches(self, values, prefix):
        arr = np.empty(len(values), dtype=object)
        for i, v in enumerate(values):
            arr[i] = v
        leaf = Like("c", prefix + "%")
        may = leaf_may_match(leaf, ColumnType.STRING, min(values), max(values))
        if not may:
            assert not eval_leaf(leaf, ColumnType.STRING, arr).any()


class TestEndToEnd:
    def test_plan_rejects_like_on_numbers(self, small_table):
        with pytest.raises(PlanError, match="LIKE"):
            plan(parse("SELECT id FROM t WHERE qty LIKE '5%'"), small_table.schema)

    def test_local_execution(self, small_table):
        r = execute_local("SELECT tag FROM t WHERE tag LIKE 'tag-1%'", small_table)
        assert all(v.startswith("tag-1") for v in r.rows["tag"])
        assert r.matched_rows > 0

    def test_distributed_matches_local(self, loaded_fusion, loaded_baseline, small_table):
        sql = "SELECT id, note FROM tbl WHERE note LIKE 'note 1%' AND qty < 40"
        expected = execute_local(sql, small_table)
        for store in (loaded_fusion, loaded_baseline):
            result, _ = store.query(sql)
            assert result.equals(expected)
