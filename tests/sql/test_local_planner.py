"""Planner validation and the local reference executor."""

import numpy as np
import pytest

from repro.sql import PlanError, execute_local, parse, plan


class TestPlanner:
    def test_filter_ops_one_per_leaf(self, small_table):
        q = parse("SELECT id FROM t WHERE qty < 5 AND price > 1 AND qty > 2")
        p = plan(q, small_table.schema)
        assert [op.column for op in p.filter_ops] == ["qty", "price", "qty"]
        assert [op.index for op in p.filter_ops] == [0, 1, 2]

    def test_projection_includes_aggregate_inputs(self, small_table):
        q = parse("SELECT avg(price), sum(qty) FROM t")
        p = plan(q, small_table.schema)
        assert p.projection_columns == ["price", "qty"]

    def test_select_star_expands(self, small_table):
        p = plan(parse("SELECT * FROM t"), small_table.schema)
        assert p.projection_columns == small_table.schema.names()
        assert p.is_select_star()

    def test_unknown_projection_column(self, small_table):
        with pytest.raises(PlanError, match="projection"):
            plan(parse("SELECT nope FROM t"), small_table.schema)

    def test_unknown_filter_column(self, small_table):
        with pytest.raises(PlanError, match="filter"):
            plan(parse("SELECT id FROM t WHERE nope = 1"), small_table.schema)

    def test_type_mismatch_rejected_at_plan_time(self, small_table):
        with pytest.raises(PlanError):
            plan(parse("SELECT id FROM t WHERE qty = 'five'"), small_table.schema)
        with pytest.raises(PlanError):
            plan(parse("SELECT id FROM t WHERE tag < 5"), small_table.schema)
        with pytest.raises(PlanError):
            plan(parse("SELECT id FROM t WHERE qty BETWEEN 1 AND 'x'"), small_table.schema)

    def test_mixed_plain_and_aggregate_rejected(self, small_table):
        with pytest.raises(PlanError, match="GROUP BY"):
            plan(parse("SELECT id, count(*) FROM t"), small_table.schema)

    def test_combine_bitmaps_no_where(self, small_table):
        p = plan(parse("SELECT id FROM t"), small_table.schema)
        assert p.combine_bitmaps([], 5).all()


class TestExecuteLocal:
    def test_filter_and_project(self, small_table):
        result = execute_local("SELECT id, qty FROM t WHERE id < 10", small_table)
        assert result.matched_rows == 10
        assert result.rows["id"].tolist() == list(range(10))
        assert result.columns == ["id", "qty"]

    def test_no_where_returns_all(self, small_table):
        result = execute_local("SELECT id FROM t", small_table)
        assert result.matched_rows == small_table.num_rows

    def test_date_filter(self, small_table):
        result = execute_local("SELECT id FROM t WHERE day < '2013-11-01'", small_table)
        from repro.sql import date_to_days

        expected = int((small_table["day"] < date_to_days("2013-11-01")).sum())
        assert result.matched_rows == expected

    def test_bool_filter(self, small_table):
        result = execute_local("SELECT id FROM t WHERE flag = true", small_table)
        assert result.matched_rows == int(small_table["flag"].sum())

    def test_aggregates(self, small_table):
        result = execute_local(
            "SELECT count(*), avg(price), min(qty), max(qty) FROM t WHERE id < 100",
            small_table,
        )
        segment_price = small_table["price"][:100]
        segment_qty = small_table["qty"][:100]
        assert result.aggregates[0] == 100
        assert result.aggregates[1] == pytest.approx(segment_price.mean())
        assert result.aggregates[2] == segment_qty.min()
        assert result.aggregates[3] == segment_qty.max()
        assert result.rows is None

    def test_aggregate_over_empty_selection(self, small_table):
        result = execute_local("SELECT avg(price) FROM t WHERE id < 0", small_table)
        assert result.aggregates == [None]
        assert result.matched_rows == 0

    def test_in_and_between(self, small_table):
        result = execute_local(
            "SELECT id FROM t WHERE tag IN ('tag-1', 'tag-2') AND id BETWEEN 0 AND 13",
            small_table,
        )
        assert result.rows["id"].tolist() == [1, 2, 8, 9]

    def test_or_and_not(self, small_table):
        result = execute_local(
            "SELECT id FROM t WHERE id = 1 OR (NOT id > 3 AND flag = false)", small_table
        )
        mask = (small_table["id"] == 1) | (
            ~(small_table["id"] > 3) & ~small_table["flag"]
        )
        assert result.matched_rows == int(mask.sum())

    def test_selectivity(self, small_table):
        result = execute_local("SELECT id FROM t WHERE id < 200", small_table)
        assert result.selectivity == pytest.approx(0.1)

    def test_result_equality_helper(self, small_table):
        a = execute_local("SELECT id FROM t WHERE id < 5", small_table)
        b = execute_local("SELECT id FROM t WHERE id < 5", small_table)
        c = execute_local("SELECT id FROM t WHERE id < 6", small_table)
        assert a.equals(b)
        assert not a.equals(c)
