"""LIMIT clause (S3 Select supports it; so do we)."""

import pytest

from repro.sql import SqlSyntaxError, execute_local, parse


class TestParsing:
    def test_limit_parsed(self):
        assert parse("SELECT a FROM t LIMIT 10").limit == 10

    def test_no_limit_is_none(self):
        assert parse("SELECT a FROM t").limit is None

    def test_limit_after_where_and_group(self):
        q = parse("SELECT a, count(*) FROM t WHERE a < 5 GROUP BY a LIMIT 2")
        assert q.limit == 2 and q.group_by == ("a",)

    def test_zero_allowed(self):
        assert parse("SELECT a FROM t LIMIT 0").limit == 0

    def test_negative_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM t LIMIT -1")

    def test_non_integer_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM t LIMIT 2.5")


class TestSemantics:
    def test_truncates_rows(self, small_table):
        r = execute_local("SELECT id FROM t WHERE qty < 25 LIMIT 5", small_table)
        assert r.rows.num_rows == 5
        # matched_rows still reports the full filter cardinality.
        assert r.matched_rows > 5

    def test_limit_larger_than_result(self, small_table):
        r = execute_local("SELECT id FROM t WHERE id < 3 LIMIT 100", small_table)
        assert r.rows.num_rows == 3

    def test_limit_zero(self, small_table):
        r = execute_local("SELECT id FROM t LIMIT 0", small_table)
        assert r.rows.num_rows == 0

    def test_keeps_first_rows_in_order(self, small_table):
        r = execute_local("SELECT id FROM t LIMIT 4", small_table)
        assert r.rows["id"].tolist() == [0, 1, 2, 3]

    def test_grouped_limit(self, small_table):
        r = execute_local("SELECT tag, count(*) FROM t GROUP BY tag LIMIT 3", small_table)
        assert r.rows.num_rows == 3

    def test_distributed_matches_local(self, loaded_fusion, loaded_baseline, small_table):
        sql = "SELECT id, tag FROM tbl WHERE qty < 30 LIMIT 11"
        expected = execute_local(sql, small_table)
        for store in (loaded_fusion, loaded_baseline):
            result, _ = store.query(sql)
            assert result.rows.equals(expected.rows)
