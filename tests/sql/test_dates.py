"""Date conversion helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sql import date_to_days, days_to_date


class TestDates:
    def test_epoch(self):
        assert date_to_days("1970-01-01") == 0
        assert days_to_date(0) == "1970-01-01"

    def test_known_dates(self):
        assert date_to_days("1970-01-02") == 1
        assert date_to_days("2015-12-31") == 16800
        assert date_to_days("1969-12-31") == -1

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            date_to_days("31/12/2015")
        with pytest.raises(ValueError):
            date_to_days("2015-13-01")

    @given(st.integers(-10_000, 40_000))
    def test_roundtrip(self, days):
        assert date_to_days(days_to_date(days)) == days

    def test_ordering_preserved(self):
        a = date_to_days("1995-06-15")
        b = date_to_days("1995-06-16")
        assert a < b
