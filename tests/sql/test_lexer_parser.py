"""SQL lexer and parser: grammar coverage and error reporting."""

import pytest

from repro.sql import (
    Aggregate,
    AggregateFunc,
    And,
    Between,
    ColumnRef,
    CompareOp,
    Comparison,
    InList,
    Not,
    Or,
    SqlSyntaxError,
    leaves,
    parse,
    tokenize,
)
from repro.sql.lexer import TokenType


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT a, b FROM t WHERE a < 5")
        kinds = [t.type for t in tokens]
        assert kinds[-1] is TokenType.EOF
        assert tokens[0].is_keyword("select")

    def test_operators_normalised(self):
        tokens = tokenize("a == 1 and b <> 2")
        ops = [t.value for t in tokens if t.type is TokenType.OP]
        assert ops == ["=", "!="]

    def test_string_literal(self):
        tokens = tokenize("name = 'Bob Smith'")
        strings = [t for t in tokens if t.type is TokenType.STRING]
        assert strings[0].value == "Bob Smith"

    def test_unterminated_string_raises(self):
        with pytest.raises(SqlSyntaxError, match="unterminated"):
            tokenize("name = 'oops")

    def test_numbers(self):
        tokens = tokenize("1 2.5 1e6 -3")
        nums = [t.value for t in tokens if t.type is TokenType.NUMBER]
        assert nums == ["1", "2.5", "1e6", "-3"]

    def test_unexpected_character_raises(self):
        with pytest.raises(SqlSyntaxError, match="unexpected"):
            tokenize("a ; b")

    def test_case_insensitive_keywords(self):
        tokens = tokenize("SeLeCt x FrOm t")
        assert tokens[0].is_keyword("select")
        assert tokens[2].is_keyword("from")


class TestParser:
    def test_simple_select(self):
        q = parse("SELECT a, b FROM t WHERE a < 5")
        assert [i.name for i in q.select] == ["a", "b"]
        assert q.table == "t"
        assert q.where == Comparison("a", CompareOp.LT, 5)

    def test_select_star(self):
        q = parse("SELECT * FROM t")
        assert q.select == (ColumnRef("*"),)
        assert q.where is None

    def test_aggregates(self):
        q = parse("SELECT count(*), avg(x), sum(y), min(z), max(z) FROM t")
        funcs = [i.func for i in q.select]
        assert funcs == [
            AggregateFunc.COUNT,
            AggregateFunc.AVG,
            AggregateFunc.SUM,
            AggregateFunc.MIN,
            AggregateFunc.MAX,
        ]
        assert q.select[0].column is None
        assert q.select[1].column == "x"

    def test_and_or_precedence(self):
        q = parse("SELECT a FROM t WHERE a < 1 OR b < 2 AND c < 3")
        # AND binds tighter: a<1 OR (b<2 AND c<3)
        assert isinstance(q.where, Or)
        assert isinstance(q.where.right, And)

    def test_parentheses_override(self):
        q = parse("SELECT a FROM t WHERE (a < 1 OR b < 2) AND c < 3")
        assert isinstance(q.where, And)
        assert isinstance(q.where.left, Or)

    def test_not(self):
        q = parse("SELECT a FROM t WHERE NOT a = 1")
        assert isinstance(q.where, Not)

    def test_between(self):
        q = parse("SELECT a FROM t WHERE a BETWEEN 1 AND 10")
        assert q.where == Between("a", 1, 10)

    def test_in_list(self):
        q = parse("SELECT a FROM t WHERE tag IN ('x', 'y', 'z')")
        assert q.where == InList("tag", ("x", "y", "z"))

    def test_not_in(self):
        q = parse("SELECT a FROM t WHERE tag NOT IN (1, 2)")
        assert isinstance(q.where, Not)
        assert q.where.operand == InList("tag", (1, 2))

    def test_literal_types(self):
        q = parse("SELECT a FROM t WHERE a = 5 AND b = 2.5 AND c = 'x' AND d = true")
        values = [leaf.value for leaf in leaves(q.where)]
        assert values == [5, 2.5, "x", True]
        assert isinstance(values[0], int)
        assert isinstance(values[1], float)

    def test_leaves_order(self):
        q = parse("SELECT a FROM t WHERE a < 1 AND (b < 2 OR c < 3)")
        assert [l.column for l in leaves(q.where)] == ["a", "b", "c"]

    def test_projection_columns_dedup(self):
        q = parse("SELECT a, b, a FROM t")
        assert q.projection_columns() == ["a", "b"]

    def test_filter_columns(self):
        q = parse("SELECT a FROM t WHERE b < 1 AND c < 2")
        assert q.filter_columns() == {"b", "c"}

    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT FROM t",
            "SELECT a t",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t WHERE a",
            "SELECT a FROM t WHERE a <",
            "SELECT a FROM t extra",
            "SELECT a FROM t WHERE a BETWEEN 1",
            "SELECT a FROM t WHERE a IN ()",
            "SELECT count( FROM t",
            "",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(SqlSyntaxError):
            parse(bad)

    def test_avg_star_rejected(self):
        with pytest.raises(ValueError):
            Aggregate(func=AggregateFunc.AVG, column=None)
