"""GROUP BY: parsing, planning, local evaluation, distributed equality."""

import numpy as np
import pytest

from repro.sql import PlanError, execute_local, parse, plan


class TestParsing:
    def test_single_key(self):
        q = parse("SELECT tag, count(*) FROM t GROUP BY tag")
        assert q.group_by == ("tag",)

    def test_multiple_keys(self):
        q = parse("SELECT a, b, sum(x) FROM t GROUP BY a, b")
        assert q.group_by == ("a", "b")

    def test_with_where(self):
        q = parse("SELECT tag, avg(price) FROM t WHERE qty < 5 GROUP BY tag")
        assert q.where is not None
        assert q.group_by == ("tag",)

    def test_missing_by_raises(self):
        from repro.sql import SqlSyntaxError

        with pytest.raises(SqlSyntaxError):
            parse("SELECT tag FROM t GROUP tag")


class TestPlanning:
    def test_projection_includes_keys_and_inputs(self, small_table):
        p = plan(parse("SELECT tag, avg(price) FROM t GROUP BY tag"), small_table.schema)
        assert p.projection_columns == ["tag", "price"]

    def test_key_not_selected_is_allowed(self, small_table):
        p = plan(parse("SELECT count(*) FROM t GROUP BY tag"), small_table.schema)
        assert "tag" in p.projection_columns

    def test_non_key_plain_column_rejected(self, small_table):
        with pytest.raises(PlanError, match="GROUP BY"):
            plan(parse("SELECT id, count(*) FROM t GROUP BY tag"), small_table.schema)

    def test_select_star_rejected(self, small_table):
        with pytest.raises(PlanError, match="\\*"):
            plan(parse("SELECT * FROM t GROUP BY tag"), small_table.schema)

    def test_unknown_key_rejected(self, small_table):
        with pytest.raises(PlanError, match="GROUP BY column"):
            plan(parse("SELECT count(*) FROM t GROUP BY nope"), small_table.schema)

    def test_sum_of_string_rejected(self, small_table):
        with pytest.raises(PlanError, match="SUM"):
            plan(parse("SELECT tag, sum(note) FROM t GROUP BY tag"), small_table.schema)


class TestLocalEvaluation:
    def test_counts_per_group(self, small_table):
        r = execute_local("SELECT tag, count(*) FROM t GROUP BY tag", small_table)
        assert r.rows.num_rows == 7
        total = int(r.rows["count(*)"].sum())
        assert total == small_table.num_rows

    def test_groups_ordered_by_key(self, small_table):
        r = execute_local("SELECT tag, count(*) FROM t GROUP BY tag", small_table)
        tags = list(r.rows["tag"])
        assert tags == sorted(tags)

    def test_aggregates_match_manual(self, small_table):
        r = execute_local(
            "SELECT flag, sum(qty), min(price), max(price) FROM t GROUP BY flag",
            small_table,
        )
        for i, flag in enumerate(r.rows["flag"]):
            mask = small_table["flag"] == flag
            assert r.rows["sum(qty)"][i] == small_table["qty"][mask].sum()
            assert r.rows["min(price)"][i] == small_table["price"][mask].min()
            assert r.rows["max(price)"][i] == small_table["price"][mask].max()

    def test_where_filters_before_grouping(self, small_table):
        r = execute_local(
            "SELECT tag, count(*) FROM t WHERE id < 70 GROUP BY tag", small_table
        )
        assert int(r.rows["count(*)"].sum()) == 70

    def test_avg_output_is_double(self, small_table):
        r = execute_local("SELECT tag, avg(qty) FROM t GROUP BY tag", small_table)
        assert r.rows["avg(qty)"].dtype == np.float64

    def test_multi_key_grouping(self, small_table):
        r = execute_local(
            "SELECT tag, flag, count(*) FROM t GROUP BY tag, flag", small_table
        )
        assert r.rows.num_rows <= 14
        assert int(r.rows["count(*)"].sum()) == small_table.num_rows

    def test_empty_selection_gives_zero_groups(self, small_table):
        r = execute_local(
            "SELECT tag, count(*) FROM t WHERE id < 0 GROUP BY tag", small_table
        )
        assert r.rows.num_rows == 0
        assert r.matched_rows == 0


class TestDistributedGroupBy:
    GROUPED = [
        "SELECT tag, count(*), avg(price) FROM tbl WHERE qty < 25 GROUP BY tag",
        "SELECT flag, sum(qty) FROM tbl GROUP BY flag",
        "SELECT tag, flag, count(id) FROM tbl WHERE id < 900 GROUP BY tag, flag",
    ]

    @pytest.mark.parametrize("sql", GROUPED)
    def test_fusion_matches_reference(self, loaded_fusion, small_table, sql):
        result, _ = loaded_fusion.query(sql)
        assert result.equals(execute_local(sql, small_table))

    @pytest.mark.parametrize("sql", GROUPED)
    def test_baseline_matches_reference(self, loaded_baseline, small_table, sql):
        result, _ = loaded_baseline.query(sql)
        assert result.equals(execute_local(sql, small_table))

    def test_paper_q4_as_written(self):
        from repro.workloads import taxi_table
        from repro.workloads.queries import q4_grouped_sql

        taxi = taxi_table(num_rows=4000, seed=3)
        r = execute_local(q4_grouped_sql().replace("FROM taxi", "FROM t"), taxi)
        # One group per matching day, each with that day's average fare.
        assert r.rows.num_rows > 10
        assert r.rows.schema.names() == ["date", "avg(fare)"]
