"""Variable-block stripes: padding semantics and overhead accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import RS_9_6, CodeParams, DecodeError, decode_stripe, encode_stripe
from repro.ec.stripe import StripeShapeStats, fixed_stripe_stats


def _random_blocks(sizes, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, size=s, dtype=np.uint8) for s in sizes]


class TestEncodeStripe:
    def test_parity_matches_largest_block(self):
        blocks = _random_blocks([100, 40, 70, 10, 100, 5])
        stripe = encode_stripe(RS_9_6, blocks)
        assert all(p.size == 100 for p in stripe.parity_blocks)
        assert len(stripe.parity_blocks) == 3

    def test_data_blocks_keep_original_sizes(self):
        sizes = [64, 32, 16, 8, 4, 2]
        stripe = encode_stripe(RS_9_6, _random_blocks(sizes))
        assert [b.size for b in stripe.data_blocks] == sizes

    def test_partial_stripe_pads_with_empty_blocks(self):
        stripe = encode_stripe(RS_9_6, _random_blocks([50, 20]))
        assert len(stripe.data_blocks) == 6
        assert [b.size for b in stripe.data_blocks] == [50, 20, 0, 0, 0, 0]

    def test_too_many_blocks_raises(self):
        with pytest.raises(ValueError, match="at most"):
            encode_stripe(RS_9_6, _random_blocks([10] * 7))

    def test_empty_stripe_raises(self):
        with pytest.raises(ValueError):
            encode_stripe(RS_9_6, [])

    def test_all_empty_blocks_raises(self):
        with pytest.raises(ValueError, match="empty"):
            encode_stripe(RS_9_6, [np.zeros(0, dtype=np.uint8)] * 3)

    def test_overhead_equal_blocks_is_optimal(self):
        stripe = encode_stripe(RS_9_6, _random_blocks([100] * 6))
        assert stripe.stats.overhead == pytest.approx(0.5)

    def test_overhead_skewed_blocks_is_higher(self):
        stripe = encode_stripe(RS_9_6, _random_blocks([100, 1, 1, 1, 1, 1]))
        # parity = 3 * 100, data = 105
        assert stripe.stats.overhead == pytest.approx(300 / 105)


class TestDecodeStripe:
    def test_roundtrip_with_losses(self):
        sizes = [100, 40, 70, 10, 100, 5]
        blocks = _random_blocks(sizes, seed=2)
        stripe = encode_stripe(RS_9_6, blocks)
        shards = stripe.shards()
        shards[1] = None
        shards[4] = None
        shards[7] = None
        recovered = decode_stripe(RS_9_6, shards, sizes)
        assert all(np.array_equal(r, b) for r, b in zip(recovered, blocks))

    def test_recovers_unpadded_sizes(self):
        sizes = [60, 30, 10, 5, 2, 1]
        blocks = _random_blocks(sizes, seed=3)
        stripe = encode_stripe(RS_9_6, blocks)
        shards = stripe.shards()
        shards[0] = None  # the largest block
        recovered = decode_stripe(RS_9_6, shards, sizes)
        assert [r.size for r in recovered] == sizes

    def test_unrecoverable_raises(self):
        sizes = [10] * 6
        stripe = encode_stripe(RS_9_6, _random_blocks(sizes))
        shards = stripe.shards()
        for i in range(4):
            shards[i] = None
        with pytest.raises(DecodeError):
            decode_stripe(RS_9_6, shards, sizes)

    def test_no_survivors_raises(self):
        with pytest.raises(DecodeError, match="no surviving"):
            decode_stripe(RS_9_6, [None] * 9, [10] * 6)

    def test_bad_shard_count_raises(self):
        with pytest.raises(ValueError):
            decode_stripe(RS_9_6, [None] * 5, [10] * 6)

    def test_bad_size_count_raises(self):
        stripe = encode_stripe(RS_9_6, _random_blocks([10] * 6))
        with pytest.raises(ValueError):
            decode_stripe(RS_9_6, stripe.shards(), [10] * 5)

    @settings(max_examples=20, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 200), min_size=1, max_size=6),
        lost=st.sets(st.integers(0, 8), min_size=0, max_size=3),
        seed=st.integers(0, 999),
    )
    def test_roundtrip_property(self, sizes, lost, seed):
        blocks = _random_blocks(sizes, seed=seed)
        stripe = encode_stripe(RS_9_6, blocks)
        shards = stripe.shards()
        for i in lost:
            shards[i] = None
        padded_sizes = sizes + [0] * (6 - len(sizes))
        recovered = decode_stripe(RS_9_6, shards, padded_sizes)
        assert all(np.array_equal(r, b) for r, b in zip(recovered, blocks))


class TestStats:
    def test_shape_stats_accounting(self):
        stats = StripeShapeStats(data_sizes=(10, 20, 30), parity_count=3)
        assert stats.max_block == 30
        assert stats.data_bytes == 60
        assert stats.parity_bytes == 90
        assert stats.stored_bytes == 150
        assert stats.overhead == pytest.approx(1.5)

    def test_empty_stats(self):
        stats = StripeShapeStats(data_sizes=(), parity_count=3)
        assert stats.max_block == 0
        assert stats.overhead == 0.0

    def test_fixed_stripe_stats_exact_multiple(self):
        stats = fixed_stripe_stats(RS_9_6, total_bytes=600, block_size=100)
        # One full stripe of 6 blocks: parity = 3 * 100.
        assert stats.parity_bytes == 300
        assert stats.overhead == pytest.approx(0.5)

    def test_fixed_stripe_stats_trailing_partial(self):
        stats = fixed_stripe_stats(RS_9_6, total_bytes=650, block_size=100)
        # Second stripe has one 50-byte block: parity = 3 * 50 extra.
        assert stats.parity_bytes == 300 + 150

    def test_fixed_stripe_stats_bad_block_size(self):
        with pytest.raises(ValueError):
            fixed_stripe_stats(RS_9_6, 100, 0)
