"""GF(2^8) arithmetic: field axioms, table consistency, matrix algebra."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ec import gf256

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestScalarOps:
    def test_add_is_xor(self):
        assert gf256.gf_add(0b1010, 0b0110) == 0b1100

    def test_mul_identity(self):
        for a in range(256):
            assert gf256.gf_mul(a, 1) == a
            assert gf256.gf_mul(1, a) == a

    def test_mul_zero(self):
        for a in range(256):
            assert gf256.gf_mul(a, 0) == 0
            assert gf256.gf_mul(0, a) == 0

    @given(elements, elements)
    def test_mul_commutative(self, a, b):
        assert gf256.gf_mul(a, b) == gf256.gf_mul(b, a)

    @given(elements, elements, elements)
    def test_mul_associative(self, a, b, c):
        assert gf256.gf_mul(gf256.gf_mul(a, b), c) == gf256.gf_mul(a, gf256.gf_mul(b, c))

    @given(elements, elements, elements)
    def test_distributive(self, a, b, c):
        left = gf256.gf_mul(a, b ^ c)
        right = gf256.gf_mul(a, b) ^ gf256.gf_mul(a, c)
        assert left == right

    @given(nonzero)
    def test_inverse(self, a):
        assert gf256.gf_mul(a, gf256.gf_inv(a)) == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf256.gf_inv(0)

    @given(elements, nonzero)
    def test_div_mul_roundtrip(self, a, b):
        assert gf256.gf_mul(gf256.gf_div(a, b), b) == a

    def test_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf256.gf_div(5, 0)

    @given(nonzero, st.integers(min_value=0, max_value=300))
    def test_pow_matches_repeated_mul(self, a, n):
        expected = 1
        for _ in range(n):
            expected = gf256.gf_mul(expected, a)
        assert gf256.gf_pow(a, n) == expected

    def test_pow_of_zero(self):
        assert gf256.gf_pow(0, 0) == 1
        assert gf256.gf_pow(0, 5) == 0

    def test_field_has_no_zero_divisors(self):
        for a in range(1, 256):
            for b in (1, 2, 3, 127, 255):
                assert gf256.gf_mul(a, b) != 0


class TestBulkOps:
    def test_mul_bytes_matches_scalar(self, rng):
        data = rng.integers(0, 256, size=100, dtype=np.uint8)
        for coeff in (0, 1, 2, 37, 255):
            out = gf256.gf_mul_bytes(coeff, data)
            expected = [gf256.gf_mul(coeff, int(x)) for x in data]
            assert out.tolist() == expected

    def test_mul_bytes_zero_coeff_returns_zeros(self, rng):
        data = rng.integers(1, 256, size=50, dtype=np.uint8)
        assert not gf256.gf_mul_bytes(0, data).any()

    def test_mul_bytes_one_is_copy(self, rng):
        data = rng.integers(0, 256, size=50, dtype=np.uint8)
        out = gf256.gf_mul_bytes(1, data)
        assert np.array_equal(out, data)
        assert out is not data  # must not alias

    def test_addmul_accumulates(self, rng):
        acc = rng.integers(0, 256, size=64, dtype=np.uint8)
        data = rng.integers(0, 256, size=64, dtype=np.uint8)
        expected = acc ^ gf256.gf_mul_bytes(7, data)
        gf256.gf_addmul_bytes(acc, 7, data)
        assert np.array_equal(acc, expected)

    def test_addmul_zero_coeff_is_noop(self, rng):
        acc = rng.integers(0, 256, size=16, dtype=np.uint8)
        before = acc.copy()
        gf256.gf_addmul_bytes(acc, 0, acc.copy())
        assert np.array_equal(acc, before)


class TestMatrixOps:
    def test_identity_inverse(self):
        eye = np.eye(6, dtype=np.uint8)
        assert np.array_equal(gf256.gf_mat_inv(eye), eye)

    def test_inverse_roundtrip(self, rng):
        matrix = gf256.gf_vandermonde(6, 6)
        inv = gf256.gf_mat_inv(matrix)
        product = gf256.gf_matmul(matrix, inv)
        assert np.array_equal(product, np.eye(6, dtype=np.uint8))

    def test_singular_matrix_raises(self):
        singular = np.zeros((3, 3), dtype=np.uint8)
        singular[0] = [1, 2, 3]
        singular[1] = [1, 2, 3]  # duplicate row
        singular[2] = [0, 1, 1]
        with pytest.raises(ValueError, match="singular"):
            gf256.gf_mat_inv(singular)

    def test_matmul_shape_mismatch_raises(self):
        a = np.ones((2, 3), dtype=np.uint8)
        b = np.ones((2, 3), dtype=np.uint8)
        with pytest.raises(ValueError, match="shape"):
            gf256.gf_matmul(a, b)

    def test_non_square_inverse_raises(self):
        with pytest.raises(ValueError, match="square"):
            gf256.gf_mat_inv(np.ones((2, 3), dtype=np.uint8))

    def test_vandermonde_first_column_ones(self):
        v = gf256.gf_vandermonde(10, 4)
        assert (v[:, 0] == 1).all()
        # Row i is powers of i.
        assert v[3, 2] == gf256.gf_mul(3, 3)
