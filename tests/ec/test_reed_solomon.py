"""Systematic Reed-Solomon: MDS recovery under every erasure pattern."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import RS_9_6, RS_14_10, CodeParams, DecodeError, ReedSolomon, get_coder
from repro.ec.reed_solomon import build_encoding_matrix


def _blocks(params: CodeParams, size: int, seed: int = 0) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, size=size, dtype=np.uint8) for _ in range(params.k)]


class TestCodeParams:
    def test_properties(self):
        assert RS_9_6.parity == 3
        assert RS_9_6.optimal_overhead == pytest.approx(0.5)
        assert RS_14_10.parity == 4
        assert RS_14_10.optimal_overhead == pytest.approx(0.4)

    @pytest.mark.parametrize("n,k", [(0, 0), (5, 5), (3, 4), (2, 0)])
    def test_invalid_params_raise(self, n, k):
        with pytest.raises(ValueError):
            CodeParams(n, k)

    def test_n_too_large_for_field(self):
        with pytest.raises(ValueError, match="field"):
            build_encoding_matrix(300, 200)


class TestEncoding:
    def test_matrix_is_systematic(self):
        matrix = build_encoding_matrix(9, 6)
        assert np.array_equal(matrix[:6], np.eye(6, dtype=np.uint8))

    def test_encode_produces_parity_count(self):
        coder = ReedSolomon(RS_9_6)
        parity = coder.encode(_blocks(RS_9_6, 128))
        assert len(parity) == 3
        assert all(p.size == 128 for p in parity)

    def test_encode_wrong_block_count_raises(self):
        coder = ReedSolomon(RS_9_6)
        with pytest.raises(ValueError, match="expected 6"):
            coder.encode(_blocks(RS_9_6, 64)[:5])

    def test_encode_unequal_sizes_raises(self):
        coder = ReedSolomon(RS_9_6)
        blocks = _blocks(RS_9_6, 64)
        blocks[2] = blocks[2][:32]
        with pytest.raises(ValueError, match="equal-sized"):
            coder.encode(blocks)

    def test_encode_deterministic(self):
        coder = ReedSolomon(RS_9_6)
        blocks = _blocks(RS_9_6, 256, seed=3)
        p1 = coder.encode(blocks)
        p2 = coder.encode(blocks)
        assert all(np.array_equal(a, b) for a, b in zip(p1, p2))

    def test_verify_accepts_good_stripe(self):
        coder = ReedSolomon(RS_9_6)
        blocks = _blocks(RS_9_6, 64)
        shards = blocks + coder.encode(blocks)
        assert coder.verify(shards)

    def test_verify_rejects_corruption(self):
        coder = ReedSolomon(RS_9_6)
        blocks = _blocks(RS_9_6, 64)
        shards = blocks + coder.encode(blocks)
        shards[0] = shards[0].copy()
        shards[0][10] ^= 0xFF
        assert not coder.verify(shards)


class TestDecoding:
    def test_all_single_and_double_erasures_rs96(self):
        coder = ReedSolomon(RS_9_6)
        blocks = _blocks(RS_9_6, 100, seed=7)
        full = blocks + coder.encode(blocks)
        for lost in itertools.combinations(range(9), 2):
            shards = [None if i in lost else full[i] for i in range(9)]
            recovered = coder.decode(shards)
            assert all(np.array_equal(r, b) for r, b in zip(recovered, blocks))

    def test_sampled_triple_erasures_rs96(self):
        coder = ReedSolomon(RS_9_6)
        blocks = _blocks(RS_9_6, 80, seed=8)
        full = blocks + coder.encode(blocks)
        for lost in itertools.combinations(range(9), 3):
            shards = [None if i in lost else full[i] for i in range(9)]
            recovered = coder.decode(shards)
            assert all(np.array_equal(r, b) for r, b in zip(recovered, blocks))

    def test_too_many_erasures_raises(self):
        coder = ReedSolomon(RS_9_6)
        blocks = _blocks(RS_9_6, 32)
        full = blocks + coder.encode(blocks)
        shards = [None] * 4 + full[4:]
        with pytest.raises(DecodeError, match="unrecoverable"):
            coder.decode(shards)

    def test_wrong_shard_count_raises(self):
        coder = ReedSolomon(RS_9_6)
        with pytest.raises(ValueError, match="expected 9"):
            coder.decode([None] * 8)

    def test_fast_path_no_data_loss(self):
        coder = ReedSolomon(RS_9_6)
        blocks = _blocks(RS_9_6, 64)
        full = blocks + coder.encode(blocks)
        # Lose only parity: data returned directly.
        shards = full[:6] + [None, None, None]
        recovered = coder.decode(shards)
        assert all(np.array_equal(r, b) for r, b in zip(recovered, blocks))

    def test_rs_14_10_triple_loss(self):
        coder = ReedSolomon(RS_14_10)
        blocks = _blocks(RS_14_10, 50, seed=11)
        full = blocks + coder.encode(blocks)
        shards = [None if i in (0, 5, 12) else full[i] for i in range(14)]
        recovered = coder.decode(shards)
        assert all(np.array_equal(r, b) for r, b in zip(recovered, blocks))

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        size=st.integers(1, 300),
        lost=st.sets(st.integers(0, 8), min_size=0, max_size=3),
    )
    def test_roundtrip_property(self, seed, size, lost):
        coder = get_coder(RS_9_6)
        blocks = _blocks(RS_9_6, size, seed=seed)
        full = blocks + coder.encode(blocks)
        shards = [None if i in lost else full[i] for i in range(9)]
        recovered = coder.decode(shards)
        assert all(np.array_equal(r, b) for r, b in zip(recovered, blocks))


class TestCoderCache:
    def test_get_coder_caches(self):
        assert get_coder(RS_9_6) is get_coder(RS_9_6)

    def test_distinct_params_distinct_coders(self):
        assert get_coder(RS_9_6) is not get_coder(RS_14_10)

    def test_inversion_memoised_per_surviving_set(self):
        coder = ReedSolomon(RS_9_6)
        blocks = _blocks(RS_9_6, 48, seed=21)
        full = blocks + coder.encode(blocks)

        shards = [None if i in (1, 4) else full[i] for i in range(9)]
        first = coder.decode(shards)
        assert len(coder._inversion_cache) == 1
        cached = next(iter(coder._inversion_cache.values()))
        second = coder.decode(shards)  # hits the memo
        assert len(coder._inversion_cache) == 1
        assert next(iter(coder._inversion_cache.values())) is cached
        assert all(np.array_equal(a, b) for a, b in zip(first, second))
        assert all(np.array_equal(r, b) for r, b in zip(second, blocks))

        # A different loss pattern gets its own entry.
        other = [None if i in (0, 2) else full[i] for i in range(9)]
        coder.decode(other)
        assert len(coder._inversion_cache) == 2
