"""FusionStore: FAC placement, adaptive pushdown, Get, fallback, recovery."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig, Simulator
from repro.core import FusionStore, ObjectNotFound, PushdownMode, StoreConfig
from repro.format import ColumnType, PaxFile, Table, write_table
from repro.sql import execute_local
from tests.conftest import make_small_table

QUERIES = [
    "SELECT id, price FROM tbl WHERE qty < 5",
    "SELECT tag FROM tbl WHERE id BETWEEN 100 AND 200",
    "SELECT count(*), avg(price) FROM tbl WHERE flag = true",
    "SELECT * FROM tbl WHERE day < '2013-12-01' AND qty > 25",
    "SELECT note FROM tbl WHERE tag = 'tag-3' OR id < 3",
    "SELECT id FROM tbl",
    "SELECT price FROM tbl WHERE price < 1.0",  # single-column fused path
    "SELECT qty FROM tbl WHERE qty < 49",  # fused, high selectivity
    "SELECT min(day), max(day) FROM tbl WHERE id NOT IN (1, 2)",
]


def _fresh_store(small_file, **config):
    sim = Simulator()
    cl = Cluster(sim, ClusterConfig(num_nodes=9))
    store = FusionStore(cl, StoreConfig(size_scale=100.0, storage_overhead_threshold=0.1, block_size=2_000_000, **config))
    store.put("tbl", small_file)
    return store


class TestPut:
    def test_report_facts(self, small_file):
        store = _fresh_store(small_file)
        obj = store.objects["tbl"]
        report_overhead = obj.layout.overhead_vs_optimal
        assert obj.layout.strategy == "fac"
        assert report_overhead <= store.config.storage_overhead_threshold

    def test_every_chunk_on_exactly_one_node(self, loaded_fusion):
        """The paper's core guarantee: no chunk is ever split."""
        obj = loaded_fusion.objects["tbl"]
        chunks = obj.metadata.all_chunks()
        assert len(obj.location_map) == len(chunks)
        for meta in chunks:
            loc = obj.location_map.lookup(meta.key)
            node = loaded_fusion.cluster.node(loc.node_id)
            assert node.has_block(loc.block_id)
            assert loc.size == meta.size

    def test_chunk_bytes_intact_on_node(self, loaded_fusion, small_file):
        obj = loaded_fusion.objects["tbl"]
        meta = obj.metadata.chunk(1, "price")
        loc = obj.location_map.lookup(meta.key)
        node = loaded_fusion.cluster.node(loc.node_id)
        block = node._blocks[loc.block_id]
        stored = bytes(block[loc.offset_in_block : loc.offset_in_block + loc.size])
        assert stored == small_file[meta.offset : meta.end_offset]

    def test_location_map_replicated(self, loaded_fusion):
        obj = loaded_fusion.objects["tbl"]
        assert len(obj.location_map.replica_nodes) == loaded_fusion.config.code.k + 1

    def test_parity_written_per_stripe(self, loaded_fusion):
        obj = loaded_fusion.objects["tbl"]
        for placement in obj.stripes:
            for pj, bid in enumerate(placement.parity_block_ids):
                node = loaded_fusion.cluster.node(
                    placement.node_ids[loaded_fusion.config.code.k + pj]
                )
                assert node.has_block(bid)
                assert node.block_size(bid) == placement.max_size

    def test_duplicate_put_raises(self, loaded_fusion, small_file):
        with pytest.raises(ValueError, match="exists"):
            loaded_fusion.put("tbl", small_file)

    def test_storage_overhead_close_to_optimal(self, loaded_fusion, small_file):
        stored = loaded_fusion.cluster.stored_bytes
        meta = PaxFile(small_file).metadata
        data = meta.data_size
        optimal = data * 1.5
        # Within the 2% budget of optimal, modulo the non-chunk footer bytes.
        assert stored <= optimal * 1.03


class TestGet:
    def test_roundtrip(self, loaded_fusion, small_file):
        assert loaded_fusion.get("tbl") == small_file

    def test_unknown_object(self, loaded_fusion):
        with pytest.raises(ObjectNotFound):
            loaded_fusion.get("nope")


class TestQuery:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_matches_reference(self, loaded_fusion, small_table, sql):
        result, metrics = loaded_fusion.query(sql)
        expected = execute_local(sql, small_table)
        assert result.equals(expected)
        assert metrics.latency > 0

    def test_adaptive_mixes_pushdown_and_fallback(self, small_file):
        store = _fresh_store(small_file)
        # Low selectivity on a diverse column: pushdown.
        _r, m1 = store.query("SELECT note FROM tbl WHERE id < 20")
        assert m1.pushed_down_chunks > 0
        # High selectivity on a highly-compressed column: fallback.
        _r, m2 = store.query("SELECT tag FROM tbl WHERE qty < 49")
        assert m2.fallback_chunks > 0

    def test_never_mode_always_fetches(self, small_file):
        store = _fresh_store(small_file, pushdown_mode=PushdownMode.NEVER)
        _r, m = store.query("SELECT note FROM tbl WHERE id < 20")
        assert m.pushed_down_chunks == 0
        assert m.fallback_chunks > 0

    def test_always_mode_always_pushes(self, small_file):
        store = _fresh_store(small_file, pushdown_mode=PushdownMode.ALWAYS)
        _r, m = store.query("SELECT tag FROM tbl WHERE qty < 49")
        assert m.fallback_chunks == 0
        assert m.pushed_down_chunks > 0

    def test_policy_results_identical(self, small_file, small_table):
        sql = "SELECT tag, note FROM tbl WHERE qty < 10"
        expected = execute_local(sql, small_table)
        for mode in PushdownMode:
            store = _fresh_store(small_file, pushdown_mode=mode)
            result, _ = store.query(sql)
            assert result.equals(expected), mode

    def test_zero_match_query(self, loaded_fusion, small_table):
        sql = "SELECT id FROM tbl WHERE qty < 0"
        result, metrics = loaded_fusion.query(sql)
        assert result.matched_rows == 0
        assert result.equals(execute_local(sql, small_table))
        # Stats pruning: no chunk ops at all.
        assert metrics.pushed_down_chunks == 0 and metrics.fallback_chunks == 0

    def test_pruning_skips_row_groups(self, loaded_fusion):
        _r, narrow = loaded_fusion.query("SELECT qty FROM tbl WHERE id < 10")
        _r, broad = loaded_fusion.query("SELECT qty FROM tbl WHERE qty < 100")
        assert narrow.network_bytes < broad.network_bytes

    def test_unknown_column_raises(self, loaded_fusion):
        from repro.sql import PlanError

        with pytest.raises(PlanError):
            loaded_fusion.query("SELECT missing FROM tbl")


class TestAggregatePushdown:
    AGG_QUERIES = [
        "SELECT count(*) FROM tbl WHERE qty < 10",
        "SELECT count(id), sum(price), avg(price) FROM tbl WHERE flag = true",
        "SELECT min(price), max(qty) FROM tbl WHERE id < 500",
        "SELECT avg(price) FROM tbl WHERE id < 0",  # empty selection
    ]

    @pytest.mark.parametrize("sql", AGG_QUERIES)
    def test_matches_reference(self, small_file, small_table, sql):
        store = _fresh_store(small_file, enable_aggregate_pushdown=True)
        result, _ = store.query(sql)
        assert result.equals(execute_local(sql, small_table))

    def test_reduces_network_traffic(self, small_file):
        sql = "SELECT sum(price), avg(price) FROM tbl WHERE qty < 40"
        on = _fresh_store(small_file, enable_aggregate_pushdown=True)
        off = _fresh_store(small_file, enable_aggregate_pushdown=False)
        _r, m_on = on.query(sql)
        _r, m_off = off.query(sql)
        assert m_on.network_bytes < m_off.network_bytes


class TestFallbackToFixed:
    def _skewed_file(self):
        """One huge chunk among tiny ones blows the 2% overhead budget."""
        rng = np.random.default_rng(0)
        n = 4000
        big_strings = [
            "x" * int(v) for v in rng.integers(400, 600, size=n)
        ]
        table = Table.from_dict(
            {
                "k": (ColumnType.INT64, np.zeros(n, dtype=np.int64)),
                "pad": (ColumnType.STRING, big_strings),
            }
        )
        return write_table(table, row_group_rows=n, codec="none"), table

    def test_budget_violation_falls_back(self):
        data, _table = self._skewed_file()
        sim = Simulator()
        cl = Cluster(sim, ClusterConfig())
        store = FusionStore(cl, StoreConfig(size_scale=10.0, storage_overhead_threshold=0.02))
        report = store.put("skewed", data)
        assert report.fallback
        assert report.strategy == "fixed-fallback"
        assert "skewed" in store.fallback_store.objects

    def test_fallback_object_still_queryable(self):
        data, table = self._skewed_file()
        sim = Simulator()
        cl = Cluster(sim, ClusterConfig())
        store = FusionStore(cl, StoreConfig(size_scale=10.0, storage_overhead_threshold=0.02))
        store.put("skewed", data)
        sql = "SELECT k FROM skewed WHERE k = 0"
        result, _ = store.query(sql)
        assert result.equals(execute_local(sql, table))
        assert store.get("skewed") == data

    def test_generous_budget_keeps_fac(self):
        data, _table = self._skewed_file()
        sim = Simulator()
        cl = Cluster(sim, ClusterConfig())
        store = FusionStore(cl, StoreConfig(size_scale=10.0, storage_overhead_threshold=5.0))
        report = store.put("skewed", data)
        assert not report.fallback


class TestRecovery:
    def _store_with_loss(self, small_file, num_nodes=12):
        sim = Simulator()
        cl = Cluster(sim, ClusterConfig(num_nodes=num_nodes))
        store = FusionStore(cl, StoreConfig(size_scale=10.0, storage_overhead_threshold=0.1, block_size=2_000_000))
        store.put("tbl", small_file)
        obj = store.objects["tbl"]
        victim = obj.stripes[0].node_ids[0]
        for bid in list(cl.node(victim)._blocks):
            cl.node(victim).drop_block(bid)
        return store, victim

    def test_recovery_restores_data(self, small_file):
        store, victim = self._store_with_loss(small_file)
        rebuilt = store.recover_node(victim)
        assert rebuilt > 0
        assert store.get("tbl") == small_file

    def test_location_map_updated(self, small_file):
        store, victim = self._store_with_loss(small_file)
        store.recover_node(victim)
        obj = store.objects["tbl"]
        assert victim not in {loc.node_id for loc in obj.location_map.entries.values()}

    def test_query_correct_after_recovery(self, small_file, small_table):
        store, victim = self._store_with_loss(small_file)
        store.recover_node(victim)
        sql = "SELECT id, price FROM tbl WHERE qty < 5"
        result, _ = store.query(sql)
        assert result.equals(execute_local(sql, small_table))

    def test_double_fault_within_tolerance(self, small_file):
        sim = Simulator()
        cl = Cluster(sim, ClusterConfig(num_nodes=12))
        store = FusionStore(cl, StoreConfig(size_scale=10.0, storage_overhead_threshold=0.1, block_size=2_000_000))
        store.put("tbl", small_file)
        obj = store.objects["tbl"]
        victims = obj.stripes[0].node_ids[:2]
        for v in victims:
            for bid in list(cl.node(v)._blocks):
                cl.node(v).drop_block(bid)
        for v in victims:
            store.recover_node(v)
        assert store.get("tbl") == small_file


class TestIntrospection:
    def test_chunk_nodes_helper(self, loaded_fusion):
        nodes = loaded_fusion.chunk_nodes("tbl")
        obj = loaded_fusion.objects["tbl"]
        assert len(nodes) == len(obj.metadata.all_chunks())

    def test_object_plan(self, loaded_fusion):
        plan = loaded_fusion.object_plan("SELECT id FROM tbl WHERE qty < 3")
        assert plan.projection_columns == ["id"]
