"""BaselineStore: Put/Get/Query semantics and recovery."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig, Simulator
from repro.core import BaselineStore, ObjectNotFound, StoreConfig
from repro.format import write_table
from repro.sql import execute_local
from tests.conftest import make_small_table

QUERIES = [
    "SELECT id, price FROM tbl WHERE qty < 5",
    "SELECT tag FROM tbl WHERE id BETWEEN 100 AND 200",
    "SELECT count(*), avg(price) FROM tbl WHERE flag = true",
    "SELECT * FROM tbl WHERE day < '2013-12-01' AND qty > 25",
    "SELECT note FROM tbl WHERE tag = 'tag-3' OR id < 3",
    "SELECT id FROM tbl",
]


class TestPut:
    def test_put_report(self, loaded_baseline, small_file):
        obj = loaded_baseline.objects["tbl"]
        assert obj.total_bytes == len(small_file)
        assert len(obj.data_block_nodes) == len(obj.layout.blocks)

    def test_duplicate_put_raises(self, loaded_baseline, small_file):
        with pytest.raises(ValueError, match="exists"):
            loaded_baseline.put("tbl", small_file)

    def test_blocks_distributed_across_nodes(self, loaded_baseline):
        obj = loaded_baseline.objects["tbl"]
        nodes_used = set(obj.data_block_nodes.values())
        assert len(nodes_used) > 1

    def test_parity_blocks_stored(self, loaded_baseline):
        obj = loaded_baseline.objects["tbl"]
        for (stripe, pj), node_id in obj.parity_block_nodes.items():
            node = loaded_baseline.cluster.node(node_id)
            assert node.has_block(obj.parity_block_id(stripe, pj))

    def test_stored_bytes_include_parity(self, loaded_baseline, small_file):
        total = loaded_baseline.cluster.stored_bytes
        assert total > len(small_file)

    def test_put_latency_simulated(self, small_file):
        sim = Simulator()
        cl = Cluster(sim, ClusterConfig())
        store = BaselineStore(cl, StoreConfig(size_scale=100.0))
        report = store.put("tbl", small_file)
        assert report.simulated_put_seconds > 0
        assert report.strategy == "fixed"


class TestGet:
    def test_roundtrip(self, loaded_baseline, small_file):
        assert loaded_baseline.get("tbl") == small_file

    def test_unknown_object(self, loaded_baseline):
        with pytest.raises(ObjectNotFound):
            loaded_baseline.get("nope")


class TestQuery:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_matches_reference(self, loaded_baseline, small_table, sql):
        result, metrics = loaded_baseline.query(sql)
        expected = execute_local(sql, small_table)
        assert result.equals(expected)
        assert metrics.latency > 0

    def test_unknown_object_raises(self, loaded_baseline):
        with pytest.raises(ObjectNotFound):
            loaded_baseline.query("SELECT x FROM missing")

    def test_byte_granular_mode_same_results(self, small_file, small_table):
        sim = Simulator()
        cl = Cluster(sim, ClusterConfig())
        store = BaselineStore(
            cl, StoreConfig(size_scale=100.0, baseline_whole_block_reads=False)
        )
        store.put("tbl", small_file)
        for sql in QUERIES[:3]:
            result, _ = store.query(sql)
            assert result.equals(execute_local(sql, small_table))

    def test_whole_block_mode_moves_more_bytes(self, small_file):
        def run(whole):
            sim = Simulator()
            cl = Cluster(sim, ClusterConfig())
            store = BaselineStore(
                cl, StoreConfig(size_scale=100.0, baseline_whole_block_reads=whole)
            )
            store.put("tbl", small_file)
            _result, metrics = store.query(QUERIES[0])
            return metrics.network_bytes

        assert run(True) >= run(False)

    def test_pruning_reduces_traffic(self, loaded_baseline):
        # id is sorted: a narrow id filter prunes most row groups.
        _r1, narrow = loaded_baseline.query("SELECT qty FROM tbl WHERE id < 10")
        _r2, broad = loaded_baseline.query("SELECT qty FROM tbl WHERE qty < 100")
        assert narrow.network_bytes < broad.network_bytes


class TestRecovery:
    def test_node_loss_recovery_preserves_object(self, small_file):
        sim = Simulator()
        cl = Cluster(sim, ClusterConfig(num_nodes=12))
        store = BaselineStore(cl, StoreConfig(size_scale=10.0, block_size=500_000))
        store.put("tbl", small_file)
        victim = next(iter(store.objects["tbl"].data_block_nodes.values()))
        for bid in list(cl.node(victim)._blocks):
            cl.node(victim).drop_block(bid)
        rebuilt = store.recover_node(victim)
        assert rebuilt > 0
        assert store.get("tbl") == small_file

    def test_recovery_moves_blocks_off_victim(self, small_file):
        sim = Simulator()
        cl = Cluster(sim, ClusterConfig(num_nodes=12))
        store = BaselineStore(cl, StoreConfig(size_scale=10.0, block_size=500_000))
        store.put("tbl", small_file)
        obj = store.objects["tbl"]
        victim = next(iter(obj.data_block_nodes.values()))
        for bid in list(cl.node(victim)._blocks):
            cl.node(victim).drop_block(bid)
        store.recover_node(victim)
        assert victim not in set(obj.data_block_nodes.values())

    def test_query_correct_after_recovery(self, small_file, small_table):
        sim = Simulator()
        cl = Cluster(sim, ClusterConfig(num_nodes=12))
        store = BaselineStore(cl, StoreConfig(size_scale=10.0, block_size=500_000))
        store.put("tbl", small_file)
        victim = next(iter(store.objects["tbl"].data_block_nodes.values()))
        for bid in list(cl.node(victim)._blocks):
            cl.node(victim).drop_block(bid)
        store.recover_node(victim)
        sql = QUERIES[0]
        result, _ = store.query(sql)
        assert result.equals(execute_local(sql, small_table))
