"""The pushdown Cost Equation and policy modes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PushdownCostEstimator, PushdownMode


class TestCostEquation:
    def test_pushes_when_product_below_one(self):
        est = PushdownCostEstimator()
        # selectivity 0.01 x compressibility 10 = 0.1 < 1 -> push.
        d = est.decide(selectivity=0.01, compressed_size=100, plain_size=1000)
        assert d.push_down
        assert d.cost_product == pytest.approx(0.1)

    def test_fetches_when_product_above_one(self):
        est = PushdownCostEstimator()
        # selectivity 0.5 x compressibility 10 = 5 > 1 -> fetch.
        d = est.decide(selectivity=0.5, compressed_size=100, plain_size=1000)
        assert not d.push_down

    def test_boundary_is_strict(self):
        est = PushdownCostEstimator()
        # product exactly 1: not pushed (strict <).
        d = est.decide(selectivity=0.1, compressed_size=100, plain_size=1000)
        assert not d.push_down

    def test_byte_estimates(self):
        est = PushdownCostEstimator()
        d = est.decide(selectivity=0.25, compressed_size=400, plain_size=2000)
        assert d.pushdown_bytes == pytest.approx(500)
        assert d.fetch_bytes == 400
        assert d.compressibility == pytest.approx(5.0)

    def test_zero_compressed_size(self):
        est = PushdownCostEstimator()
        d = est.decide(selectivity=0.5, compressed_size=0, plain_size=100)
        assert d.compressibility == 1.0

    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_invalid_selectivity_raises(self, bad):
        with pytest.raises(ValueError):
            PushdownCostEstimator().decide(bad, 10, 100)

    @settings(max_examples=100, deadline=None)
    @given(
        selectivity=st.floats(0, 1),
        compressed=st.integers(1, 10**7),
        plain=st.integers(1, 10**8),
    )
    def test_decision_matches_byte_comparison(self, selectivity, compressed, plain):
        """Pushdown is chosen exactly when it ships fewer bytes."""
        d = PushdownCostEstimator().decide(selectivity, compressed, plain)
        assert d.push_down == (d.pushdown_bytes < d.fetch_bytes)


class TestModes:
    def test_always(self):
        est = PushdownCostEstimator(PushdownMode.ALWAYS)
        assert est.decide(1.0, 1, 10**6).push_down

    def test_never(self):
        est = PushdownCostEstimator(PushdownMode.NEVER)
        assert not est.decide(0.0001, 10**6, 10**6).push_down

    def test_mode_values(self):
        assert PushdownMode("adaptive") is PushdownMode.ADAPTIVE
