"""Focused tests for recently-added store paths: page-fraction costing,
fallback-object scrub/get/delete routing, and fused-path degraded ops."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig, Simulator
from repro.core import FusionStore, StoreConfig
from repro.format import ColumnType, Table, write_table
from repro.sql import execute_local
from repro.sql.ast_nodes import CompareOp, Comparison
from repro.sql.planner import FilterOp
from tests.conftest import make_small_table


@pytest.fixture
def store_and_table():
    table = make_small_table(num_rows=4000, seed=71)
    data = write_table(table, row_group_rows=1000, page_values=200)
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=9))
    store = FusionStore(
        cluster, StoreConfig(size_scale=50.0, storage_overhead_threshold=0.1)
    )
    store.put("tbl", data)
    return store, table


class TestPageFraction:
    def _op(self, store, column, literal):
        obj = store.objects["tbl"]
        meta = obj.metadata.chunk(0, column)
        type_ = obj.metadata.schema.field(column).type
        op = FilterOp(
            index=0, column=column, type=type_, leaf=Comparison(column, CompareOp.LT, literal)
        )
        loc = obj.location_map.lookup(meta.key)
        node = store.cluster.node(loc.node_id)
        data = node._blocks[loc.block_id][
            loc.offset_in_block : loc.offset_in_block + loc.size
        ]
        return obj, meta, op, data

    def test_sorted_column_prunes_pages(self, store_and_table):
        store, _table = store_and_table
        # id is sorted 0..3999; row group 0 holds 0..999 in 5 pages of 200.
        obj, meta, op, data = self._op(store, "id", 150)
        fraction = store._page_fraction("tbl", meta, op, data)
        assert fraction == pytest.approx(0.2)  # 1 of 5 pages

    def test_unselective_filter_keeps_all_pages(self, store_and_table):
        store, _table = store_and_table
        obj, meta, op, data = self._op(store, "id", 10**9)
        assert store._page_fraction("tbl", meta, op, data) == pytest.approx(1.0)

    def test_disabled_flag_returns_full(self, store_and_table):
        store, _table = store_and_table
        store.config.enable_page_skipping = False
        obj, meta, op, data = self._op(store, "id", 150)
        assert store._page_fraction("tbl", meta, op, data) == 1.0

    def test_fraction_cached(self, store_and_table):
        store, _table = store_and_table
        obj, meta, op, data = self._op(store, "id", 150)
        store._page_fraction("tbl", meta, op, data)
        assert ("tbl", meta.key) in store._page_index_cache


class TestFallbackObjectRouting:
    """Objects stored via the fixed-block fallback must support the whole
    store API through the FusionStore facade."""

    @pytest.fixture
    def fallback_store(self):
        rng = np.random.default_rng(0)
        n = 2000
        table = Table.from_dict(
            {
                "k": (ColumnType.INT64, np.arange(n)),
                "pad": (ColumnType.STRING, ["x" * int(v) for v in rng.integers(300, 600, n)]),
            }
        )
        data = write_table(table, row_group_rows=n, codec="none")
        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(num_nodes=9))
        store = FusionStore(
            cluster, StoreConfig(size_scale=10.0, storage_overhead_threshold=0.02)
        )
        report = store.put("skewed", data)
        assert report.fallback
        return store, table, data

    def test_ranged_get(self, fallback_store):
        store, _table, data = fallback_store
        assert store.get("skewed", 100, 999) == data[100:1099]

    def test_scrub(self, fallback_store):
        store, _table, _data = fallback_store
        report = store.verify_object("skewed")
        assert report.clean

    def test_grouped_query(self, fallback_store):
        store, table, _data = fallback_store
        sql = "SELECT count(*) FROM skewed WHERE k < 500 GROUP BY k LIMIT 5"
        result, _ = store.query(sql)
        assert result.equals(execute_local(sql, table))


class TestDegradedFusedPath:
    def test_fused_query_degraded_counts_fallback(self, store_and_table):
        store, table = store_and_table
        sql = "SELECT price FROM tbl WHERE price < 5.0"
        obj = store.objects["tbl"]
        victim = obj.location_map.lookup(obj.metadata.chunk(0, "price").key).node_id
        store.cluster.fail_node(victim)
        result, metrics = store.query(sql)
        assert result.equals(execute_local(sql, table))
        assert metrics.fallback_chunks > 0  # degraded chunks processed at coord
