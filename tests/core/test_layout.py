"""Layout datatypes: bins, bin sets, overhead accounting."""

import pytest

from repro.core import Bin, BinSet, ChunkItem, StripeLayout
from repro.ec import RS_9_6


def _bin(*sizes, start_key=0):
    b = Bin()
    for i, s in enumerate(sizes):
        b.add(ChunkItem(key=(0, start_key + i), size=s))
    return b


class TestChunkItem:
    def test_negative_size_raises(self):
        with pytest.raises(ValueError):
            ChunkItem(key=(0, 0), size=-1)

    def test_padding_marker(self):
        assert ChunkItem(key=(-1, 0), size=5).is_padding
        assert not ChunkItem(key=(0, 0), size=5).is_padding


class TestBin:
    def test_occupied(self):
        assert _bin(10, 20, 5).occupied == 35

    def test_offsets_are_cumulative(self):
        b = _bin(10, 20, 5)
        offsets = [off for _item, off in b.offsets()]
        assert offsets == [0, 10, 30]


class TestBinSet:
    def test_max_bin_and_padding(self):
        bs = BinSet(bins=[_bin(50), _bin(30, start_key=1), _bin(10, start_key=2)])
        assert bs.max_bin == 50
        assert bs.data_bytes == 90
        assert bs.padding_bytes() == 150 - 90

    def test_empty_bins(self):
        bs = BinSet(bins=[Bin(), Bin()])
        assert bs.max_bin == 0
        assert bs.items() == []


class TestStripeLayout:
    def _layout(self):
        bs1 = BinSet(
            bins=[_bin(100)] + [_bin(95 + i, start_key=10 + i) for i in range(5)]
        )
        return StripeLayout(params=RS_9_6, binsets=[bs1], strategy="test")

    def test_parity_bytes(self):
        layout = self._layout()
        assert layout.parity_bytes == 3 * 100

    def test_overhead_zero_for_perfect_packing(self):
        bs = BinSet(bins=[_bin(100, start_key=i) for i in range(6)])
        layout = StripeLayout(params=RS_9_6, binsets=[bs], strategy="test")
        assert layout.overhead_vs_optimal == pytest.approx(0.0)

    def test_overhead_formula(self):
        # One 100-byte block, five empty: stored = 100 + 300, optimal = 150.
        bs = BinSet(bins=[_bin(100)] + [Bin() for _ in range(5)])
        layout = StripeLayout(params=RS_9_6, binsets=[bs], strategy="test")
        assert layout.stored_bytes == 400
        assert layout.overhead_vs_optimal == pytest.approx((400 - 150) / 150)

    def test_chunk_assignment_offsets(self):
        bs = BinSet(bins=[_bin(10, 20), _bin(7, start_key=5)] + [Bin()] * 4)
        layout = StripeLayout(params=RS_9_6, binsets=[bs], strategy="test")
        assignment = layout.chunk_assignment()
        assert assignment[(0, 0)] == (0, 0, 0)
        assert assignment[(0, 1)] == (0, 0, 10)
        assert assignment[(0, 5)] == (0, 1, 0)

    def test_chunk_assignment_skips_padding(self):
        b = Bin()
        b.add(ChunkItem(key=(0, 0), size=10))
        b.add(ChunkItem(key=(-1, 0), size=90))
        layout = StripeLayout(
            params=RS_9_6,
            binsets=[BinSet(bins=[b] + [Bin()] * 5)],
            strategy="test",
            stored_padding_bytes=90,
        )
        assert set(layout.chunk_assignment()) == {(0, 0)}
        assert layout.data_bytes == 10

    def test_duplicate_assignment_raises(self):
        b1 = _bin(10)
        b2 = _bin(5)  # same key (0, 0)
        layout = StripeLayout(
            params=RS_9_6, binsets=[BinSet(bins=[b1, b2] + [Bin()] * 4)], strategy="test"
        )
        with pytest.raises(ValueError, match="twice"):
            layout.chunk_assignment()

    def test_validate_detects_missing(self):
        layout = self._layout()
        items = [ChunkItem(key=(9, 9), size=1)]
        with pytest.raises(ValueError, match="mismatch"):
            layout.validate(items)
