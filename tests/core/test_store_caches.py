"""Store memoisation caches: bounded LRU, invalidated on put/delete.

The caches hold decoded *real* bytes; serving an entry from a deleted
object's previous incarnation would silently corrupt results, so a
reused name must always decode fresh bytes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig, Simulator
from repro.core import BaselineStore, FusionStore, StoreConfig
from repro.core.cache import LruDict
from repro.format import ColumnType, Table, write_table


class TestLruDict:
    def test_bounded_with_lru_eviction(self):
        cache = LruDict(max_entries=2)
        cache["a"] = 1
        cache["b"] = 2
        assert cache.get("a") == 1  # refresh "a": "b" becomes the LRU
        cache["c"] = 3
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert len(cache) == 2

    def test_evict_where(self):
        cache = LruDict(max_entries=8)
        for i in range(4):
            cache[("x", i)] = i
            cache[("y", i)] = i
        assert cache.evict_where(lambda k: k[0] == "x") == 4
        assert len(cache) == 4 and all(k[0] == "y" for k in cache)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            LruDict(max_entries=0)


def _table(fill: int, num_rows: int = 1200) -> bytes:
    table = Table.from_dict(
        {
            "id": (ColumnType.INT64, np.arange(num_rows)),
            "val": (ColumnType.INT64, np.full(num_rows, fill)),
        }
    )
    return write_table(table, row_group_rows=300)


def _store(kind: str):
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=9))
    config = StoreConfig(
        size_scale=100.0, storage_overhead_threshold=0.1, block_size=500_000
    )
    return (FusionStore if kind == "fusion" else BaselineStore)(cluster, config)


@pytest.mark.parametrize("kind", ["fusion", "baseline"])
class TestStaleCacheInvalidation:
    def test_reused_name_serves_fresh_values(self, kind):
        store = _store(kind)
        store.put("tbl", _table(fill=7))
        result, _ = store.query("SELECT val FROM tbl WHERE id >= 0")
        assert set(result.rows.column("val").values.tolist()) == {7}

        store.delete("tbl")
        store.put("tbl", _table(fill=99))
        result, _ = store.query("SELECT val FROM tbl WHERE id >= 0")
        assert set(result.rows.column("val").values.tolist()) == {99}

    def test_reused_name_serves_fresh_degraded_values(self, kind):
        store = _store(kind)
        store.put("tbl", _table(fill=7))
        store.cluster.fail_node(0)
        store.query("SELECT val FROM tbl WHERE id >= 0")  # warm degraded caches
        store.cluster.restore_node(0)

        store.delete("tbl")
        store.put("tbl", _table(fill=99))
        store.cluster.fail_node(0)
        result, _ = store.query("SELECT val FROM tbl WHERE id >= 0")
        assert set(result.rows.column("val").values.tolist()) == {99}
        assert store.get("tbl") == _table(fill=99)

    def test_caches_stay_bounded(self, kind):
        store = _store(kind)
        store.config.decode_cache_entries = 4
        store._decode_cache.max_entries = 4
        store.put("tbl", _table(fill=7))
        store.query("SELECT id, val FROM tbl WHERE id >= 0")
        assert len(store._decode_cache) <= 4
