"""fsck: every invariant leg detects its manufactured violation.

Each test plants exactly one inconsistency — a lost block, a planted
orphan, flipped bytes, dropped metadata replicas, a leftover replica, a
corrupted location-map entry — and asserts fsck reports it in the right
bucket and nothing else.  End-to-end checksum tests then show a single
corrupt chunk is detected on read, served correctly anyway (parity
reconstruction), and counted in the metrics.
"""

import pytest

from repro.cluster import Cluster, ClusterConfig, Simulator
from repro.core import BaselineStore, FusionStore, StoreConfig
from repro.format import write_table
from repro.sql import execute_local
from tests.conftest import make_small_table

TABLE = make_small_table()
DATA = write_table(TABLE, row_group_rows=500)
SQL = "SELECT id, price FROM tbl WHERE qty < 5"


def _system(store_cls, **config):
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(num_nodes=9))
    store = store_cls(
        cluster,
        StoreConfig(
            size_scale=100.0,
            storage_overhead_threshold=0.1,
            block_size=2_000_000,
            **config,
        ),
    )
    store.put("tbl", DATA)
    return store


def _first_data_block(store):
    obj = store.objects["tbl"]
    if isinstance(store, FusionStore):
        placement = obj.stripes[0]
        i = next(j for j, s in enumerate(placement.data_sizes) if s > 0)
        return placement.node_ids[i], placement.data_block_ids[i]
    return obj.data_block_nodes[0], obj.data_block_id(0)


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
class TestFsckOracle:
    def test_fresh_store_is_clean(self, store_cls):
        report = _system(store_cls).fsck()
        assert report.clean
        assert report.objects_checked == 1
        assert report.blocks_checked > 0

    def test_detects_missing_block(self, store_cls):
        store = _system(store_cls)
        nid, bid = _first_data_block(store)
        store.cluster.node(nid).drop_block(bid)
        report = store.fsck()
        assert ("tbl", bid) in report.missing_blocks
        assert not report.clean

    def test_detects_orphan_block(self, store_cls):
        store = _system(store_cls)
        node = store.cluster.node(0)
        import numpy as np

        node.put_block("ghost/s0/d0", np.zeros(64, dtype=np.uint8))
        report = store.fsck()
        assert (0, "ghost/s0/d0") in report.orphan_blocks
        assert report.orphan_bytes == 64
        assert not report.clean

    def test_detects_corrupt_block(self, store_cls):
        store = _system(store_cls)
        nid, bid = _first_data_block(store)
        store.cluster.node(nid).corrupt_block(bid, offset=3)
        report = store.fsck()
        assert ("tbl", bid) in report.checksum_mismatches
        assert not report.clean

    def test_checksum_verify_off_skips_crc(self, store_cls):
        store = _system(store_cls, checksum_verify=False)
        nid, bid = _first_data_block(store)
        store.cluster.node(nid).corrupt_block(bid, offset=3)
        assert store.fsck().checksum_mismatches == []

    def test_detects_under_replication(self, store_cls):
        store = _system(store_cls)
        obj = store.objects["tbl"]
        replicas = (
            obj.location_map.replica_nodes
            if isinstance(store, FusionStore)
            else obj.replica_nodes
        )
        # Drop replicas down past the majority threshold.
        majority = len(replicas) // 2 + 1
        for nid in list(replicas)[: len(replicas) - majority + 1]:
            store.cluster.node(nid).drop_meta("tbl")
        report = store.fsck()
        assert "tbl" in report.under_replicated
        assert not report.clean

    def test_detects_dangling_meta(self, store_cls):
        store = _system(store_cls)
        node = store.cluster.node(0)
        node.put_meta("phantom", object())
        report = store.fsck()
        assert (0, "phantom") in report.dangling_meta
        assert not report.clean

    def test_dead_node_is_unreachable_not_missing(self, store_cls):
        """Blocks on a dead node are repair's problem, not fsck errors —
        a cluster degraded within the code's tolerance is consistent."""
        store = _system(store_cls)
        nid, _bid = _first_data_block(store)
        store.cluster.fail_node(nid)
        report = store.fsck()
        assert report.clean, report.summary()
        assert any(b[0] == "tbl" for b in report.unreachable_blocks)


class TestFsckLocationMap:
    def test_detects_entry_citing_unknown_block(self):
        store = _system(FusionStore)
        obj = store.objects["tbl"]
        key = next(iter(obj.location_map.entries))
        loc = obj.location_map.entries[key]
        obj.location_map.entries[key] = type(loc)(
            chunk_key=loc.chunk_key,
            node_id=loc.node_id,
            block_id="tbl/s99/d0",
            offset_in_block=loc.offset_in_block,
            size=loc.size,
            checksum=loc.checksum,
        )
        report = store.fsck()
        assert any("unknown block" in detail for _n, detail in report.dangling_locations)
        assert not report.clean

    def test_detects_entry_on_wrong_node(self):
        store = _system(FusionStore)
        obj = store.objects["tbl"]
        key = next(iter(obj.location_map.entries))
        loc = obj.location_map.entries[key]
        wrong = (loc.node_id + 1) % store.cluster.config.num_nodes
        obj.location_map.entries[key] = type(loc)(
            chunk_key=loc.chunk_key,
            node_id=wrong,
            block_id=loc.block_id,
            offset_in_block=loc.offset_in_block,
            size=loc.size,
            checksum=loc.checksum,
        )
        report = store.fsck()
        assert any("points at node" in detail for _n, detail in report.dangling_locations)
        assert not report.clean


def _corrupt_queried_chunk(store):
    """Corrupt a byte inside a chunk the test SQL actually reads (the
    row-group-0 "id" chunk for Fusion; block 0 for the baseline)."""
    if isinstance(store, FusionStore):
        obj = store.objects["tbl"]
        loc = obj.location_map.lookup((0, 0))  # (row group 0, column "id")
        store.cluster.node(loc.node_id).corrupt_block(
            loc.block_id, offset=loc.offset_in_block + 3
        )
        return loc.node_id, loc.block_id
    nid, bid = _first_data_block(store)
    store.cluster.node(nid).corrupt_block(bid, offset=3)
    return nid, bid


@pytest.mark.parametrize("store_cls", [FusionStore, BaselineStore])
class TestEndToEndChecksums:
    def test_corrupt_chunk_detected_and_read_repaired(self, store_cls):
        """One silently corrupted chunk: the query still returns correct
        rows (reconstruction from parity) and the failure is counted."""
        store = _system(store_cls)
        _corrupt_queried_chunk(store)
        result, metrics = store.query(SQL)
        assert result.equals(execute_local(SQL, TABLE))
        assert metrics.checksum_failures >= 1
        assert store.cluster.metrics.checksum_failures >= 1

    def test_verify_off_returns_corrupt_bytes(self, store_cls):
        """With verification disabled the corruption flows through —
        proving the checksum path is what catches it."""
        store = _system(store_cls, checksum_verify=False)
        nid, bid = _corrupt_queried_chunk(store)
        assert store.cluster.node(nid).has_block(bid)
        _result, metrics = store.query(SQL)
        assert metrics.checksum_failures == 0

    def test_scrub_reports_block_level_mismatch(self, store_cls):
        store = _system(store_cls)
        nid, bid = _first_data_block(store)
        store.cluster.node(nid).corrupt_block(bid, offset=3)
        scrub = store.verify_object("tbl")
        assert bid in scrub.checksum_mismatch_blocks
        assert not scrub.clean
