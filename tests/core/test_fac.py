"""FAC stripe construction (Algorithm 1): invariants and quality."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ChunkItem, construct_stripes, construct_stripes_first_fit
from repro.ec import RS_9_6, RS_14_10, CodeParams
from repro.workloads import items_from_sizes, zipf_chunk_sizes

sizes_strategy = st.lists(st.integers(1, 10_000), min_size=1, max_size=120)


class TestAlgorithmInvariants:
    @settings(max_examples=100, deadline=None)
    @given(sizes=sizes_strategy)
    def test_every_chunk_assigned_exactly_once(self, sizes):
        items = items_from_sizes(sizes)
        layout = construct_stripes(RS_9_6, items)
        layout.validate(items)  # raises if not a partition

    @settings(max_examples=100, deadline=None)
    @given(sizes=sizes_strategy)
    def test_first_bin_is_largest_per_stripe(self, sizes):
        layout = construct_stripes(RS_9_6, items_from_sizes(sizes))
        for bs in layout.binsets:
            assert bs.bins[0].occupied == bs.max_bin

    @settings(max_examples=100, deadline=None)
    @given(sizes=sizes_strategy)
    def test_capacity_never_exceeded(self, sizes):
        layout = construct_stripes(RS_9_6, items_from_sizes(sizes))
        for bs in layout.binsets:
            capacity = bs.bins[0].occupied
            for b in bs.bins[1:]:
                assert b.occupied <= capacity

    @settings(max_examples=100, deadline=None)
    @given(sizes=sizes_strategy)
    def test_stripe_capacities_nonincreasing(self, sizes):
        """Stripes are built around the largest remaining chunk, so stripe
        capacities decrease monotonically."""
        layout = construct_stripes(RS_9_6, items_from_sizes(sizes))
        caps = [bs.bins[0].occupied for bs in layout.binsets]
        assert caps == sorted(caps, reverse=True)

    @settings(max_examples=50, deadline=None)
    @given(sizes=sizes_strategy)
    def test_overhead_never_below_optimal(self, sizes):
        layout = construct_stripes(RS_9_6, items_from_sizes(sizes))
        assert layout.overhead_vs_optimal >= -1e-9

    @settings(max_examples=50, deadline=None)
    @given(sizes=sizes_strategy)
    def test_bins_per_stripe_is_k(self, sizes):
        for params in (RS_9_6, RS_14_10):
            layout = construct_stripes(params, items_from_sizes(sizes))
            assert all(bs.k == params.k for bs in layout.binsets)


class TestBehaviour:
    def test_equal_chunks_pack_perfectly(self):
        items = items_from_sizes([100] * 12)
        layout = construct_stripes(RS_9_6, items)
        # Capacity is 100, so each bin takes exactly one chunk: 2 stripes,
        # perfectly packed (optimal overhead).
        assert layout.num_stripes == 2
        assert layout.overhead_vs_optimal == pytest.approx(0.0)
        for bs in layout.binsets:
            for b in bs.bins:
                assert b.occupied == 100

    def test_single_chunk(self):
        layout = construct_stripes(RS_9_6, items_from_sizes([500]))
        assert layout.num_stripes == 1
        assert layout.binsets[0].bins[0].occupied == 500

    def test_deterministic(self):
        sizes = zipf_chunk_sizes(80, 0.5, seed=4)
        a = construct_stripes(RS_9_6, items_from_sizes(sizes))
        b = construct_stripes(RS_9_6, items_from_sizes(sizes))
        assert a.chunk_assignment() == b.chunk_assignment()

    def test_input_order_irrelevant(self):
        sizes = zipf_chunk_sizes(50, 0.0, seed=5)
        items = items_from_sizes(sizes)
        layout_sorted = construct_stripes(RS_9_6, sorted(items, key=lambda i: i.size))
        layout_orig = construct_stripes(RS_9_6, items)
        assert layout_sorted.overhead_vs_optimal == pytest.approx(
            layout_orig.overhead_vs_optimal
        )

    def test_overhead_shrinks_with_chunk_count(self):
        small = construct_stripes(RS_9_6, items_from_sizes(zipf_chunk_sizes(30, 0, seed=1)))
        large = construct_stripes(RS_9_6, items_from_sizes(zipf_chunk_sizes(600, 0, seed=1)))
        assert large.overhead_vs_optimal < small.overhead_vs_optimal

    def test_real_profile_overhead_within_paper_bound(self):
        # Paper: <= 1.24% on real datasets with hundreds of chunks.
        sizes = zipf_chunk_sizes(300, 0.5, seed=2)
        layout = construct_stripes(RS_9_6, items_from_sizes(sizes))
        assert layout.overhead_vs_optimal < 0.02

    def test_worst_case_bounded_by_replication(self):
        # One huge chunk + tiny ones: overhead approaches (n - k) but the
        # stored bytes never exceed replication's (1 + parity) x data.
        items = items_from_sizes([10_000] + [1] * 5)
        layout = construct_stripes(RS_9_6, items)
        replication_bytes = sum(i.size for i in items) * (1 + RS_9_6.parity)
        assert layout.stored_bytes <= replication_bytes

    def test_build_seconds_recorded(self):
        layout = construct_stripes(RS_9_6, items_from_sizes([5, 4, 3]))
        assert layout.build_seconds > 0
        assert layout.strategy == "fac"

    def test_runtime_is_fast_for_real_scale(self):
        items = items_from_sizes(zipf_chunk_sizes(320, 0.5, seed=3))
        layout = construct_stripes(RS_9_6, items)
        assert layout.build_seconds < 0.5  # paper: microseconds in Go


class TestAgainstLowerBound:
    """FAC's objective can never beat the ILP lower bound, and on real
    profiles it should land close to it."""

    @settings(max_examples=60, deadline=None)
    @given(sizes=sizes_strategy)
    def test_objective_at_least_lower_bound(self, sizes):
        from repro.core.oracle import optimal_objective_lower_bound

        items = items_from_sizes(sizes)
        layout = construct_stripes(RS_9_6, items)
        objective = sum(bs.max_bin for bs in layout.binsets)
        assert objective >= optimal_objective_lower_bound(RS_9_6, items) - 1e-9

    def test_close_to_bound_on_large_instances(self):
        from repro.core.oracle import optimal_objective_lower_bound

        sizes = zipf_chunk_sizes(500, 0.5, seed=9)
        items = items_from_sizes(sizes)
        layout = construct_stripes(RS_9_6, items)
        objective = sum(bs.max_bin for bs in layout.binsets)
        bound = optimal_objective_lower_bound(RS_9_6, items)
        assert objective <= bound * 1.02  # within 2% of any feasible optimum


class TestFirstFitVariant:
    @settings(max_examples=50, deadline=None)
    @given(sizes=sizes_strategy)
    def test_first_fit_also_valid(self, sizes):
        items = items_from_sizes(sizes)
        layout = construct_stripes_first_fit(RS_9_6, items)
        layout.validate(items)
        for bs in layout.binsets:
            capacity = bs.bins[0].occupied
            assert all(b.occupied <= capacity for b in bs.bins[1:])
