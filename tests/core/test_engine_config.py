"""Shared engine helpers, store config, and the location map."""

import numpy as np
import pytest

from repro.core import ChunkLocation, LocationMap, StoreConfig
from repro.core.engine import (
    assemble_result,
    needed_columns,
    prune_row_groups,
    result_wire_bytes,
    selected_plain_bytes,
)
from repro.format import ColumnType, PaxFile, write_table
from repro.sql import parse, plan


@pytest.fixture(scope="module")
def meta_and_plan(small_file):
    metadata = PaxFile(small_file).metadata
    return metadata


class TestPruneRowGroups:
    def test_sorted_column_prunes(self, small_file):
        metadata = PaxFile(small_file).metadata
        physical = plan(parse("SELECT qty FROM tbl WHERE id < 10"), metadata.schema)
        survivors = prune_row_groups(physical, metadata)
        assert survivors == [0]  # id is sorted; only the first row group

    def test_unsorted_column_keeps_all(self, small_file):
        metadata = PaxFile(small_file).metadata
        physical = plan(parse("SELECT id FROM tbl WHERE qty < 100"), metadata.schema)
        assert prune_row_groups(physical, metadata) == [rg.index for rg in metadata.row_groups]

    def test_no_where_keeps_all(self, small_file):
        metadata = PaxFile(small_file).metadata
        physical = plan(parse("SELECT id FROM tbl"), metadata.schema)
        assert len(prune_row_groups(physical, metadata)) == metadata.num_row_groups

    def test_impossible_predicate_prunes_everything(self, small_file):
        metadata = PaxFile(small_file).metadata
        physical = plan(parse("SELECT id FROM tbl WHERE qty < 0"), metadata.schema)
        assert prune_row_groups(physical, metadata) == []

    def test_or_keeps_union(self, small_file):
        metadata = PaxFile(small_file).metadata
        physical = plan(
            parse("SELECT id FROM tbl WHERE id < 10 OR id > 1990"), metadata.schema
        )
        survivors = prune_row_groups(physical, metadata)
        assert 0 in survivors and (metadata.num_row_groups - 1) in survivors


class TestAssembleResult:
    def test_row_group_order_preserved(self, small_file, small_table):
        metadata = PaxFile(small_file).metadata
        physical = plan(parse("SELECT id FROM tbl WHERE id < 10000"), metadata.schema)
        rgs = [rg.index for rg in metadata.row_groups]
        selected = {}
        projected = {}
        for rg in rgs:
            rows = metadata.row_groups[rg].num_rows
            mask = np.zeros(rows, dtype=bool)
            mask[:2] = True
            selected[rg] = mask
            start = rg * 500
            projected[(rg, "id")] = small_table["id"][start : start + 2]
        result = assemble_result(physical, metadata, rgs, selected, projected)
        assert result.matched_rows == 2 * len(rgs)
        assert result.rows["id"].tolist() == sorted(result.rows["id"].tolist())

    def test_aggregate_assembly(self, small_file, small_table):
        metadata = PaxFile(small_file).metadata
        physical = plan(parse("SELECT count(*), sum(qty) FROM tbl"), metadata.schema)
        rgs = [0]
        mask = np.ones(500, dtype=bool)
        result = assemble_result(
            physical, metadata, rgs, {0: mask}, {(0, "qty"): small_table["qty"][:500]}
        )
        assert result.aggregates[0] == 500
        assert result.aggregates[1] == int(small_table["qty"][:500].sum())


class TestByteHelpers:
    def test_result_wire_bytes_rows(self, small_table):
        from repro.sql import execute_local

        r = execute_local("SELECT id FROM t WHERE id < 100", small_table)
        assert result_wire_bytes(r) == 8 * 100

    def test_result_wire_bytes_aggregates(self, small_table):
        from repro.sql import execute_local

        r = execute_local("SELECT count(*) FROM t", small_table)
        assert result_wire_bytes(r) == 64

    def test_selected_plain_bytes(self):
        arr = np.arange(10, dtype=np.int64)
        assert selected_plain_bytes(ColumnType.INT64, arr) == 80
        strs = np.array(["ab", "c"], dtype=object)
        assert selected_plain_bytes(ColumnType.STRING, strs) == 11

    def test_needed_columns_order(self, small_file):
        metadata = PaxFile(small_file).metadata
        query = parse("SELECT price, id FROM tbl WHERE qty < 3 AND id > 0")
        physical = plan(query, metadata.schema)
        assert needed_columns(physical, query) == ["qty", "id", "price"]


class TestStoreConfig:
    def test_real_block_size(self):
        cfg = StoreConfig(block_size=100 * 1024 * 1024, size_scale=1000.0)
        assert cfg.real_block_size == 104_858
        assert cfg.real_block_size >= 1

    def test_scaled(self):
        cfg = StoreConfig(size_scale=2.5)
        assert cfg.scaled(100) == 250

    def test_defaults_match_paper(self):
        cfg = StoreConfig()
        assert cfg.code.n == 9 and cfg.code.k == 6
        assert cfg.block_size == 100 * 1024 * 1024
        assert cfg.storage_overhead_threshold == pytest.approx(0.02)


class TestLocationMap:
    def _loc(self, key=(0, 0), node=1):
        return ChunkLocation(
            chunk_key=key, node_id=node, block_id="b", offset_in_block=0, size=10
        )

    def test_add_lookup(self):
        m = LocationMap(object_name="o")
        m.add(self._loc())
        assert m.lookup((0, 0)).node_id == 1
        assert len(m) == 1

    def test_duplicate_raises(self):
        m = LocationMap(object_name="o")
        m.add(self._loc())
        with pytest.raises(ValueError, match="duplicate"):
            m.add(self._loc())

    def test_missing_lookup_raises(self):
        with pytest.raises(KeyError, match="no chunk"):
            LocationMap(object_name="o").lookup((9, 9))

    def test_wire_size_paper_entry_cost(self):
        m = LocationMap(object_name="o")
        for i in range(5):
            m.add(self._loc(key=(0, i)))
        assert m.wire_size == 40  # 8 bytes per entry (paper Section 5)

    def test_nodes_used(self):
        m = LocationMap(object_name="o")
        m.add(self._loc(key=(0, 0), node=1))
        m.add(self._loc(key=(0, 1), node=4))
        assert m.nodes_used() == {1, 4}
