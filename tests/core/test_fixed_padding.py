"""Fixed-block and Padding layouts."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ChunkItem,
    build_fixed_layout,
    construct_padding_layout,
    fraction_of_chunks_split,
)
from repro.ec import RS_9_6


class TestFixedLayout:
    def test_block_partition(self):
        layout = build_fixed_layout(RS_9_6, total_bytes=250, block_size=100)
        assert [b.size for b in layout.blocks] == [100, 100, 50]
        assert [b.start for b in layout.blocks] == [0, 100, 200]

    def test_locate_within_block(self):
        layout = build_fixed_layout(RS_9_6, 300, 100)
        frags = layout.locate(10, 50)
        assert len(frags) == 1
        assert (frags[0].block_index, frags[0].block_offset, frags[0].length) == (0, 10, 50)

    def test_locate_spanning_blocks(self):
        layout = build_fixed_layout(RS_9_6, 300, 100)
        frags = layout.locate(80, 130)
        assert [(f.block_index, f.block_offset, f.length) for f in frags] == [
            (0, 80, 20),
            (1, 0, 100),
            (2, 0, 10),
        ]

    def test_locate_out_of_bounds(self):
        layout = build_fixed_layout(RS_9_6, 300, 100)
        with pytest.raises(ValueError):
            layout.locate(250, 100)

    @settings(max_examples=100, deadline=None)
    @given(
        total=st.integers(1, 10_000),
        block=st.integers(1, 500),
        offset_frac=st.floats(0, 1),
        length_frac=st.floats(0, 1),
    )
    def test_locate_covers_range_exactly(self, total, block, offset_frac, length_frac):
        layout = build_fixed_layout(RS_9_6, total, block)
        offset = int(offset_frac * (total - 1))
        length = max(1, int(length_frac * (total - offset)))
        frags = layout.locate(offset, length)
        assert sum(f.length for f in frags) == length
        # Fragments are contiguous in object byte order.
        pos = offset
        for f in frags:
            assert layout.blocks[f.block_index].start + f.block_offset == pos
            pos += f.length

    def test_stripe_grouping(self):
        layout = build_fixed_layout(RS_9_6, 100 * 13, 100)
        assert layout.num_stripes == 3
        assert len(layout.stripe_blocks(0)) == 6
        assert len(layout.stripe_blocks(2)) == 1
        assert layout.stripe_of(12) == 2

    def test_parity_bytes_optimal_for_full_stripes(self):
        layout = build_fixed_layout(RS_9_6, 600, 100)
        assert layout.parity_bytes == 300
        assert layout.stored_bytes == 900

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            build_fixed_layout(RS_9_6, 100, 0)
        with pytest.raises(ValueError):
            build_fixed_layout(RS_9_6, 0, 100)

    def test_fraction_split(self):
        layout = build_fixed_layout(RS_9_6, 1000, 100)
        ranges = [(0, 50), (50, 100), (150, 20), (390, 20)]
        # (50,100) spans blocks 0-1; (390,20) spans 3-4.
        assert fraction_of_chunks_split(layout, ranges) == pytest.approx(0.5)

    def test_fraction_split_empty(self):
        layout = build_fixed_layout(RS_9_6, 100, 100)
        assert fraction_of_chunks_split(layout, []) == 0.0

    def test_larger_blocks_split_fewer_chunks(self):
        ranges = [(i * 130, 130) for i in range(50)]
        total = 50 * 130
        small = fraction_of_chunks_split(build_fixed_layout(RS_9_6, total, 100), ranges)
        large = fraction_of_chunks_split(build_fixed_layout(RS_9_6, total, 1000), ranges)
        assert large < small


class TestPaddingLayout:
    def _items(self, sizes):
        return [ChunkItem(key=(0, i), size=s) for i, s in enumerate(sizes)]

    def test_chunks_never_straddle_blocks(self):
        items = self._items([60, 60, 60, 30, 90])
        layout = construct_padding_layout(RS_9_6, items, block_size=100)
        # Every bin holding real chunks must be exactly the block size
        # (padding markers fill the gap).
        for bs in layout.binsets:
            for b in bs.bins:
                if b.items:
                    assert b.occupied == 100

    def test_padding_accounted(self):
        items = self._items([60, 60])  # 60 fits; next 60 doesn't -> pad 40.
        layout = construct_padding_layout(RS_9_6, items, block_size=100)
        assert layout.stored_padding_bytes == 40 + 40  # two part-full blocks
        assert layout.data_bytes == 120

    def test_oversized_chunk_uses_dedicated_blocks(self):
        items = self._items([250])
        layout = construct_padding_layout(RS_9_6, items, block_size=100)
        assert layout.stored_padding_bytes == 50
        # 3 blocks of 100 in one stripe.
        assert layout.binsets[0].max_bin == 100

    def test_overhead_exceeds_fac_for_awkward_sizes(self):
        from repro.core import construct_stripes

        sizes = [55] * 40  # only one 55-byte chunk fits per 100-byte block
        items = self._items(sizes)
        pad = construct_padding_layout(RS_9_6, items, block_size=100)
        fac = construct_stripes(RS_9_6, items)
        assert pad.overhead_vs_optimal > 0.5
        assert fac.overhead_vs_optimal < 0.05

    def test_empty_tail_bins_allowed(self):
        items = self._items([10])
        layout = construct_padding_layout(RS_9_6, items, block_size=100)
        assert layout.binsets[0].k == 6

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            construct_padding_layout(RS_9_6, self._items([10]), block_size=0)

    @settings(max_examples=50, deadline=None)
    @given(sizes=st.lists(st.integers(1, 300), min_size=1, max_size=60))
    def test_data_bytes_preserved(self, sizes):
        items = self._items(sizes)
        layout = construct_padding_layout(RS_9_6, items, block_size=100)
        assert layout.data_bytes == sum(sizes)

    @settings(max_examples=50, deadline=None)
    @given(sizes=st.lists(st.integers(1, 99), min_size=1, max_size=60))
    def test_small_chunks_keep_file_order_intact(self, sizes):
        """Chunks smaller than a block are never split and stay whole."""
        items = self._items(sizes)
        layout = construct_padding_layout(RS_9_6, items, block_size=100)
        assignment = layout.chunk_assignment()
        assert set(assignment) == {(0, i) for i in range(len(sizes))}
