"""The ILP oracle: optimality on small instances."""

import pytest

from repro.core import (
    ChunkItem,
    brute_force_optimal,
    construct_oracle_layout,
    construct_stripes,
)
from repro.core.oracle import optimal_objective_lower_bound
from repro.ec import CodeParams

SMALL = CodeParams(5, 3)


def _items(sizes):
    return [ChunkItem(key=(0, i), size=s) for i, s in enumerate(sizes)]


def _objective(layout):
    return sum(bs.max_bin for bs in layout.binsets)


class TestOptimality:
    @pytest.mark.parametrize(
        "sizes",
        [
            [10, 9, 8, 5, 4, 2],
            [7, 7, 7],
            [100, 1, 1, 1, 1, 1],
            [5, 5, 5, 5, 5, 5],
            [13, 11, 3, 2],
        ],
    )
    def test_matches_brute_force(self, sizes):
        layout = construct_oracle_layout(SMALL, _items(sizes))
        assert _objective(layout) == brute_force_optimal(SMALL, _items(sizes))

    def test_never_worse_than_fac(self):
        for seed, sizes in enumerate([[9, 8, 7, 3, 2, 1], [20, 5, 5, 5, 5, 5]]):
            items = _items(sizes)
            oracle = construct_oracle_layout(SMALL, items)
            fac = construct_stripes(SMALL, items)
            assert _objective(oracle) <= _objective(fac) + 1e-9

    def test_respects_lower_bound(self):
        items = _items([10, 9, 8, 5, 4, 2])
        layout = construct_oracle_layout(SMALL, items)
        assert _objective(layout) >= optimal_objective_lower_bound(SMALL, items) - 1e-9

    def test_layout_is_valid_partition(self):
        items = _items([10, 9, 8, 5, 4, 2, 1])
        layout = construct_oracle_layout(SMALL, items)
        layout.validate(items)

    def test_strategy_and_runtime_recorded(self):
        layout = construct_oracle_layout(SMALL, _items([3, 2, 1]))
        assert layout.strategy == "oracle"
        assert layout.build_seconds > 0

    def test_empty_items_raise(self):
        with pytest.raises(ValueError):
            construct_oracle_layout(SMALL, [])


class TestLowerBound:
    def test_bound_components(self):
        items = _items([10, 1, 1])
        # total/k = 4, max = 10 -> bound 10.
        assert optimal_objective_lower_bound(SMALL, items) == 10
        items = _items([4, 4, 4, 4, 4, 4])
        # total/k = 8 > max 4.
        assert optimal_objective_lower_bound(SMALL, items) == 8
