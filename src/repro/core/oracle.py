"""The Oracle: exact ILP solution of the stripe-construction problem.

Implements the paper's Equation (1) — minimise the sum over bin sets of
the largest bin size — with ``scipy.optimize.milp`` standing in for
Gurobi.  Variables:

* ``x[i, j, l]`` ∈ {0, 1} — chunk ``i`` assigned to bin ``j`` of set ``l``;
* ``y[l]`` ≥ 0 — the largest bin size in set ``l`` (classic max
  linearisation: ``y[l] >= sum_i s_i x[i, j, l]`` for every bin ``j``).

The formulation is NP-complete; solve time explodes with chunk count
(Fig 10a), which is exactly why Fusion ships the greedy algorithm instead.
A small branch-and-bound fallback covers environments without scipy.
"""

from __future__ import annotations

import itertools
import math
import time

import numpy as np

from repro.core.layout import Bin, BinSet, ChunkItem, StripeLayout
from repro.ec.reed_solomon import CodeParams


class OracleError(Exception):
    """Raised when the ILP solver fails or times out without a solution."""


def construct_oracle_layout(
    params: CodeParams,
    items: list[ChunkItem],
    time_limit_s: float | None = None,
) -> StripeLayout:
    """Solve the exact stripe-construction ILP.

    Practical only for small chunk counts (tens); raises
    :class:`OracleError` on timeout without an incumbent.
    """
    start = time.perf_counter()
    if not items:
        raise ValueError("no chunks to place")
    assignment = _solve_milp(params, items, time_limit_s)
    layout = _layout_from_assignment(params, items, assignment)
    layout.build_seconds = time.perf_counter() - start
    return layout


def _solve_milp(
    params: CodeParams,
    items: list[ChunkItem],
    time_limit_s: float | None,
) -> list[tuple[int, int]]:
    """Return per-item ``(bin_set, bin)`` assignments via scipy's MILP."""
    try:
        from scipy.optimize import Bounds, LinearConstraint, milp
        from scipy.sparse import csr_matrix
    except ImportError:  # pragma: no cover - scipy is a test/bench dep
        return _solve_branch_and_bound(params, items, time_limit_s)

    sizes = [it.size for it in items]
    n_items = len(items)
    k = params.k
    m = math.ceil(n_items / k)
    capacity = max(sizes)

    # Variable vector: x[i, j, l] flattened, then y[l].
    nx = n_items * k * m
    nv = nx + m

    def xi(i: int, j: int, l: int) -> int:
        return (i * k + j) * m + l

    cost = np.zeros(nv)
    cost[nx:] = 1.0  # minimise sum of y[l]

    # Build the constraint matrix sparsely: real instances reach ~10^5
    # variables, far beyond what dense rows can hold.
    coo_rows: list[int] = []
    coo_cols: list[int] = []
    coo_vals: list[float] = []
    lbs: list[float] = []
    ubs: list[float] = []
    row_idx = 0

    # Each item in exactly one bin.
    for i in range(n_items):
        for j in range(k):
            for l in range(m):
                coo_rows.append(row_idx)
                coo_cols.append(xi(i, j, l))
                coo_vals.append(1.0)
        lbs.append(1.0)
        ubs.append(1.0)
        row_idx += 1

    # y[l] dominates every bin's load; bins respect the capacity C.
    for l in range(m):
        for j in range(k):
            for i in range(n_items):
                coo_rows.append(row_idx)
                coo_cols.append(xi(i, j, l))
                coo_vals.append(float(sizes[i]))
            coo_rows.append(row_idx)
            coo_cols.append(nx + l)
            coo_vals.append(-1.0)
            lbs.append(-np.inf)
            ubs.append(0.0)  # sum - y <= 0
            row_idx += 1

    matrix = csr_matrix(
        (coo_vals, (coo_rows, coo_cols)), shape=(row_idx, nv)
    )
    constraints = LinearConstraint(matrix, np.array(lbs), np.array(ubs))
    integrality = np.concatenate([np.ones(nx), np.zeros(m)])
    bounds = Bounds(
        lb=np.zeros(nv),
        ub=np.concatenate([np.ones(nx), np.full(m, float(capacity))]),
    )
    options = {}
    if time_limit_s is not None:
        options["time_limit"] = time_limit_s
    result = milp(
        c=cost,
        constraints=constraints,
        integrality=integrality,
        bounds=bounds,
        options=options,
    )
    if result.x is None:
        raise OracleError(f"MILP solver failed: {result.message}")

    assignment: list[tuple[int, int]] = []
    for i in range(n_items):
        best = None
        for j in range(k):
            for l in range(m):
                if result.x[xi(i, j, l)] > 0.5:
                    best = (l, j)
        if best is None:
            raise OracleError(f"item {i} unassigned in MILP solution")
        assignment.append(best)
    return assignment


def _solve_branch_and_bound(
    params: CodeParams,
    items: list[ChunkItem],
    time_limit_s: float | None,
) -> list[tuple[int, int]]:
    """Exact DFS branch-and-bound fallback (small instances only)."""
    sizes = [it.size for it in items]
    order = sorted(range(len(items)), key=lambda i: -sizes[i])
    k = params.k
    m = math.ceil(len(items) / k)
    capacity = max(sizes)
    deadline = None if time_limit_s is None else time.perf_counter() + time_limit_s

    best_cost = [math.inf]
    best_assign: list[list[tuple[int, int]]] = [[]]
    loads = [[0] * k for _ in range(m)]
    assign: list[tuple[int, int] | None] = [None] * len(items)

    def objective() -> float:
        return sum(max(l) for l in loads)

    def dfs(pos: int) -> None:
        if deadline is not None and time.perf_counter() > deadline:
            raise TimeoutError
        if objective() >= best_cost[0]:
            return
        if pos == len(order):
            best_cost[0] = objective()
            best_assign[0] = [a for a in assign]  # type: ignore[list-item]
            return
        i = order[pos]
        seen: set[tuple[int, ...]] = set()
        for l in range(m):
            for j in range(k):
                if loads[l][j] + sizes[i] > capacity:
                    continue
                # Symmetry breaking: skip states identical up to bin order.
                state = (l, loads[l][j])
                if state in seen:
                    continue
                seen.add(state)
                loads[l][j] += sizes[i]
                assign[i] = (l, j)
                dfs(pos + 1)
                loads[l][j] -= sizes[i]
                assign[i] = None

    try:
        dfs(0)
    except TimeoutError:
        if not best_assign[0]:
            raise OracleError("branch-and-bound timed out with no solution") from None
    if not best_assign[0]:
        raise OracleError("no feasible assignment found")
    return best_assign[0]


def _layout_from_assignment(
    params: CodeParams,
    items: list[ChunkItem],
    assignment: list[tuple[int, int]],
) -> StripeLayout:
    m = max(l for l, _ in assignment) + 1
    binsets = [BinSet(bins=[Bin() for _ in range(params.k)]) for _ in range(m)]
    for item, (l, j) in zip(items, assignment):
        binsets[l].bins[j].add(item)
    # Drop empty bin sets (the solver may leave trailing sets unused).
    used = [bs for bs in binsets if any(b.items for b in bs.bins)]
    return StripeLayout(params=params, binsets=used, strategy="oracle")


def optimal_objective_lower_bound(params: CodeParams, items: list[ChunkItem]) -> float:
    """A cheap lower bound on the ILP objective: ``max(total/k, max_chunk)``.

    Useful for sanity-checking solver output in tests.
    """
    total = sum(it.size for it in items)
    return max(total / params.k, max(it.size for it in items))


def brute_force_optimal(params: CodeParams, items: list[ChunkItem]) -> int:
    """Exhaustive optimum for tiny instances (test oracle for the oracle).

    Enumerates all assignments of items to ``(set, bin)`` slots; factorial
    blow-up means callers should keep ``len(items) <= 7``.
    """
    k = params.k
    m = math.ceil(len(items) / k)
    best = math.inf
    slots = [(l, j) for l in range(m) for j in range(k)]
    capacity = max(it.size for it in items)
    for combo in itertools.product(slots, repeat=len(items)):
        loads: dict[tuple[int, int], int] = {}
        for item, slot in zip(items, combo):
            loads[slot] = loads.get(slot, 0) + item.size
        if any(v > capacity for v in loads.values()):
            continue
        per_set: dict[int, int] = {}
        for (l, _j), v in loads.items():
            per_set[l] = max(per_set.get(l, 0), v)
        best = min(best, sum(per_set.values()))
    return int(best)
