"""Fusion: the analytics object store (paper Sections 4-5).

``Put`` runs file-format-aware coding: chunk boundaries are read from the
footer, Algorithm 1 packs whole chunks into variable-size data blocks,
stripes are Reed-Solomon encoded and scattered, and the per-chunk location
map is replicated ``k + 1`` ways.  If FAC cannot meet the configured
storage-overhead budget, the object falls back to fixed-block coding.

``Query`` executes in the paper's two stages.  Filters are always pushed
to the nodes holding the relevant chunks and return compressed bitmaps.
Projections go through the cost estimator per chunk: pushdown ships
``selectivity × uncompressed`` bytes of selected values; fallback ships
the compressed chunk for coordinator-side processing.  An optional
extension (the paper's future work) pushes aggregates down as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.metrics import QueryMetrics
from repro.cluster.overload import (
    Deadline,
    DeadlineExceeded,
    PartialResult,
    arm_deadline,
    check_deadline,
    fail_query,
    install_admission_control,
    install_circuit_breakers,
)
from repro.cluster.membership import install_membership
from repro.cluster.qos import QuotaExceeded, install_qos
from repro.cluster.simcore import QueueFull, all_of
from repro.core import engine
from repro.core.baseline_store import BaselineStore, ObjectNotFound, PutReport
from repro.core.cache import LruDict
from repro.core.config import OP_REQUEST_BYTES, SCALAR_RESULT_BYTES, StoreConfig
from repro.core.cost_model import PushdownCostEstimator
from repro.core.fac import construct_stripes
from repro.core.scatter_gather import SHED, RemoteOp, execute_remote_ops
from repro.core.layout import ChunkItem, StripeLayout
from repro.core.location_map import ChecksumError, ChunkLocation, LocationMap, chunk_checksum
from repro.core.wal import MetaReplica, QuorumLost, WalRecord, WalWriter
from repro.obs.audit import PushdownAuditLog
from repro.obs.registry import MetricsRegistry
from repro.obs.timeseries import install_telemetry
from repro.obs.tracer import Tracer, traced
from repro.ec.stripe import DecodeError, decode_stripe, encode_stripe
from repro.format.metadata import ColumnChunkMeta, FileMetadata
from repro.format.pages import decode_column_chunk
from repro.format.reader import read_metadata
from repro.format.schema import ColumnType
from repro.sql.aggregates import merge_partial_aggregates, partial_aggregate
from repro.sql.ast_nodes import Aggregate, Query
from repro.sql.bitmap import Bitmap
from repro.sql.local import QueryResult
from repro.sql.parser import parse
from repro.sql.planner import PhysicalPlan, plan as make_plan
from repro.sql.predicate import eval_leaf, leaf_may_match


@dataclass
class StripePlacement:
    """Physical placement of one FAC stripe."""

    stripe_id: int
    node_ids: list[int]  # n nodes: k data then n-k parity
    data_block_ids: list[str]
    parity_block_ids: list[str]
    data_sizes: list[int]
    #: CRC of each stored block payload (n entries, data then parity),
    #: recorded at Put so repair can verify what it rewrites.
    checksums: list[int] = field(default_factory=list)

    @property
    def max_size(self) -> int:
        return max(self.data_sizes)


@dataclass
class StoredFusionObject:
    """Everything Fusion remembers about one object."""

    name: str
    metadata: FileMetadata
    layout: StripeLayout
    location_map: LocationMap
    stripes: list[StripePlacement] = field(default_factory=list)
    header_bytes: bytes = b""
    trailer_bytes: bytes = b""
    #: Version of the durable metadata; bumped on every replica
    #: republish (repair relocations), so recovery's quorum read can
    #: prefer the newest surviving snapshot.
    meta_epoch: int = 0


class FusionStore:
    """The Fusion analytics object store."""

    def __init__(self, cluster: Cluster, config: StoreConfig | None = None) -> None:
        self.cluster = cluster
        self.config = config or StoreConfig()
        self.sim = cluster.sim
        self.objects: dict[str, StoredFusionObject] = {}
        self.estimator = PushdownCostEstimator(self.config.pushdown_mode)
        # Objects whose FAC layout blew the storage budget fall back to
        # fixed-block coding and baseline-style execution.
        self.fallback_store = BaselineStore(cluster, self.config)
        # One WAL op-id space across both stores: fused and fallback
        # operations interleave in the same cluster-wide log.
        self.wal = WalWriter(cluster, self.config.wal_enabled)
        self.fallback_store.wal = self.wal
        # Decoded-value memoisation (see BaselineStore._decode_cache).
        # All three caches hold real bytes only (simulated costs are
        # charged per access), are bounded by a small LRU, and are
        # invalidated on put/delete so a reused object name never serves
        # stale values.
        self._decode_cache: LruDict[tuple[str, tuple[int, int]], np.ndarray] = LruDict(
            self.config.decode_cache_entries
        )
        # Degraded-read reconstruction cache: block_id -> recovered bin.
        self._degraded_bin_cache: LruDict[str, np.ndarray] = LruDict(
            self.config.degraded_cache_entries
        )
        # Page-index cache for node-local page skipping.
        self._page_index_cache: LruDict[tuple[str, tuple[int, int]], list] = LruDict(
            self.config.decode_cache_entries
        )
        # Failure detection: share the cluster's health tracker (the
        # fallback store registers itself too) and hear about liveness
        # changes so degraded-read reconstructions are never served stale
        # after a restore or repair.
        cluster.health.suspicion_threshold = self.config.suspicion_threshold
        cluster.health.greylist_factor = self.config.greylist_latency_factor
        cluster.add_liveness_listener(self._on_liveness)
        # Observability (repro.obs): all three attachments are metadata-
        # plane — they never schedule simulation events — so runs are
        # event-identical with them on or off.
        if self.config.tracing_enabled and self.sim.tracer is None:
            self.sim.tracer = Tracer(self.sim)
        if self.config.metrics_registry_enabled and cluster.metrics.registry is None:
            cluster.metrics.registry = MetricsRegistry()
        self.audit = PushdownAuditLog(self.sim, self.config.pushdown_audit_enabled)
        self.fallback_store.audit = self.audit
        # Overload protection: bound the node service queues and install
        # the per-node circuit breakers.  Both are no-ops at the default
        # knobs (depth 0 / threshold 0), and both tolerate the store pair
        # sharing one cluster (idempotent installs).
        install_admission_control(cluster, self.config)
        install_circuit_breakers(cluster, self.config)
        # Elastic membership: hash-ring placement + runtime join/drain.
        # No-op at the default knob (membership_enabled=False) and
        # idempotent for the store pair sharing one cluster.
        install_membership(cluster, self.config)
        # Per-tenant QoS: DRR fair queues on node service loops + tenant
        # quota buckets.  No-op at the default knob (qos_enabled=False)
        # and idempotent for the store pair sharing one cluster.
        install_qos(cluster, self.config)
        # Continuous telemetry: scraper + SLO engine + exemplars.  The
        # scraper rides the kernel's clock-listener hook (observe-only,
        # never schedules events); no-op at the default knobs and
        # idempotent for the store pair sharing one cluster.
        install_telemetry(cluster, self.config)

    def _on_liveness(self, node_id: int, alive: bool) -> None:
        """A node's liveness changed: cached reconstructions may describe
        a world that no longer exists (restored node serving the real
        block, repair rewriting it), so drop them all (the cache is tiny)."""
        self._degraded_bin_cache.clear()

    def _usable(self, node) -> bool:
        """Send ops to this node, or route straight to reconstruction?

        Routability folds in the failure detector *and* the node's
        circuit breaker (when installed): an open breaker routes the op
        to its degraded path just like a suspect node would.  Greylisted
        (fail-slow) nodes are deprioritized here too: reconstructing
        from k healthy peers beats a many-times-slower direct read; the
        min-healthy floor (:meth:`_floor_attempt`) reinstates them when
        reconstruction would be starved of sources anyway.
        """
        return (
            node.alive
            and self.cluster.routable(node.node_id)
            and not self.cluster.health.is_greylisted(node.node_id)
        )

    def _floor_attempt(self, obj, block_id: str) -> bool:
        """Min-healthy-floor guard for scatter-gather source selection.

        True when an op should still *attempt* its non-usable (suspect /
        greylisted / breaker-open) holder: once the holder's stripe has
        fewer than k usable sources, degraded reconstruction is itself
        guaranteed to lean on non-usable nodes, so a direct attempt —
        with the degraded path kept as fallback — is strictly better
        than the reconstruction cliff.  Only evaluated after
        :meth:`_usable` fails, so fault-free runs never pay the scan.
        """
        try:
            placement, _ = self._locate_block(obj, block_id)
        except KeyError:
            return False
        usable = sum(
            1 for nid in placement.node_ids if self._usable(self.cluster.node(nid))
        )
        return usable < self.config.code.k

    def _node_pressured(self, node) -> bool:
        """Is the node's CPU admission queue at capacity right now?

        Pure queue-length read; always ``False`` with admission control
        off, so default-knob runs take the cost estimator's branch
        untouched.  Used for graceful degradation: pushing compute to a
        node whose service queue is already full would likely just burn
        a round trip on a rejection.
        """
        depth = self.config.admission_queue_depth
        return depth > 0 and node.cpu.queue_length >= depth

    def _invalidate_object_caches(self, name: str) -> None:
        """Drop every cached artefact derived from object ``name``."""
        self._decode_cache.evict_where(lambda key: key[0] == name)
        self._page_index_cache.evict_where(lambda key: key[0] == name)
        # Degraded-bin keys are block ids of the form "<name>/s<i>/d<j>".
        self._degraded_bin_cache.evict_where(lambda bid: bid.startswith(name + "/s"))

    def _page_fraction(self, obj_name: str, meta: ColumnChunkMeta, op, data) -> float:
        """Fraction of the chunk's rows in pages the filter can match."""
        if not self.config.enable_page_skipping or meta.num_values == 0:
            return 1.0
        from repro.format.pages import chunk_page_index

        key = (obj_name, meta.key)
        pages = self._page_index_cache.get(key)
        if pages is None:
            pages = chunk_page_index(data)
            self._page_index_cache[key] = pages
        candidate = sum(
            p.num_values
            for p in pages
            if leaf_may_match(op.leaf, op.type, p.min_value, p.max_value)
        )
        return candidate / meta.num_values

    def _decode_cached(self, obj_name: str, meta: ColumnChunkMeta, data: np.ndarray) -> np.ndarray:
        key = (obj_name, meta.key)
        cached = self._decode_cache.get(key)
        if cached is None:
            # The chunk view decodes in place; no bytes() copy on misses,
            # and hits never touch the payload at all.
            cached = decode_column_chunk(data)
            self._decode_cache[key] = cached
        return cached

    # -- Put -----------------------------------------------------------------

    def put(self, name: str, data: bytes, tenant: str | None = None) -> PutReport:
        """Store an object (runs the simulation to completion)."""
        proc = self.sim.process(self.put_process(name, data, tenant=tenant))
        self.sim.run()
        return proc.value

    def put_process(self, name: str, data: bytes, tenant: str | None = None):
        """Simulated Put with FAC stripe construction.

        ``tenant`` charges the Put (one request plus ``len(data)`` bytes)
        against that tenant's quota buckets; under the ``reject`` policy
        an over-quota Put raises a typed
        :class:`~repro.cluster.qos.QuotaExceeded` before any device work
        (under ``demote`` it is recorded and proceeds — Put traffic
        already runs as exempt internal work with no lane to drop into).
        """
        if tenant is not None and self.cluster.qos is not None:
            self.cluster.qos.admit(tenant, nbytes=len(data))
        report = yield from traced(
            self.sim, self._put_body(name, data), "put", "store",
            obj=name, store="fusion",
        )
        return report

    def _put_body(self, name: str, data: bytes):
        if name in self.objects or name in self.fallback_store.objects:
            raise ValueError(f"object {name!r} already exists (updates are fresh inserts)")
        # A reused name (put after delete) must never serve bytes decoded
        # from its previous incarnation.
        self._invalidate_object_caches(name)
        start = self.sim.now
        # Put budget: checked cooperatively between phases.  A Put that
        # blows its deadline aborts before commit, leaving a WAL intent
        # that recovery rolls back like any other crashed Put.
        deadline = Deadline.from_config(self.sim, self.config)
        config = self.config
        metadata = read_metadata(data)
        chunks = metadata.all_chunks()
        if not chunks:
            raise ValueError(f"object {name!r} has no column chunks")
        items = [ChunkItem(key=c.key, size=c.size) for c in chunks]
        by_key = {c.key: c for c in chunks}

        layout = construct_stripes(config.code, items)
        if layout.overhead_vs_optimal > config.storage_overhead_threshold:
            # Budget exceeded: default to fixed-block coding (paper 4.2).
            report = yield from self.fallback_store.put_process(name, data)
            report.strategy = "fixed-fallback"
            report.fallback = True
            report.layout_build_seconds = layout.build_seconds
            return report

        coordinator = self.cluster.coordinator_for(name)
        raw = np.frombuffer(data, dtype=np.uint8)
        obj = StoredFusionObject(
            name=name,
            metadata=metadata,
            layout=layout,
            location_map=LocationMap(object_name=name),
            header_bytes=data[:4],
            trailer_bytes=data[chunks[-1].end_offset :],
        )

        # Precompute every placement (and the metadata replica set) up
        # front so the WAL intent can name every resource the operation
        # will touch.  Placement draws stay in seed order — one per
        # stripe, then one for the replica nodes — so fault-free runs
        # place blocks exactly where they always did.
        stripe_payloads: list[list[np.ndarray]] = []
        for sid, binset in enumerate(layout.binsets):
            payloads = []
            for b in binset.bins:
                if b.items:
                    payloads.append(
                        np.concatenate(
                            [raw[by_key[i.key].offset : by_key[i.key].end_offset] for i in b.items]
                        )
                    )
                else:
                    payloads.append(np.zeros(0, dtype=np.uint8))
            stripe_payloads.append(payloads)
            node_ids = self.cluster.place_stripe(f"{name}/s{sid}", config.code.n)
            placement = StripePlacement(
                stripe_id=sid,
                node_ids=node_ids,
                data_block_ids=[f"{name}/s{sid}/d{j}" for j in range(config.code.k)],
                parity_block_ids=[f"{name}/s{sid}/p{j}" for j in range(config.code.parity)],
                data_sizes=[p.size for p in payloads],
            )
            obj.stripes.append(placement)
            # Record chunk locations (with end-to-end checksums) for this stripe.
            for j, b in enumerate(binset.bins):
                for item, offset in b.offsets():
                    meta = by_key[item.key]
                    obj.location_map.add(
                        ChunkLocation(
                            chunk_key=item.key,
                            node_id=node_ids[j],
                            block_id=placement.data_block_ids[j],
                            offset_in_block=offset,
                            size=item.size,
                            checksum=chunk_checksum(raw[meta.offset : meta.end_offset]),
                        )
                    )
        replica_count = config.resolved_metadata_replicas(self.cluster.num_nodes)
        replica_nodes = self.cluster.place_stripe(f"{name}/meta", replica_count)
        obj.location_map.replica_nodes = tuple(replica_nodes)

        blocks: list[tuple[int, str]] = []
        block_sizes: list[int] = []
        for placement in obj.stripes:
            for j, bid in enumerate(placement.data_block_ids):
                if placement.data_sizes[j] > 0:
                    blocks.append((placement.node_ids[j], bid))
                    block_sizes.append(placement.data_sizes[j])
            for pj, bid in enumerate(placement.parity_block_ids):
                blocks.append((placement.node_ids[config.code.k + pj], bid))
                block_sizes.append(placement.max_size)

        op_id = self.wal.new_op_id()
        self.wal.append(
            coordinator,
            WalRecord(
                op_id=op_id,
                seq=0,
                phase="intent",
                op="put",
                store_kind="fac",
                object_name=name,
                blocks=tuple(blocks),
                block_sizes=tuple(block_sizes),
                replica_nodes=tuple(replica_nodes),
            ),
        )
        self.wal.crash_point(coordinator, "put:after-intent")

        yield from self.cluster.network.transfer(
            self.cluster.client, coordinator.endpoint, config.scaled(len(data))
        )
        if deadline is not None:
            deadline.check("put transfer")
        # Footer parse cost at the coordinator.
        footer_size = len(data) - (chunks[-1].end_offset if chunks else 0)
        yield from coordinator.compute(
            footer_size * config.size_scale / coordinator.cpu_config.decode_bps
        )

        writes = []
        for sid, payloads in enumerate(stripe_payloads):
            placement = obj.stripes[sid]
            node_ids = placement.node_ids
            encode_bytes = sum(p.size for p in payloads)
            yield from coordinator.compute(
                encode_bytes * config.size_scale / coordinator.cpu_config.decode_bps
            )
            encoded = encode_stripe(config.code, payloads)
            placement.checksums = [chunk_checksum(s) for s in encoded.shards()]

            for j, payload in enumerate(encoded.data_blocks):
                if payload.size == 0:
                    continue
                writes.append(
                    self.sim.process(
                        self._write_block(
                            coordinator, node_ids[j], placement.data_block_ids[j], payload
                        )
                    )
                )
            for pj, payload in enumerate(encoded.parity_blocks):
                writes.append(
                    self.sim.process(
                        self._write_block(
                            coordinator,
                            node_ids[config.code.k + pj],
                            placement.parity_block_ids[pj],
                            payload,
                        )
                    )
                )
        yield all_of(self.sim, writes)
        if deadline is not None:
            deadline.check("put writes")
        self.wal.crash_point(coordinator, "put:after-data")

        # Materialize the metadata replicas: the location map (plus
        # footer) travels to each replica node and is stored there as a
        # snapshot, charged at the paper's 8 bytes per entry.
        map_bytes = obj.location_map.wire_size + len(obj.trailer_bytes)
        replica = self._meta_snapshot(obj)
        replications = []
        for nid in replica_nodes:
            node = self.cluster.node(nid)
            if node is coordinator:
                node.put_meta(name, replica)
            else:
                replications.append(
                    self.sim.process(
                        self._replicate_meta(coordinator, node, map_bytes, name, replica)
                    )
                )
        yield all_of(self.sim, replications)
        if deadline is not None:
            deadline.check("put meta")
        self.wal.crash_point(coordinator, "put:after-meta")

        self.wal.append(
            coordinator,
            WalRecord(
                op_id=op_id,
                seq=1,
                phase="commit",
                op="put",
                store_kind="fac",
                object_name=name,
                replica_nodes=tuple(replica_nodes),
            ),
        )
        self.wal.crash_point(coordinator, "put:after-commit")

        # Atomic visibility: the object appears only after commit.
        self.objects[name] = obj
        return PutReport(
            object_name=name,
            strategy="fac",
            stored_bytes=layout.stored_bytes,
            data_bytes=layout.data_bytes,
            overhead_vs_optimal=layout.overhead_vs_optimal,
            layout_build_seconds=layout.build_seconds,
            simulated_put_seconds=self.sim.now - start,
            num_stripes=layout.num_stripes,
        )

    def _write_block(self, coordinator, node_id: int, block_id: str, payload: np.ndarray):
        node = self.cluster.node(node_id)
        yield from self.cluster.network.transfer(
            coordinator.endpoint, node.endpoint, self.config.scaled(payload.size)
        )
        yield from node.disk.write(self.config.scaled(payload.size))
        node.put_block(block_id, payload)

    # -- Metadata replicas ------------------------------------------------------

    def _meta_snapshot(self, obj: StoredFusionObject) -> MetaReplica:
        """Deep snapshot of the object's durable metadata for a replica
        node — never aliases live placement state, so repair mutations
        do not bleed into already-published replicas."""
        return MetaReplica(
            object_name=obj.name,
            epoch=obj.meta_epoch,
            store_kind="fac",
            payload={
                "metadata": obj.metadata,
                "layout": obj.layout,
                "entries": obj.location_map.snapshot(),
                "replica_nodes": tuple(obj.location_map.replica_nodes),
                "stripes": [_copy_placement(p) for p in obj.stripes],
                "header": obj.header_bytes,
                "trailer": obj.trailer_bytes,
            },
        )

    def _replicate_meta(self, coordinator, node, map_bytes: int, name: str, replica) -> object:
        """Process: ship the serialized map to one replica node, then
        install the snapshot there (a node that died mid-transfer missed
        the write)."""
        yield from self.cluster.network.transfer(
            coordinator.endpoint, node.endpoint, self.config.scaled(map_bytes)
        )
        if node.alive:
            node.put_meta(name, replica)

    def _republish_meta(self, obj: StoredFusionObject) -> None:
        """Repair relocated blocks: push a fresh snapshot (bumped epoch)
        to the reachable replica holders.  Metadata-plane operation — the
        repair traffic itself was already charged.

        Quorum-guarded: with 3+ replica holders, a coordinator that can
        reach only a minority of them must not install a bumped-epoch
        snapshot — the majority side may be doing the same, and whoever
        bumps on fewer holders split-brains the object.  Raises
        :class:`~repro.core.wal.QuorumLost` instead; callers defer and
        re-attempt after the partition heals.
        """
        holders = obj.location_map.replica_nodes
        coordinator = self.cluster.coordinator_for(obj.name)
        reachable = [
            nid
            for nid in holders
            if self.cluster.node(nid).alive
            and self.cluster.reachable(coordinator.node_id, nid)
        ]
        if len(holders) >= 3 and len(reachable) < len(holders) // 2 + 1:
            self.cluster.metrics.quorum_lost_total += 1
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.instant(
                    "meta.quorum_lost", cat="meta", object=obj.name,
                    reachable=len(reachable), holders=len(holders),
                )
            raise QuorumLost(
                f"republish of {obj.name!r} reaches {len(reachable)}/"
                f"{len(holders)} metadata replica holders (majority needed)"
            )
        obj.meta_epoch += 1
        replica = self._meta_snapshot(obj)
        for nid in reachable:
            self.cluster.node(nid).put_meta(obj.name, replica)
        # The published placement changed: every cached artefact derived
        # from the old placement (decoded chunks, page indexes, degraded
        # reconstructions) may now describe bytes that are about to be
        # GC'd from their old node.  Real-bytes caches only, so dropping
        # them never perturbs the event stream.
        self._invalidate_object_caches(obj.name)


    def _sync_meta_replicas(self, obj) -> int:
        """Anti-entropy for metadata replicas: push the current-epoch
        snapshot to alive holders whose replica is missing or older
        (post-partition-heal convergence onto the majority epoch).
        Metadata-plane; returns the number of holders updated."""
        replica = None
        synced = 0
        for nid in obj.location_map.replica_nodes:
            node = self.cluster.node(nid)
            if not node.alive:
                continue
            existing = node.get_meta(obj.name)
            if (
                existing is not None
                and existing.store_kind == "fac"
                and existing.epoch >= obj.meta_epoch
            ):
                continue
            if replica is None:
                replica = self._meta_snapshot(obj)
            node.put_meta(obj.name, replica)
            synced += 1
        return synced

    def _install_from_replica(self, replica: MetaReplica) -> StoredFusionObject:
        """Recovery roll-forward: rebuild the in-memory object from a
        surviving metadata replica snapshot."""
        p = replica.payload
        obj = StoredFusionObject(
            name=replica.object_name,
            metadata=p["metadata"],
            layout=p["layout"],
            location_map=LocationMap(
                object_name=replica.object_name,
                entries=dict(p["entries"]),
                replica_nodes=tuple(p["replica_nodes"]),
            ),
            stripes=[_copy_placement(s) for s in p["stripes"]],
            header_bytes=p["header"],
            trailer_bytes=p["trailer"],
            meta_epoch=replica.epoch,
        )
        self.objects[obj.name] = obj
        self._invalidate_object_caches(obj.name)
        return obj

    # -- Integrity --------------------------------------------------------------

    def _verify_chunk(self, obj_name: str, loc, data) -> None:
        """End-to-end check: bytes just read must match the CRC recorded
        at Put.  Raises :class:`ChecksumError`; the scatter-gather layer
        treats it as non-retryable and falls straight back to degraded
        reconstruction (re-reading the same bad bytes cannot help, and a
        media error says nothing about the node's liveness)."""
        if not self.config.checksum_verify or not loc.checksum:
            return
        if chunk_checksum(data) != loc.checksum:
            raise ChecksumError(
                f"chunk {loc.chunk_key} of {obj_name!r} failed CRC in block {loc.block_id}"
            )

    # -- Get -------------------------------------------------------------------

    def get(
        self,
        name: str,
        offset: int = 0,
        size: int | None = None,
        tenant: str | None = None,
    ) -> bytes:
        """Retrieve object bytes — the paper's Get(offset, size) API.

        Runs the simulation to completion; ``size=None`` means to the end.
        """
        proc = self.sim.process(
            self.get_process(name, offset=offset, size=size, tenant=tenant)
        )
        self.sim.run()
        return proc.value

    def get_process(
        self,
        name: str,
        metrics: QueryMetrics | None = None,
        offset: int = 0,
        size: int | None = None,
        tenant: str | None = None,
    ):
        """Simulated Get: fetch the chunk ranges covering the byte range.

        Fusion stores chunks out of file order, so a ranged Get maps the
        requested range onto the file's segments (header, chunks, footer)
        and reads only the overlapping parts of each chunk — each from the
        single node holding it.
        """
        if metrics is None:
            # Deadlines and the tenant id ride on the metrics object;
            # synthesize a carrier when either needs one so bare Gets
            # are budgeted and fair-scheduled too.
            deadline = Deadline.from_config(self.sim, self.config)
            if deadline is not None or tenant is not None:
                metrics = QueryMetrics()
                metrics.deadline = deadline
        else:
            arm_deadline(self.sim, self.config, metrics)
        if tenant is not None:
            metrics.tenant = tenant
            if self.cluster.qos is not None:
                self.cluster.qos.admit(
                    tenant, metrics, nbytes=0 if size is None else size
                )
        try:
            data = yield from traced(
                self.sim, self._get_body(name, metrics, offset, size), "get", "store",
                obj=name, store="fusion",
            )
        except DeadlineExceeded:
            if metrics is not None:
                metrics.deadline_exceeded += 1
            raise
        return data

    def _get_body(self, name: str, metrics: QueryMetrics | None, offset: int, size: int | None):
        if name in self.fallback_store.objects:
            data = yield from self.fallback_store.get_process(
                name, metrics, offset=offset, size=size
            )
            return data
        obj = self._lookup(name)
        chunks = obj.metadata.all_chunks()
        total = len(obj.header_bytes) + sum(c.size for c in chunks) + len(obj.trailer_bytes)
        if size is None:
            size = total - offset
        if offset < 0 or size < 0 or offset + size > total:
            raise ValueError(f"range [{offset}, {offset + size}) outside object of size {total}")
        if size == 0:
            return b""
        end = offset + size
        coordinator = self.cluster.coordinator_for(name)

        # Walk the file's segment map in byte order, collecting the parts
        # that overlap the requested range.  Local segments (header and
        # footer live with the replicated metadata) cost nothing.
        parts: list[tuple[int, bytes | None]] = []  # (segment_start, local bytes)
        fetch_ops = []
        fetch_starts = []
        header_end = len(obj.header_bytes)
        if offset < header_end:
            parts.append((offset, obj.header_bytes[offset : min(end, header_end)]))
        for meta in chunks:
            lo = max(offset, meta.offset)
            hi = min(end, meta.end_offset)
            if lo >= hi:
                continue
            loc = obj.location_map.lookup(meta.key)
            fetch_starts.append(lo)
            fetch_ops.append(
                self._fetch_chunk_range_op(
                    obj, coordinator, loc, lo - meta.offset, hi - lo, metrics
                )
            )
        trailer_start = total - len(obj.trailer_bytes)
        if end > trailer_start:
            lo = max(offset, trailer_start)
            parts.append((lo, obj.trailer_bytes[lo - trailer_start : end - trailer_start]))

        payloads = yield from execute_remote_ops(
            self.cluster, coordinator, fetch_ops, metrics, self.config.enable_rpc_batching, config=self.config
        )
        for start, payload in zip(fetch_starts, payloads):
            parts.append((start, payload))
        parts.sort(key=lambda item: item[0])
        # join() accepts buffer views directly; the single copy here is
        # the only materialisation on the whole range-read path.
        return b"".join(p for _start, p in parts)

    def _fetch_chunk_range_op(
        self,
        obj: StoredFusionObject,
        coordinator,
        loc,
        within: int,
        length: int,
        metrics: QueryMetrics | None,
    ) -> RemoteOp:
        """Op reading ``[within, within+length)`` of one chunk from its node."""
        node = self.cluster.node(loc.node_id)

        def degraded():
            chunk = yield from self._degraded_chunk_read(obj, loc, coordinator, metrics)
            return chunk[within : within + length]

        if not self._usable(node) and not (
            node.alive and self._floor_attempt(obj, loc.block_id)
        ):
            return RemoteOp(standalone=degraded)

        def execute():
            check_deadline(metrics, "chunk fetch")
            data = yield from node.read_block_range(
                loc.block_id,
                loc.offset_in_block + within,
                length,
                self.config.size_scale,
                metrics,
            )
            if within == 0 and length == loc.size:
                # Whole-chunk read: the recorded CRC covers exactly these
                # bytes (partial ranges are verified via reconstruction
                # only when a full read flags the chunk).
                self._verify_chunk(obj.name, loc, data)
            return self.config.scaled(length), data

        return RemoteOp(node=node, execute=execute, fallback=degraded)

    # -- Degraded reads ----------------------------------------------------------

    def _locate_block(self, obj: StoredFusionObject, block_id: str):
        """Find the stripe placement and bin index holding ``block_id``."""
        for placement in obj.stripes:
            if block_id in placement.data_block_ids:
                return placement, placement.data_block_ids.index(block_id)
        raise KeyError(f"object {obj.name!r} has no data block {block_id!r}")

    def _degraded_chunk_read(
        self,
        obj: StoredFusionObject,
        loc,
        coordinator,
        metrics: QueryMetrics | None,
    ):
        """Reconstruct a chunk whose node is down, at the coordinator.

        Gathers ``k`` surviving blocks of the stripe, RS-decodes the lost
        bin, and slices the chunk out — the expensive path that justifies
        prompt recovery.  Reconstructed bins are cached (real bytes only;
        simulated costs are charged on every call).
        """
        chunk = yield from traced(
            self.sim,
            self._degraded_chunk_read_body(obj, loc, coordinator, metrics),
            "degraded_read", "store", obj=obj.name, block=loc.block_id,
        )
        return chunk

    def _degraded_chunk_read_body(self, obj, loc, coordinator, metrics):
        check_deadline(metrics, "degraded read")
        if metrics is not None:
            metrics.degraded_reads += 1
        placement, bin_idx = self._locate_block(obj, loc.block_id)
        k, n = self.config.code.k, self.config.code.n
        shards: list[np.ndarray | None] = [None] * n
        for i in range(k):
            if placement.data_sizes[i] == 0:
                shards[i] = np.zeros(0, dtype=np.uint8)

        # Pick the surviving shards to gather (first k in stripe order,
        # healthy nodes before suspect ones), then fetch them as one
        # scatter-gather round: the stripe spreads over distinct nodes,
        # so this is one RPC per surviving node either way, but the
        # reads overlap instead of serialising.
        pending = sum(1 for s in shards if s is not None)
        candidates: list[tuple[int, object, str]] = []
        for i in range(n):
            if shards[i] is not None:
                continue
            node = self.cluster.node(placement.node_ids[i])
            block_id = (
                placement.data_block_ids[i] if i < k else placement.parity_block_ids[i - k]
            )
            if not node.alive or not node.has_block(block_id):
                continue
            if not self.cluster.reachable(coordinator.node_id, node.node_id):
                # Partitioned away: the fetch RPC is deterministically
                # lost, so don't waste the timeout discovering it.
                continue
            candidates.append((i, node, block_id))
        # Healthy (non-greylisted) shards first, then greylisted
        # (fail-slow: they answer, slowly), suspect last.
        health = self.cluster.health
        healthy = [
            c for c in candidates
            if health.usable(c[1].node_id) and not health.is_greylisted(c[1].node_id)
        ]
        grey = [
            c for c in candidates
            if health.usable(c[1].node_id) and health.is_greylisted(c[1].node_id)
        ]
        suspect = [c for c in candidates if not health.usable(c[1].node_id)]
        gather = (healthy + grey + suspect)[: max(0, k - pending)]

        def fetch_op(node, block_id: str) -> RemoteOp:
            def execute():
                data = yield from node.read_block(block_id, self.config.size_scale, metrics)
                return self.config.scaled(data.size), data

            return RemoteOp(node=node, execute=execute)

        payloads = yield from execute_remote_ops(
            self.cluster,
            coordinator,
            [fetch_op(node, bid) for _i, node, bid in gather],
            metrics,
            self.config.enable_rpc_batching,
            config=self.config,
        )
        for (i, _node, _bid), data in zip(gather, payloads):
            shards[i] = data

        gathered = sum(s.size for s in shards if s is not None)
        yield from coordinator.compute(
            gathered * self.config.size_scale / coordinator.cpu_config.decode_bps, metrics
        )
        cached = self._degraded_bin_cache.get(loc.block_id)
        if cached is None:
            recovered = decode_stripe(self.config.code, shards, placement.data_sizes)
            cached = recovered[bin_idx]
            self._degraded_bin_cache[loc.block_id] = cached
        chunk = cached[loc.offset_in_block : loc.offset_in_block + loc.size]
        if (
            self.config.checksum_verify
            and loc.checksum
            and chunk_checksum(chunk) != loc.checksum
        ):
            # The reconstruction itself is wrong: one of the gathered
            # shards was silently corrupt (including, possibly, the
            # target block itself when this path was entered because a
            # direct read failed its CRC).  Fall back to checksum-guided
            # recovery over every reachable shard.
            if metrics is not None:
                metrics.checksum_failures += 1
            rebuilt = yield from self._verified_bin_recovery(
                obj, placement, bin_idx, coordinator, metrics
            )
            if rebuilt is not None:
                cached = rebuilt
                self._degraded_bin_cache[loc.block_id] = cached
                chunk = cached[loc.offset_in_block : loc.offset_in_block + loc.size]
        # Anti-entropy read-repair: this foreground read had to
        # reconstruct — queue the stripe for background repair so the
        # damage heals from traffic instead of waiting for a scrub.
        if self.config.read_repair_enabled:
            self.cluster.enqueue_read_repair(
                self, "fac", obj.name, placement.stripe_id
            )
        return chunk

    def _verified_bin_recovery(
        self, obj, placement: StripePlacement, bin_idx: int, coordinator, metrics
    ):
        """Checksum-guided reconstruction of one data bin.

        Gathers *every* reachable shard of the stripe (not just the
        first k), localises silently-corrupt shards with decode trials
        (:func:`repro.core.repair.find_bad_shards`), and decodes with
        them excluded.  Returns the recovered bin's bytes, or None when
        the stripe is damaged beyond what the code can localise.
        """
        from repro.core.repair import RepairError, find_bad_shards

        k, n = self.config.code.k, self.config.code.n
        block_ids = placement.data_block_ids + placement.parity_block_ids
        shards: list[np.ndarray | None] = []
        for i in range(n):
            if i < k and placement.data_sizes[i] == 0:
                shards.append(np.zeros(0, dtype=np.uint8))
                continue
            node = self.cluster.node(placement.node_ids[i])
            if (
                not node.alive
                or not self.cluster.reachable(coordinator.node_id, node.node_id)
                or not node.has_block(block_ids[i])
            ):
                shards.append(None)
                continue
            data = yield from node.read_block(block_ids[i], self.config.size_scale, metrics)
            yield from self.cluster.network.transfer(
                node.endpoint, coordinator.endpoint, self.config.scaled(data.size), metrics
            )
            shards.append(data)
        yield from coordinator.compute(
            sum(s.size for s in shards if s is not None)
            * self.config.size_scale
            / coordinator.cpu_config.decode_bps,
            metrics,
        )
        try:
            bad = find_bad_shards(self.config.code, shards, placement.data_sizes)
            good = [s if i not in bad else None for i, s in enumerate(shards)]
            recovered = decode_stripe(self.config.code, good, placement.data_sizes)
        except (RepairError, DecodeError):
            return None
        return recovered[bin_idx]

    def _degraded_chunk_values(
        self, obj, meta: ColumnChunkMeta, loc, coordinator, metrics
    ):
        """Degraded read plus decode-to-values at the coordinator."""
        raw = yield from self._degraded_chunk_read(obj, loc, coordinator, metrics)
        yield from coordinator.compute(
            coordinator.decode_seconds(meta.size, meta.plain_size, self.config.size_scale),
            metrics,
        )
        return self._decode_cached(obj.name, meta, raw)

    # -- Query -----------------------------------------------------------------

    def query(
        self, sql: str | Query, tenant: str | None = None
    ) -> tuple[QueryResult, QueryMetrics]:
        """Run one query alone on an idle cluster (runs the simulation)."""
        metrics = QueryMetrics()
        proc = self.sim.process(self.query_process(sql, metrics, tenant=tenant))
        self.sim.run()
        return proc.value, metrics

    def query_process(
        self, sql: str | Query, metrics: QueryMetrics, tenant: str | None = None
    ):
        """Two-stage adaptive-pushdown execution.

        ``tenant`` stamps the metrics and charges the query against that
        tenant's quota buckets before any device work; an over-quota
        request is refused with a typed QuotaExceeded (``reject``) or
        demoted to the background lane (``demote``).  Delegations to the
        fallback store pass the already-stamped metrics, never the
        tenant kwarg, so a query is charged exactly once.
        """
        query = parse(sql) if isinstance(sql, str) else sql
        if tenant is not None:
            metrics.tenant = tenant
            if self.cluster.qos is not None:
                metrics.start_time = self.sim.now
                try:
                    self.cluster.qos.admit(tenant, metrics)
                except QuotaExceeded:
                    fail_query(self.cluster, metrics, quota=True)
                    raise
        if query.table in self.fallback_store.objects:
            result = yield from self.fallback_store.query_process(query, metrics)
            return result
        arm_deadline(self.sim, self.config, metrics)
        try:
            result = yield from traced(
                self.sim, self._query_body(query, metrics), "query", "store",
                metrics=metrics, table=query.table, store="fusion",
            )
        except DeadlineExceeded:
            # The body records metrics only on success, so accounting the
            # failure here never double-counts the query.
            fail_query(self.cluster, metrics, deadline=True)
            raise
        except QueueFull as exc:
            # Coordinator-side admission refusal (compute/egress outside
            # any scatter-gather stage) killed the whole query.
            fail_query(self.cluster, metrics, shed=exc.shed)
            raise
        return result

    def _query_body(self, query: Query, metrics: QueryMetrics):
        obj = self._lookup(query.table)
        physical = make_plan(query, obj.metadata.schema)
        coordinator = self.cluster.coordinator_for(obj.name)
        metrics.start_time = self.sim.now
        tracer = self.sim.tracer

        row_groups = engine.prune_row_groups(physical, obj.metadata)

        # Partial results: scan queries (no aggregates or GROUP BY) may
        # trade shed chunks for a typed PartialResult instead of failing
        # outright when admission control refuses ops.
        allow_shed = (
            self.config.allow_partial_results
            and not query.has_aggregates()
            and not query.group_by
        )

        # Fused fast path: when the whole query touches exactly one column
        # (a single filter leaf whose column is also the only projection),
        # a storage node's local bitmap is already the final bitmap for
        # its row group.  The node applies the Cost Equation locally and
        # answers filter + projection in one round trip with one decode.
        if self._fusable(physical):
            result = yield from traced(
                self.sim,
                self._fused_query(
                    obj, coordinator, physical, row_groups, metrics, allow_shed
                ),
                "fused_stage", "store", chunks=len(row_groups),
            )
            inner = result.result if isinstance(result, PartialResult) else result
            yield from traced(
                self.sim,
                self.cluster.network.transfer(
                    coordinator.endpoint,
                    self.cluster.client,
                    self.config.scaled(engine.result_wire_bytes(inner)),
                    metrics,
                ),
                "result_transfer", "store",
            )
            metrics.end_time = self.sim.now
            self.cluster.metrics.record_query(metrics)
            return result

        # ---- Filter stage: push every live leaf down, gather bitmaps. ----
        filter_span = (
            tracer.begin("filter_stage", cat="store") if tracer is not None else None
        )
        rg_selected: dict[int, np.ndarray] = {}
        ops = []
        keys: list[tuple[int, int]] = []
        zero_bitmaps: dict[tuple[int, int], np.ndarray] = {}
        for rg in row_groups:
            num_rows = obj.metadata.row_groups[rg].num_rows
            for op in physical.filter_ops:
                meta = obj.metadata.chunk(rg, op.column)
                if not leaf_may_match(
                    op.leaf, op.type, meta.stats.min_value, meta.stats.max_value
                ):
                    # Footer stats prove no row matches: skip the RPC.
                    zero_bitmaps[(rg, op.index)] = np.zeros(num_rows, dtype=np.bool_)
                    continue
                keys.append((rg, op.index))
                ops.append(self._filter_op(obj, coordinator, rg, op, meta, metrics))
        bitmaps_out = yield from execute_remote_ops(
            self.cluster, coordinator, ops, metrics, self.config.enable_rpc_batching,
            config=self.config, allow_shed=allow_shed,
        )
        leaf_results = dict(zip(keys, bitmaps_out))
        leaf_results.update(zero_bitmaps)

        # A shed filter leaf leaves its whole row group unanswerable:
        # drop the group and report the query as partial.
        shed_rgs: set[int] = set()
        shed_chunks = 0
        for (rg, _idx), bits in leaf_results.items():
            if bits is SHED:
                shed_chunks += 1
                shed_rgs.add(rg)

        for rg in row_groups:
            if rg in shed_rgs:
                continue
            num_rows = obj.metadata.row_groups[rg].num_rows
            bitmaps = [leaf_results[(rg, op.index)] for op in physical.filter_ops]
            if bitmaps:
                # Consolidation cost: tiny, linear in bitmap bytes.
                yield from coordinator.compute(
                    coordinator.scan_seconds(num_rows // 8 + 1, self.config.size_scale),
                    metrics,
                )
            rg_selected[rg] = physical.combine_bitmaps(bitmaps, num_rows)
        if filter_span is not None:
            tracer.finish(filter_span, ops=len(ops))

        # ---- Projection stage -------------------------------------------------
        if (
            self.config.enable_aggregate_pushdown
            and query.has_aggregates()
            and not query.group_by
        ):
            result = yield from traced(
                self.sim,
                self._aggregate_pushdown_stage(
                    obj, coordinator, physical, row_groups, rg_selected, metrics
                ),
                "aggregate_stage", "store",
            )
        else:
            projection_span = (
                tracer.begin("projection_stage", cat="store")
                if tracer is not None
                else None
            )
            rg_projected: dict[tuple[int, str], np.ndarray] = {}
            ops = []
            task_keys = []
            for rg in row_groups:
                if rg in shed_rgs:
                    continue
                bitmap = rg_selected[rg]
                indices = np.flatnonzero(bitmap)
                for col in physical.projection_columns:
                    type_ = physical.schema.field(col).type
                    if len(indices) == 0:
                        rg_projected[(rg, col)] = _empty_values(type_)
                        continue
                    meta = obj.metadata.chunk(rg, col)
                    task_keys.append((rg, col))
                    ops.append(
                        self._projection_op(
                            obj, coordinator, meta, type_, bitmap, indices, metrics
                        )
                    )
            values_out = yield from execute_remote_ops(
                self.cluster, coordinator, ops, metrics, self.config.enable_rpc_batching,
                config=self.config, allow_shed=allow_shed,
            )
            for key, values in zip(task_keys, values_out):
                if values is SHED:
                    # One shed projection chunk invalidates its whole row
                    # group (rows must carry every projected column).
                    shed_chunks += 1
                    shed_rgs.add(key[0])
                else:
                    rg_projected[key] = values
            kept = [rg for rg in row_groups if rg not in shed_rgs]
            result = engine.assemble_result(
                physical, obj.metadata, kept, rg_selected, rg_projected
            )
            if projection_span is not None:
                tracer.finish(projection_span, ops=len(ops))
            if shed_chunks:
                metrics.partial_results += 1
                result = PartialResult(result, shed_chunks)

        inner = result.result if isinstance(result, PartialResult) else result
        yield from traced(
            self.sim,
            self.cluster.network.transfer(
                coordinator.endpoint,
                self.cluster.client,
                self.config.scaled(engine.result_wire_bytes(inner)),
                metrics,
            ),
            "result_transfer", "store",
        )
        metrics.end_time = self.sim.now
        self.cluster.metrics.record_query(metrics)
        return result

    @staticmethod
    def _fusable(physical: PhysicalPlan) -> bool:
        """True when the query is a single-column filter + projection."""
        ops = physical.filter_ops
        return (
            len(ops) == 1
            and not physical.query.has_aggregates()
            and not physical.query.group_by
            and physical.projection_columns == [ops[0].column]
        )

    def _fused_query(
        self, obj, coordinator, physical: PhysicalPlan, row_groups, metrics,
        allow_shed: bool = False,
    ):
        """Single-round execution of a one-column filter+projection query."""
        op = physical.filter_ops[0]
        rg_selected: dict[int, np.ndarray] = {}
        rg_projected: dict[tuple[int, str], np.ndarray] = {}
        type_ = physical.schema.field(op.column).type

        ops = []
        task_rgs = []
        for rg in row_groups:
            num_rows = obj.metadata.row_groups[rg].num_rows
            meta = obj.metadata.chunk(rg, op.column)
            if not leaf_may_match(op.leaf, op.type, meta.stats.min_value, meta.stats.max_value):
                rg_selected[rg] = np.zeros(num_rows, dtype=np.bool_)
                rg_projected[(rg, op.column)] = _empty_values(type_)
                continue
            task_rgs.append(rg)
            ops.append(self._fused_op(obj, coordinator, op, meta, type_, metrics))
        fused_out = yield from execute_remote_ops(
            self.cluster, coordinator, ops, metrics, self.config.enable_rpc_batching,
            config=self.config, allow_shed=allow_shed,
        )
        shed_rgs: set[int] = set()
        shed_chunks = 0
        for rg, out in zip(task_rgs, fused_out):
            if out is SHED:
                shed_chunks += 1
                shed_rgs.add(rg)
                continue
            bits, values = out
            rg_selected[rg] = bits
            rg_projected[(rg, op.column)] = values
        kept = [rg for rg in row_groups if rg not in shed_rgs]
        result = engine.assemble_result(
            physical, obj.metadata, kept, rg_selected, rg_projected
        )
        if shed_chunks:
            metrics.partial_results += 1
            return PartialResult(result, shed_chunks)
        return result

    def _fused_op(self, obj, coordinator, op, meta: ColumnChunkMeta, type_, metrics) -> RemoteOp:
        """One fused filter+projection op on the node holding the chunk."""
        loc = obj.location_map.lookup(meta.key)
        node = self.cluster.node(loc.node_id)

        # Degraded: reconstruct at the coordinator and process there.
        def degraded():
            metrics.fallback_chunks += 1
            values = yield from self._degraded_chunk_values(
                obj, meta, loc, coordinator, metrics
            )
            yield from coordinator.compute(
                2 * coordinator.scan_seconds(meta.plain_size, self.config.size_scale),
                metrics,
            )
            bits = eval_leaf(op.leaf, op.type, values)
            return bits, values[np.flatnonzero(bits)]

        if not self._usable(node) and not (
            node.alive and self._floor_attempt(obj, loc.block_id)
        ):
            return RemoteOp(standalone=degraded)

        def execute():
            check_deadline(metrics, "fused chunk")
            data = yield from node.read_block_range(
                loc.block_id, loc.offset_in_block, loc.size, self.config.size_scale, metrics
            )
            self._verify_chunk(obj.name, loc, data)
            fraction = self._page_fraction(obj.name, meta, op, data)
            yield from node.compute(
                fraction
                * (
                    node.decode_seconds(meta.size, meta.plain_size, self.config.size_scale)
                    + 2 * node.scan_seconds(meta.plain_size, self.config.size_scale)
                ),
                metrics,
            )
            values = self._decode_cached(obj.name, meta, data)
            bits = eval_leaf(op.leaf, op.type, values)
            indices = np.flatnonzero(bits)
            selectivity = len(indices) / len(bits) if len(bits) else 0.0
            decision = self.estimator.decide(selectivity, meta.size, meta.plain_size)
            rec = self.audit.record(
                obj.name, meta.key, "fused", self.config.pushdown_mode.value, decision
            )
            bitmap_wire = Bitmap(bits).wire_size()

            if decision.push_down:
                metrics.pushed_down_chunks += 1
                selected = values[indices]
                selected_bytes = engine.selected_plain_bytes(type_, selected)
                if rec is not None:
                    rec.actual_chosen_bytes = selected_bytes
                    rec.actual_alternative_bytes = loc.size
                reply = bitmap_wire + selected_bytes
                return self.config.scaled(reply), ("pushed", bits, selected)
            # Unfavourable cost product: reply with the bitmap plus the
            # whole compressed chunk; the coordinator decodes locally.
            metrics.fallback_chunks += 1
            if rec is not None:
                rec.actual_chosen_bytes = loc.size
                rec.actual_alternative_bytes = engine.selected_plain_bytes(
                    type_, values[indices]
                )
            reply = bitmap_wire + loc.size
            return self.config.scaled(reply), ("fallback", bits, values[indices])

        def finalize(reply):
            kind, bits, values = reply
            if kind == "fallback":
                yield from coordinator.compute(
                    coordinator.decode_seconds(meta.size, meta.plain_size, self.config.size_scale)
                    + coordinator.scan_seconds(meta.plain_size, self.config.size_scale),
                    metrics,
                )
            return bits, values

        return RemoteOp(
            node=node,
            request_bytes=self.config.scaled(OP_REQUEST_BYTES),
            execute=execute,
            finalize=finalize,
            fallback=degraded,
        )

    def _filter_op(self, obj, coordinator, rg: int, op, meta: ColumnChunkMeta, metrics) -> RemoteOp:
        """One pushed-down filter: runs in-situ, replies with a bitmap."""
        loc = obj.location_map.lookup(meta.key)
        node = self.cluster.node(loc.node_id)

        def degraded():
            values = yield from self._degraded_chunk_values(
                obj, meta, loc, coordinator, metrics
            )
            yield from coordinator.compute(
                coordinator.scan_seconds(meta.plain_size, self.config.size_scale), metrics
            )
            return eval_leaf(op.leaf, op.type, values)

        if not self._usable(node) and not (
            node.alive and self._floor_attempt(obj, loc.block_id)
        ):
            return RemoteOp(standalone=degraded)

        def execute():
            check_deadline(metrics, "filter chunk")
            data = yield from node.read_block_range(
                loc.block_id, loc.offset_in_block, loc.size, self.config.size_scale, metrics
            )
            self._verify_chunk(obj.name, loc, data)
            fraction = self._page_fraction(obj.name, meta, op, data)
            yield from node.compute(
                fraction
                * (
                    node.decode_seconds(meta.size, meta.plain_size, self.config.size_scale)
                    + node.scan_seconds(meta.plain_size, self.config.size_scale)
                ),
                metrics,
            )
            values = self._decode_cached(obj.name, meta, data)
            bits = eval_leaf(op.leaf, op.type, values)
            return self.config.scaled(Bitmap(bits).wire_size()), bits

        return RemoteOp(
            node=node,
            request_bytes=self.config.scaled(OP_REQUEST_BYTES),
            execute=execute,
            fallback=degraded,
        )

    def _projection_op(
        self,
        obj,
        coordinator,
        meta: ColumnChunkMeta,
        type_: ColumnType,
        bitmap: np.ndarray,
        indices: np.ndarray,
        metrics: QueryMetrics,
    ) -> RemoteOp:
        """One projection: pushed down or fetched, per the Cost Equation."""
        loc = obj.location_map.lookup(meta.key)
        node = self.cluster.node(loc.node_id)

        def degraded():
            metrics.fallback_chunks += 1
            values = yield from self._degraded_chunk_values(
                obj, meta, loc, coordinator, metrics
            )
            yield from coordinator.compute(
                coordinator.scan_seconds(meta.plain_size, self.config.size_scale), metrics
            )
            return values[indices]

        if not self._usable(node) and not (
            node.alive and self._floor_attempt(obj, loc.block_id)
        ):
            return RemoteOp(standalone=degraded)

        selectivity = len(indices) / len(bitmap) if len(bitmap) else 0.0
        decision = self.estimator.decide(selectivity, meta.size, meta.plain_size)
        rec = self.audit.record(
            obj.name, meta.key, "projection", self.config.pushdown_mode.value, decision
        )

        # Graceful degradation: when the holding node's service queue is
        # already at its admission bound, override a pushdown decision
        # and fetch the compressed chunk for coordinator-side evaluation
        # instead — the node serves a plain read (no decode/scan burn).
        pressured = decision.push_down and self._node_pressured(node)
        if pressured:
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.instant(
                    "pushdown.pressure_fallback", cat="overload", node=node.node_id
                )

        if decision.push_down and not pressured:
            metrics.pushed_down_chunks += 1
            # Ship the bitmap with the op; receive selected raw values.
            bitmap_wire = Bitmap(bitmap).wire_size()

            def execute_pushed():
                check_deadline(metrics, "projection chunk")
                data = yield from node.read_block_range(
                    loc.block_id, loc.offset_in_block, loc.size, self.config.size_scale, metrics
                )
                self._verify_chunk(obj.name, loc, data)
                yield from node.compute(
                    node.decode_seconds(meta.size, meta.plain_size, self.config.size_scale)
                    + node.scan_seconds(meta.plain_size, self.config.size_scale),
                    metrics,
                )
                values = self._decode_cached(obj.name, meta, data)[indices]
                reply = engine.selected_plain_bytes(type_, values)
                if rec is not None:
                    rec.actual_chosen_bytes = reply
                    rec.actual_alternative_bytes = loc.size
                return self.config.scaled(reply), values

            return RemoteOp(
                node=node,
                request_bytes=self.config.scaled(OP_REQUEST_BYTES + bitmap_wire),
                execute=execute_pushed,
                fallback=degraded,
            )

        # Fallback: fetch the compressed chunk, process at the coordinator.
        metrics.fallback_chunks += 1

        def execute_fetch():
            check_deadline(metrics, "projection chunk")
            data = yield from node.read_block_range(
                loc.block_id, loc.offset_in_block, loc.size, self.config.size_scale, metrics
            )
            self._verify_chunk(obj.name, loc, data)
            return self.config.scaled(loc.size), data

        def finalize(data):
            yield from coordinator.compute(
                coordinator.decode_seconds(meta.size, meta.plain_size, self.config.size_scale)
                + coordinator.scan_seconds(meta.plain_size, self.config.size_scale),
                metrics,
            )
            values = self._decode_cached(obj.name, meta, data)[indices]
            if rec is not None:
                # What the pushdown branch would have shipped, measured on
                # the decoded values rather than estimated from the footer.
                rec.actual_chosen_bytes = loc.size
                rec.actual_alternative_bytes = engine.selected_plain_bytes(type_, values)
            return values

        return RemoteOp(
            node=node,
            request_bytes=self.config.scaled(OP_REQUEST_BYTES),
            execute=execute_fetch,
            finalize=finalize,
            fallback=degraded,
        )

    def _aggregate_pushdown_stage(
        self,
        obj,
        coordinator,
        physical: PhysicalPlan,
        row_groups: list[int],
        rg_selected: dict[int, np.ndarray],
        metrics: QueryMetrics,
    ):
        """Extension: nodes compute per-chunk partial aggregates in-situ."""
        query = physical.query
        aggs = [item for item in query.select if isinstance(item, Aggregate)]
        matched = sum(int(rg_selected[rg].sum()) for rg in row_groups)

        ops = []
        task_keys = []
        for rg in row_groups:
            bitmap = rg_selected[rg]
            if not bitmap.any():
                continue
            for agg_idx, agg in enumerate(aggs):
                if agg.column is None:
                    continue  # COUNT(*) comes from bitmaps alone
                meta = obj.metadata.chunk(rg, agg.column)
                task_keys.append((rg, agg_idx))
                ops.append(
                    self._partial_aggregate_op(obj, coordinator, meta, agg, bitmap, metrics)
                )
        partials_out = yield from execute_remote_ops(
            self.cluster, coordinator, ops, metrics, self.config.enable_rpc_batching, config=self.config
        )
        partials_by_agg: dict[int, list[dict]] = {i: [] for i in range(len(aggs))}
        for (rg, agg_idx), partial in zip(task_keys, partials_out):
            partials_by_agg[agg_idx].append(partial)

        results = []
        for agg_idx, agg in enumerate(aggs):
            if agg.column is None:
                results.append(matched)
            else:
                partials = partials_by_agg[agg_idx] or [{"count": 0}]
                results.append(merge_partial_aggregates(agg, partials))
        labels = [f"{a.func.value}({a.column or '*'})" for a in aggs]
        return QueryResult(
            columns=labels,
            rows=None,
            aggregates=results,
            matched_rows=matched,
            total_rows=obj.metadata.num_rows,
        )

    def _partial_aggregate_op(
        self, obj, coordinator, meta, agg: Aggregate, bitmap, metrics
    ) -> RemoteOp:
        """One pushed-down partial aggregate over a chunk."""
        loc = obj.location_map.lookup(meta.key)
        node = self.cluster.node(loc.node_id)

        def degraded():
            values = yield from self._degraded_chunk_values(
                obj, meta, loc, coordinator, metrics
            )
            yield from coordinator.compute(
                coordinator.scan_seconds(meta.plain_size, self.config.size_scale), metrics
            )
            selected = values[np.flatnonzero(bitmap)]
            return partial_aggregate(agg, selected, int(bitmap.sum()))

        if not self._usable(node) and not (
            node.alive and self._floor_attempt(obj, loc.block_id)
        ):
            return RemoteOp(standalone=degraded)

        bitmap_wire = Bitmap(bitmap).wire_size()

        def execute():
            check_deadline(metrics, "aggregate chunk")
            data = yield from node.read_block_range(
                loc.block_id, loc.offset_in_block, loc.size, self.config.size_scale, metrics
            )
            self._verify_chunk(obj.name, loc, data)
            yield from node.compute(
                node.decode_seconds(meta.size, meta.plain_size, self.config.size_scale)
                + node.scan_seconds(meta.plain_size, self.config.size_scale),
                metrics,
            )
            values = self._decode_cached(obj.name, meta, data)[np.flatnonzero(bitmap)]
            partial = partial_aggregate(agg, values, int(bitmap.sum()))
            metrics.pushed_down_chunks += 1
            return self.config.scaled(SCALAR_RESULT_BYTES), partial

        return RemoteOp(
            node=node,
            request_bytes=self.config.scaled(OP_REQUEST_BYTES + bitmap_wire),
            execute=execute,
            fallback=degraded,
        )

    # -- Delete ----------------------------------------------------------------

    def delete(self, name: str) -> int:
        """Remove an object: drop its blocks and location map everywhere.
        Returns the number of blocks reclaimed.

        Runs the WAL protocol (intent -> drop metadata replicas -> drop
        data blocks -> commit) so a coordinator crash mid-delete leaves
        a recoverable log instead of silent orphans.  Once the intent is
        logged the delete is durable: recovery *redoes* it (every stage
        is idempotent).  Metadata-plane operation: no simulated data
        movement, exactly as in the seed."""
        if name in self.fallback_store.objects:
            return self.fallback_store.delete(name)
        obj = self._lookup(name)
        coordinator = self.cluster.coordinator_for(name)
        replica_nodes = tuple(obj.location_map.replica_nodes)
        blocks: list[tuple[int, str]] = []
        block_sizes: list[int] = []
        for placement in obj.stripes:
            block_ids = placement.data_block_ids + placement.parity_block_ids
            for i, bid in enumerate(block_ids):
                size = (
                    placement.data_sizes[i]
                    if i < self.config.code.k
                    else placement.max_size
                )
                if size > 0:
                    blocks.append((placement.node_ids[i], bid))
                    block_sizes.append(size)

        op_id = self.wal.new_op_id()
        self.wal.append(
            coordinator,
            WalRecord(
                op_id=op_id,
                seq=0,
                phase="intent",
                op="delete",
                store_kind="fac",
                object_name=name,
                blocks=tuple(blocks),
                block_sizes=tuple(block_sizes),
                replica_nodes=replica_nodes,
            ),
        )
        self.wal.crash_point(coordinator, "delete:after-intent")

        # The object leaves the namespace at intent time; everything
        # below (and recovery, after a crash) is idempotent cleanup.
        del self.objects[name]
        self._invalidate_object_caches(name)

        for nid in replica_nodes:
            self.cluster.node(nid).drop_meta(name)
        self.wal.crash_point(coordinator, "delete:after-meta-drop")

        reclaimed = 0
        for node_id, bid in blocks:
            node = self.cluster.node(node_id)
            if node.has_block(bid):
                node.drop_block(bid)
                reclaimed += 1
        self.wal.crash_point(coordinator, "delete:after-data-drop")

        self.wal.append(
            coordinator,
            WalRecord(
                op_id=op_id,
                seq=1,
                phase="commit",
                op="delete",
                store_kind="fac",
                object_name=name,
                replica_nodes=replica_nodes,
            ),
        )
        self.wal.crash_point(coordinator, "delete:after-commit")
        return reclaimed

    # -- Scrubbing -----------------------------------------------------------

    def verify_object(self, name: str):
        """Scrub one object: re-read stripes, check parity (runs the sim)."""
        proc = self.sim.process(self.verify_object_process(name))
        self.sim.run()
        return proc.value

    def verify_object_process(self, name: str):
        if name in self.fallback_store.objects:
            report = yield from self.fallback_store.verify_object_process(name)
            return report
        report = yield from traced(
            self.sim, self._verify_object_body(name), "scrub", "store",
            obj=name, store="fusion",
        )
        return report

    def _verify_object_body(self, name: str):
        from repro.core.scrub import ScrubReport, check_stripe

        obj = self._lookup(name)
        coordinator = self.cluster.coordinator_for(name)
        report = ScrubReport(object_name=name)
        k = self.config.code.k
        for placement in obj.stripes:
            data_blocks: list = []
            parity_blocks: list = []
            for i, bid in enumerate(placement.data_block_ids + placement.parity_block_ids):
                node = self.cluster.node(placement.node_ids[i])
                if i < k and placement.data_sizes[i] == 0:
                    data_blocks.append(np.zeros(0, dtype=np.uint8))
                    continue
                if not node.alive or not node.has_block(bid):
                    (data_blocks if i < k else parity_blocks).append(None)
                    continue
                payload = yield from node.read_block(bid, self.config.size_scale)
                yield from self.cluster.network.transfer(
                    node.endpoint, coordinator.endpoint, self.config.scaled(payload.size)
                )
                if (
                    self.config.checksum_verify
                    and placement.checksums
                    and chunk_checksum(payload) != placement.checksums[i]
                ):
                    report.checksum_mismatch_blocks.append(bid)
                (data_blocks if i < k else parity_blocks).append(payload)
            yield from coordinator.compute(
                sum(b.size for b in data_blocks if b is not None)
                * self.config.size_scale
                / coordinator.cpu_config.decode_bps
            )
            verdict = check_stripe(
                self.config.code, data_blocks, parity_blocks, placement.data_sizes
            )
            report.stripes_checked += 1
            if verdict == "corrupt":
                report.corrupt_stripes.append(placement.stripe_id)
            elif verdict == "incomplete":
                report.incomplete_stripes.append(placement.stripe_id)
        return report

    # -- Fault tolerance ---------------------------------------------------------

    def recover_node(self, node_id: int) -> int:
        """Rebuild every Fusion block the node held (runs the simulation)."""
        proc = self.sim.process(self.recover_node_process(node_id))
        self.sim.run()
        return proc.value

    def recover_node_process(self, node_id: int, metrics: QueryMetrics | None = None):
        rebuilt = 0
        for obj in self.objects.values():
            touched = False
            for placement in obj.stripes:
                lost = [i for i, nid in enumerate(placement.node_ids) if nid == node_id]
                if not lost:
                    continue
                rebuilt += len(lost)
                touched = True
                yield from self._rebuild_stripe(obj, placement, lost, metrics)
            if touched:
                self._republish_meta(obj)
        fallback = yield from self.fallback_store.recover_node_process(node_id, metrics)
        return rebuilt + fallback

    def _pick_rescue_node(
        self, holder_ids: set[int], lost_node_id: int, reachable_from: int | None = None
    ):
        """An *alive* node to host rebuilt blocks, preferring non-holders.

        With every node alive this matches the seed's choice (smallest
        non-holder id, else the lost node's successor); a dead candidate
        is never picked — repaired data must land on reachable nodes.
        ``reachable_from`` additionally excludes nodes partitioned away
        from the repairing coordinator (writes across a severed link
        would silently vanish).
        """

        def eligible(nid: int) -> bool:
            if not self.cluster.node(nid).alive:
                return False
            return reachable_from is None or self.cluster.reachable(reachable_from, nid)

        for nid in range(self.cluster.num_nodes):
            if nid not in holder_ids and eligible(nid):
                return self.cluster.node(nid)
        for step in range(1, self.cluster.num_nodes + 1):
            nid = (lost_node_id + step) % self.cluster.num_nodes
            if eligible(nid):
                return self.cluster.node(nid)
        raise RuntimeError("no alive node available to host rebuilt blocks")

    def _rebuild_stripe(
        self,
        obj: StoredFusionObject,
        placement: StripePlacement,
        lost,
        metrics: QueryMetrics | None = None,
    ):
        yield from traced(
            self.sim,
            self._rebuild_stripe_body(obj, placement, lost, metrics),
            "repair_stripe", "store", obj=obj.name, stripe=placement.stripe_id,
        )

    def _rebuild_stripe_body(
        self,
        obj: StoredFusionObject,
        placement: StripePlacement,
        lost,
        metrics: QueryMetrics | None = None,
    ):
        k, n = self.config.code.k, self.config.code.n
        block_ids = placement.data_block_ids + placement.parity_block_ids
        rescue = self._pick_rescue_node(
            set(placement.node_ids), placement.node_ids[lost[0]]
        )

        shards: list[np.ndarray | None] = []
        for i in range(n):
            if i in lost:
                shards.append(None)
                continue
            node = self.cluster.node(placement.node_ids[i])
            if (
                not node.alive
                or not self.cluster.reachable(rescue.node_id, node.node_id)
                or not node.has_block(block_ids[i])
            ):
                # Empty data blocks are never written; represent as zero-size.
                if i < k and placement.data_sizes[i] == 0:
                    shards.append(np.zeros(0, dtype=np.uint8))
                else:
                    shards.append(None)
                continue
            data = yield from node.read_block(block_ids[i], self.config.size_scale, metrics)
            yield from self.cluster.network.transfer(
                node.endpoint, rescue.endpoint, self.config.scaled(data.size), metrics
            )
            shards.append(data)

        recovered = decode_stripe(self.config.code, shards, placement.data_sizes)
        reencoded = encode_stripe(self.config.code, recovered)
        all_blocks = reencoded.shards()
        for i in lost:
            payload = all_blocks[i]
            if i < k and payload.size == 0:
                placement.node_ids[i] = rescue.node_id
                continue
            if self._rewrite_mismatch(placement, i, payload):
                continue
            yield from rescue.disk.write(self.config.scaled(payload.size), metrics)
            rescue.put_block(block_ids[i], payload)
            self._relocate_block(obj, placement, i, rescue.node_id)
            self._invalidate_block(obj, block_ids[i])

    def _rewrite_mismatch(self, placement: StripePlacement, i: int, payload) -> bool:
        """Reconstructed block payload fails its Put-time CRC: refuse to
        write bytes we can prove are wrong (and count the event)."""
        if (
            not self.config.checksum_verify
            or not placement.checksums
            or chunk_checksum(payload) == placement.checksums[i]
        ):
            return False
        self.cluster.metrics.checksum_failures += 1
        return True

    def _relocate_block(
        self, obj: StoredFusionObject, placement: StripePlacement, i: int, node_id: int
    ) -> None:
        """Point the placement (and, for data bins, the location map) at
        the node now holding stripe position ``i``."""
        placement.node_ids[i] = node_id
        if i < self.config.code.k:
            block_id = placement.data_block_ids[i]
            for key, loc in list(obj.location_map.entries.items()):
                if loc.block_id == block_id:
                    obj.location_map.entries[key] = ChunkLocation(
                        chunk_key=loc.chunk_key,
                        node_id=node_id,
                        block_id=loc.block_id,
                        offset_in_block=loc.offset_in_block,
                        size=loc.size,
                        checksum=loc.checksum,
                    )

    def _invalidate_block(self, obj: StoredFusionObject, block_id: str) -> None:
        """A block was rewritten (repair) or changed reachability: drop
        every cached artefact derived from it."""
        self._degraded_bin_cache.pop(block_id)
        for key, loc in obj.location_map.entries.items():
            if loc.block_id == block_id:
                self._decode_cache.pop((obj.name, key))
                self._page_index_cache.pop((obj.name, key))

    def repair_stripe_process(
        self, name: str, stripe_id: int, metrics: QueryMetrics | None = None
    ):
        """Diagnose and repair one stripe: reads every reachable block,
        isolates missing/corrupt positions (``repro.core.repair``),
        reconstructs them, and rewrites — corrupt blocks in place on
        their live node, unreachable ones onto an alive rescue node,
        updating the placement and the chunk location map.  Returns the
        number of blocks rewritten (0 when the stripe is healthy)."""
        written = yield from traced(
            self.sim,
            self._repair_stripe_body(name, stripe_id, metrics),
            "repair_stripe", "store", obj=name, stripe=stripe_id,
        )
        return written

    def _repair_stripe_body(
        self, name: str, stripe_id: int, metrics: QueryMetrics | None = None
    ):
        from repro.core.repair import find_bad_shards

        obj = self._lookup(name)
        placement = obj.stripes[stripe_id]
        k, n = self.config.code.k, self.config.code.n
        block_ids = placement.data_block_ids + placement.parity_block_ids
        coordinator = self.cluster.coordinator_for(name)

        shards: list[np.ndarray | None] = []
        for i in range(n):
            if i < k and placement.data_sizes[i] == 0:
                shards.append(np.zeros(0, dtype=np.uint8))
                continue
            node = self.cluster.node(placement.node_ids[i])
            if (
                not node.alive
                or not self.cluster.reachable(coordinator.node_id, node.node_id)
                or not node.has_block(block_ids[i])
            ):
                shards.append(None)
                continue
            data = yield from node.read_block(block_ids[i], self.config.size_scale, metrics)
            yield from self.cluster.network.transfer(
                node.endpoint, coordinator.endpoint, self.config.scaled(data.size), metrics
            )
            shards.append(data)

        yield from coordinator.compute(
            sum(s.size for s in shards if s is not None)
            * self.config.size_scale
            / coordinator.cpu_config.decode_bps,
            metrics,
        )
        bad = find_bad_shards(self.config.code, shards, placement.data_sizes)
        if not bad:
            return 0
        good = [s if i not in bad else None for i, s in enumerate(shards)]
        recovered = decode_stripe(self.config.code, good, placement.data_sizes)
        reencoded = encode_stripe(self.config.code, recovered)
        all_blocks = reencoded.shards()
        written = 0
        for i in sorted(bad):
            payload = all_blocks[i]
            if i < k and placement.data_sizes[i] == 0:
                continue
            if self._rewrite_mismatch(placement, i, payload):
                continue
            holder = self.cluster.node(placement.node_ids[i])
            if not holder.alive or not self.cluster.reachable(
                coordinator.node_id, holder.node_id
            ):
                holder = self._pick_rescue_node(
                    set(placement.node_ids), placement.node_ids[i],
                    reachable_from=coordinator.node_id,
                )
            yield from self.cluster.network.transfer(
                coordinator.endpoint, holder.endpoint, self.config.scaled(payload.size), metrics
            )
            yield from holder.disk.write(self.config.scaled(payload.size), metrics)
            holder.put_block(block_ids[i], payload)
            self._relocate_block(obj, placement, i, holder.node_id)
            self._invalidate_block(obj, block_ids[i])
            written += 1
        if written:
            # Placements moved: the durable metadata replicas must follow.
            self._republish_meta(obj)
        return written

    # -- Migration (background rebalance) ---------------------------------------

    def migrate_stripe_process(
        self, name: str, stripe_id: int, targets, metrics: QueryMetrics | None = None
    ):
        """Move one stripe's blocks to the ring-chosen ``targets`` with
        copy-then-republish-then-GC (reads are never wrong mid-flight:
        queries route via the old placement until republish).  Returns
        the number of blocks moved (0 when already in place)."""
        moved = yield from traced(
            self.sim,
            self._migrate_stripe_body(name, stripe_id, targets, metrics),
            "migrate_stripe", "store", obj=name, stripe=stripe_id,
        )
        return moved

    def _migrate_stripe_body(
        self, name: str, stripe_id: int, targets, metrics: QueryMetrics | None = None
    ):
        from repro.core.rebalance import MigrationEntry

        obj = self._lookup(name)
        placement = obj.stripes[stripe_id]
        k, n = self.config.code.k, self.config.code.n
        block_ids = placement.data_block_ids + placement.parity_block_ids
        coordinator = self.cluster.coordinator_for(name)

        moves: list[tuple[int, str, int, int]] = []
        relocated = False
        for i in range(n):
            src, dst = placement.node_ids[i], targets[i]
            if src == dst:
                continue
            if i < k and placement.data_sizes[i] == 0:
                # Empty data bins were never written: pure metadata move.
                placement.node_ids[i] = dst
                relocated = True
                continue
            if not self.cluster.node(dst).alive:
                continue  # destination unreachable: defer to a later run
            moves.append((i, block_ids[i], src, dst))

        # Phase 1 — copy: land destination copies while the old placement
        # keeps serving.  Each move is registered as an intent *before*
        # its bytes flow, so a crash leaves fsck-classifiable state.
        copied: list[tuple[int, str, int, int, MigrationEntry]] = []
        for i, bid, src, dst in moves:
            entry = MigrationEntry(
                block_id=bid, object_name=name, store_kind="fac",
                stripe_id=stripe_id, position=i, src=src, dst=dst,
            )
            self.cluster.migrations[bid] = entry
            ok = yield from self._copy_block_for_migration(
                obj, placement, i, bid, src, dst, coordinator, metrics
            )
            if ok:
                copied.append((i, bid, src, dst, entry))
            else:
                del self.cluster.migrations[bid]
        if not copied:
            if relocated:
                self._republish_meta(obj)
            return 0
        self.wal.crash_point(coordinator, "migrate:after-copy")

        # Phase 2 — republish: flip placement, location map and the
        # durable replicas to the destinations in one epoch bump (no
        # yields between relocate and publish, so readers see either the
        # whole old placement or the whole new one).
        for i, bid, src, dst, entry in copied:
            self._relocate_block(obj, placement, i, dst)
            self._invalidate_block(obj, bid)
        self._republish_meta(obj)
        for _i, _bid, _src, _dst, entry in copied:
            entry.published = True
        self.wal.crash_point(coordinator, "migrate:after-republish")

        # Phase 3 — GC: only now drop the source copies.
        for _i, bid, src, _dst, _entry in copied:
            src_node = self.cluster.node(src)
            if src_node.alive and src_node.has_block(bid):
                src_node.drop_block(bid)
            self.cluster.migrations.pop(bid, None)
        return len(copied)

    def _copy_block_for_migration(
        self, obj, placement, i, bid, src, dst, coordinator, metrics
    ):
        """Process: land a copy of stripe position ``i`` on node ``dst``.

        Reads from the source when reachable, else reconstructs the
        block at the coordinator from the surviving shards (the same
        erasure path as a degraded read).  Returns False when no copy
        could be made (destination died mid-transfer, too few shards):
        the caller drops the intent and a later run retries.
        """
        src_node = self.cluster.node(src)
        dst_node = self.cluster.node(dst)
        if src_node.alive and src_node.has_block(bid):
            payload = yield from src_node.read_block(bid, self.config.size_scale, metrics)
            yield from self.cluster.network.transfer(
                src_node.endpoint, dst_node.endpoint, self.config.scaled(payload.size), metrics
            )
        else:
            payload = yield from self._reconstruct_shard(
                obj, placement, i, coordinator, metrics
            )
            if payload is None:
                return False
            yield from self.cluster.network.transfer(
                coordinator.endpoint, dst_node.endpoint, self.config.scaled(payload.size), metrics
            )
        if not dst_node.alive:
            return False  # died mid-transfer: the copy never landed
        yield from dst_node.disk.write(self.config.scaled(payload.size), metrics)
        dst_node.put_block(bid, payload)
        return True

    def _reconstruct_shard(self, obj, placement, i, coordinator, metrics):
        """Process: rebuild stripe position ``i`` at the coordinator from
        the surviving shards; None when fewer than k are reachable."""
        k, n = self.config.code.k, self.config.code.n
        block_ids = placement.data_block_ids + placement.parity_block_ids
        shards: list[np.ndarray | None] = []
        for j in range(n):
            if j == i:
                shards.append(None)
                continue
            if j < k and placement.data_sizes[j] == 0:
                shards.append(np.zeros(0, dtype=np.uint8))
                continue
            node = self.cluster.node(placement.node_ids[j])
            if not node.alive or not node.has_block(block_ids[j]):
                shards.append(None)
                continue
            data = yield from node.read_block(block_ids[j], self.config.size_scale, metrics)
            yield from self.cluster.network.transfer(
                node.endpoint, coordinator.endpoint, self.config.scaled(data.size), metrics
            )
            shards.append(data)
        yield from coordinator.compute(
            sum(s.size for s in shards if s is not None)
            * self.config.size_scale
            / coordinator.cpu_config.decode_bps,
            metrics,
        )
        try:
            recovered = decode_stripe(self.config.code, shards, placement.data_sizes)
        except DecodeError:
            return None
        return encode_stripe(self.config.code, recovered).shards()[i]

    def stripes_of(self, name: str) -> list[int]:
        """Stripe ids of one object (repair-manager iteration helper)."""
        return [p.stripe_id for p in self._lookup(name).stripes]

    def stripes_on_node(self, node_id: int) -> list[tuple[str, int]]:
        """Every (object, stripe) with a block placed on ``node_id``."""
        found = []
        for obj in self.objects.values():
            for placement in obj.stripes:
                if node_id in placement.node_ids:
                    found.append((obj.name, placement.stripe_id))
        return found

    # -- Consistency ------------------------------------------------------------

    def fsck(self):
        """Cluster-wide invariant check over this store and its fixed
        fallback: blocks on disk vs location maps vs metadata replicas,
        plus per-chunk checksums and pending WAL operations.  Metadata-
        plane: runs outside the simulation (see :mod:`repro.core.fsck`)."""
        from repro.core.fsck import fsck

        return fsck(self)

    def recover(self):
        """Replay the cluster-wide WAL after a coordinator crash: roll
        committed operations forward from surviving metadata replicas
        (quorum read, newest epoch wins), roll uncommitted Puts back
        with orphan-block GC, and redo Deletes."""
        from repro.core.fsck import recover

        return recover(self)

    # -- helpers ---------------------------------------------------------------

    def _lookup(self, name: str) -> StoredFusionObject:
        try:
            return self.objects[name]
        except KeyError:
            raise ObjectNotFound(f"no object named {name!r}") from None

    def object_plan(self, sql: str | Query) -> PhysicalPlan:
        """Plan a query against a stored object's schema (no execution)."""
        query = parse(sql) if isinstance(sql, str) else sql
        if query.table in self.fallback_store.objects:
            return self.fallback_store.object_plan(query)
        return make_plan(query, self._lookup(query.table).metadata.schema)

    def chunk_nodes(self, name: str) -> dict[tuple[int, int], int]:
        """Which node holds each chunk (for placement assertions in tests)."""
        obj = self._lookup(name)
        return {key: loc.node_id for key, loc in obj.location_map.entries.items()}


def _copy_placement(p: StripePlacement) -> StripePlacement:
    """Deep copy of a stripe placement (all fields are flat lists)."""
    return StripePlacement(
        stripe_id=p.stripe_id,
        node_ids=list(p.node_ids),
        data_block_ids=list(p.data_block_ids),
        parity_block_ids=list(p.parity_block_ids),
        data_sizes=list(p.data_sizes),
        checksums=list(p.checksums),
    )


def _empty_values(type_: ColumnType) -> np.ndarray:
    dtype = type_.numpy_dtype
    return np.empty(0, dtype=object) if dtype is None else np.zeros(0, dtype=dtype)


def node_id_rotate(node_id: int, num_nodes: int) -> int:
    """Next node id, wrapping around the cluster."""
    return (node_id + 1) % num_nodes
