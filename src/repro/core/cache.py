"""A small LRU mapping for the stores' real-bytes memoisation caches.

Both stores memoise decoded column-chunk values, page indexes and
degraded-read reconstructions keyed by object name.  The cached values
carry *real* bytes only — every simulated cost is still charged per
access — so the caches exist purely to save benchmark wall-clock.  They
must therefore stay small (bounded LRU) and must be invalidated whenever
an object's bytes can change (put of a reused name, delete).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Generic, Hashable, Iterator, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LruDict(Generic[K, V]):
    """Mapping bounded to ``max_entries`` with least-recently-used eviction."""

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValueError("cache must hold at least one entry")
        self.max_entries = max_entries
        self._entries: OrderedDict[K, V] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[K]:
        return iter(self._entries)

    def get(self, key: K, default: V | None = None) -> V | None:
        value = self._entries.get(key, default)
        if key in self._entries:
            self._entries.move_to_end(key)
        return value

    def __setitem__(self, key: K, value: V) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def pop(self, key: K, default: V | None = None) -> V | None:
        return self._entries.pop(key, default)

    def clear(self) -> None:
        self._entries.clear()

    def evict_where(self, predicate: Callable[[K], bool]) -> int:
        """Drop every entry whose key matches; returns how many went."""
        doomed = [k for k in self._entries if predicate(k)]
        for k in doomed:
            del self._entries[k]
        return len(doomed)
