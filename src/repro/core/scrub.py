"""Background scrubbing: verify stripe parity consistency.

Production erasure-coded stores periodically re-read stripes and check
that parity still matches data, catching silent corruption (bit rot,
torn writes) before enough redundancy is lost to make it unrecoverable.
Both stores expose ``verify_object``; the stripe-level check lives here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ec.reed_solomon import CodeParams, get_coder
from repro.ec.stripe import encode_stripe


@dataclass
class ScrubReport:
    """Outcome of scrubbing one object."""

    object_name: str
    stripes_checked: int = 0
    corrupt_stripes: list[int] = field(default_factory=list)
    incomplete_stripes: list[int] = field(default_factory=list)  # missing blocks

    @property
    def clean(self) -> bool:
        return not self.corrupt_stripes and not self.incomplete_stripes


def check_stripe(
    params: CodeParams,
    data_blocks: list[np.ndarray | None],
    parity_blocks: list[np.ndarray | None],
) -> str:
    """Verify one stripe: ``"ok"``, ``"corrupt"`` or ``"incomplete"``.

    ``data_blocks`` holds the k stored data payloads at their true sizes
    (``None`` for unreadable ones); ``parity_blocks`` the n-k parity
    payloads.  Parity is recomputed from the data and compared.
    """
    if any(b is None for b in data_blocks) or any(p is None for p in parity_blocks):
        return "incomplete"
    present = [np.ascontiguousarray(b, dtype=np.uint8) for b in data_blocks]
    if all(b.size == 0 for b in present):
        return "corrupt"  # a stripe with no data should not exist
    expected = encode_stripe(params, present)
    for stored, computed in zip(parity_blocks, expected.parity_blocks):
        if not np.array_equal(np.ascontiguousarray(stored, dtype=np.uint8), computed):
            return "corrupt"
    return "ok"
