"""Background scrubbing: verify stripe parity consistency.

Production erasure-coded stores periodically re-read stripes and check
that parity still matches data, catching silent corruption (bit rot,
torn writes) before enough redundancy is lost to make it unrecoverable.
Both stores expose ``verify_object``; the stripe-level check lives here.

Verdicts distinguish *unreadable* from *damaged*: blocks on dead nodes
(or missing entirely) make a stripe ``incomplete``, never ``corrupt``.
When the caller supplies the stripe's true data sizes, a degraded stripe
(missing blocks within the code's tolerance) is additionally checked for
corruption by reconstructing the missing shards and re-verifying parity
consistency — so bit rot is not masked by a concurrent node failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ec.reed_solomon import CodeParams
from repro.ec.stripe import DecodeError, decode_stripe, encode_stripe


@dataclass
class ScrubReport:
    """Outcome of scrubbing one object."""

    object_name: str
    stripes_checked: int = 0
    corrupt_stripes: list[int] = field(default_factory=list)
    incomplete_stripes: list[int] = field(default_factory=list)  # missing blocks
    #: Blocks whose bytes fail the CRC recorded at Put (end-to-end
    #: checksums localise damage to a block; parity cross-checks above
    #: only prove *some* shard is damaged).
    checksum_mismatch_blocks: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return (
            not self.corrupt_stripes
            and not self.incomplete_stripes
            and not self.checksum_mismatch_blocks
        )


def check_stripe(
    params: CodeParams,
    data_blocks: list[np.ndarray | None],
    parity_blocks: list[np.ndarray | None],
    data_sizes: list[int] | None = None,
) -> str:
    """Verify one stripe: ``"ok"``, ``"corrupt"`` or ``"incomplete"``.

    ``data_blocks`` holds the k stored data payloads at their true sizes
    (``None`` for unreadable ones); ``parity_blocks`` the n-k parity
    payloads.  Parity is recomputed from the data and compared.

    With ``data_sizes`` given, a stripe with unreadable blocks (within
    the code's erasure tolerance) is reconstructed and cross-checked, so
    it can come back ``"corrupt"`` when a *readable* block is damaged;
    without them, any unreadable block short-circuits to
    ``"incomplete"``.  Unreadable blocks alone are always
    ``"incomplete"``, never ``"corrupt"``.
    """
    missing = sum(1 for b in data_blocks if b is None) + sum(
        1 for p in parity_blocks if p is None
    )
    if missing:
        if data_sizes is None or missing > params.parity:
            return "incomplete"
        if _degraded_stripe_corrupt(params, data_blocks, parity_blocks, data_sizes):
            return "corrupt"
        return "incomplete"
    present = [np.ascontiguousarray(b, dtype=np.uint8) for b in data_blocks]
    if all(b.size == 0 for b in present):
        return "corrupt"  # a stripe with no data should not exist
    expected = encode_stripe(params, present)
    for stored, computed in zip(parity_blocks, expected.parity_blocks):
        if not np.array_equal(np.ascontiguousarray(stored, dtype=np.uint8), computed):
            return "corrupt"
    return "ok"


def _degraded_stripe_corrupt(
    params: CodeParams,
    data_blocks: list[np.ndarray | None],
    parity_blocks: list[np.ndarray | None],
    data_sizes: list[int],
) -> bool:
    """True when a degraded stripe's *readable* shards are inconsistent.

    Treats the unreadable shards as erasures, reconstructs the stripe
    from the readable ones, re-encodes, and compares every readable
    shard against its recomputed value.  Any mismatch means at least one
    readable shard is damaged (which shard is isolated at repair time,
    see ``repro.core.repair``).
    """
    shards: list[np.ndarray | None] = [
        None if b is None else np.ascontiguousarray(b, dtype=np.uint8)
        for b in list(data_blocks) + list(parity_blocks)
    ]
    try:
        recovered = decode_stripe(params, shards, data_sizes)
    except DecodeError:
        return False  # cannot reconstruct: stays merely incomplete
    reencoded = encode_stripe(params, recovered)
    expected = reencoded.shards()
    k = params.k
    for i, shard in enumerate(shards):
        if shard is None:
            continue
        want = expected[i][: data_sizes[i]] if i < k else expected[i]
        if not np.array_equal(shard, want):
            return True
    return False
