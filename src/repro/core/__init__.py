"""Fusion core: FAC coding, the pushdown cost model, and the object stores.

Public entry points:

* :class:`FusionStore` — the paper's system (Put/Get/Query).
* :class:`BaselineStore` — the fixed-block comparison system.
* :func:`construct_stripes` — FAC stripe construction (Algorithm 1).
* :func:`construct_oracle_layout` / :func:`construct_padding_layout` —
  the Oracle-ILP and Padding comparison layouts.
* :class:`PushdownCostEstimator` — the Cost Equation.
"""

from repro.core.baseline_store import BaselineStore, ObjectNotFound, PutReport
from repro.core.config import OP_REQUEST_BYTES, SCALAR_RESULT_BYTES, StoreConfig
from repro.core.cost_model import PushdownCostEstimator, PushdownDecision, PushdownMode
from repro.core.fac import construct_stripes, construct_stripes_first_fit
from repro.core.fsck import FsckReport, RecoveryReport, fsck, recover
from repro.core.fixed import (
    FixedLayout,
    build_fixed_layout,
    fraction_of_chunks_split,
)
from repro.core.layout import Bin, BinSet, ChunkItem, StripeLayout
from repro.core.location_map import (
    ChecksumError,
    ChunkLocation,
    LocationMap,
    chunk_checksum,
)
from repro.core.oracle import OracleError, brute_force_optimal, construct_oracle_layout
from repro.core.padding import construct_padding_layout
from repro.core.rebalance import (
    MigrationEntry,
    RebalanceReport,
    Rebalancer,
    resolve_pending_migrations,
)
from repro.core.repair import RepairError, RepairManager, RepairReport, find_bad_shards
from repro.cluster.overload import DeadlineExceeded, PartialResult
from repro.cluster.simcore import QueueFull
from repro.core.scatter_gather import SHED, RemoteOp, RemoteOpError
from repro.core.scrub import ScrubReport, check_stripe
from repro.core.store import FusionStore, StoredFusionObject, StripePlacement
from repro.core.wal import (
    CRASH_POINTS,
    DELETE_CRASH_POINTS,
    MIGRATE_CRASH_POINTS,
    PUT_CRASH_POINTS,
    CoordinatorCrash,
    MetaReplica,
    WalRecord,
    WalWriter,
)

__all__ = [
    "BaselineStore",
    "Bin",
    "BinSet",
    "CRASH_POINTS",
    "ChecksumError",
    "ChunkItem",
    "ChunkLocation",
    "CoordinatorCrash",
    "DELETE_CRASH_POINTS",
    "DeadlineExceeded",
    "FixedLayout",
    "FsckReport",
    "FusionStore",
    "LocationMap",
    "MIGRATE_CRASH_POINTS",
    "MetaReplica",
    "MigrationEntry",
    "OP_REQUEST_BYTES",
    "ObjectNotFound",
    "OracleError",
    "PUT_CRASH_POINTS",
    "PartialResult",
    "PushdownCostEstimator",
    "PushdownDecision",
    "PushdownMode",
    "PutReport",
    "QueueFull",
    "RebalanceReport",
    "Rebalancer",
    "RecoveryReport",
    "RemoteOp",
    "RemoteOpError",
    "RepairError",
    "RepairManager",
    "RepairReport",
    "SCALAR_RESULT_BYTES",
    "SHED",
    "ScrubReport",
    "StoreConfig",
    "StoredFusionObject",
    "StripeLayout",
    "StripePlacement",
    "WalRecord",
    "WalWriter",
    "brute_force_optimal",
    "check_stripe",
    "chunk_checksum",
    "find_bad_shards",
    "fsck",
    "recover",
    "resolve_pending_migrations",
    "build_fixed_layout",
    "construct_oracle_layout",
    "construct_padding_layout",
    "construct_stripes",
    "construct_stripes_first_fit",
    "fraction_of_chunks_split",
]
