"""FAC stripe construction (paper Algorithm 1).

The greedy, offline bin-packing heuristic at the heart of file-format-aware
coding.  One stripe is built per iteration:

1. Pop the largest unassigned chunk; it becomes the first bin and *seals*
   the stripe's capacity ``C`` (no other bin may exceed it — the first
   bin is, by construction, the stripe's largest data block).
2. Scan the remaining chunks in descending size order.  Each chunk that
   fits is placed into the *least occupied* bin (excluding the first)
   among those with room, balancing bin sizes toward ``C``.
3. Seal the bin set and repeat until no chunks remain.

Runtime is ``O(m * N * k)`` for ``N`` chunks and ``m`` stripes — tens of
microseconds for real files, versus hours for the ILP oracle.
"""

from __future__ import annotations

import time

from repro.core.layout import Bin, BinSet, ChunkItem, StripeLayout
from repro.ec.reed_solomon import CodeParams


def construct_stripes(params: CodeParams, items: list[ChunkItem]) -> StripeLayout:
    """Run Algorithm 1 over ``items`` and return the resulting layout.

    ``items`` may be in any order; they are sorted by descending size
    internally.  Zero-size chunks are accepted (they ride along in the
    first bin of the final stripe).
    """
    start = time.perf_counter()
    k = params.k
    remaining = sorted(items, key=lambda it: it.size, reverse=True)
    binsets: list[BinSet] = []

    while remaining:
        bins = [Bin() for _ in range(k)]
        largest = remaining.pop(0)
        bins[0].add(largest)
        capacity = largest.size

        occupancy = [0] * k  # running totals; index 0 excluded from packing
        unplaced: list[ChunkItem] = []
        for item in remaining:
            # Least-occupied bin (excluding bin 0) with room for the item.
            best_bid = -1
            best_occ = None
            for bid in range(1, k):
                occ = occupancy[bid]
                if occ + item.size <= capacity and (best_occ is None or occ < best_occ):
                    best_bid = bid
                    best_occ = occ
            if best_bid > 0:
                bins[best_bid].add(item)
                occupancy[best_bid] += item.size
            else:
                unplaced.append(item)
        remaining = unplaced
        binsets.append(BinSet(bins=bins))

    layout = StripeLayout(
        params=params,
        binsets=binsets,
        strategy="fac",
        build_seconds=time.perf_counter() - start,
    )
    return layout


def construct_stripes_first_fit(params: CodeParams, items: list[ChunkItem]) -> StripeLayout:
    """Ablation variant: place each chunk into the *first* bin with room
    instead of the least-occupied one.

    Used by the FAC-policy ablation bench to quantify how much the
    least-occupied choice contributes to balanced bins.
    """
    start = time.perf_counter()
    k = params.k
    remaining = sorted(items, key=lambda it: it.size, reverse=True)
    binsets: list[BinSet] = []

    while remaining:
        bins = [Bin() for _ in range(k)]
        largest = remaining.pop(0)
        bins[0].add(largest)
        capacity = largest.size

        occupancy = [0] * k
        unplaced: list[ChunkItem] = []
        for item in remaining:
            placed = False
            for bid in range(1, k):
                if occupancy[bid] + item.size <= capacity:
                    bins[bid].add(item)
                    occupancy[bid] += item.size
                    placed = True
                    break
            if not placed:
                unplaced.append(item)
        remaining = unplaced
        binsets.append(BinSet(bins=bins))

    return StripeLayout(
        params=params,
        binsets=binsets,
        strategy="fac-first-fit",
        build_seconds=time.perf_counter() - start,
    )
