"""Stripe layout datatypes shared by all placement strategies.

Terminology follows the paper's Table 2: a *bin* is one erasure-code data
block; a *bin set* is the ``k`` data blocks of one stripe; a layout maps
every column chunk of an object into exactly one bin.  The accounting
methods implement the paper's storage-overhead definition: parity blocks
in a stripe materialise at the size of the stripe's largest data block,
so a layout's overhead relative to the optimal ``(n-k)/k`` is driven by
how evenly its bins are packed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ec.reed_solomon import CodeParams


@dataclass(frozen=True)
class ChunkItem:
    """One column chunk as seen by layout algorithms: an id and a size.

    ``key`` is the chunk's stable identity within its file —
    ``(row_group, column_index)`` — and ``size`` its encoded byte size.
    Items with a negative row group are padding markers (used only by the
    padding strategy, which stores pad bytes as real data).
    """

    key: tuple[int, int]
    size: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"chunk {self.key} has negative size")

    @property
    def is_padding(self) -> bool:
        return self.key[0] < 0


@dataclass
class Bin:
    """One data block: an ordered list of whole column chunks."""

    items: list[ChunkItem] = field(default_factory=list)

    @property
    def occupied(self) -> int:
        return sum(item.size for item in self.items)

    def add(self, item: ChunkItem) -> None:
        self.items.append(item)

    def offsets(self) -> list[tuple[ChunkItem, int]]:
        """Each item with its byte offset inside the block."""
        out = []
        pos = 0
        for item in self.items:
            out.append((item, pos))
            pos += item.size
        return out


@dataclass
class BinSet:
    """One stripe's ``k`` bins."""

    bins: list[Bin]

    @property
    def k(self) -> int:
        return len(self.bins)

    @property
    def max_bin(self) -> int:
        """Size of the largest bin — the stripe's block size for parity."""
        return max(b.occupied for b in self.bins) if self.bins else 0

    @property
    def data_bytes(self) -> int:
        return sum(b.occupied for b in self.bins)

    def padding_bytes(self) -> int:
        """Implicit zero padding needed to equalise bins for encoding."""
        return self.k * self.max_bin - self.data_bytes

    def items(self) -> list[ChunkItem]:
        return [item for b in self.bins for item in b.items]


@dataclass
class StripeLayout:
    """A complete assignment of an object's chunks into stripes.

    ``strategy`` names the algorithm that produced it (``fac``,
    ``oracle``, ``padding`` or ``fixed``); ``stored_padding_bytes`` is
    non-zero only for the padding strategy, which materialises its pad
    bytes inside the object.
    """

    params: CodeParams
    binsets: list[BinSet]
    strategy: str
    build_seconds: float = 0.0  # real wall-clock runtime of the algorithm
    stored_padding_bytes: int = 0

    @property
    def num_stripes(self) -> int:
        return len(self.binsets)

    @property
    def data_bytes(self) -> int:
        """Original chunk bytes placed (excludes stored padding)."""
        return sum(bs.data_bytes for bs in self.binsets) - self.stored_padding_bytes

    @property
    def parity_bytes(self) -> int:
        """Physical parity bytes across all stripes."""
        return self.params.parity * sum(bs.max_bin for bs in self.binsets)

    @property
    def stored_bytes(self) -> int:
        """All bytes on disk: data + stored padding + parity."""
        return self.data_bytes + self.stored_padding_bytes + self.parity_bytes

    @property
    def optimal_stored_bytes(self) -> float:
        """What a perfectly packed layout would store: ``data * n / k``."""
        return self.data_bytes * (1.0 + self.params.optimal_overhead)

    @property
    def overhead_vs_optimal(self) -> float:
        """Additional storage relative to the optimal, as a fraction.

        This is the paper's "storage overhead w.r.t. optimal (%)" metric
        (divide by 100): 0.0 means perfectly packed stripes.
        """
        optimal = self.optimal_stored_bytes
        if optimal == 0:
            return 0.0
        return (self.stored_bytes - optimal) / optimal

    def chunk_assignment(self) -> dict[tuple[int, int], tuple[int, int, int]]:
        """Map each chunk key to ``(stripe, bin, offset_in_bin)``."""
        out: dict[tuple[int, int], tuple[int, int, int]] = {}
        for sid, bs in enumerate(self.binsets):
            for bid, b in enumerate(bs.bins):
                for item, offset in b.offsets():
                    if item.is_padding:
                        continue
                    if item.key in out:
                        raise ValueError(f"chunk {item.key} assigned twice")
                    out[item.key] = (sid, bid, offset)
        return out

    def validate(self, items: list[ChunkItem]) -> None:
        """Check the layout is a partition of ``items`` (raises on errors)."""
        assigned = self.chunk_assignment()
        expected = {item.key for item in items}
        placed = set(assigned)
        if placed != expected:
            missing = expected - placed
            extra = placed - expected
            raise ValueError(
                f"layout mismatch: missing chunks {sorted(missing)[:5]}, "
                f"unexpected {sorted(extra)[:5]}"
            )
