"""Cluster-wide consistency checking (fsck) and WAL-replay recovery.

Two offline, metadata-plane entry points shared by both stores:

:func:`fsck` walks the full invariant triangle — blocks on disk vs.
location/placement maps vs. materialized metadata replicas — and reports
every violation: blocks an object expects but an alive holder lost,
orphan blocks no object or in-flight operation explains, location-map
entries pointing at the wrong node or outside their block, stored bytes
failing their Put-time CRC, objects whose metadata replicas have fallen
below quorum, replicas for objects that no longer exist, and unresolved
write-ahead-log operations that recovery still needs to replay.

:func:`recover` is that replay.  It reconstructs the cluster-wide log
from surviving nodes (records are mirrored to each object's metadata
replica holders, so a dead coordinator does not take the log with it)
and resolves every operation the crash left open:

* a **committed Put** whose object never became visible rolls *forward*:
  the newest surviving metadata replica (quorum read, highest epoch
  wins) is reinstalled;
* an **uncommitted Put** rolls *back*: every block its intent named is
  garbage-collected and half-written replicas are dropped;
* a **Delete** with a logged intent is durable and is *redone* — every
  stage of the delete protocol is idempotent.

Both functions run outside the simulation: like the seed's Delete, they
are metadata-plane operations that move no simulated bytes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.location_map import chunk_checksum
from repro.core.wal import WalRecord, pending_operations


@dataclass
class FsckReport:
    """Every invariant violation one fsck pass found."""

    objects_checked: int = 0
    blocks_checked: int = 0
    #: Expected blocks an *alive* holder does not have.
    missing_blocks: list[tuple[str, str]] = field(default_factory=list)
    #: Expected blocks on dead nodes (repair's job, not an inconsistency).
    unreachable_blocks: list[tuple[str, str]] = field(default_factory=list)
    #: (node_id, block_id) stored blocks nothing references.
    orphan_blocks: list[tuple[int, str]] = field(default_factory=list)
    orphan_bytes: int = 0
    #: Location-map entries inconsistent with the placement they cite.
    dangling_locations: list[tuple[str, str]] = field(default_factory=list)
    #: (object, block) whose stored bytes fail the Put-time CRC.
    checksum_mismatches: list[tuple[str, str]] = field(default_factory=list)
    #: Objects with fewer fresh (current-epoch) replicas than quorum.
    under_replicated: list[str] = field(default_factory=list)
    #: (object, node_id) alive replicas at an old epoch (informational:
    #: a quorum of fresh replicas still exists or the object would also
    #: appear in ``under_replicated``).
    stale_replicas: list[tuple[str, int]] = field(default_factory=list)
    #: (node_id, object) replicas for objects nothing explains.
    dangling_meta: list[tuple[int, str]] = field(default_factory=list)
    #: WAL operations recovery still needs to resolve.
    pending_ops: list[int] = field(default_factory=list)
    #: Committed Puts whose object never became visible (crash between
    #: commit and install); recovery rolls these forward.
    unapplied_commits: list[str] = field(default_factory=list)
    #: (object, block_id) in-flight rebalance moves a crash left open.
    #: *Pending*, not orphaned: the registered intent explains the extra
    #: copy, and recovery (or the next rebalance run) resolves it.
    pending_migrations: list[tuple[str, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (
            self.missing_blocks
            or self.orphan_blocks
            or self.dangling_locations
            or self.checksum_mismatches
            or self.under_replicated
            or self.dangling_meta
            or self.pending_ops
            or self.unapplied_commits
            or self.pending_migrations
        )

    def summary(self) -> str:
        problems = {
            "missing": len(self.missing_blocks),
            "orphans": len(self.orphan_blocks),
            "dangling-loc": len(self.dangling_locations),
            "crc": len(self.checksum_mismatches),
            "under-replicated": len(self.under_replicated),
            "dangling-meta": len(self.dangling_meta),
            "pending-ops": len(self.pending_ops),
            "unapplied": len(self.unapplied_commits),
            "pending-migrations": len(self.pending_migrations),
        }
        if self.clean:
            return f"clean ({self.objects_checked} objects, {self.blocks_checked} blocks)"
        return ", ".join(f"{k}={v}" for k, v in problems.items() if v)


@dataclass
class RecoveryReport:
    """What one WAL replay did."""

    rolled_forward: list[str] = field(default_factory=list)  # reinstalled puts
    rolled_back: list[str] = field(default_factory=list)  # aborted puts
    redone_deletes: list[str] = field(default_factory=list)
    #: Committed objects with no surviving metadata replica to reinstall.
    lost_objects: list[str] = field(default_factory=list)
    superseded_ops: int = 0  # older unresolved intents a newer op replaced
    orphan_blocks_gcd: int = 0
    orphan_bytes_gcd: int = 0
    #: Crash-interrupted rebalance moves rolled to a safe state
    #: (uncommitted copies dropped, committed moves GC-finished).
    migrations_resolved: int = 0
    #: Stale or missing metadata replicas re-pushed at the current epoch
    #: (anti-entropy convergence after partitions heal).
    meta_replicas_synced: int = 0
    wall_seconds: float = 0.0

    @property
    def resolved_ops(self) -> int:
        return (
            len(self.rolled_forward)
            + len(self.rolled_back)
            + len(self.redone_deletes)
            + self.superseded_ops
        )


# -- shared helpers ---------------------------------------------------------


def _stores(store) -> list:
    """The store plus its fixed-block fallback, when it has one."""
    stores = [store]
    fallback = getattr(store, "fallback_store", None)
    if fallback is not None:
        stores.append(fallback)
    return stores


def _store_kind(obj) -> str:
    return "fac" if hasattr(obj, "stripes") else "fixed"


def _target_store(store, kind: str):
    """The store that owns records of ``kind`` (None if unmanaged here)."""
    fallback = getattr(store, "fallback_store", None)
    if kind == "fac":
        return store if fallback is not None else None
    return fallback if fallback is not None else store


def _expected_blocks(sub, obj):
    """Yield (node_id, block_id, size, checksum) for every block ``obj``
    should have on disk (zero-size data bins are never written)."""
    k = sub.config.code.k
    if hasattr(obj, "stripes"):  # FAC-coded fusion object
        for p in obj.stripes:
            sums = p.checksums or [0] * (len(p.data_block_ids) + len(p.parity_block_ids))
            for j, bid in enumerate(p.data_block_ids):
                if p.data_sizes[j] > 0:
                    yield p.node_ids[j], bid, p.data_sizes[j], sums[j]
            for pj, bid in enumerate(p.parity_block_ids):
                yield p.node_ids[k + pj], bid, p.max_size, sums[k + pj]
    else:  # fixed-block object
        for index, nid in sorted(obj.data_block_nodes.items()):
            bid = obj.data_block_id(index)
            yield nid, bid, obj.layout.blocks[index].size, obj.block_checksums.get(bid, 0)
        for (stripe, pj), nid in sorted(obj.parity_block_nodes.items()):
            bid = obj.parity_block_id(stripe, pj)
            size = max(b.size for b in obj.layout.stripe_blocks(stripe))
            yield nid, bid, size, obj.block_checksums.get(bid, 0)


def _replica_nodes(obj) -> tuple[int, ...]:
    if hasattr(obj, "stripes"):
        return tuple(obj.location_map.replica_nodes)
    return tuple(obj.replica_nodes)


# -- fsck -------------------------------------------------------------------


def fsck(store) -> FsckReport:
    """Check every invariant the store family maintains (see module doc)."""
    cluster = store.cluster
    if cluster.sim.tracer is not None:
        cluster.sim.tracer.instant("fsck.start", cat="meta")
    report = FsckReport()
    referenced: set[str] = set()
    all_names: set[str] = set()

    for sub in _stores(store):
        for name, obj in sorted(sub.objects.items()):
            report.objects_checked += 1
            all_names.add(name)

            # Blocks-on-disk leg: every expected block reachable + intact.
            for nid, bid, _size, want in _expected_blocks(sub, obj):
                referenced.add(bid)
                report.blocks_checked += 1
                node = cluster.node(nid)
                if not node.alive:
                    report.unreachable_blocks.append((name, bid))
                    continue
                if not node.has_block(bid):
                    report.missing_blocks.append((name, bid))
                    continue
                if want and sub.config.checksum_verify:
                    if chunk_checksum(node.peek_block(bid)) != want:
                        report.checksum_mismatches.append((name, bid))

            # Location-map leg (fusion only; the fixed store's placement
            # dicts *are* its map and were walked above).
            if hasattr(obj, "stripes"):
                data_place: dict[str, tuple[int, int]] = {}
                for p in obj.stripes:
                    for j, bid in enumerate(p.data_block_ids):
                        data_place[bid] = (p.node_ids[j], p.data_sizes[j])
                for key, loc in sorted(obj.location_map.entries.items()):
                    place = data_place.get(loc.block_id)
                    if place is None:
                        report.dangling_locations.append(
                            (name, f"chunk {key} cites unknown block {loc.block_id}")
                        )
                        continue
                    nid, size = place
                    if loc.node_id != nid:
                        report.dangling_locations.append(
                            (name, f"chunk {key} points at node {loc.node_id}; block lives on {nid}")
                        )
                    elif loc.offset_in_block + loc.size > size:
                        report.dangling_locations.append(
                            (name, f"chunk {key} range exceeds block {loc.block_id}")
                        )

            # Metadata-replica leg: a quorum of alive holders must carry
            # the current epoch.
            replicas = _replica_nodes(obj)
            kind = _store_kind(obj)
            fresh = 0
            for nid in replicas:
                node = cluster.node(nid)
                if not node.alive:
                    continue
                rep = node.get_meta(name)
                if rep is None or rep.store_kind != kind:
                    continue
                if rep.epoch == obj.meta_epoch:
                    fresh += 1
                else:
                    report.stale_replicas.append((name, nid))
            if replicas and fresh < len(replicas) // 2 + 1:
                report.under_replicated.append(name)

    # WAL leg: unresolved operations and committed-but-invisible puts.
    records = cluster.wal_records()
    pending = pending_operations(records)
    report.pending_ops = sorted(pending)
    intents = {r.op_id: r for r in records if r.phase == "intent"}
    committed = {r.op_id for r in records if r.phase == "commit"}
    last_by_object: dict[tuple[str, str], WalRecord] = {}
    for op_id in sorted(intents):
        rec = intents[op_id]
        last_by_object[(rec.store_kind, rec.object_name)] = rec
    for (_kind, name), rec in sorted(last_by_object.items()):
        if rec.op == "put" and rec.op_id in committed and name not in all_names:
            report.unapplied_commits.append(name)

    # Orphan scan: stored blocks neither a live object nor an open (or
    # not-yet-applied) operation explains.
    wal_blocks = {
        bid
        for rec in intents.values()
        if rec.op_id in pending or rec.object_name in report.unapplied_commits
        for _nid, bid in rec.blocks
    }
    explained_meta = all_names | {
        name
        for (_kind, name), rec in last_by_object.items()
        if rec.op_id in pending or name in report.unapplied_commits
    }
    for node in cluster.nodes:
        if not node.alive:
            continue
        for bid in node.block_ids():
            if bid not in referenced and bid not in wal_blocks:
                report.orphan_blocks.append((node.node_id, bid))
                report.orphan_bytes += node.block_size(bid)
        for name in node.meta_names():
            # Reserved ("__"-prefixed) names are cluster-level records —
            # the membership record, not object metadata.
            if name.startswith("__"):
                continue
            if name not in explained_meta:
                report.dangling_meta.append((node.node_id, name))

    # In-migration leg: rebalance moves whose intent is still registered.
    # The extra copy each one explains is *pending* — recovery (or the
    # next rebalance run) rolls it to a safe state — never an orphan.
    report.pending_migrations = sorted(
        (entry.object_name, bid) for bid, entry in cluster.migrations.items()
    )
    if cluster.sim.tracer is not None:
        cluster.sim.tracer.instant(
            "fsck.done", cat="meta",
            objects=report.objects_checked, blocks=report.blocks_checked,
            clean=report.clean,
        )
    return report


# -- recovery ---------------------------------------------------------------


def _quorum_read(cluster, kind: str, name: str, replica_nodes):
    """Newest surviving metadata replica for ``name`` (epoch wins)."""
    best = None
    for nid in replica_nodes:
        node = cluster.node(nid)
        if not node.alive:
            continue
        rep = node.get_meta(name)
        if rep is None or rep.store_kind != kind:
            continue
        if best is None or rep.epoch > best.epoch:
            best = rep
    return best


def _gc_blocks(cluster, intent: WalRecord) -> tuple[int, int]:
    """Drop every reachable block an intent named; (count, bytes)."""
    dropped = 0
    freed = 0
    sizes = intent.block_sizes or (0,) * len(intent.blocks)
    for (nid, bid), size in zip(intent.blocks, sizes):
        node = cluster.node(nid)
        if node.alive and node.has_block(bid):
            node.drop_block(bid)
            dropped += 1
            freed += size or 0
    return dropped, freed


def _log_outcome(store, cluster, intent: WalRecord, phase: str) -> None:
    """Append a recovery-outcome record so the next replay (and fsck)
    sees the operation as resolved.  ``seq=2`` marks recovery outcomes
    (0 = intent, 1 = the coordinator's own outcome)."""
    coordinator = cluster.coordinator_for(intent.object_name)
    store.wal.append(
        coordinator,
        WalRecord(
            op_id=intent.op_id,
            seq=2,
            phase=phase,
            op=intent.op,
            store_kind=intent.store_kind,
            object_name=intent.object_name,
            replica_nodes=intent.replica_nodes,
        ),
    )


def recover(store) -> RecoveryReport:
    """Replay the cluster-wide WAL and resolve every open operation."""
    started = time.perf_counter()
    cluster = store.cluster
    if cluster.sim.tracer is not None:
        cluster.sim.tracer.instant("recover.start", cat="meta")
    report = RecoveryReport()
    records = cluster.wal_records()
    intents = {r.op_id: r for r in records if r.phase == "intent"}
    resolved = {r.op_id for r in records if r.phase in ("commit", "abort")}
    committed = {r.op_id for r in records if r.phase == "commit"}

    # The last operation on each object decides its final state; older
    # unresolved intents were superseded (their blocks now belong to the
    # newer incarnation) and are only marked resolved.
    by_object: dict[tuple[str, str], list[WalRecord]] = {}
    for op_id in sorted(intents):
        rec = intents[op_id]
        by_object.setdefault((rec.store_kind, rec.object_name), []).append(rec)

    for (kind, name), ops in sorted(by_object.items()):
        target = _target_store(store, kind)
        if target is None:
            continue
        last = ops[-1]
        for rec in ops[:-1]:
            if rec.op_id not in resolved:
                _log_outcome(store, cluster, rec, "abort")
                report.superseded_ops += 1

        if last.op == "put":
            if last.op_id in committed:
                if name not in target.objects:
                    replica = _quorum_read(cluster, kind, name, last.replica_nodes)
                    if replica is not None:
                        target._install_from_replica(replica)
                        report.rolled_forward.append(name)
                    else:
                        report.lost_objects.append(name)
            elif last.op_id not in resolved:
                # Uncommitted Put: roll back.  GC every block the intent
                # named and drop half-written metadata replicas.
                dropped, freed = _gc_blocks(cluster, last)
                report.orphan_blocks_gcd += dropped
                report.orphan_bytes_gcd += freed
                for nid in last.replica_nodes:
                    node = cluster.node(nid)
                    if node.alive:
                        node.drop_meta(name)
                target.objects.pop(name, None)
                target._invalidate_object_caches(name)
                _log_outcome(store, cluster, last, "abort")
                report.rolled_back.append(name)
        else:  # delete: a logged intent is durable -> redo (idempotent)
            if last.op_id in resolved and last.op_id not in committed:
                pass  # explicitly aborted: nothing to redo
            else:
                incomplete = last.op_id not in committed
                if name in target.objects:
                    del target.objects[name]
                    target._invalidate_object_caches(name)
                for nid in last.replica_nodes:
                    node = cluster.node(nid)
                    if node.alive:
                        node.drop_meta(name)
                dropped, freed = _gc_blocks(cluster, last)
                if incomplete:
                    report.orphan_blocks_gcd += dropped
                    report.orphan_bytes_gcd += freed
                    _log_outcome(store, cluster, last, "commit")
                    report.redone_deletes.append(name)

    # Rebalance leg: roll crash-interrupted block migrations to a safe
    # state (copy-then-republish-then-GC leaves either a disposable
    # destination copy or an un-GC'd source copy; both are idempotent to
    # resolve here).
    from repro.core.rebalance import resolve_pending_migrations

    report.migrations_resolved = resolve_pending_migrations(store)

    # Anti-entropy: converge every alive holder onto each object's
    # current (majority) epoch.  Partition-healed minority holders may
    # still carry stale lower-epoch snapshots that a later quorum read
    # could only outvote, not erase; pushing the newest snapshot here
    # makes recover() idempotent against re-partitioning.
    for sub in _stores(store):
        for name in sorted(sub.objects):
            report.meta_replicas_synced += sub._sync_meta_replicas(sub.objects[name])

    report.wall_seconds = time.perf_counter() - started
    if cluster.sim.tracer is not None:
        cluster.sim.tracer.instant(
            "recover.done", cat="meta",
            resolved=report.resolved_ops,
            rolled_forward=len(report.rolled_forward),
        )
    return report
