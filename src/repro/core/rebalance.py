"""Background rebalance: migrate blocks to their ring-correct positions.

The repair twin for *deliberate* topology change.  When membership
shifts (a node joins or drains), existing stripe placements no longer
match what the consistent-hash ring would choose today; the
:class:`Rebalancer` walks every stripe of every object (in the wrapped
store and its fixed-block fallback), recomputes the ring targets, and
asks the owning store to migrate each mismatched position.

Migration is per-stripe **copy-then-republish-then-GC**, so reads are
never wrong mid-flight:

1. **copy** — the destination receives a full copy of each moving block
   (read from the source, or reconstructed via erasure decoding when
   the source is unreachable).  Queries still route via the old
   placement, whose blocks are untouched.
2. **republish** — placements, the chunk location map, and the durable
   metadata replicas flip to the destination in one epoch bump; the
   stores' decode/page-index/degraded caches are invalidated for the
   object at the same moment.
3. **GC** — only now are the source copies dropped.

Every in-flight move is registered in ``cluster.migrations`` (a
metadata-plane intent registry keyed by block id) before any byte
moves; fsck classifies registered blocks as *pending* rather than
orphaned, and :func:`resolve_pending_migrations` — run by recovery and
at the start of every rebalance — rolls a crashed step to a safe state:
a move that died before republish is rolled back (destination copy
dropped, redone later), one that died after republish only needs its
source GC finished.

Scheduling rides the :class:`~repro.core.repair.RepairManager` pattern:
background priority lane (shed first under admission pressure),
``QueueFull`` defers the stripe to a later run, pacing via
``StoreConfig.rebalance_throttle_bps``, and the run's traffic lands in
``ClusterMetrics.record_rebalance`` — never in query or repair totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.metrics import QueryMetrics
from repro.cluster.overload import BACKGROUND_PRIORITY
from repro.cluster.simcore import QueueFull
from repro.core.wal import QuorumLost


@dataclass
class MigrationEntry:
    """One registered in-flight block move (metadata-plane intent).

    ``published`` flips exactly when the owning object's metadata was
    republished to point at ``dst`` — the commit point of the move.
    Before it, ``src`` is authoritative and the ``dst`` copy is
    disposable; after it, ``dst`` is authoritative and only the ``src``
    GC is outstanding.
    """

    block_id: str
    object_name: str
    store_kind: str  # "fac" | "fixed"
    stripe_id: int
    position: int
    src: int
    dst: int
    published: bool = False


@dataclass
class RebalanceReport:
    """What one rebalance run did, and what it cost."""

    objects: list[str] = field(default_factory=list)
    stripes_examined: int = 0
    stripes_migrated: int = 0
    blocks_moved: int = 0
    #: Stripes skipped because admission control refused the migration's
    #: (background-priority) traffic — retried by a later run.
    stripes_deferred: int = 0
    #: Objects whose metadata replica set was moved off non-active nodes.
    meta_moved: int = 0
    #: Crash-interrupted moves resolved before migrating (rolled back or
    #: GC-finished by :func:`resolve_pending_migrations`).
    pending_resolved: int = 0
    rebalance_bytes: int = 0  # simulated network bytes moved by rebalance
    started: float = 0.0
    finished: float = 0.0

    @property
    def time_to_rebalance(self) -> float:
        return self.finished - self.started


def stripe_placement_key(name: str, stripe_id: int) -> str:
    """The ring key one stripe's placement is derived from.

    Matches the key the stores hand to ``Cluster.place_stripe`` at Put
    time, so fresh writes and rebalanced objects agree on where a
    stripe belongs.
    """
    return f"{name}/s{stripe_id}"


def meta_placement_key(name: str) -> str:
    """The ring key an object's metadata replica set is derived from."""
    return f"{name}/meta"


def resolve_pending_migrations(store) -> int:
    """Roll every crash-interrupted move to a safe state; returns how
    many entries were resolved.

    Metadata-plane (block drops are free, like Delete's GC): safe to run
    from recovery.  An entry whose cleanup target is dead is left
    pending — it resolves once the node restores, and fsck keeps
    reporting it as pending rather than losing track of the copy.
    """
    cluster = store.cluster
    stores = {"fac": store}
    fallback = getattr(store, "fallback_store", None)
    if fallback is not None:
        stores["fixed"] = fallback
    else:
        stores = {"fixed": store, "fac": store}
    resolved = 0
    for bid, entry in sorted(cluster.migrations.items()):
        owner = stores.get(entry.store_kind)
        if owner is None or entry.object_name not in owner.objects:
            # The object vanished (deleted / rolled back) mid-move: the
            # WAL path GC'd its blocks; just clear the intent.
            del cluster.migrations[bid]
            resolved += 1
            continue
        if entry.published:
            # Committed: destination is authoritative, finish the GC.
            src = cluster.node(entry.src)
            if not src.alive:
                continue  # resolve once the source restores
            if src.has_block(bid):
                src.drop_block(bid)
            del cluster.migrations[bid]
            resolved += 1
        else:
            # Uncommitted: source is authoritative, roll the copy back;
            # the next rebalance pass redoes the move from scratch.
            dst = cluster.node(entry.dst)
            if not dst.alive:
                continue  # roll back once the destination restores
            if dst.has_block(bid):
                dst.drop_block(bid)
            del cluster.migrations[bid]
            resolved += 1
    return resolved


class Rebalancer:
    """Migrates every managed object to its current ring placement.

    Wraps one store exactly like :class:`~repro.core.repair.RepairManager`
    does — for a ``FusionStore`` the fixed-block fallback's objects are
    covered too.  Requires an installed membership manager
    (``StoreConfig.membership_enabled``).
    """

    def __init__(self, store) -> None:
        self.store = store
        self.cluster = store.cluster
        self.sim = store.sim
        self.config = store.config
        if self.cluster.membership is None:
            raise RuntimeError(
                "Rebalancer needs cluster.membership (set membership_enabled)"
            )

    # -- public entry points ----------------------------------------------

    def rebalance(self) -> RebalanceReport:
        """One full rebalance pass (runs the simulation)."""
        proc = self.sim.process(self.rebalance_process())
        self.sim.run()
        return proc.value

    def rebalance_process(self):
        """Process: resolve crash leftovers, then migrate every stripe
        whose placement disagrees with the ring, then move metadata
        replica sets off non-active nodes."""
        membership = self.cluster.membership
        metrics = QueryMetrics(priority=BACKGROUND_PRIORITY)
        report = RebalanceReport(started=self.sim.now)
        tracer = self.sim.tracer
        run_span = (
            tracer.begin("rebalance_run", cat="rebalance", epoch=membership.epoch)
            if tracer is not None
            else None
        )
        report.pending_resolved = resolve_pending_migrations(self.store)
        n = self.config.code.n
        touched: set[str] = set()
        for store in self._stores():
            for name in sorted(store.objects):
                obj = store.objects.get(name)
                if obj is None:
                    continue  # deleted while this run was in flight
                for sid in store.stripes_of(name):
                    targets = membership.placement_for(
                        stripe_placement_key(name, sid), n
                    )
                    report.stripes_examined += 1
                    try:
                        moved = yield from store.migrate_stripe_process(
                            name, sid, targets, metrics
                        )
                    except QueueFull:
                        # Too busy to admit background migration traffic:
                        # leave the stripe for a later run.
                        report.stripes_deferred += 1
                        metrics.requests_shed += 1
                        yield from self._throttle(metrics, report.started)
                        continue
                    except QuorumLost:
                        # Partition strands this coordinator with a
                        # minority of the object's meta-replica holders:
                        # migrating now would republish a minority-epoch
                        # snapshot.  Defer to a post-heal run.
                        report.stripes_deferred += 1
                        yield from self._throttle(metrics, report.started)
                        continue
                    if moved:
                        report.stripes_migrated += 1
                        report.blocks_moved += moved
                        touched.add(name)
                    yield from self._throttle(metrics, report.started)
                if self._migrate_meta(store, obj):
                    report.meta_moved += 1
                    touched.add(name)
        report.objects = sorted(touched)
        report.rebalance_bytes = metrics.network_bytes
        report.finished = self.sim.now
        if run_span is not None:
            tracer.finish(
                run_span,
                stripes_migrated=report.stripes_migrated,
                blocks_moved=report.blocks_moved,
                deferred=report.stripes_deferred,
            )
        self.cluster.metrics.record_rebalance(
            metrics.network_bytes, report.blocks_moved, report.time_to_rebalance
        )
        return report

    # -- convergence ------------------------------------------------------

    def misplaced(self) -> list[tuple[str, int, int]]:
        """Every (object, stripe, position) not at its ring target."""
        membership = self.cluster.membership
        n = self.config.code.n
        wrong: list[tuple[str, int, int]] = []
        for store in self._stores():
            for name in sorted(store.objects):
                for sid in store.stripes_of(name):
                    targets = membership.placement_for(
                        stripe_placement_key(name, sid), n
                    )
                    current = self._current_nodes(store, name, sid)
                    for i, nid in enumerate(current):
                        if nid is not None and nid != targets[i]:
                            wrong.append((name, sid, i))
        return wrong

    def converged(self) -> bool:
        """No misplaced blocks, no open migrations, all metadata replica
        sets on active members."""
        if self.cluster.migrations or self.misplaced():
            return False
        active = set(self.cluster.membership.active_members())
        for store in self._stores():
            for obj in store.objects.values():
                if not set(self._replica_nodes(obj)) <= active:
                    return False
        return True

    # -- internals --------------------------------------------------------

    def _stores(self):
        stores = [self.store]
        fallback = getattr(self.store, "fallback_store", None)
        if fallback is not None:
            stores.append(fallback)
        return stores

    @staticmethod
    def _replica_nodes(obj) -> tuple[int, ...]:
        if hasattr(obj, "stripes"):
            return tuple(obj.location_map.replica_nodes)
        return tuple(obj.replica_nodes)

    @staticmethod
    def _current_nodes(store, name: str, stripe_id: int):
        """Stripe-position-aligned current holder ids (None = position
        does not exist, e.g. a partial fixed stripe's padding)."""
        obj = store.objects[name]
        if hasattr(obj, "stripes"):
            return list(obj.stripes[stripe_id].node_ids)
        return [
            None if h is None else h[1]
            for h in store._stripe_holders(obj, stripe_id)
        ]

    def _migrate_meta(self, store, obj) -> bool:
        """Move the object's metadata replica set off non-active nodes.

        Metadata-plane, like repair's republish: replica maps are tiny
        next to block migration, and the simulation already treats
        repair-time republish as free.  Returns True when it moved.
        """
        membership = self.cluster.membership
        current = self._replica_nodes(obj)
        active = set(membership.active_members())
        if set(current) <= active:
            return False
        count = len(current)
        new = tuple(membership.placement_for(meta_placement_key(obj.name), count))
        if hasattr(obj, "stripes"):
            obj.location_map.replica_nodes = new
        else:
            obj.replica_nodes = new
        # Republish bumps the epoch, writes the fresh snapshot to the new
        # holders, and invalidates the store's per-object caches.
        store._republish_meta(obj)
        for nid in set(current) - set(new):
            node = self.cluster.node(nid)
            if node.alive:
                node.drop_meta(obj.name)
        return True

    def _throttle(self, metrics: QueryMetrics, started: float):
        """Pace migration to ``rebalance_throttle_bps`` of traffic."""
        bps = self.config.rebalance_throttle_bps
        if bps <= 0:
            return
        target_elapsed = metrics.network_bytes / bps
        lag = target_elapsed - (self.sim.now - started)
        if lag > 0:
            yield self.sim.timeout(lag)
