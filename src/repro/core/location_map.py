"""Per-object chunk location map (paper Section 5, Metadata Management).

Fusion tracks, for every column chunk, which storage node holds it and
where inside which block.  Each entry costs 8 bytes in the paper (4-byte
chunk offset + 4-byte node id); the map is replicated to ``k + 1`` nodes
so it survives the same number of failures as an RS(n, k) stripe.

Each entry also carries an end-to-end checksum over the chunk's raw
bytes, computed once at Put and verified at every reader (query ops,
whole-chunk Gets, degraded-read reconstructions, repair rewrites) so
silent corruption is detected before bad bytes reach a client.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

#: Paper's on-wire size of one location entry, in bytes (the checksum
#: adds 4 more on the wire).
ENTRY_BYTES = 8

#: Extra wire bytes per entry for the chunk checksum.
CHECKSUM_BYTES = 4


def chunk_checksum(data) -> int:
    """End-to-end checksum of one chunk/block payload.

    CRC32 (zlib) standing in for CRC32C — same width and detection
    class; the hardware-accelerated polynomial is an implementation
    detail the simulation does not model.  ``data`` may be any
    C-contiguous buffer (bytes, memoryview, uint8 array view); the CRC
    runs directly over the view without copying.
    """
    return zlib.crc32(data) & 0xFFFFFFFF


class ChecksumError(RuntimeError):
    """Read bytes do not match the checksum recorded at Put."""


@dataclass(frozen=True)
class ChunkLocation:
    """Where one column chunk physically lives."""

    chunk_key: tuple[int, int]  # (row_group, column_index)
    node_id: int
    block_id: str
    offset_in_block: int
    size: int
    #: CRC of the chunk's raw bytes at Put time (0 = not recorded).
    checksum: int = 0


@dataclass
class LocationMap:
    """All chunk locations for one object, plus replication bookkeeping."""

    object_name: str
    entries: dict[tuple[int, int], ChunkLocation] = field(default_factory=dict)
    replica_nodes: tuple[int, ...] = ()

    def add(self, location: ChunkLocation) -> None:
        if location.chunk_key in self.entries:
            raise ValueError(f"duplicate location for chunk {location.chunk_key}")
        self.entries[location.chunk_key] = location

    def lookup(self, chunk_key: tuple[int, int]) -> ChunkLocation:
        try:
            return self.entries[chunk_key]
        except KeyError:
            raise KeyError(
                f"object {self.object_name!r} has no chunk {chunk_key}"
            ) from None

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def wire_size(self) -> int:
        """Bytes to replicate this map (paper: 8 bytes per entry).

        Chunk checksums ride the same replica writes but are kept out of
        this figure so it stays the paper's accounting (8 bytes/entry).
        """
        return ENTRY_BYTES * len(self.entries)

    def nodes_used(self) -> set[int]:
        return {loc.node_id for loc in self.entries.values()}

    def snapshot(self) -> dict[tuple[int, int], ChunkLocation]:
        """Copy of the entries for a metadata replica (entries are frozen,
        so a shallow dict copy is a true snapshot)."""
        return dict(self.entries)
