"""Scatter-gather execution of per-chunk remote ops, optionally batched.

Both stores execute query stages as fan-outs of small per-chunk ops
(push a filter, push a projection, fetch a fragment).  Unbatched, every
op is its own round trip: request message, node-side work, reply
message — hundreds of serialized RPC setups for a many-row-group object.
This module centralises the fan-out so the stores can coalesce it: with
batching enabled, all ops bound for the same storage node share *one*
batched request message per stage (``Network.batch_transfer``), and
their replies stream back per-op over the open exchange
(``Network.stream_transfer``) as each op finishes — amortising the
fixed per-RPC overhead and the RTT across the node's whole op group
while payload bytes still serialise through the pipes and node-side
work keeps pipelining with the reply transfers.

An op is described declaratively by :class:`RemoteOp`:

* ``node`` / ``request_bytes`` / ``execute`` / ``finalize`` for the
  common healthy-node shape — ``execute`` runs on the node (disk reads,
  compute) and returns ``(reply_bytes, value)``; ``finalize`` optionally
  continues at the coordinator after the reply arrives;
* ``standalone`` for ops that cannot ride a batch (degraded reads that
  reconstruct at the coordinator); they run as independent processes in
  both modes;
* ``fallback`` optionally names a degraded-path generator used when the
  primary attempt fails for good (see below).

Results come back in op order, so callers can ``zip`` them with their
keys exactly as they did with per-op process barriers.

Failure handling
----------------

When a :class:`~repro.core.config.StoreConfig` is passed, the executor
survives nodes that die, drop RPCs, or lose blocks *mid-stage*:

1. every attempt is bounded by ``op_timeout_s`` — a dropped request or
   reply, or a node that dies before replying, costs the coordinator
   the remaining timeout instead of hanging forever;
2. failed ops are retried (``rpc_max_retries`` times, exponential
   backoff from ``rpc_retry_backoff_s``), re-batched per node;
3. ops that exhaust their retries — or whose node the shared
   :class:`~repro.cluster.health.NodeHealthTracker` no longer considers
   usable — run their ``fallback`` (degraded-read reconstruction)
   instead; an op with no fallback raises :class:`RemoteOpError`.

Every op outcome feeds the health tracker, so a node that keeps failing
crosses the suspicion threshold and later stages stop sending ops to it
at construction time (the stores consult the tracker).  Node-side
exceptions from ``execute`` (e.g. a wiped block) are treated as an
immediate error reply — a fast failure, no timeout wait.  Without a
config the executor behaves exactly as the seed did: no timeouts, no
retries, exceptions propagate.

Overload protection
-------------------

When the metrics object carries a :class:`~repro.cluster.overload.Deadline`
(set by the store from ``StoreConfig.default_deadline_s``), every hop
checks it: before each round, before each retry/backoff, and inside each
op attempt.  The first attempt to observe expiry signals the stage's
:class:`~repro.cluster.overload.CancelScope`; the executor then cancels
every other in-flight child (nothing is orphaned) and raises the typed
:class:`~repro.cluster.overload.DeadlineExceeded`.  Retry backoff and
hedge launches are budgeted against the remaining deadline.  Admission
rejections (:class:`~repro.cluster.simcore.QueueFull` from a bounded
node queue) are counted, fed to the node's circuit breaker, and either
retried/fallen back like failures or — in ``allow_shed`` mode for scan
stages — resolved immediately to the :data:`SHED` sentinel so the store
can return a typed partial result instead of failing.  Retry backoff
optionally carries seeded full-jitter (``rpc_retry_jitter``).  All of
this is pure bookkeeping until it acts: runs where nothing trips are
event-identical to runs without any of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator

from repro.cluster import metrics as m
from repro.cluster.overload import CancelScope, DeadlineExceeded
from repro.cluster.simcore import QueueFull, all_of, any_of

from repro.core.location_map import ChecksumError

#: Internal sentinel: an attempt failed and the op is eligible for retry.
_FAILED = object()

#: Internal sentinel: the node's stored bytes failed checksum
#: verification.  Deterministically corrupt — retrying would re-read the
#: same bad bytes, so the op goes straight to its degraded fallback, and
#: the failure is not held against the node's health (one rotten block
#: does not make a node suspect).
_CORRUPT = object()

#: Internal sentinel: an admission-bounded queue refused the attempt.
#: Counts against the node's circuit breaker but not its suspicion score
#: (a saturated node is overloaded, not dead).
_REJECTED = object()

#: Internal sentinel: the attempt observed an expired deadline.  Never
#: retried; the whole stage aborts with DeadlineExceeded.
_DEADLINE = object()

#: Public sentinel returned (in ``allow_shed`` mode) in place of a shed
#: op's value; the store drops the chunk and answers partially.
SHED = object()


class RemoteOpError(RuntimeError):
    """A remote op failed permanently and had no fallback path."""


@dataclass
class RemoteOp:
    """One unit of remote work in a scatter-gather stage.

    Exactly one of ``execute`` (with ``node``) or ``standalone`` must be
    set.  ``request_bytes`` and the first element of ``execute``'s
    return value are *simulated* (already scaled) byte counts; byte
    accounting sums them per batch, so batched and unbatched runs move
    identical traffic.  ``fallback`` (batchable ops only) is the
    degraded path run if every attempt fails.
    """

    node: object | None = None  # StorageNode holding the chunk
    request_bytes: int | None = None  # None: the stage sends no request message
    execute: Callable[[], Generator] | None = None  # -> (reply_bytes, value)
    finalize: Callable[[object], Generator] | None = None  # value -> final value
    standalone: Callable[[], Generator] | None = None  # full op, unbatchable
    fallback: Callable[[], Generator] | None = None  # degraded path on failure

    def __post_init__(self) -> None:
        if (self.execute is None) == (self.standalone is None):
            raise ValueError("RemoteOp needs exactly one of execute/standalone")
        if self.execute is not None and self.node is None:
            raise ValueError("batchable RemoteOp needs a destination node")
        if self.standalone is not None and self.fallback is not None:
            raise ValueError("standalone ops are their own fallback")


def _record_failure(cluster, node_id, metrics) -> None:
    """Feed one op failure to the health tracker and circuit breaker."""
    cluster.health.record_failure(node_id)
    board = cluster.breakers
    if board is not None and board.record_failure(node_id) and metrics is not None:
        metrics.breaker_open_total += 1


def _record_success(cluster, node_id, elapsed=None) -> None:
    """Feed one op success (and its service latency, for gray-failure
    detection) to the health tracker and circuit breaker."""
    cluster.health.record_success(node_id, elapsed)
    if cluster.breakers is not None:
        cluster.breakers.record_success(node_id)


def _record_rejection(cluster, node_id, metrics, exc: QueueFull, ops=()) -> None:
    """Account an admission refusal and feed the circuit breaker.

    Rejections signal saturation, not death, so they count toward the
    breaker's failure window but not the health tracker's suspicion
    score.

    ``requests_shed``/``requests_rejected`` count once per *logical
    request*: the first refusal of each :class:`RemoteOp` in ``ops``
    increments them, and a retried op refused again bumps only
    ``refusal_attempts`` (every refusal, attempt by attempt, still feeds
    the breaker window — repeat refusals are exactly the saturation
    signal it exists to catch).  An empty ``ops`` means the refusal has
    no op identity to dedupe on (a coordinator-side refusal outside any
    scatter-gather stage) and counts as one fresh request.
    """
    if metrics is not None:
        fresh = 1
        if ops:
            metrics.refusal_attempts += len(ops)
            fresh = 0
            for op in ops:
                if not getattr(op, "_refusal_counted", False):
                    op._refusal_counted = True
                    fresh += 1
        else:
            metrics.refusal_attempts += 1
        if exc.shed:
            metrics.requests_shed += fresh
        else:
            metrics.requests_rejected += fresh
    board = cluster.breakers
    if board is not None and node_id is not None:
        if board.record_failure(node_id) and metrics is not None:
            metrics.breaker_open_total += 1


def _spawn(sim, scope, gen):
    """Spawn a child process, registered with the cancel scope if any."""
    return scope.spawn(gen) if scope is not None else sim.process(gen)


def _deadline_of(metrics):
    return metrics.deadline if metrics is not None else None


def _abort_deadline(cluster, metrics, scope, where: str):
    """Cancel every in-flight child and raise the typed deadline error."""
    cancelled = scope.cancel() if scope is not None else 0
    if metrics is not None:
        metrics.cancellations += cancelled
    if cluster.sim.tracer is not None:
        cluster.sim.tracer.instant(
            "rpc.deadline", cat="overload", where=where, cancelled=cancelled
        )
    raise DeadlineExceeded(f"deadline exceeded at {where} ({cancelled} op(s) cancelled)")


def _shielded(cluster, gen, node_id, metrics, scope, op=None):
    """Run ``gen``, mapping typed overload failures to op sentinels.

    Neither exception type can be raised in a run without the overload
    knobs, so seed-mode exception propagation is unchanged.  ``op`` is
    the RemoteOp the work belongs to, threaded through so a refusal is
    deduped per logical request (see :func:`_record_rejection`).
    """
    try:
        value = yield from gen
    except DeadlineExceeded:
        if scope is not None:
            scope.note_deadline()
        return _DEADLINE
    except QueueFull as exc:
        _record_rejection(
            cluster, node_id, metrics, exc, (op,) if op is not None else ()
        )
        return _REJECTED
    return value


def _shielded_fallback(cluster, gen, metrics, scope, op=None):
    """Shield a degraded-fallback child.

    A fallback runs its own nested remote ops (reconstruction reads);
    under pressure those can exhaust permanently and raise
    :class:`RemoteOpError` *inside the spawned child*, which would escape
    ``sim.run`` instead of resolving the op.  Map it to ``_FAILED`` so
    the barrier decides: shed the op when partial results are allowed,
    or re-raise from the caller's own frame."""
    try:
        value = yield from _shielded(cluster, gen, None, metrics, scope, op)
    except RemoteOpError:
        return _FAILED
    return value


def _await_barrier(sim, barrier, scope, cluster, metrics, where):
    """Wait for a stage barrier; with a cancel scope, race it against the
    deadline signal so in-flight siblings are cancelled promptly instead
    of running the round to completion after the budget is blown."""
    if scope is None:
        yield barrier
        return
    yield any_of(sim, [barrier, scope.expired])
    if not barrier.fired:
        _abort_deadline(cluster, metrics, scope, where)


def execute_remote_ops(
    cluster, coordinator, ops, metrics, batched: bool, config=None,
    allow_shed: bool = False,
):
    """Process: run ``ops``; returns their final values in op order.

    Unbatched, each op is an independent process paying its own request
    and reply RPCs (the seed behaviour).  Batched, ops are grouped by
    destination node: one coalesced request per node opens the exchange,
    then each op executes, streams its reply, and finalises
    independently — no barrier, so node-side work still overlaps the
    reply transfers exactly as in the unbatched pipeline.

    With ``config`` set, failed ops are retried then routed to their
    ``fallback`` (see module docstring); on a fault-free run the event
    sequence is identical to the seed's.

    With ``allow_shed`` set (scan stages under
    ``StoreConfig.allow_partial_results``), ops refused by admission
    control resolve to :data:`SHED` instead of being retried or raising,
    so the store can drop their chunks and answer partially rather than
    amplify the overload.
    """
    sim = cluster.sim
    results: list[object] = [None] * len(ops)
    pending = list(range(len(ops)))
    max_retries = config.rpc_max_retries if config is not None else 0
    deadline = _deadline_of(metrics) if config is not None else None
    scope = CancelScope(sim) if deadline is not None else None
    if deadline is not None:
        deadline.check("stage entry")
    attempts = 0
    exhausted: list[int] = []
    shed: set[int] = set()
    while True:
        failed, corrupt, rejected, deadlined = yield from _run_round(
            cluster, coordinator, ops, pending, results, metrics, batched, config,
            scope, deadline,
        )
        exhausted.extend(corrupt)
        if deadlined or (deadline is not None and deadline.expired):
            _abort_deadline(cluster, metrics, scope, "round barrier")
        if rejected:
            if allow_shed:
                # Shedding beats amplifying: refused ops are dropped from
                # the answer rather than retried into a saturated node.
                shed.update(rejected)
            else:
                failed = sorted(failed + rejected)
        if not failed:
            break
        attempts += 1
        retry: list[int] = []
        for i in failed:
            node = ops[i].node
            if (
                attempts <= max_retries
                and node is not None
                and node.alive
                and cluster.routable(node.node_id)
            ):
                retry.append(i)
            else:
                # Out of attempts, or the health tracker / circuit breaker
                # says to stop hammering this node: go straight to
                # reconstruction.
                exhausted.append(i)
        if not retry:
            break
        if metrics is not None:
            metrics.retries += len(retry)
        if sim.tracer is not None:
            sim.tracer.instant(
                "rpc.retry", cat="rpc", ops=len(retry), attempt=attempts,
                nodes=sorted({ops[i].node.node_id for i in retry}),
            )
        backoff = config.rpc_retry_backoff_s * (2 ** (attempts - 1))
        jitter = config.rpc_retry_jitter
        if backoff > 0 and jitter > 0:
            # Seeded full-jitter: sleep uniformly in
            # [backoff * (1 - jitter), backoff] so synchronized retry
            # storms decorrelate.  jitter=0 draws nothing from the RNG.
            backoff -= backoff * jitter * cluster.jitter_rng.random()
        if deadline is not None and (deadline.expired or backoff >= deadline.remaining):
            # The remaining budget cannot cover the backoff, let alone
            # another attempt: give up now instead of sleeping past it.
            _abort_deadline(cluster, metrics, scope, "retry backoff")
        if backoff > 0:
            yield sim.timeout(backoff)
        pending = retry

    if exhausted:
        exhausted.sort()
        missing = [i for i in exhausted if ops[i].fallback is None]
        if missing and allow_shed:
            shed.update(missing)
            exhausted = [i for i in exhausted if ops[i].fallback is not None]
            missing = []
        if missing:
            nodes = sorted(
                {ops[i].node.node_id for i in missing if ops[i].node is not None}
            )
            raise RemoteOpError(
                f"{len(missing)} remote op(s) failed permanently on node(s) "
                f"{nodes} and had no degraded fallback"
            )
    if exhausted:
        if sim.tracer is not None:
            sim.tracer.instant("rpc.fallback", cat="rpc", ops=len(exhausted))
        procs = [
            _spawn(
                sim, scope,
                _boxed(
                    _shielded_fallback(cluster, ops[i].fallback(), metrics, scope, ops[i])
                ),
            )
            for i in exhausted
        ]
        barrier = all_of(sim, procs)
        yield from _await_barrier(sim, barrier, scope, cluster, metrics, "fallback barrier")
        for i, boxed in zip(exhausted, barrier.value):
            value = boxed[0]
            if value is _DEADLINE:
                _abort_deadline(cluster, metrics, scope, "fallback")
            if value is _REJECTED:
                if allow_shed:
                    shed.add(i)
                    continue
                raise RemoteOpError(
                    "degraded fallback refused by admission control and "
                    "partial results are not allowed"
                )
            if value is _FAILED:
                if allow_shed:
                    shed.add(i)
                    continue
                raise RemoteOpError(
                    "degraded fallback failed permanently"
                )
            results[i] = value
    for i in shed:
        results[i] = SHED
    return results


def _run_round(
    cluster, coordinator, ops, indices, results, metrics, batched, config,
    scope, deadline,
):
    """One attempt over ``indices``; fills ``results``, returns the
    (retryable, checksum-corrupt, admission-rejected, deadline-hit)
    failure index lists.

    Standalone ops only ever appear in the first round (they cannot
    fail-and-retry; genuine errors inside them propagate).
    """
    sim = cluster.sim
    failed: list[int] = []
    corrupt: list[int] = []
    rejected: list[int] = []
    deadlined: list[int] = []

    def classify(i, value):
        if value is _FAILED:
            failed.append(i)
        elif value is _CORRUPT:
            corrupt.append(i)
        elif value is _REJECTED:
            rejected.append(i)
        elif value is _DEADLINE:
            deadlined.append(i)
        else:
            results[i] = value

    waits: list[tuple[list[int], object]] = []
    if not batched:
        for i in indices:
            waits.append(
                ([i], _spawn(sim, scope, _single_op(
                    cluster, coordinator, ops[i], metrics, config, scope, deadline
                )))
            )
        barrier = all_of(sim, [proc for _indices, proc in waits])
        yield from _await_barrier(sim, barrier, scope, cluster, metrics, "round barrier")
        for ([i], _proc), value in zip(waits, barrier.value):
            classify(i, value)
        return failed, corrupt, rejected, deadlined

    groups: dict[int, list[int]] = {}
    for i in indices:
        op = ops[i]
        if op.standalone is not None:
            waits.append(
                ([i], _spawn(sim, scope, _boxed(
                    _shielded_fallback(cluster, op.standalone(), metrics, scope, op)
                )))
            )
        else:
            groups.setdefault(op.node.node_id, []).append(i)
    for group_indices in groups.values():
        group = [ops[i] for i in group_indices]
        waits.append(
            (group_indices, _spawn(sim, scope, _node_group(
                cluster, coordinator, group, metrics, config, scope, deadline
            )))
        )
    barrier = all_of(sim, [proc for _indices, proc in waits])
    yield from _await_barrier(sim, barrier, scope, cluster, metrics, "round barrier")
    for (group_indices, _proc), values in zip(waits, barrier.value):
        for i, value in zip(group_indices, values):
            classify(i, value)
    return sorted(failed), sorted(corrupt), sorted(rejected), sorted(deadlined)


def _boxed(gen):
    """Wrap a standalone op so its value arrives as a one-element list."""
    value = yield from gen
    return [value]


def _op_timeout(sim, op_start, metrics, config):
    """Wait out the rest of the op timeout and account it."""
    remaining = max(0.0, op_start + config.op_timeout_s - sim.now)
    if remaining > 0:
        tracer = sim.tracer
        span = (
            tracer.begin("rpc.timeout_wait", cat="rpc", wait_s=remaining)
            if tracer is not None
            else None
        )
        yield sim.timeout(remaining)
        if span is not None:
            tracer.finish(span)
    if metrics is not None:
        metrics.timeouts += 1
        metrics.add(m.OTHER, remaining)


def _single_op(cluster, coordinator, op: RemoteOp, metrics, config, scope=None, deadline=None):
    """One op, unbatched: its own request RPC, work, and reply RPC."""
    if op.standalone is not None:
        value = yield from _shielded_fallback(cluster, op.standalone(), metrics, scope, op)
        return value
    resilient = config is not None
    attempt = _attempt_single(cluster, coordinator, op, metrics, config, scope, deadline)
    if resilient and config.hedge_after_s > 0 and op.fallback is not None:
        value = yield from _hedged(cluster, op, attempt, metrics, config, scope, deadline)
    else:
        value = yield from attempt
    return value


def _attempt_single(cluster, coordinator, op: RemoteOp, metrics, config, scope=None, deadline=None):
    """One unbatched attempt: request RPC, node-side work, reply RPC."""
    sim = cluster.sim
    node = op.node
    resilient = config is not None
    # Loopback ops (coordinator-local chunks) cannot be dropped.
    faults = cluster.faults if resilient and node.endpoint is not coordinator.endpoint else None
    start = sim.now
    tracer = sim.tracer
    span = tracer.begin("rpc", cat="rpc", node=node.node_id) if tracer is not None else None
    try:
        value = yield from _attempt_single_body(
            cluster, coordinator, op, metrics, config, node, resilient, faults, start,
            deadline,
        )
        return value
    except DeadlineExceeded:
        if scope is not None:
            scope.note_deadline()
        return _DEADLINE
    except QueueFull as exc:
        _record_rejection(cluster, node.node_id, metrics, exc, (op,))
        return _REJECTED
    finally:
        if span is not None:
            tracer.finish(span)


def _attempt_single_body(
    cluster, coordinator, op, metrics, config, node, resilient, faults, start,
    deadline=None,
):
    sim = cluster.sim
    if deadline is not None:
        deadline.check("rpc")
    if op.request_bytes is not None:
        if faults is not None and faults.drop_rpc(node.node_id, coordinator.node_id):
            yield from _op_timeout(sim, start, metrics, config)
            _record_failure(cluster, node.node_id, metrics)
            return _FAILED
        yield from cluster.network.transfer(
            coordinator.endpoint, node.endpoint, op.request_bytes, metrics
        )
    if resilient and not node.alive:
        yield from _op_timeout(sim, start, metrics, config)
        _record_failure(cluster, node.node_id, metrics)
        return _FAILED
    try:
        reply_bytes, value = yield from op.execute()
    except ChecksumError:
        if not resilient:
            raise
        # Stored bytes are rotten: detected at read time, answered by
        # reconstruction.  Not a node-health signal and not retryable.
        if metrics is not None:
            metrics.checksum_failures += 1
        return _CORRUPT
    except (DeadlineExceeded, QueueFull):
        raise
    except Exception:
        if not resilient:
            raise
        # The node answered with an error (e.g. block not found after a
        # wipe): a fast failure, no timeout wait.
        _record_failure(cluster, node.node_id, metrics)
        return _FAILED
    if resilient and not node.alive:
        # Died mid-execute: the reply never leaves the node.
        yield from _op_timeout(sim, start, metrics, config)
        _record_failure(cluster, node.node_id, metrics)
        return _FAILED
    if faults is not None and faults.drop_rpc(node.node_id, coordinator.node_id):
        yield from _op_timeout(sim, start, metrics, config)
        _record_failure(cluster, node.node_id, metrics)
        return _FAILED
    yield from cluster.network.transfer(
        op.node.endpoint, coordinator.endpoint, reply_bytes, metrics
    )
    _record_success(cluster, node.node_id, sim.now - start)
    if op.finalize is not None:
        value = yield from op.finalize(value)
    return value


def _node_group(cluster, coordinator, group: list[RemoteOp], metrics, config, scope=None, deadline=None):
    """All of one node's ops for a stage, as one scatter-gather exchange.

    One batched request opens the exchange (one RPC overhead, half an
    RTT); each op then runs and streams its reply back as soon as it is
    ready, the first reply carrying the other half-RTT.  Stages whose
    ops send no request (Get fetches) open the exchange with the first
    reply instead.  A dropped batched request fails the whole group (one
    timeout wait); node death and per-reply drops fail ops individually.
    """
    sim = cluster.sim
    net = cluster.network
    node = group[0].node
    resilient = config is not None
    faults = cluster.faults if resilient and node.endpoint is not coordinator.endpoint else None
    start = sim.now
    tracer = sim.tracer
    batch_span = (
        tracer.begin("rpc.batch", cat="rpc", node=node.node_id, ops=len(group))
        if tracer is not None
        else None
    )
    request_sizes = [op.request_bytes for op in group if op.request_bytes is not None]
    state = {"replies_sent": 0}
    if request_sizes:
        if faults is not None and faults.drop_rpc(node.node_id, coordinator.node_id):
            yield from _op_timeout(sim, start, metrics, config)
            _record_failure(cluster, node.node_id, metrics)
            if batch_span is not None:
                tracer.finish(batch_span, outcome="request_dropped")
            return [_FAILED] * len(group)
        try:
            yield from net.batch_transfer(
                coordinator.endpoint, node.endpoint, request_sizes, metrics
            )
        except QueueFull as exc:
            # The coalesced request could not be admitted: the whole
            # group is refused in one decision; each op in it is one
            # refused logical request.
            _record_rejection(cluster, node.node_id, metrics, exc, group)
            if batch_span is not None:
                tracer.finish(batch_span, outcome="rejected")
            return [_REJECTED] * len(group)
    if resilient and not node.alive:
        yield from _op_timeout(sim, start, metrics, config)
        _record_failure(cluster, node.node_id, metrics)
        if batch_span is not None:
            tracer.finish(batch_span, outcome="node_dead")
        return [_FAILED] * len(group)

    def run_op(op: RemoteOp):
        op_span = (
            tracer.begin("rpc.op", cat="rpc", node=node.node_id)
            if tracer is not None
            else None
        )
        try:
            value = yield from run_op_body(op)
            return value
        finally:
            if op_span is not None:
                tracer.finish(op_span)

    def run_op_body(op: RemoteOp):
        if deadline is not None:
            deadline.check("rpc.op")
        try:
            reply_bytes, value = yield from op.execute()
        except ChecksumError:
            if not resilient:
                raise
            if metrics is not None:
                metrics.checksum_failures += 1
            return _CORRUPT
        except (DeadlineExceeded, QueueFull):
            raise
        except Exception:
            if not resilient:
                raise
            _record_failure(cluster, node.node_id, metrics)
            return _FAILED
        if resilient and not node.alive:
            yield from _op_timeout(sim, start, metrics, config)
            _record_failure(cluster, node.node_id, metrics)
            return _FAILED
        if faults is not None and faults.drop_rpc(node.node_id, coordinator.node_id):
            yield from _op_timeout(sim, start, metrics, config)
            _record_failure(cluster, node.node_id, metrics)
            return _FAILED
        first = state["replies_sent"] == 0
        state["replies_sent"] += 1
        if first and not request_sizes:
            # No request leg: the first reply is the RPC that opens the
            # exchange; later replies ride it.
            yield from net.transfer(
                node.endpoint, coordinator.endpoint, reply_bytes, metrics
            )
        else:
            yield from net.stream_transfer(
                node.endpoint, coordinator.endpoint, reply_bytes, metrics,
                half_rtt=first,
            )
        _record_success(cluster, node.node_id, sim.now - start)
        if op.finalize is not None:
            value = yield from op.finalize(value)
        return value

    hedge = resilient and config.hedge_after_s > 0
    procs = [
        _spawn(
            sim, scope,
            _hedged(
                cluster, op,
                _shielded(cluster, run_op(op), node.node_id, metrics, scope, op),
                metrics, config, scope, deadline,
            )
            if hedge and op.fallback is not None
            else _shielded(cluster, run_op(op), node.node_id, metrics, scope, op)
        )
        for op in group
    ]
    barrier = all_of(sim, procs)
    # No deadline race here: this group runs as a spawned child, so the
    # scope owner (the stage executor) races the stage barrier and
    # cancels this process along with its ops.  Per-op deadline hits
    # surface as _DEADLINE values through the shields.
    yield barrier
    if batch_span is not None:
        tracer.finish(batch_span)
    return barrier.value


def _hedged(cluster, op: RemoteOp, attempt, metrics, config, scope=None, deadline=None):
    """Race ``attempt`` against a delayed launch of ``op.fallback``.

    If the primary attempt has not resolved ``config.hedge_after_s``
    seconds from now, the degraded-read fallback is launched in parallel
    (one hedge counted) and whichever path finishes first supplies the
    op's value.  A primary that fails *after* the hedge launched defers
    to the in-flight fallback instead of signalling retry — the
    reconstruction is already paid for.  A primary that fails before the
    hedge fires returns its failure sentinel so the normal retry/backoff
    machinery runs, and the pending hedge timer lapses without effect.
    The losing path runs to completion in the background, so its device
    and metric costs are charged exactly as a real speculative duplicate
    would cost.
    """
    sim = cluster.sim
    decided = sim.event()
    state = {"launched": False}

    def run_primary():
        value = yield from attempt
        failure = (
            value is _FAILED or value is _CORRUPT
            or value is _REJECTED or value is _DEADLINE
        )
        if failure and state["launched"]:
            # An in-flight hedge fallback will supply the value.
            return
        if not decided.fired:
            decided.succeed(value)

    def run_hedge():
        yield sim.timeout(config.hedge_after_s)
        if decided.fired:
            return
        if deadline is not None and deadline.remaining <= 0:
            # No budget left to pay for a speculative duplicate; the
            # primary's own deadline check will surface the expiry.
            return
        state["launched"] = True
        if metrics is not None:
            metrics.hedges += 1
        if sim.tracer is not None:
            sim.tracer.instant("rpc.hedge", cat="rpc", node=op.node.node_id)
        value = yield from _shielded(
            cluster, op.fallback(), op.node.node_id, metrics, scope, op
        )
        if not decided.fired:
            decided.succeed(value)

    _spawn(sim, scope, run_primary())
    _spawn(sim, scope, run_hedge())
    value = yield decided
    return value
