"""Scatter-gather execution of per-chunk remote ops, optionally batched.

Both stores execute query stages as fan-outs of small per-chunk ops
(push a filter, push a projection, fetch a fragment).  Unbatched, every
op is its own round trip: request message, node-side work, reply
message — hundreds of serialized RPC setups for a many-row-group object.
This module centralises the fan-out so the stores can coalesce it: with
batching enabled, all ops bound for the same storage node share *one*
batched request message per stage (``Network.batch_transfer``), and
their replies stream back per-op over the open exchange
(``Network.stream_transfer``) as each op finishes — amortising the
fixed per-RPC overhead and the RTT across the node's whole op group
while payload bytes still serialise through the pipes and node-side
work keeps pipelining with the reply transfers.

An op is described declaratively by :class:`RemoteOp`:

* ``node`` / ``request_bytes`` / ``execute`` / ``finalize`` for the
  common healthy-node shape — ``execute`` runs on the node (disk reads,
  compute) and returns ``(reply_bytes, value)``; ``finalize`` optionally
  continues at the coordinator after the reply arrives;
* ``standalone`` for ops that cannot ride a batch (degraded reads that
  reconstruct at the coordinator); they run as independent processes in
  both modes.

Results come back in op order, so callers can ``zip`` them with their
keys exactly as they did with per-op process barriers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator

from repro.cluster.simcore import all_of


@dataclass
class RemoteOp:
    """One unit of remote work in a scatter-gather stage.

    Exactly one of ``execute`` (with ``node``) or ``standalone`` must be
    set.  ``request_bytes`` and the first element of ``execute``'s
    return value are *simulated* (already scaled) byte counts; byte
    accounting sums them per batch, so batched and unbatched runs move
    identical traffic.
    """

    node: object | None = None  # StorageNode holding the chunk
    request_bytes: int | None = None  # None: the stage sends no request message
    execute: Callable[[], Generator] | None = None  # -> (reply_bytes, value)
    finalize: Callable[[object], Generator] | None = None  # value -> final value
    standalone: Callable[[], Generator] | None = None  # full op, unbatchable

    def __post_init__(self) -> None:
        if (self.execute is None) == (self.standalone is None):
            raise ValueError("RemoteOp needs exactly one of execute/standalone")
        if self.execute is not None and self.node is None:
            raise ValueError("batchable RemoteOp needs a destination node")


def execute_remote_ops(cluster, coordinator, ops, metrics, batched: bool):
    """Process: run ``ops``; returns their final values in op order.

    Unbatched, each op is an independent process paying its own request
    and reply RPCs (the seed behaviour).  Batched, ops are grouped by
    destination node: one coalesced request per node opens the exchange,
    then each op executes, streams its reply, and finalises
    independently — no barrier, so node-side work still overlaps the
    reply transfers exactly as in the unbatched pipeline.
    """
    sim = cluster.sim
    if not batched:
        procs = [sim.process(_single_op(cluster, coordinator, op, metrics)) for op in ops]
        barrier = all_of(sim, procs)
        yield barrier
        return barrier.value

    results: list[object] = [None] * len(ops)
    groups: dict[int, list[int]] = {}
    waits = []
    for i, op in enumerate(ops):
        if op.standalone is not None:
            waits.append(([i], sim.process(_boxed(op.standalone()))))
        else:
            groups.setdefault(op.node.node_id, []).append(i)
    for indices in groups.values():
        group = [ops[i] for i in indices]
        waits.append((indices, sim.process(_node_group(cluster, coordinator, group, metrics))))
    barrier = all_of(sim, [proc for _indices, proc in waits])
    yield barrier
    for (indices, _proc), values in zip(waits, barrier.value):
        for i, value in zip(indices, values):
            results[i] = value
    return results


def _boxed(gen):
    """Wrap a standalone op so its value arrives as a one-element list."""
    value = yield from gen
    return [value]


def _single_op(cluster, coordinator, op: RemoteOp, metrics):
    """One op, unbatched: its own request RPC, work, and reply RPC."""
    if op.standalone is not None:
        value = yield from op.standalone()
        return value
    if op.request_bytes is not None:
        yield from cluster.network.transfer(
            coordinator.endpoint, op.node.endpoint, op.request_bytes, metrics
        )
    reply_bytes, value = yield from op.execute()
    yield from cluster.network.transfer(
        op.node.endpoint, coordinator.endpoint, reply_bytes, metrics
    )
    if op.finalize is not None:
        value = yield from op.finalize(value)
    return value


def _node_group(cluster, coordinator, group: list[RemoteOp], metrics):
    """All of one node's ops for a stage, as one scatter-gather exchange.

    One batched request opens the exchange (one RPC overhead, half an
    RTT); each op then runs and streams its reply back as soon as it is
    ready, the first reply carrying the other half-RTT.  Stages whose
    ops send no request (Get fetches) open the exchange with the first
    reply instead.
    """
    sim = cluster.sim
    net = cluster.network
    node = group[0].node
    request_sizes = [op.request_bytes for op in group if op.request_bytes is not None]
    state = {"replies_sent": 0}
    if request_sizes:
        yield from net.batch_transfer(
            coordinator.endpoint, node.endpoint, request_sizes, metrics
        )

    def run_op(op: RemoteOp):
        reply_bytes, value = yield from op.execute()
        first = state["replies_sent"] == 0
        state["replies_sent"] += 1
        if first and not request_sizes:
            # No request leg: the first reply is the RPC that opens the
            # exchange; later replies ride it.
            yield from net.transfer(
                node.endpoint, coordinator.endpoint, reply_bytes, metrics
            )
        else:
            yield from net.stream_transfer(
                node.endpoint, coordinator.endpoint, reply_bytes, metrics,
                half_rtt=first,
            )
        if op.finalize is not None:
            value = yield from op.finalize(value)
        return value

    procs = [sim.process(run_op(op)) for op in group]
    barrier = all_of(sim, procs)
    yield barrier
    return barrier.value
