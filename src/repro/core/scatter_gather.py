"""Scatter-gather execution of per-chunk remote ops, optionally batched.

Both stores execute query stages as fan-outs of small per-chunk ops
(push a filter, push a projection, fetch a fragment).  Unbatched, every
op is its own round trip: request message, node-side work, reply
message — hundreds of serialized RPC setups for a many-row-group object.
This module centralises the fan-out so the stores can coalesce it: with
batching enabled, all ops bound for the same storage node share *one*
batched request message per stage (``Network.batch_transfer``), and
their replies stream back per-op over the open exchange
(``Network.stream_transfer``) as each op finishes — amortising the
fixed per-RPC overhead and the RTT across the node's whole op group
while payload bytes still serialise through the pipes and node-side
work keeps pipelining with the reply transfers.

An op is described declaratively by :class:`RemoteOp`:

* ``node`` / ``request_bytes`` / ``execute`` / ``finalize`` for the
  common healthy-node shape — ``execute`` runs on the node (disk reads,
  compute) and returns ``(reply_bytes, value)``; ``finalize`` optionally
  continues at the coordinator after the reply arrives;
* ``standalone`` for ops that cannot ride a batch (degraded reads that
  reconstruct at the coordinator); they run as independent processes in
  both modes;
* ``fallback`` optionally names a degraded-path generator used when the
  primary attempt fails for good (see below).

Results come back in op order, so callers can ``zip`` them with their
keys exactly as they did with per-op process barriers.

Failure handling
----------------

When a :class:`~repro.core.config.StoreConfig` is passed, the executor
survives nodes that die, drop RPCs, or lose blocks *mid-stage*:

1. every attempt is bounded by ``op_timeout_s`` — a dropped request or
   reply, or a node that dies before replying, costs the coordinator
   the remaining timeout instead of hanging forever;
2. failed ops are retried (``rpc_max_retries`` times, exponential
   backoff from ``rpc_retry_backoff_s``), re-batched per node;
3. ops that exhaust their retries — or whose node the shared
   :class:`~repro.cluster.health.NodeHealthTracker` no longer considers
   usable — run their ``fallback`` (degraded-read reconstruction)
   instead; an op with no fallback raises :class:`RemoteOpError`.

Every op outcome feeds the health tracker, so a node that keeps failing
crosses the suspicion threshold and later stages stop sending ops to it
at construction time (the stores consult the tracker).  Node-side
exceptions from ``execute`` (e.g. a wiped block) are treated as an
immediate error reply — a fast failure, no timeout wait.  Without a
config the executor behaves exactly as the seed did: no timeouts, no
retries, exceptions propagate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator

from repro.cluster import metrics as m
from repro.cluster.simcore import all_of
from repro.core.location_map import ChecksumError

#: Internal sentinel: an attempt failed and the op is eligible for retry.
_FAILED = object()

#: Internal sentinel: the node's stored bytes failed checksum
#: verification.  Deterministically corrupt — retrying would re-read the
#: same bad bytes, so the op goes straight to its degraded fallback, and
#: the failure is not held against the node's health (one rotten block
#: does not make a node suspect).
_CORRUPT = object()


class RemoteOpError(RuntimeError):
    """A remote op failed permanently and had no fallback path."""


@dataclass
class RemoteOp:
    """One unit of remote work in a scatter-gather stage.

    Exactly one of ``execute`` (with ``node``) or ``standalone`` must be
    set.  ``request_bytes`` and the first element of ``execute``'s
    return value are *simulated* (already scaled) byte counts; byte
    accounting sums them per batch, so batched and unbatched runs move
    identical traffic.  ``fallback`` (batchable ops only) is the
    degraded path run if every attempt fails.
    """

    node: object | None = None  # StorageNode holding the chunk
    request_bytes: int | None = None  # None: the stage sends no request message
    execute: Callable[[], Generator] | None = None  # -> (reply_bytes, value)
    finalize: Callable[[object], Generator] | None = None  # value -> final value
    standalone: Callable[[], Generator] | None = None  # full op, unbatchable
    fallback: Callable[[], Generator] | None = None  # degraded path on failure

    def __post_init__(self) -> None:
        if (self.execute is None) == (self.standalone is None):
            raise ValueError("RemoteOp needs exactly one of execute/standalone")
        if self.execute is not None and self.node is None:
            raise ValueError("batchable RemoteOp needs a destination node")
        if self.standalone is not None and self.fallback is not None:
            raise ValueError("standalone ops are their own fallback")


def execute_remote_ops(cluster, coordinator, ops, metrics, batched: bool, config=None):
    """Process: run ``ops``; returns their final values in op order.

    Unbatched, each op is an independent process paying its own request
    and reply RPCs (the seed behaviour).  Batched, ops are grouped by
    destination node: one coalesced request per node opens the exchange,
    then each op executes, streams its reply, and finalises
    independently — no barrier, so node-side work still overlaps the
    reply transfers exactly as in the unbatched pipeline.

    With ``config`` set, failed ops are retried then routed to their
    ``fallback`` (see module docstring); on a fault-free run the event
    sequence is identical to the seed's.
    """
    sim = cluster.sim
    results: list[object] = [None] * len(ops)
    pending = list(range(len(ops)))
    max_retries = config.rpc_max_retries if config is not None else 0
    attempts = 0
    exhausted: list[int] = []
    while True:
        failed, corrupt = yield from _run_round(
            cluster, coordinator, ops, pending, results, metrics, batched, config
        )
        exhausted.extend(corrupt)
        if not failed:
            break
        attempts += 1
        retry: list[int] = []
        for i in failed:
            node = ops[i].node
            if attempts <= max_retries and node.alive and cluster.health.usable(node.node_id):
                retry.append(i)
            else:
                # Out of attempts, or the health tracker says to stop
                # hammering this node: go straight to reconstruction.
                exhausted.append(i)
        if not retry:
            break
        if metrics is not None:
            metrics.retries += len(retry)
        if sim.tracer is not None:
            sim.tracer.instant(
                "rpc.retry", cat="rpc", ops=len(retry), attempt=attempts,
                nodes=sorted({ops[i].node.node_id for i in retry}),
            )
        backoff = config.rpc_retry_backoff_s * (2 ** (attempts - 1))
        if backoff > 0:
            yield sim.timeout(backoff)
        pending = retry

    if exhausted:
        exhausted.sort()
        missing = [i for i in exhausted if ops[i].fallback is None]
        if missing:
            nodes = {ops[i].node.node_id for i in missing}
            raise RemoteOpError(
                f"{len(missing)} remote op(s) failed permanently on node(s) "
                f"{sorted(nodes)} and had no degraded fallback"
            )
        if sim.tracer is not None:
            sim.tracer.instant("rpc.fallback", cat="rpc", ops=len(exhausted))
        procs = [sim.process(_boxed(ops[i].fallback())) for i in exhausted]
        barrier = all_of(sim, procs)
        yield barrier
        for i, boxed in zip(exhausted, barrier.value):
            results[i] = boxed[0]
    return results


def _run_round(cluster, coordinator, ops, indices, results, metrics, batched, config):
    """One attempt over ``indices``; fills ``results``, returns the
    (retryable, checksum-corrupt) failure index lists.

    Standalone ops only ever appear in the first round (they cannot
    fail-and-retry; genuine errors inside them propagate).
    """
    sim = cluster.sim
    waits: list[tuple[list[int], object]] = []
    if not batched:
        for i in indices:
            waits.append(
                ([i], sim.process(_single_op(cluster, coordinator, ops[i], metrics, config)))
            )
        barrier = all_of(sim, [proc for _indices, proc in waits])
        yield barrier
        failed = []
        corrupt = []
        for ([i], _proc), value in zip(waits, barrier.value):
            if value is _FAILED:
                failed.append(i)
            elif value is _CORRUPT:
                corrupt.append(i)
            else:
                results[i] = value
        return failed, corrupt

    groups: dict[int, list[int]] = {}
    for i in indices:
        op = ops[i]
        if op.standalone is not None:
            waits.append(([i], sim.process(_boxed(op.standalone()))))
        else:
            groups.setdefault(op.node.node_id, []).append(i)
    for group_indices in groups.values():
        group = [ops[i] for i in group_indices]
        waits.append(
            (group_indices, sim.process(_node_group(cluster, coordinator, group, metrics, config)))
        )
    barrier = all_of(sim, [proc for _indices, proc in waits])
    yield barrier
    failed = []
    corrupt = []
    for (group_indices, _proc), values in zip(waits, barrier.value):
        for i, value in zip(group_indices, values):
            if value is _FAILED:
                failed.append(i)
            elif value is _CORRUPT:
                corrupt.append(i)
            else:
                results[i] = value
    return sorted(failed), sorted(corrupt)


def _boxed(gen):
    """Wrap a standalone op so its value arrives as a one-element list."""
    value = yield from gen
    return [value]


def _op_timeout(sim, op_start, metrics, config):
    """Wait out the rest of the op timeout and account it."""
    remaining = max(0.0, op_start + config.op_timeout_s - sim.now)
    if remaining > 0:
        tracer = sim.tracer
        span = (
            tracer.begin("rpc.timeout_wait", cat="rpc", wait_s=remaining)
            if tracer is not None
            else None
        )
        yield sim.timeout(remaining)
        if span is not None:
            tracer.finish(span)
    if metrics is not None:
        metrics.timeouts += 1
        metrics.add(m.OTHER, remaining)


def _single_op(cluster, coordinator, op: RemoteOp, metrics, config):
    """One op, unbatched: its own request RPC, work, and reply RPC."""
    if op.standalone is not None:
        value = yield from op.standalone()
        return value
    resilient = config is not None
    attempt = _attempt_single(cluster, coordinator, op, metrics, config)
    if resilient and config.hedge_after_s > 0 and op.fallback is not None:
        value = yield from _hedged(cluster, op, attempt, metrics, config)
    else:
        value = yield from attempt
    return value


def _attempt_single(cluster, coordinator, op: RemoteOp, metrics, config):
    """One unbatched attempt: request RPC, node-side work, reply RPC."""
    sim = cluster.sim
    node = op.node
    resilient = config is not None
    # Loopback ops (coordinator-local chunks) cannot be dropped.
    faults = cluster.faults if resilient and node.endpoint is not coordinator.endpoint else None
    start = sim.now
    tracer = sim.tracer
    span = tracer.begin("rpc", cat="rpc", node=node.node_id) if tracer is not None else None
    try:
        value = yield from _attempt_single_body(
            cluster, coordinator, op, metrics, config, node, resilient, faults, start
        )
        return value
    finally:
        if span is not None:
            tracer.finish(span)


def _attempt_single_body(
    cluster, coordinator, op, metrics, config, node, resilient, faults, start
):
    sim = cluster.sim
    if op.request_bytes is not None:
        if faults is not None and faults.drop_rpc(node.node_id):
            yield from _op_timeout(sim, start, metrics, config)
            cluster.health.record_failure(node.node_id)
            return _FAILED
        yield from cluster.network.transfer(
            coordinator.endpoint, node.endpoint, op.request_bytes, metrics
        )
    if resilient and not node.alive:
        yield from _op_timeout(sim, start, metrics, config)
        cluster.health.record_failure(node.node_id)
        return _FAILED
    try:
        reply_bytes, value = yield from op.execute()
    except ChecksumError:
        if not resilient:
            raise
        # Stored bytes are rotten: detected at read time, answered by
        # reconstruction.  Not a node-health signal and not retryable.
        if metrics is not None:
            metrics.checksum_failures += 1
        return _CORRUPT
    except Exception:
        if not resilient:
            raise
        # The node answered with an error (e.g. block not found after a
        # wipe): a fast failure, no timeout wait.
        cluster.health.record_failure(node.node_id)
        return _FAILED
    if resilient and not node.alive:
        # Died mid-execute: the reply never leaves the node.
        yield from _op_timeout(sim, start, metrics, config)
        cluster.health.record_failure(node.node_id)
        return _FAILED
    if faults is not None and faults.drop_rpc(node.node_id):
        yield from _op_timeout(sim, start, metrics, config)
        cluster.health.record_failure(node.node_id)
        return _FAILED
    yield from cluster.network.transfer(
        op.node.endpoint, coordinator.endpoint, reply_bytes, metrics
    )
    cluster.health.record_success(node.node_id)
    if op.finalize is not None:
        value = yield from op.finalize(value)
    return value


def _node_group(cluster, coordinator, group: list[RemoteOp], metrics, config):
    """All of one node's ops for a stage, as one scatter-gather exchange.

    One batched request opens the exchange (one RPC overhead, half an
    RTT); each op then runs and streams its reply back as soon as it is
    ready, the first reply carrying the other half-RTT.  Stages whose
    ops send no request (Get fetches) open the exchange with the first
    reply instead.  A dropped batched request fails the whole group (one
    timeout wait); node death and per-reply drops fail ops individually.
    """
    sim = cluster.sim
    net = cluster.network
    node = group[0].node
    resilient = config is not None
    faults = cluster.faults if resilient and node.endpoint is not coordinator.endpoint else None
    start = sim.now
    tracer = sim.tracer
    batch_span = (
        tracer.begin("rpc.batch", cat="rpc", node=node.node_id, ops=len(group))
        if tracer is not None
        else None
    )
    request_sizes = [op.request_bytes for op in group if op.request_bytes is not None]
    state = {"replies_sent": 0}
    if request_sizes:
        if faults is not None and faults.drop_rpc(node.node_id):
            yield from _op_timeout(sim, start, metrics, config)
            cluster.health.record_failure(node.node_id)
            if batch_span is not None:
                tracer.finish(batch_span, outcome="request_dropped")
            return [_FAILED] * len(group)
        yield from net.batch_transfer(
            coordinator.endpoint, node.endpoint, request_sizes, metrics
        )
    if resilient and not node.alive:
        yield from _op_timeout(sim, start, metrics, config)
        cluster.health.record_failure(node.node_id)
        if batch_span is not None:
            tracer.finish(batch_span, outcome="node_dead")
        return [_FAILED] * len(group)

    def run_op(op: RemoteOp):
        op_span = (
            tracer.begin("rpc.op", cat="rpc", node=node.node_id)
            if tracer is not None
            else None
        )
        try:
            value = yield from run_op_body(op)
            return value
        finally:
            if op_span is not None:
                tracer.finish(op_span)

    def run_op_body(op: RemoteOp):
        try:
            reply_bytes, value = yield from op.execute()
        except ChecksumError:
            if not resilient:
                raise
            if metrics is not None:
                metrics.checksum_failures += 1
            return _CORRUPT
        except Exception:
            if not resilient:
                raise
            cluster.health.record_failure(node.node_id)
            return _FAILED
        if resilient and not node.alive:
            yield from _op_timeout(sim, start, metrics, config)
            cluster.health.record_failure(node.node_id)
            return _FAILED
        if faults is not None and faults.drop_rpc(node.node_id):
            yield from _op_timeout(sim, start, metrics, config)
            cluster.health.record_failure(node.node_id)
            return _FAILED
        first = state["replies_sent"] == 0
        state["replies_sent"] += 1
        if first and not request_sizes:
            # No request leg: the first reply is the RPC that opens the
            # exchange; later replies ride it.
            yield from net.transfer(
                node.endpoint, coordinator.endpoint, reply_bytes, metrics
            )
        else:
            yield from net.stream_transfer(
                node.endpoint, coordinator.endpoint, reply_bytes, metrics,
                half_rtt=first,
            )
        cluster.health.record_success(node.node_id)
        if op.finalize is not None:
            value = yield from op.finalize(value)
        return value

    hedge = resilient and config.hedge_after_s > 0
    procs = [
        sim.process(
            _hedged(cluster, op, run_op(op), metrics, config)
            if hedge and op.fallback is not None
            else run_op(op)
        )
        for op in group
    ]
    barrier = all_of(sim, procs)
    yield barrier
    if batch_span is not None:
        tracer.finish(batch_span)
    return barrier.value


def _hedged(cluster, op: RemoteOp, attempt, metrics, config):
    """Race ``attempt`` against a delayed launch of ``op.fallback``.

    If the primary attempt has not resolved ``config.hedge_after_s``
    seconds from now, the degraded-read fallback is launched in parallel
    (one hedge counted) and whichever path finishes first supplies the
    op's value.  A primary that fails *after* the hedge launched defers
    to the in-flight fallback instead of signalling retry — the
    reconstruction is already paid for.  A primary that fails before the
    hedge fires returns its failure sentinel so the normal retry/backoff
    machinery runs, and the pending hedge timer lapses without effect.
    The losing path runs to completion in the background, so its device
    and metric costs are charged exactly as a real speculative duplicate
    would cost.
    """
    sim = cluster.sim
    decided = sim.event()
    state = {"launched": False}

    def run_primary():
        value = yield from attempt
        if (value is _FAILED or value is _CORRUPT) and state["launched"]:
            # An in-flight hedge fallback will supply the value.
            return
        if not decided.fired:
            decided.succeed(value)

    def run_hedge():
        yield sim.timeout(config.hedge_after_s)
        if decided.fired:
            return
        state["launched"] = True
        if metrics is not None:
            metrics.hedges += 1
        if sim.tracer is not None:
            sim.tracer.instant("rpc.hedge", cat="rpc", node=op.node.node_id)
        value = yield from op.fallback()
        if not decided.fired:
            decided.succeed(value)

    sim.process(run_primary())
    sim.process(run_hedge())
    value = yield decided
    return value
