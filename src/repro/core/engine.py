"""Query-execution helpers shared by the Fusion and baseline stores.

Both stores follow the same logical steps — plan, prune row groups by
footer stats, produce per-row-group bitmaps, materialise projections,
assemble the result — and differ only in *where* the work runs.  The
shared steps live here.
"""

from __future__ import annotations

import numpy as np

from repro.format.metadata import FileMetadata
from repro.format.schema import ColumnType, Field
from repro.format.table import Column, Table
from repro.sql.aggregates import compute_aggregate
from repro.sql.ast_nodes import Aggregate, Query
from repro.sql.local import QueryResult
from repro.sql.planner import PhysicalPlan
from repro.sql.predicate import tree_may_match


def prune_row_groups(plan: PhysicalPlan, metadata: FileMetadata) -> list[int]:
    """Row groups that may contain matches, by footer min/max stats.

    This is the coarse-grained filtering both systems apply before any
    I/O (paper Section 5).  With no WHERE clause every row group survives.
    """
    if plan.where is None:
        return [rg.index for rg in metadata.row_groups]
    survivors = []
    for rg in metadata.row_groups:
        def stats_of(column: str, _rg=rg):
            meta = _rg.column(column)
            return meta.stats.min_value, meta.stats.max_value

        def type_of(column: str) -> ColumnType:
            return plan.schema.field(column).type

        if tree_may_match(plan.where, type_of, stats_of):
            survivors.append(rg.index)
    return survivors


def assemble_result(
    plan: PhysicalPlan,
    metadata: FileMetadata,
    row_groups: list[int],
    rg_selected: dict[int, np.ndarray],
    rg_projected: dict[tuple[int, str], np.ndarray],
) -> QueryResult:
    """Build the final :class:`QueryResult` from per-row-group pieces.

    ``rg_selected[rg]`` is the final boolean bitmap for row group ``rg``;
    ``rg_projected[(rg, column)]`` holds the already-selected values of a
    projection column in that row group.  Row groups absent from
    ``row_groups`` (pruned) count as all-false.
    """
    matched = sum(int(rg_selected[rg].sum()) for rg in row_groups)
    total_rows = metadata.num_rows
    query = plan.query

    if query.group_by:
        from repro.sql.grouping import evaluate_group_by, grouped_needed_types

        needed = grouped_needed_types(query, plan.schema)
        filtered = {
            name: _concat_column(
                plan.schema.field(name).type,
                [rg_projected[(rg, name)] for rg in row_groups],
            )
            for name in needed
        }
        grouped = evaluate_group_by(query, needed, filtered)
        from repro.sql.local import _apply_limit

        grouped = _apply_limit(grouped, query.limit)
        return QueryResult(
            columns=grouped.schema.names(),
            rows=grouped,
            aggregates=None,
            matched_rows=matched,
            total_rows=total_rows,
        )

    if query.has_aggregates():
        aggregates = []
        for item in query.select:
            assert isinstance(item, Aggregate)
            if item.column is None:
                values = None
            else:
                values = _concat_column(
                    plan.schema.field(item.column).type,
                    [rg_projected[(rg, item.column)] for rg in row_groups],
                )
            aggregates.append(compute_aggregate(item, values, matched))
        labels = [f"{i.func.value}({i.column or '*'})" for i in query.select]  # type: ignore[union-attr]
        return QueryResult(
            columns=labels,
            rows=None,
            aggregates=aggregates,
            matched_rows=matched,
            total_rows=total_rows,
        )

    names = plan.projection_columns
    columns = []
    for name in names:
        type_ = plan.schema.field(name).type
        values = _concat_column(type_, [rg_projected[(rg, name)] for rg in row_groups])
        columns.append(Column(Field(name, type_), values))
    rows = Table(columns) if columns else None
    if rows is not None and query.limit is not None:
        from repro.sql.local import _apply_limit

        rows = _apply_limit(rows, query.limit)
    return QueryResult(
        columns=names,
        rows=rows,
        aggregates=None,
        matched_rows=matched,
        total_rows=total_rows,
    )


def _concat_column(type_: ColumnType, parts: list[np.ndarray]) -> np.ndarray:
    if not parts:
        return np.zeros(0, dtype=type_.numpy_dtype or object)
    if type_ is ColumnType.STRING:
        total = sum(len(p) for p in parts)
        out = np.empty(total, dtype=object)
        pos = 0
        for p in parts:
            out[pos : pos + len(p)] = p
            pos += len(p)
        return out
    return np.concatenate(parts)


def result_wire_bytes(result: QueryResult) -> int:
    """Real bytes to ship the final result back to the client."""
    if result.aggregates is not None:
        return 64 * max(1, len(result.aggregates))
    if result.rows is None:
        return 64
    return sum(col.plain_size() for col in result.rows.columns)


def selected_plain_bytes(type_: ColumnType, values: np.ndarray) -> int:
    """Real plain-encoded size of a selected value array (network charge
    for pushed-down projection results)."""
    width = type_.fixed_width
    if width is not None:
        return width * len(values)
    return sum(4 + len(v.encode("utf-8")) for v in values)


def needed_columns(plan: PhysicalPlan, query: Query) -> list[str]:
    """All columns a store must touch: filter plus projection columns."""
    out: list[str] = []
    for op in plan.filter_ops:
        if op.column not in out:
            out.append(op.column)
    for name in plan.projection_columns:
        if name not in out:
            out.append(name)
    return out
