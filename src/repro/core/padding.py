"""The padding strategy of Adams et al. (HotStorage'21).

Chunks are laid out in file order into fixed-size blocks.  When the next
chunk would straddle the current block's boundary, the remainder of the
block is filled with *stored* pad bytes and the chunk starts at the next
block.  Chunks larger than a block occupy a run of dedicated blocks
(aligned at a block start), with the tail block padded.

This keeps every chunk aligned to block boundaries without splitting
small chunks, but the pad bytes are real data to the erasure coder — the
storage overhead the paper measures in Figures 4d and 16b.
"""

from __future__ import annotations

import time

from repro.core.layout import Bin, BinSet, ChunkItem, StripeLayout
from repro.ec.reed_solomon import CodeParams


def construct_padding_layout(
    params: CodeParams,
    items: list[ChunkItem],
    block_size: int,
) -> StripeLayout:
    """Lay out ``items`` (in the given file order) with boundary padding.

    Returns a :class:`StripeLayout` whose bins are all exactly
    ``block_size`` (padding markers included), so parity accounting works
    the same way as for the other strategies.
    """
    if block_size <= 0:
        raise ValueError("block size must be positive")
    start = time.perf_counter()

    bins: list[Bin] = []
    pad_seq = 0
    total_padding = 0
    current = Bin()
    current_used = 0

    def close_current() -> None:
        nonlocal current, current_used, pad_seq, total_padding
        if not current.items:
            return
        gap = block_size - current_used
        if gap > 0:
            current.add(ChunkItem(key=(-1, pad_seq), size=gap))
            pad_seq += 1
            total_padding += gap
        bins.append(current)
        current = Bin()
        current_used = 0

    for item in items:
        if item.size <= block_size - current_used:
            current.add(item)
            current_used += item.size
            continue
        close_current()
        if item.size <= block_size:
            current.add(item)
            current_used = item.size
            continue
        # Oversized chunk: a run of dedicated blocks.  The chunk still
        # spans blocks (padding cannot avoid that) but is aligned, and the
        # tail block is padded to full size.
        remaining = item.size
        part = 0
        while remaining > 0:
            take = min(block_size, remaining)
            b = Bin()
            b.add(ChunkItem(key=item.key if part == 0 else (-2 - item.key[0], pad_seq), size=take))
            if part > 0:
                pad_seq += 1
            if take < block_size:
                b.add(ChunkItem(key=(-1, pad_seq), size=block_size - take))
                pad_seq += 1
                total_padding += block_size - take
            bins.append(b)
            remaining -= take
            part += 1
    close_current()

    # Group blocks k-per-stripe.
    binsets = []
    k = params.k
    for i in range(0, len(bins), k):
        group = bins[i : i + k]
        while len(group) < k:
            group.append(Bin())
        binsets.append(BinSet(bins=group))

    return StripeLayout(
        params=params,
        binsets=binsets,
        strategy="padding",
        build_seconds=time.perf_counter() - start,
        stored_padding_bytes=total_padding,
    )
