"""Fixed-block striping — the conventional layout of MinIO/Ceph-like stores.

The object is treated as a blob: cut into ``block_size`` pieces in byte
order, grouped ``k`` per stripe.  Column chunks that straddle a block
boundary are *split* across blocks (and therefore across storage nodes),
which is precisely the behaviour Figures 4a and 12 quantify and FAC
eliminates.

Because layout algorithms elsewhere operate on whole-chunk assignments,
this module has its own representation: byte-range blocks plus a locator
from object byte ranges to block fragments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ec.reed_solomon import CodeParams


@dataclass(frozen=True)
class BlockExtent:
    """One fixed-size block: a byte range of the original object."""

    index: int
    start: int
    size: int

    @property
    def end(self) -> int:
        return self.start + self.size


@dataclass(frozen=True)
class Fragment:
    """A piece of a logical byte range as stored in one block."""

    block_index: int
    block_offset: int
    length: int


@dataclass
class FixedLayout:
    """Fixed-block striping of an object of ``total_bytes``."""

    params: CodeParams
    total_bytes: int
    block_size: int
    blocks: list[BlockExtent]

    @property
    def num_stripes(self) -> int:
        k = self.params.k
        return (len(self.blocks) + k - 1) // k

    def stripe_of(self, block_index: int) -> int:
        return block_index // self.params.k

    def stripe_blocks(self, stripe: int) -> list[BlockExtent]:
        k = self.params.k
        return self.blocks[stripe * k : (stripe + 1) * k]

    def locate(self, offset: int, length: int) -> list[Fragment]:
        """Map an object byte range onto the block fragments covering it."""
        if offset < 0 or offset + length > self.total_bytes:
            raise ValueError(
                f"range [{offset}, {offset + length}) outside object of "
                f"size {self.total_bytes}"
            )
        fragments: list[Fragment] = []
        remaining = length
        pos = offset
        while remaining > 0:
            block_index = pos // self.block_size
            block = self.blocks[block_index]
            within = pos - block.start
            take = min(remaining, block.size - within)
            fragments.append(Fragment(block_index=block_index, block_offset=within, length=take))
            pos += take
            remaining -= take
        return fragments

    def blocks_for_range(self, offset: int, length: int) -> list[int]:
        """Indices of blocks a byte range touches."""
        return [f.block_index for f in self.locate(offset, length)]

    @property
    def parity_bytes(self) -> int:
        """Parity cost: each stripe's parity blocks match its largest block."""
        total = 0
        for stripe in range(self.num_stripes):
            blocks = self.stripe_blocks(stripe)
            total += self.params.parity * max(b.size for b in blocks)
        return total

    @property
    def stored_bytes(self) -> int:
        return self.total_bytes + self.parity_bytes


def build_fixed_layout(params: CodeParams, total_bytes: int, block_size: int) -> FixedLayout:
    """Cut ``total_bytes`` into ``block_size`` blocks (last one partial)."""
    if block_size <= 0:
        raise ValueError("block size must be positive")
    if total_bytes <= 0:
        raise ValueError("object must be non-empty")
    blocks = []
    pos = 0
    index = 0
    while pos < total_bytes:
        size = min(block_size, total_bytes - pos)
        blocks.append(BlockExtent(index=index, start=pos, size=size))
        pos += size
        index += 1
    return FixedLayout(params=params, total_bytes=total_bytes, block_size=block_size, blocks=blocks)


def fraction_of_chunks_split(
    layout: FixedLayout, chunk_ranges: list[tuple[int, int]]
) -> float:
    """Fraction of chunks whose byte range spans more than one block.

    ``chunk_ranges`` is a list of ``(offset, size)`` pairs.  This is the
    Fig 4a metric.
    """
    if not chunk_ranges:
        return 0.0
    split = sum(
        1 for offset, size in chunk_ranges if len(layout.locate(offset, size)) > 1
    )
    return split / len(chunk_ranges)
