"""The pushdown cost model (paper Section 4.3).

After the filter stage the coordinator knows the exact query selectivity;
each column chunk's compressibility comes from the file footer.  Pushing a
projection down ships ``selectivity * uncompressed_size`` bytes of raw
values; fetching the chunk ships ``compressed_size`` bytes.  Projection
pushdown therefore wins exactly when::

    selectivity * compressibility < 1        (the Cost Equation)

since ``compressibility = uncompressed_size / compressed_size``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PushdownMode(enum.Enum):
    """Projection pushdown policy (the adaptive one is Fusion's)."""

    ADAPTIVE = "adaptive"
    ALWAYS = "always"
    NEVER = "never"


@dataclass(frozen=True)
class PushdownDecision:
    """The estimator's verdict for one column chunk's projection."""

    push_down: bool
    selectivity: float
    compressibility: float
    pushdown_bytes: float  # estimated uncompressed result bytes if pushed
    fetch_bytes: int  # compressed chunk bytes if fetched

    @property
    def cost_product(self) -> float:
        """``selectivity * compressibility`` — < 1 favours pushdown."""
        return self.selectivity * self.compressibility


class PushdownCostEstimator:
    """Per-chunk projection pushdown decisions."""

    def __init__(self, mode: PushdownMode = PushdownMode.ADAPTIVE) -> None:
        self.mode = mode

    def decide(
        self,
        selectivity: float,
        compressed_size: int,
        plain_size: int,
    ) -> PushdownDecision:
        """Apply the Cost Equation to one chunk.

        ``selectivity`` is the exact post-filter selectivity for the
        chunk's row group; sizes come from the footer entry.
        """
        if not 0.0 <= selectivity <= 1.0:
            raise ValueError(f"selectivity must be in [0, 1], got {selectivity}")
        compressibility = plain_size / compressed_size if compressed_size else 1.0
        pushdown_bytes = selectivity * plain_size
        if self.mode is PushdownMode.ALWAYS:
            push = True
        elif self.mode is PushdownMode.NEVER:
            push = False
        else:
            push = selectivity * compressibility < 1.0
        return PushdownDecision(
            push_down=push,
            selectivity=selectivity,
            compressibility=compressibility,
            pushdown_bytes=pushdown_bytes,
            fetch_bytes=compressed_size,
        )
