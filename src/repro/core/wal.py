"""Write-ahead intent log and metadata replicas for crash-consistent Put/Delete.

The paper replicates each object's chunk location map to ``k + 1`` nodes
(Section 5, Metadata Management) so metadata survives the same failures
as an RS(n, k) stripe.  This module materializes that replication and
adds the coordinator-side write-ahead log that makes Put and Delete
atomic against coordinator crashes:

``Put``:   intent record -> data blocks -> metadata replicas -> commit
``Delete``: intent record -> drop metadata replicas -> drop data blocks
           -> commit

Each stage boundary is a *named crash point*
(:data:`PUT_CRASH_POINTS` / :data:`DELETE_CRASH_POINTS`); an armed
:class:`~repro.cluster.faults.FaultInjector` kills the coordinator there
mid-operation (the operation raises :class:`CoordinatorCrash` and its
in-flight state is abandoned exactly as a real crash would leave it).
Recovery (:mod:`repro.core.fsck`) replays the log: committed operations
roll forward from surviving metadata replicas (quorum read, newest epoch
wins), uncommitted ones roll back with orphan-block garbage collection.

WAL records are mirrored to the object's metadata replica nodes at
append time so the log itself survives a dead coordinator.  Appends are
metadata-plane operations: like Delete in the seed, they move no
simulated bytes, so fault-free runs are event-identical with the log on
or off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Named stages a Put can crash at (stage *completed* when the point fires).
PUT_CRASH_POINTS = (
    "put:after-intent",   # intent logged; no data written yet
    "put:after-data",     # all data/parity blocks written
    "put:after-meta",     # metadata replicas materialized
    "put:after-commit",   # commit logged; object not yet visible
)

#: Named stages a Delete can crash at.
DELETE_CRASH_POINTS = (
    "delete:after-intent",     # intent logged; object still fully present
    "delete:after-meta-drop",  # metadata replicas dropped
    "delete:after-data-drop",  # data/parity blocks dropped
    "delete:after-commit",     # commit logged
)

#: Named stages a stripe migration (background rebalance) can crash at.
#: The protocol is copy-then-republish-then-GC: until republish, reads
#: route via the old placement (source copies intact); after republish
#: the destination serves and only the source GC is outstanding.
MIGRATE_CRASH_POINTS = (
    "migrate:after-copy",       # destinations hold copies; metadata still points at sources
    "migrate:after-republish",  # metadata republished; source copies not yet GC'd
)

CRASH_POINTS = PUT_CRASH_POINTS + DELETE_CRASH_POINTS + MIGRATE_CRASH_POINTS


class CoordinatorCrash(RuntimeError):
    """The coordinator died mid-operation (at a named WAL crash point)."""


class QuorumLost(RuntimeError):
    """A metadata republish could not reach a majority of the object's
    meta-replica holders.

    Raised instead of installing a minority-epoch snapshot: a
    partition-stranded coordinator that bumped the epoch on the nodes it
    can still see would split-brain the object's metadata against the
    majority side.  Callers (repair, rebalance) treat this as a typed
    deferral — re-attempt after the partition heals."""


@dataclass(frozen=True)
class WalRecord:
    """One append-only log entry.

    ``blocks`` lists every (node_id, block_id) the operation touches so
    roll-back/redo can find orphans without any other metadata;
    ``block_sizes`` carries their real byte sizes for GC accounting.
    ``seq`` orders records within one operation (intent=0, outcome=1).
    """

    op_id: int
    seq: int
    phase: str  # "intent" | "commit" | "abort"
    op: str  # "put" | "delete"
    store_kind: str  # "fac" | "fixed"
    object_name: str
    epoch: int = 0
    blocks: tuple[tuple[int, str], ...] = ()
    block_sizes: tuple[int, ...] = ()
    replica_nodes: tuple[int, ...] = ()

    PHASES = ("intent", "commit", "abort")

    def __post_init__(self) -> None:
        if self.phase not in self.PHASES:
            raise ValueError(f"unknown WAL phase {self.phase!r}; known: {self.PHASES}")


@dataclass(frozen=True)
class MetaReplica:
    """One node's copy of an object's durable metadata.

    The ``payload`` dict stands in for the serialized location/placement
    map whose wire cost the stores charge when replicating it (the
    paper's 8 bytes per location entry, plus the footer).  Snapshots are
    taken at publish time, so a replica never aliases live state; repair
    republishes with a bumped ``epoch`` after relocating blocks, and
    recovery's quorum read takes the newest epoch it can reach.
    """

    object_name: str
    epoch: int
    store_kind: str  # "fac" | "fixed"
    payload: dict = field(compare=False)


class WalWriter:
    """Per-store WAL plumbing: op ids, record append + mirroring, crash points.

    One writer serves one store; op ids are unique within it.  Records
    are appended to the coordinator's log and mirrored to the object's
    metadata replica nodes, so :meth:`repro.cluster.cluster.Cluster.wal_records`
    can reconstruct the log from any surviving replica holder.
    """

    def __init__(self, cluster, enabled: bool = True) -> None:
        self.cluster = cluster
        self.enabled = enabled
        self._next_op_id = 0

    def new_op_id(self) -> int:
        self._next_op_id += 1
        return self._next_op_id

    def append(self, coordinator, record: WalRecord) -> None:
        """Log ``record`` at the coordinator and mirror it to the
        object's replica nodes (idempotent per record)."""
        if not self.enabled:
            return
        tracer = self.cluster.sim.tracer
        if tracer is not None:
            tracer.instant(
                "wal.append", cat="wal",
                op=record.op, phase=record.phase, obj=record.object_name,
                op_id=record.op_id,
            )
        coordinator.wal_append(record)
        for nid in record.replica_nodes:
            node = self.cluster.node(nid)
            if node is not coordinator and node.alive:
                node.wal_append(record)

    def crash_point(self, coordinator, point: str) -> None:
        """Kill the coordinator here if a FaultInjector armed this point.

        Marks the node dead (liveness listeners fire, failover routes
        new requests elsewhere) and aborts the in-flight operation by
        raising :class:`CoordinatorCrash` — state already written stays
        exactly as a real crash would leave it.
        """
        if not self.enabled:
            return
        if point not in CRASH_POINTS:
            raise ValueError(f"unknown crash point {point!r}")
        injector = getattr(self.cluster, "faults", None)
        if injector is not None and injector.should_crash(coordinator.node_id, point):
            tracer = self.cluster.sim.tracer
            if tracer is not None:
                tracer.instant(
                    "wal.crash", cat="wal", point=point, node=coordinator.node_id
                )
            self.cluster.fail_node(coordinator.node_id)
            raise CoordinatorCrash(point)


def pending_operations(records: list[WalRecord]) -> dict[int, WalRecord]:
    """Intent records whose operation never logged a commit or abort.

    ``records`` is the deduplicated cluster-wide log
    (:meth:`Cluster.wal_records`); returns {op_id: intent_record}.
    """
    intents: dict[int, WalRecord] = {}
    resolved: set[int] = set()
    for record in records:
        if record.phase == "intent":
            intents[record.op_id] = record
        else:
            resolved.add(record.op_id)
    return {op_id: rec for op_id, rec in intents.items() if op_id not in resolved}


def committed_operations(records: list[WalRecord]) -> dict[int, WalRecord]:
    """Intent records of operations that did log a commit."""
    intents = {r.op_id: r for r in records if r.phase == "intent"}
    committed = {r.op_id for r in records if r.phase == "commit"}
    return {op_id: rec for op_id, rec in intents.items() if op_id in committed}
