"""Background repair: rebuild lost and corrupt blocks onto live nodes.

The :class:`RepairManager` is the control loop between failure detection
and durability: it consumes scrub reports (``verify_object``) and node
failures, asks the owning store to repair each damaged stripe via
EC reconstruction (``repair_stripe_process`` on either store), and
accounts the traffic separately from query traffic — repair bytes land
in ``ClusterMetrics.repair_bytes`` via :meth:`ClusterMetrics.record_repair`,
never in ``network_bytes``.

Corruption isolation lives here too: :func:`find_bad_shards` localises
*which* readable shard is damaged by treating candidate shards as
erasures and checking whether the remainder re-encodes consistently —
the standard decode-trial localisation for MDS codes.  Repair is paced
by ``StoreConfig.repair_throttle_bps`` so background reconstruction does
not starve foreground queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

import numpy as np

from repro.cluster.metrics import QueryMetrics
from repro.cluster.overload import BACKGROUND_PRIORITY
from repro.cluster.simcore import QueueFull
from repro.core.wal import QuorumLost
from repro.ec.reed_solomon import CodeParams
from repro.ec.stripe import DecodeError, decode_stripe, encode_stripe


class RepairError(RuntimeError):
    """A stripe is damaged beyond what the code can localise or rebuild."""


def _consistent(
    params: CodeParams,
    shards: list[np.ndarray | None],
    data_sizes: list[int],
    erased: frozenset[int],
) -> bool:
    """True when the non-erased shards form a consistent codeword.

    Decodes the stripe with ``erased`` positions treated as lost,
    re-encodes, and compares every readable non-erased shard against its
    recomputed value.
    """
    trial: list[np.ndarray | None] = [
        None if (i in erased or s is None) else s for i, s in enumerate(shards)
    ]
    try:
        recovered = decode_stripe(params, trial, data_sizes)
    except DecodeError:
        return False
    expected = encode_stripe(params, recovered).shards()
    for i, shard in enumerate(trial):
        if shard is None:
            continue
        if not np.array_equal(shard, expected[i]):
            return False
    return True


def find_bad_shards(
    params: CodeParams,
    shards: list[np.ndarray | None],
    data_sizes: list[int],
) -> set[int]:
    """Positions of missing or corrupt shards in one stripe.

    ``shards`` holds the n stripe positions in order (data then parity)
    at their true sizes; ``None`` marks an unreadable position.  Returns
    the set of positions needing reconstruction: the missing ones plus
    any readable shard whose bytes are inconsistent with the rest of the
    codeword.  Corruption is localised by decode trials: each candidate
    subset of readable shards is treated as erased, and the smallest
    subset whose exclusion leaves a consistent codeword is the damage.

    Raises :class:`RepairError` when the stripe has lost more positions
    than the code tolerates, or when corruption cannot be localised
    within the remaining erasure budget.
    """
    n = params.n
    if len(shards) != n:
        raise ValueError(f"expected {n} stripe positions, got {len(shards)}")
    missing = {i for i, s in enumerate(shards) if s is None}
    if len(missing) > params.parity:
        raise RepairError(
            f"{len(missing)} positions unreadable; RS({params.n},{params.k}) "
            f"tolerates {params.parity}"
        )
    # Zero-size data blocks are padding the encoder synthesises — they
    # carry no bytes and cannot be corrupt.
    readable = [
        i
        for i, s in enumerate(shards)
        if s is not None and not (i < params.k and data_sizes[i] == 0)
    ]
    budget = params.parity - len(missing)
    for r in range(budget + 1):
        for combo in combinations(readable, r):
            if _consistent(params, shards, data_sizes, frozenset(missing) | frozenset(combo)):
                return missing | set(combo)
    raise RepairError(
        "cannot localise corruption within the code's erasure budget "
        f"({len(missing)} unreadable, {params.parity} tolerated)"
    )


@dataclass
class RepairReport:
    """What one repair run did, and what it cost."""

    objects: list[str] = field(default_factory=list)
    stripes_examined: int = 0
    stripes_repaired: int = 0
    blocks_repaired: int = 0
    #: Stripes skipped because admission control refused the repair's
    #: (background-priority) traffic — retried by a later repair run.
    stripes_deferred: int = 0
    #: Stripes whose metadata republish was refused by the quorum guard
    #: (QuorumLost: a partition strands this coordinator with a minority
    #: of the object's meta-replica holders) — retried after heal.
    stripes_quorum_deferred: int = 0
    repair_bytes: int = 0  # simulated network bytes moved by repair
    started: float = 0.0
    finished: float = 0.0

    @property
    def time_to_repair(self) -> float:
        return self.finished - self.started


class RepairManager:
    """Consumes scrub reports and node failures; rebuilds onto live nodes.

    Wraps one store (``FusionStore`` or ``BaselineStore``).  For a
    ``FusionStore`` the manager also covers objects the store routed to
    its fixed-block fallback, so one manager repairs everything reachable
    through the store it was built for.
    """

    def __init__(self, store) -> None:
        self.store = store
        self.cluster = store.cluster
        self.sim = store.sim
        self.config = store.config

    # -- public entry points (each has a run-the-sim convenience) ---------

    def repair_node(self, node_id: int) -> RepairReport:
        """Repair every stripe that had a block on ``node_id`` (runs sim)."""
        proc = self.sim.process(self.repair_node_process(node_id))
        self.sim.run()
        return proc.value

    def repair_node_process(self, node_id: int):
        targets = [
            (store, name, sid)
            for store in self._stores()
            for name, sid in store.stripes_on_node(node_id)
        ]
        report = yield from self._repair_targets(targets)
        return report

    def repair_from_scrub(self, scrub_report) -> RepairReport:
        """Repair the stripes a scrub flagged (runs the simulation)."""
        proc = self.sim.process(self.repair_from_scrub_process(scrub_report))
        self.sim.run()
        return proc.value

    def repair_from_scrub_process(self, scrub_report):
        targets = []
        try:
            store = self._store_for(scrub_report.object_name)
        except KeyError:
            pass  # deleted since the scrub ran: nothing left to repair
        else:
            damaged = sorted(
                set(scrub_report.corrupt_stripes) | set(scrub_report.incomplete_stripes)
            )
            targets = [(store, scrub_report.object_name, sid) for sid in damaged]
        report = yield from self._repair_targets(targets)
        return report

    def repair_object(self, name: str) -> RepairReport:
        """Examine and repair every stripe of one object (runs the sim)."""
        proc = self.sim.process(self.repair_object_process(name))
        self.sim.run()
        return proc.value

    def repair_object_process(self, name: str):
        targets = []
        try:
            store = self._store_for(name)
        except KeyError:
            pass  # deleted since repair was requested
        else:
            targets = [(store, name, sid) for sid in store.stripes_of(name)]
        report = yield from self._repair_targets(targets)
        return report

    def repair_read_reported(self) -> RepairReport:
        """Drain the cluster's anti-entropy read-repair queue (runs sim).

        Stripes land on ``cluster.read_repairs`` when a foreground read
        had to reconstruct data (degraded or checksum-failed); draining
        them repairs the damage from traffic instead of waiting for the
        next scrub.  Traffic is accounted as ``read_repair_bytes``,
        separate from both query and scrub-repair traffic.
        """
        proc = self.sim.process(self.repair_read_reported_process())
        self.sim.run()
        return proc.value

    def repair_read_reported_process(self):
        queue = self.cluster.read_repairs
        managed = set(self._stores())
        targets = []
        for (kind, name, sid), store in list(queue.items()):
            if store not in managed:
                continue  # another store pair's stripe; leave it queued
            del queue[(kind, name, sid)]
            targets.append((store, name, sid))
        report = yield from self._repair_targets(targets, accounting="read_repair")
        return report

    # -- internals --------------------------------------------------------

    def _stores(self):
        stores = [self.store]
        fallback = getattr(self.store, "fallback_store", None)
        if fallback is not None:
            stores.append(fallback)
        return stores

    def _store_for(self, name: str):
        for store in self._stores():
            if name in store.objects:
                return store
        raise KeyError(f"no object named {name!r} in any managed store")

    def _repair_targets(self, targets, accounting: str = "repair"):
        """Process: repair each (store, object, stripe) target in order.

        One :class:`QueryMetrics` accumulates the whole run's traffic;
        it is *never* passed to ``record_query``, so repair bytes stay
        out of the query totals and land in ``record_repair`` — or, for
        ``accounting="read_repair"`` runs, ``record_read_repair`` —
        instead.

        Repair runs in the background priority lane: under the
        ``shed-lowest-priority`` admission policy its requests are the
        first evicted when foreground queries contend for a full queue.
        """
        metrics = QueryMetrics(priority=BACKGROUND_PRIORITY)
        report = RepairReport(started=self.sim.now)
        tracer = self.sim.tracer
        run_span = (
            tracer.begin("repair_run", cat="repair", targets=len(targets))
            if tracer is not None
            else None
        )
        touched: set[str] = set()
        for store, name, sid in targets:
            if name not in store.objects:
                # Deleted (or crash-rolled-back) between scheduling and
                # execution: nothing to repair, and looking it up would
                # blow up the whole run.
                continue
            try:
                written = yield from store.repair_stripe_process(name, sid, metrics)
            except QueueFull:
                # The cluster is too busy to admit background repair
                # traffic right now: back off and leave the stripe for a
                # later run instead of amplifying the overload.
                report.stripes_deferred += 1
                metrics.requests_shed += 1
                yield from self._throttle(metrics, report.started)
                continue
            except QuorumLost:
                # Partitioned away from the metadata majority: repairing
                # this stripe now would install a minority-epoch snapshot
                # (split-brain).  Leave it for a post-heal run.
                report.stripes_deferred += 1
                report.stripes_quorum_deferred += 1
                yield from self._throttle(metrics, report.started)
                continue
            report.stripes_examined += 1
            if written:
                report.stripes_repaired += 1
                report.blocks_repaired += written
                touched.add(name)
            yield from self._throttle(metrics, report.started)
        report.objects = sorted(touched)
        report.repair_bytes = metrics.network_bytes
        report.finished = self.sim.now
        if run_span is not None:
            tracer.finish(
                run_span,
                stripes_repaired=report.stripes_repaired,
                blocks_repaired=report.blocks_repaired,
            )
        record = (
            self.cluster.metrics.record_read_repair
            if accounting == "read_repair"
            else self.cluster.metrics.record_repair
        )
        record(metrics.network_bytes, report.blocks_repaired, report.time_to_repair)
        return report

    def _throttle(self, metrics: QueryMetrics, started: float):
        """Pace repair to ``repair_throttle_bps`` of simulated traffic."""
        bps = self.config.repair_throttle_bps
        if bps <= 0:
            return
        target_elapsed = metrics.network_bytes / bps
        lag = target_elapsed - (self.sim.now - started)
        if lag > 0:
            yield self.sim.timeout(lag)
