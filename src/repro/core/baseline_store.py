"""The baseline object store (MinIO/Ceph-like).

Erasure-codes an object into fixed-size blocks with no knowledge of its
internal structure, so column chunks straddle block — and therefore node —
boundaries.  Queries run entirely at a coordinator node, which first
*reassembles* every needed column chunk by fetching its fragments from the
nodes holding them (the paper's Figure 5 behaviour) and only then decodes,
filters and projects.  The one optimisation it shares with Fusion is
footer-based row-group pruning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.membership import install_membership
from repro.cluster.qos import QuotaExceeded, install_qos
from repro.cluster.metrics import QueryMetrics
from repro.cluster.overload import (
    Deadline,
    DeadlineExceeded,
    PartialResult,
    arm_deadline,
    check_deadline,
    fail_query,
    install_admission_control,
    install_circuit_breakers,
)
from repro.cluster.simcore import QueueFull, all_of
from repro.core import engine
from repro.core.cache import LruDict
from repro.core.config import StoreConfig
from repro.core.fixed import FixedLayout, build_fixed_layout
from repro.core.location_map import ChecksumError, chunk_checksum
from repro.core.scatter_gather import SHED, RemoteOp, execute_remote_ops
from repro.core.wal import MetaReplica, QuorumLost, WalRecord, WalWriter
from repro.ec.stripe import DecodeError, decode_stripe, encode_stripe
from repro.obs.audit import PushdownAuditLog
from repro.obs.registry import MetricsRegistry
from repro.obs.timeseries import install_telemetry
from repro.obs.tracer import Tracer, traced
from repro.format.metadata import FileMetadata
from repro.format.pages import decode_column_chunk
from repro.format.reader import read_metadata
from repro.sql.ast_nodes import Query
from repro.sql.local import QueryResult
from repro.sql.parser import parse
from repro.sql.planner import PhysicalPlan, plan as make_plan
from repro.sql.predicate import eval_leaf


class ObjectNotFound(KeyError):
    """Raised when querying an object that was never Put."""


@dataclass
class StoredFixedObject:
    """Placement record for one object striped into fixed blocks."""

    name: str
    metadata: FileMetadata
    total_bytes: int
    layout: FixedLayout
    data_block_nodes: dict[int, int] = field(default_factory=dict)  # block idx -> node
    parity_block_nodes: dict[tuple[int, int], int] = field(default_factory=dict)
    header_bytes: bytes = b""
    trailer_bytes: bytes = b""
    #: Nodes holding this object's metadata replica (placement maps +
    #: block checksums), chosen as the coordinator slot's successors.
    replica_nodes: tuple[int, ...] = ()
    #: CRC of each stored block's payload at Put time, by block id.
    block_checksums: dict[str, int] = field(default_factory=dict)
    #: Bumped on every replica republish (repair relocations).
    meta_epoch: int = 0

    def data_block_id(self, index: int) -> str:
        return f"{self.name}/b{index}"

    def parity_block_id(self, stripe: int, j: int) -> str:
        return f"{self.name}/s{stripe}/p{j}"


@dataclass
class PutReport:
    """What a Put produced: layout facts plus simulated latency."""

    object_name: str
    strategy: str
    stored_bytes: int
    data_bytes: int
    overhead_vs_optimal: float
    layout_build_seconds: float  # real wall-clock of the layout algorithm
    simulated_put_seconds: float
    num_stripes: int
    fallback: bool = False


class BaselineStore:
    """Fixed-block erasure-coded store with coordinator-side execution."""

    def __init__(self, cluster: Cluster, config: StoreConfig | None = None) -> None:
        self.cluster = cluster
        self.config = config or StoreConfig()
        self.sim = cluster.sim
        self.objects: dict[str, StoredFixedObject] = {}
        # Decoded-value memoisation: chunks are immutable once Put, and
        # simulated decode time is charged independently, so re-decoding
        # the same chunk for every simulated query would only burn real
        # wall-clock in benchmarks.  Bounded LRU, invalidated on
        # put/delete so a reused name never serves stale values.
        self._decode_cache: LruDict[tuple[str, int, str], np.ndarray] = LruDict(
            self.config.decode_cache_entries
        )
        # Degraded-read reconstruction cache (see FusionStore).
        self._degraded_block_cache: LruDict[tuple[str, int], np.ndarray] = LruDict(
            self.config.degraded_cache_entries
        )
        # Put/Delete write-ahead log.  When this store serves as a
        # FusionStore's fixed-block fallback, the owner overwrites this
        # with its own writer so both stores share one op-id space.
        self.wal = WalWriter(cluster, self.config.wal_enabled)
        cluster.health.suspicion_threshold = self.config.suspicion_threshold
        cluster.health.greylist_factor = self.config.greylist_latency_factor
        cluster.add_liveness_listener(self._on_liveness)
        # Observability (repro.obs): metadata-plane, never schedules
        # simulation events.  The baseline never evaluates the Cost
        # Equation, so its audit log stays empty unless a FusionStore
        # owner replaces it with the shared one.
        if self.config.tracing_enabled and self.sim.tracer is None:
            self.sim.tracer = Tracer(self.sim)
        if self.config.metrics_registry_enabled and cluster.metrics.registry is None:
            cluster.metrics.registry = MetricsRegistry()
        self.audit = PushdownAuditLog(self.sim, self.config.pushdown_audit_enabled)
        # Overload protection (shared with FusionStore when this store is
        # its fallback): both installs are idempotent no-ops at the
        # default knobs.
        install_admission_control(cluster, self.config)
        install_circuit_breakers(cluster, self.config)
        # Elastic membership (shared with a FusionStore owner; idempotent
        # and a no-op at the default membership_enabled=False knob).
        install_membership(cluster, self.config)
        # Per-tenant QoS (shared with a FusionStore owner; idempotent and
        # a no-op at the default qos_enabled=False knob).
        install_qos(cluster, self.config)
        # Continuous telemetry: scraper + SLO engine + exemplars.  The
        # scraper rides the kernel's clock-listener hook (observe-only,
        # never schedules events); no-op at the default knobs and
        # idempotent for the store pair sharing one cluster.
        install_telemetry(cluster, self.config)

    def _on_liveness(self, node_id: int, alive: bool) -> None:
        # Reconstructions cached while a node was down may differ from
        # what a direct read now returns (and vice versa): drop them.
        self._degraded_block_cache.clear()

    def _usable(self, node) -> bool:
        """Node is alive, not suspect, not greylisted (fail-slow), and
        its circuit breaker admits ops.  Greylisted nodes route to
        degraded reconstruction like the FusionStore's — unless the
        min-healthy floor (:meth:`_floor_attempt`) says reconstruction
        would itself be starved of usable sources."""
        return (
            node.alive
            and self.cluster.routable(node.node_id)
            and not self.cluster.health.is_greylisted(node.node_id)
        )

    def _floor_attempt(self, obj, block_index: int) -> bool:
        """Min-healthy-floor guard: True when an op should still attempt
        its non-usable holder because the block's stripe has fewer than
        k usable sources (degraded reconstruction would be forced onto
        non-usable nodes anyway).  Only evaluated after :meth:`_usable`
        fails, so fault-free runs never pay the scan."""
        k = self.config.code.k
        stripe = obj.layout.stripe_of(block_index)
        holder_ids = [
            obj.data_block_nodes[b.index] for b in obj.layout.stripe_blocks(stripe)
        ] + [
            nid
            for (s, _j), nid in obj.parity_block_nodes.items()
            if s == stripe
        ]
        usable = sum(1 for nid in holder_ids if self._usable(self.cluster.node(nid)))
        return usable < k

    def _invalidate_object_caches(self, name: str) -> None:
        """Drop every cached artefact derived from object ``name``."""
        self._decode_cache.evict_where(lambda key: key[0] == name)
        self._degraded_block_cache.evict_where(lambda key: key[0] == name)

    # -- Put -----------------------------------------------------------------

    def put(self, name: str, data: bytes, tenant: str | None = None) -> PutReport:
        """Store an object, running the simulation to completion."""
        proc = self.sim.process(self.put_process(name, data, tenant=tenant))
        self.sim.run()
        return proc.value

    def put_process(self, name: str, data: bytes, tenant: str | None = None):
        """Simulated Put: client -> coordinator -> striped across nodes.

        ``tenant`` charges the Put against that tenant's quota buckets;
        see ``FusionStore.put_process`` for the policy semantics.
        """
        if tenant is not None and self.cluster.qos is not None:
            self.cluster.qos.admit(tenant, nbytes=len(data))
        report = yield from traced(
            self.sim, self._put_body(name, data), "put", "store",
            obj=name, store="baseline",
        )
        return report

    def _put_body(self, name: str, data: bytes):
        if name in self.objects:
            raise ValueError(f"object {name!r} already exists (updates are fresh inserts)")
        # A reused name (put after delete) must never serve bytes decoded
        # from its previous incarnation.
        self._invalidate_object_caches(name)
        start = self.sim.now
        # Put budget, checked between phases (see FusionStore._put_body).
        deadline = Deadline.from_config(self.sim, self.config)
        config = self.config
        metadata = read_metadata(data)
        layout = build_fixed_layout(config.code, len(data), config.real_block_size)
        coordinator = self.cluster.coordinator_for(name)

        obj = StoredFixedObject(
            name=name,
            metadata=metadata,
            total_bytes=len(data),
            layout=layout,
        )
        obj.header_bytes = data[:4]
        footer_start = metadata.all_chunks()[-1].end_offset if metadata.all_chunks() else 4
        obj.trailer_bytes = data[footer_start:]
        raw = np.frombuffer(data, dtype=np.uint8)

        # Precompute every placement so the WAL intent can name all the
        # blocks the operation will write.  Placement draws stay in seed
        # order (one per stripe); the metadata replica set is derived
        # from the coordinator's hash slot (its successors) rather than
        # drawn, so the shared placement RNG is not perturbed.
        stripe_nodes: list[list[int]] = []
        wal_blocks: list[tuple[int, str]] = []
        wal_sizes: list[int] = []
        for stripe in range(layout.num_stripes):
            blocks = layout.stripe_blocks(stripe)
            nodes = self.cluster.place_stripe(f"{name}/s{stripe}", config.code.n)
            stripe_nodes.append(nodes)
            max_size = max(b.size for b in blocks)
            for j, block in enumerate(blocks):
                obj.data_block_nodes[block.index] = nodes[j]
                wal_blocks.append((nodes[j], obj.data_block_id(block.index)))
                wal_sizes.append(block.size)
            for pj in range(config.code.parity):
                node_id = nodes[config.code.k + pj] if config.code.k + pj < len(nodes) else nodes[-1]
                obj.parity_block_nodes[(stripe, pj)] = node_id
                wal_blocks.append((node_id, obj.parity_block_id(stripe, pj)))
                wal_sizes.append(max_size)
        replica_count = config.resolved_metadata_replicas(self.cluster.num_nodes)
        if self.cluster.membership is not None:
            # Ring-derived replica set: stays on active members as the
            # topology changes (the successor scheme below would pin
            # replicas to drained slots).
            obj.replica_nodes = tuple(
                self.cluster.membership.placement_for(f"{name}/meta", replica_count)
            )
        else:
            obj.replica_nodes = tuple(
                (coordinator.node_id + i) % self.cluster.num_nodes for i in range(replica_count)
            )

        op_id = self.wal.new_op_id()
        self.wal.append(
            coordinator,
            WalRecord(
                op_id=op_id,
                seq=0,
                phase="intent",
                op="put",
                store_kind="fixed",
                object_name=name,
                blocks=tuple(wal_blocks),
                block_sizes=tuple(wal_sizes),
                replica_nodes=obj.replica_nodes,
            ),
        )
        self.wal.crash_point(coordinator, "put:after-intent")

        # Ship the object from the client to the coordinator.
        yield from self.cluster.network.transfer(
            self.cluster.client, coordinator.endpoint, config.scaled(len(data))
        )
        if deadline is not None:
            deadline.check("put transfer")

        # Encode and distribute stripe by stripe.
        writes = []
        for stripe in range(layout.num_stripes):
            blocks = layout.stripe_blocks(stripe)
            payloads = [raw[b.start : b.end] for b in blocks]
            encode_bytes = sum(p.size for p in payloads)
            yield from coordinator.compute(
                encode_bytes * config.size_scale / coordinator.cpu_config.decode_bps
            )
            encoded = encode_stripe(config.code, list(payloads))
            nodes = stripe_nodes[stripe]
            for j, block in enumerate(blocks):
                bid = obj.data_block_id(block.index)
                obj.block_checksums[bid] = chunk_checksum(encoded.data_blocks[j])
                writes.append(
                    self.sim.process(
                        self._write_block(coordinator, nodes[j], bid, encoded.data_blocks[j])
                    )
                )
            for pj, parity in enumerate(encoded.parity_blocks):
                bid = obj.parity_block_id(stripe, pj)
                obj.block_checksums[bid] = chunk_checksum(parity)
                writes.append(
                    self.sim.process(
                        self._write_block(
                            coordinator, obj.parity_block_nodes[(stripe, pj)], bid, parity
                        )
                    )
                )
        yield all_of(self.sim, writes)
        if deadline is not None:
            deadline.check("put writes")
        self.wal.crash_point(coordinator, "put:after-data")

        # Materialize metadata replicas.  The fixed-block store's
        # placement map is a handful of dict entries per block; the
        # paper charges map replication only for Fusion's chunk-granular
        # location map, so this publish is metadata-plane (no simulated
        # bytes — fault-free runs stay event-identical to the seed).
        replica = self._meta_snapshot(obj)
        for nid in obj.replica_nodes:
            node = self.cluster.node(nid)
            if node.alive:
                node.put_meta(name, replica)
        self.wal.crash_point(coordinator, "put:after-meta")

        self.wal.append(
            coordinator,
            WalRecord(
                op_id=op_id,
                seq=1,
                phase="commit",
                op="put",
                store_kind="fixed",
                object_name=name,
                replica_nodes=obj.replica_nodes,
            ),
        )
        self.wal.crash_point(coordinator, "put:after-commit")

        # Atomic visibility: the object appears only after commit.
        self.objects[name] = obj
        return PutReport(
            object_name=name,
            strategy="fixed",
            stored_bytes=layout.stored_bytes,
            data_bytes=len(data),
            overhead_vs_optimal=self._overhead_vs_optimal(layout),
            layout_build_seconds=0.0,
            simulated_put_seconds=self.sim.now - start,
            num_stripes=layout.num_stripes,
        )

    def _overhead_vs_optimal(self, layout: FixedLayout) -> float:
        optimal = layout.total_bytes * (1.0 + self.config.code.optimal_overhead)
        return (layout.stored_bytes - optimal) / optimal

    def _write_block(self, coordinator, node_id: int, block_id: str, payload: np.ndarray):
        node = self.cluster.node(node_id)
        yield from self.cluster.network.transfer(
            coordinator.endpoint, node.endpoint, self.config.scaled(payload.size)
        )
        yield from node.disk.read(self.config.scaled(payload.size))  # write ~ read cost
        node.put_block(block_id, payload)

    # -- Metadata replicas ------------------------------------------------------

    def _meta_snapshot(self, obj: StoredFixedObject) -> MetaReplica:
        """Deep snapshot of the object's durable metadata for a replica
        node (never aliases live placement state)."""
        return MetaReplica(
            object_name=obj.name,
            epoch=obj.meta_epoch,
            store_kind="fixed",
            payload={
                "metadata": obj.metadata,
                "total_bytes": obj.total_bytes,
                "layout": obj.layout,
                "data_block_nodes": dict(obj.data_block_nodes),
                "parity_block_nodes": dict(obj.parity_block_nodes),
                "replica_nodes": tuple(obj.replica_nodes),
                "block_checksums": dict(obj.block_checksums),
                "header": obj.header_bytes,
                "trailer": obj.trailer_bytes,
            },
        )

    def _republish_meta(self, obj: StoredFixedObject) -> None:
        """Repair relocated blocks: push a fresh snapshot (bumped epoch)
        to the reachable replica holders.  Metadata-plane operation.

        Quorum-guarded exactly like the Fusion store's republish: with
        3+ holders, reaching only a minority raises
        :class:`~repro.core.wal.QuorumLost` instead of installing a
        minority-epoch snapshot (split-brain guard)."""
        holders = obj.replica_nodes
        coordinator = self.cluster.coordinator_for(obj.name)
        reachable = [
            nid
            for nid in holders
            if self.cluster.node(nid).alive
            and self.cluster.reachable(coordinator.node_id, nid)
        ]
        if len(holders) >= 3 and len(reachable) < len(holders) // 2 + 1:
            self.cluster.metrics.quorum_lost_total += 1
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.instant(
                    "meta.quorum_lost", cat="meta", object=obj.name,
                    reachable=len(reachable), holders=len(holders),
                )
            raise QuorumLost(
                f"republish of {obj.name!r} reaches {len(reachable)}/"
                f"{len(holders)} metadata replica holders (majority needed)"
            )
        obj.meta_epoch += 1
        replica = self._meta_snapshot(obj)
        for nid in reachable:
            self.cluster.node(nid).put_meta(obj.name, replica)
        # Placement changed: cached decodes/reconstructions may describe
        # bytes about to be GC'd from their old node.  Real-bytes caches
        # only — dropping them never perturbs the event stream.
        self._invalidate_object_caches(obj.name)


    def _sync_meta_replicas(self, obj) -> int:
        """Anti-entropy for metadata replicas: push the current-epoch
        snapshot to alive holders whose replica is missing or older
        (post-partition-heal convergence onto the majority epoch).
        Metadata-plane; returns the number of holders updated."""
        replica = None
        synced = 0
        for nid in obj.replica_nodes:
            node = self.cluster.node(nid)
            if not node.alive:
                continue
            existing = node.get_meta(obj.name)
            if (
                existing is not None
                and existing.store_kind == "fixed"
                and existing.epoch >= obj.meta_epoch
            ):
                continue
            if replica is None:
                replica = self._meta_snapshot(obj)
            node.put_meta(obj.name, replica)
            synced += 1
        return synced

    def _install_from_replica(self, replica: MetaReplica) -> StoredFixedObject:
        """Recovery roll-forward: rebuild the in-memory object from a
        surviving metadata replica snapshot."""
        p = replica.payload
        obj = StoredFixedObject(
            name=replica.object_name,
            metadata=p["metadata"],
            total_bytes=p["total_bytes"],
            layout=p["layout"],
            data_block_nodes=dict(p["data_block_nodes"]),
            parity_block_nodes=dict(p["parity_block_nodes"]),
            header_bytes=p["header"],
            trailer_bytes=p["trailer"],
            replica_nodes=tuple(p["replica_nodes"]),
            block_checksums=dict(p["block_checksums"]),
            meta_epoch=replica.epoch,
        )
        self.objects[obj.name] = obj
        self._invalidate_object_caches(obj.name)
        return obj

    # -- Integrity --------------------------------------------------------------

    def _verify_block(self, obj: StoredFixedObject, block_id: str, data) -> None:
        """Whole-block reads must match the CRC recorded at Put; raises
        :class:`ChecksumError` (non-retryable — the scatter-gather layer
        falls back to degraded reconstruction)."""
        if not self.config.checksum_verify:
            return
        want = obj.block_checksums.get(block_id)
        if want and chunk_checksum(data) != want:
            raise ChecksumError(f"block {block_id} of {obj.name!r} failed CRC")

    # -- Get -------------------------------------------------------------------

    def get(
        self,
        name: str,
        offset: int = 0,
        size: int | None = None,
        tenant: str | None = None,
    ) -> bytes:
        """Retrieve object bytes — the paper's Get(offset, size) API.

        Runs the simulation to completion; ``size=None`` means to the end.
        """
        proc = self.sim.process(
            self.get_process(name, offset=offset, size=size, tenant=tenant)
        )
        self.sim.run()
        return proc.value

    def get_process(
        self,
        name: str,
        query: QueryMetrics | None = None,
        offset: int = 0,
        size: int | None = None,
        tenant: str | None = None,
    ):
        """Simulated Get: fetch the covering block fragments to the
        coordinator and reassemble the byte range."""
        if query is None:
            # Deadlines and the tenant id ride on the metrics object;
            # synthesize a carrier when either needs one so bare Gets
            # are budgeted and fair-scheduled too.
            deadline = Deadline.from_config(self.sim, self.config)
            if deadline is not None or tenant is not None:
                query = QueryMetrics()
                query.deadline = deadline
        else:
            arm_deadline(self.sim, self.config, query)
        if tenant is not None:
            query.tenant = tenant
            if self.cluster.qos is not None:
                self.cluster.qos.admit(
                    tenant, query, nbytes=0 if size is None else size
                )
        try:
            data = yield from traced(
                self.sim, self._get_body(name, query, offset, size), "get", "store",
                obj=name, store="baseline",
            )
        except DeadlineExceeded:
            if query is not None:
                query.deadline_exceeded += 1
            raise
        return data

    def _get_body(self, name: str, query: QueryMetrics | None, offset: int, size: int | None):
        obj = self._lookup(name)
        if size is None:
            size = obj.total_bytes - offset
        if offset < 0 or size < 0 or offset + size > obj.total_bytes:
            raise ValueError(
                f"range [{offset}, {offset + size}) outside object of "
                f"size {obj.total_bytes}"
            )
        if size == 0:
            return b""
        coordinator = self.cluster.coordinator_for(name)
        fragments = obj.layout.locate(offset, size)
        parts = yield from execute_remote_ops(
            self.cluster,
            coordinator,
            [
                self._fetch_fragment_op(
                    obj, coordinator, f.block_index, f.block_offset, f.length, query
                )
                for f in fragments
            ],
            query,
            self.config.enable_rpc_batching,
            config=self.config,
        )
        return b"".join(parts)

    def _fetch_fragment_op(self, obj, coordinator, block_index, offset, length, query) -> RemoteOp:
        """Op reading one block fragment on its node and shipping it back."""
        node = self.cluster.node(obj.data_block_nodes[block_index])

        def degraded():
            block = yield from self._degraded_block_read(
                obj, coordinator, block_index, query
            )
            return block[offset : offset + length]

        if not self._usable(node) and not (
            node.alive and self._floor_attempt(obj, block_index)
        ):
            return RemoteOp(standalone=degraded)

        def execute():
            check_deadline(query, "block fragment")
            data = yield from node.read_block_range(
                obj.data_block_id(block_index), offset, length, self.config.size_scale, query
            )
            if offset == 0 and length == obj.layout.blocks[block_index].size:
                # Whole-block read (the default I/O granularity): the
                # recorded CRC covers exactly these bytes.
                self._verify_block(obj, obj.data_block_id(block_index), data)
            return self.config.scaled(length), data

        return RemoteOp(node=node, execute=execute, fallback=degraded)

    def _degraded_block_read(self, obj, coordinator, block_index: int, query):
        """Reconstruct one lost block at the coordinator from its stripe.

        Gathers k surviving shards (skipping dead nodes), RS-decodes, and
        returns the target block's bytes.  Reconstructed blocks are cached
        by content; simulated costs are charged on every call.
        """
        block = yield from traced(
            self.sim,
            self._degraded_block_read_body(obj, coordinator, block_index, query),
            "degraded_read", "store", obj=obj.name, block=obj.data_block_id(block_index),
        )
        return block

    def _degraded_block_read_body(self, obj, coordinator, block_index: int, query):
        import numpy as np

        check_deadline(query, "degraded read")
        if query is not None:
            query.degraded_reads += 1
        k, n = self.config.code.k, self.config.code.n
        stripe = obj.layout.stripe_of(block_index)
        blocks = obj.layout.stripe_blocks(stripe)
        target_j = block_index - stripe * k
        data_sizes = [b.size for b in blocks] + [0] * (k - len(blocks))

        shards: list[np.ndarray | None] = [None] * n
        for i in range(len(blocks), k):
            shards[i] = np.zeros(0, dtype=np.uint8)

        # Pick the surviving shards to gather (first k in stripe order,
        # preferring nodes the health tracker trusts), then fetch them as
        # one scatter-gather round (see FusionStore).
        pending = sum(1 for s in shards if s is not None)
        candidates: list[tuple[int, object, str]] = []
        for i in range(n):
            if shards[i] is not None:
                continue
            if i < k:
                bid = obj.data_block_id(blocks[i].index)
                nid = obj.data_block_nodes[blocks[i].index]
            else:
                bid = obj.parity_block_id(stripe, i - k)
                nid = obj.parity_block_nodes[(stripe, i - k)]
            node = self.cluster.node(nid)
            if not node.alive or not node.has_block(bid):
                continue
            if not self.cluster.reachable(coordinator.node_id, node.node_id):
                # Partitioned away: the fetch RPC is deterministically
                # lost, so don't waste the timeout discovering it.
                continue
            candidates.append((i, node, bid))
        # Healthy (non-greylisted) shards first, then greylisted
        # (fail-slow: they answer, slowly), suspect last.
        health = self.cluster.health
        healthy = [
            c for c in candidates
            if health.usable(c[1].node_id) and not health.is_greylisted(c[1].node_id)
        ]
        grey = [
            c for c in candidates
            if health.usable(c[1].node_id) and health.is_greylisted(c[1].node_id)
        ]
        suspect = [c for c in candidates if not health.usable(c[1].node_id)]
        gather = (healthy + grey + suspect)[: max(0, k - pending)]

        def fetch_op(node, bid: str) -> RemoteOp:
            def execute():
                data = yield from node.read_block(bid, self.config.size_scale, query)
                return self.config.scaled(data.size), data

            return RemoteOp(node=node, execute=execute)

        payloads = yield from execute_remote_ops(
            self.cluster,
            coordinator,
            [fetch_op(node, bid) for _i, node, bid in gather],
            query,
            self.config.enable_rpc_batching,
            config=self.config,
        )
        for (i, _node, _bid), data in zip(gather, payloads):
            shards[i] = data

        gathered = sum(s.size for s in shards if s is not None)
        yield from coordinator.compute(
            gathered * self.config.size_scale / coordinator.cpu_config.decode_bps, query
        )
        cache_key = (obj.name, block_index)
        cached = self._degraded_block_cache.get(cache_key)
        if cached is None:
            recovered = decode_stripe(self.config.code, shards, data_sizes)
            cached = recovered[target_j]
            self._degraded_block_cache[cache_key] = cached
        want = obj.block_checksums.get(obj.data_block_id(block_index))
        if self.config.checksum_verify and want and chunk_checksum(cached) != want:
            # A gathered shard was silently corrupt (possibly the target
            # block itself): checksum-guided recovery over every
            # reachable shard.
            if query is not None:
                query.checksum_failures += 1
            rebuilt = yield from self._verified_block_recovery(
                obj, stripe, target_j, data_sizes, coordinator, query
            )
            if rebuilt is not None:
                cached = rebuilt
                self._degraded_block_cache[cache_key] = cached
        # Anti-entropy read-repair: this foreground read had to
        # reconstruct — queue the stripe for background repair.
        if self.config.read_repair_enabled:
            self.cluster.enqueue_read_repair(self, "fixed", obj.name, stripe)
        return cached

    def _verified_block_recovery(
        self, obj, stripe: int, target_j: int, data_sizes, coordinator, query
    ):
        """Checksum-guided reconstruction of one data block: gather every
        reachable shard, localise corrupt ones by decode trials, decode
        with them excluded.  Returns the block's bytes, or None when the
        stripe is damaged beyond what the code can localise."""
        from repro.core.repair import RepairError, find_bad_shards

        k, n = self.config.code.k, self.config.code.n
        blocks = obj.layout.stripe_blocks(stripe)
        shards: list[np.ndarray | None] = []
        for i in range(n):
            if i < k and i >= len(blocks):
                shards.append(np.zeros(0, dtype=np.uint8))
                continue
            if i < k:
                bid = obj.data_block_id(blocks[i].index)
                nid = obj.data_block_nodes[blocks[i].index]
            else:
                bid = obj.parity_block_id(stripe, i - k)
                nid = obj.parity_block_nodes[(stripe, i - k)]
            node = self.cluster.node(nid)
            if (
                not node.alive
                or not self.cluster.reachable(coordinator.node_id, node.node_id)
                or not node.has_block(bid)
            ):
                shards.append(None)
                continue
            data = yield from node.read_block(bid, self.config.size_scale, query)
            yield from self.cluster.network.transfer(
                node.endpoint, coordinator.endpoint, self.config.scaled(data.size), query
            )
            shards.append(data)
        yield from coordinator.compute(
            sum(s.size for s in shards if s is not None)
            * self.config.size_scale
            / coordinator.cpu_config.decode_bps,
            query,
        )
        try:
            bad = find_bad_shards(self.config.code, shards, data_sizes)
            good = [s if i not in bad else None for i, s in enumerate(shards)]
            recovered = decode_stripe(self.config.code, good, data_sizes)
        except (RepairError, DecodeError):
            return None
        return recovered[target_j]

    # -- Query -----------------------------------------------------------------

    def query(
        self, sql: str | Query, tenant: str | None = None
    ) -> tuple[QueryResult, QueryMetrics]:
        """Run one query alone on an idle cluster (runs the simulation)."""
        metrics = QueryMetrics()
        proc = self.sim.process(self.query_process(sql, metrics, tenant=tenant))
        self.sim.run()
        return proc.value, metrics

    def query_process(
        self, sql: str | Query, metrics: QueryMetrics, tenant: str | None = None
    ):
        """Simulated query: reassemble needed chunks, execute locally.

        ``tenant`` stamps the metrics and charges the query against that
        tenant's quota buckets (typed QuotaExceeded / demotion per
        policy) before any device work, exactly like FusionStore.
        """
        query = parse(sql) if isinstance(sql, str) else sql
        if tenant is not None:
            metrics.tenant = tenant
            if self.cluster.qos is not None:
                metrics.start_time = self.sim.now
                try:
                    self.cluster.qos.admit(tenant, metrics)
                except QuotaExceeded:
                    fail_query(self.cluster, metrics, quota=True)
                    raise
        arm_deadline(self.sim, self.config, metrics)
        try:
            result = yield from traced(
                self.sim, self._query_body(query, metrics), "query", "store",
                metrics=metrics, table=query.table, store="baseline",
            )
        except DeadlineExceeded:
            fail_query(self.cluster, metrics, deadline=True)
            raise
        except QueueFull as exc:
            fail_query(self.cluster, metrics, shed=exc.shed)
            raise
        return result

    def _query_body(self, query: Query, metrics: QueryMetrics):
        obj = self._lookup(query.table)
        physical = make_plan(query, obj.metadata.schema)
        coordinator = self.cluster.coordinator_for(obj.name)
        metrics.start_time = self.sim.now

        row_groups = engine.prune_row_groups(physical, obj.metadata)
        columns = engine.needed_columns(physical, query)
        needed = [(rg, col) for rg in row_groups for col in columns]
        allow_shed = (
            self.config.allow_partial_results
            and not query.has_aggregates()
            and not query.group_by
        )

        # Stage 1: fetch every needed chunk to the coordinator, in parallel.
        fetch_body = (
            self._fetch_chunks_block_granular(obj, coordinator, needed, metrics, allow_shed)
            if self.config.baseline_whole_block_reads
            else self._fetch_chunks_byte_granular(obj, coordinator, needed, metrics, allow_shed)
        )
        decoded, shed_ops = yield from traced(
            self.sim, fetch_body, "fetch_stage", "store", chunks=len(needed)
        )
        # A shed fetch leaves its chunk unreadable; drop the whole row
        # group and report the query as partial.
        shed_rgs = {rg for (rg, _col), values in decoded.items() if values is SHED}
        kept = [rg for rg in row_groups if rg not in shed_rgs]

        # Stage 2: local evaluation at the coordinator.
        eval_span = (
            self.sim.tracer.begin("eval_stage", cat="store")
            if self.sim.tracer is not None
            else None
        )
        rg_selected: dict[int, np.ndarray] = {}
        for rg in kept:
            num_rows = obj.metadata.row_groups[rg].num_rows
            leaf_bitmaps = []
            for op in physical.filter_ops:
                check_deadline(metrics, "filter eval")
                values = decoded[(rg, op.column)]
                meta = obj.metadata.chunk(rg, op.column)
                yield from coordinator.compute(
                    coordinator.scan_seconds(meta.plain_size, self.config.size_scale),
                    metrics,
                )
                leaf_bitmaps.append(eval_leaf(op.leaf, op.type, values))
            rg_selected[rg] = physical.combine_bitmaps(leaf_bitmaps, num_rows)

        rg_projected: dict[tuple[int, str], np.ndarray] = {}
        for rg in kept:
            indices = np.flatnonzero(rg_selected[rg])
            for col in physical.projection_columns:
                check_deadline(metrics, "projection eval")
                meta = obj.metadata.chunk(rg, col)
                yield from coordinator.compute(
                    coordinator.scan_seconds(meta.plain_size, self.config.size_scale),
                    metrics,
                )
                rg_projected[(rg, col)] = decoded[(rg, col)][indices]

        result = engine.assemble_result(
            physical, obj.metadata, kept, rg_selected, rg_projected
        )
        if eval_span is not None:
            self.sim.tracer.finish(eval_span)
        if shed_ops:
            metrics.partial_results += 1
            result = PartialResult(result, shed_ops)
        inner = result.result if isinstance(result, PartialResult) else result
        yield from traced(
            self.sim,
            self.cluster.network.transfer(
                coordinator.endpoint,
                self.cluster.client,
                self.config.scaled(engine.result_wire_bytes(inner)),
                metrics,
            ),
            "result_transfer", "store",
        )
        metrics.end_time = self.sim.now
        self.cluster.metrics.record_query(metrics)
        return result

    def _fetch_chunks_block_granular(
        self, obj, coordinator, needed, metrics: QueryMetrics, allow_shed: bool = False
    ):
        """Fetch whole erasure-code blocks covering the needed chunks.

        Blocks are the placement and I/O unit of fixed-block stores, so
        chunk reassembly reads every block a chunk touches in full (each
        block once per query).  Chunk bytes are then sliced out locally
        and decoded at the coordinator.  Returns ``(decoded, shed_ops)``:
        chunks touching a shed block map to the ``SHED`` sentinel.
        """
        block_set: set[int] = set()
        for rg, col in needed:
            meta = obj.metadata.chunk(rg, col)
            for f in obj.layout.locate(meta.offset, meta.size):
                block_set.add(f.block_index)

        indices = sorted(block_set)
        payloads = yield from execute_remote_ops(
            self.cluster,
            coordinator,
            [
                self._fetch_fragment_op(
                    obj, coordinator, idx, 0, obj.layout.blocks[idx].size, metrics
                )
                for idx in indices
            ],
            metrics,
            self.config.enable_rpc_batching,
            config=self.config,
            allow_shed=allow_shed,
        )
        block_bytes = dict(zip(indices, payloads))
        shed_ops = sum(1 for p in payloads if p is SHED)

        decoded = {}
        for rg, col in needed:
            meta = obj.metadata.chunk(rg, col)
            fragments = obj.layout.locate(meta.offset, meta.size)
            if any(block_bytes[f.block_index] is SHED for f in fragments):
                decoded[(rg, col)] = SHED
                continue
            cache_key = (obj.name, rg, col)
            cached = self._decode_cache.get(cache_key)
            if cached is None:
                parts = [
                    block_bytes[f.block_index][f.block_offset : f.block_offset + f.length]
                    for f in fragments
                ]
                cached = decode_column_chunk(
                    parts[0] if len(parts) == 1 else b"".join(parts)
                )
                self._decode_cache[cache_key] = cached
            yield from coordinator.compute(
                coordinator.decode_seconds(meta.size, meta.plain_size, self.config.size_scale),
                metrics,
            )
            decoded[(rg, col)] = cached
        return decoded, shed_ops

    def _fetch_chunks_byte_granular(
        self, obj, coordinator, needed, metrics: QueryMetrics, allow_shed: bool = False
    ):
        """Reassemble each needed chunk from its exact byte fragments.

        All chunks' fragments travel in one scatter-gather round (batched:
        one reply per holding node); each chunk is then decoded at the
        coordinator once its bytes are assembled.  Returns
        ``(decoded, shed_ops)``: chunks with a shed fragment map to the
        ``SHED`` sentinel and are never decoded.
        """
        frag_ops = []
        frag_owner: list[int] = []  # fragment -> index into ``needed``
        for ci, (rg, col) in enumerate(needed):
            meta = obj.metadata.chunk(rg, col)
            for f in obj.layout.locate(meta.offset, meta.size):
                frag_owner.append(ci)
                frag_ops.append(
                    self._fetch_fragment_op(
                        obj, coordinator, f.block_index, f.block_offset, f.length, metrics
                    )
                )
        payloads = yield from execute_remote_ops(
            self.cluster,
            coordinator,
            frag_ops,
            metrics,
            self.config.enable_rpc_batching,
            config=self.config,
            allow_shed=allow_shed,
        )
        shed_ops = sum(1 for p in payloads if p is SHED)
        chunk_parts: dict[int, list] = {ci: [] for ci in range(len(needed))}
        for ci, payload in zip(frag_owner, payloads):
            chunk_parts[ci].append(payload)

        # NOTE: decode_one runs as a spawned process, so it must never
        # raise typed errors (they would escape the event loop rather
        # than reach the query); deadline enforcement stays with the
        # scatter-gather stage and the eval loops.
        def decode_one(rg: int, col: str, parts: list):
            meta = obj.metadata.chunk(rg, col)
            yield from coordinator.compute(
                coordinator.decode_seconds(meta.size, meta.plain_size, self.config.size_scale),
                metrics,
            )
            cache_key = (obj.name, rg, col)
            cached = self._decode_cache.get(cache_key)
            if cached is None:
                cached = decode_column_chunk(
                    parts[0] if len(parts) == 1 else b"".join(parts)
                )
                self._decode_cache[cache_key] = cached
            return cached

        decoded: dict = {}
        decode_keys = []
        decodes = []
        for ci, (rg, col) in enumerate(needed):
            if any(p is SHED for p in chunk_parts[ci]):
                decoded[(rg, col)] = SHED
                continue
            decode_keys.append((rg, col))
            decodes.append(self.sim.process(decode_one(rg, col, chunk_parts[ci])))
        barrier = all_of(self.sim, decodes)
        yield barrier
        decoded.update(dict(zip(decode_keys, barrier.value)))
        return decoded, shed_ops

    # -- Delete ----------------------------------------------------------------

    def delete(self, name: str) -> int:
        """Remove an object: drop its blocks everywhere.  Returns the
        number of blocks reclaimed.

        Runs the WAL protocol (intent -> drop metadata replicas -> drop
        data blocks -> commit); once the intent is logged the delete is
        durable and recovery redoes it (every stage is idempotent).
        (Metadata-plane operation: no simulated data movement.)"""
        obj = self._lookup(name)
        coordinator = self.cluster.coordinator_for(name)
        blocks: list[tuple[int, str]] = []
        sizes: list[int] = []
        for index, nid in obj.data_block_nodes.items():
            blocks.append((nid, obj.data_block_id(index)))
            sizes.append(obj.layout.blocks[index].size)
        for (stripe, pj), nid in obj.parity_block_nodes.items():
            blocks.append((nid, obj.parity_block_id(stripe, pj)))
            sizes.append(max(b.size for b in obj.layout.stripe_blocks(stripe)))
        op_id = self.wal.new_op_id()
        self.wal.append(
            coordinator,
            WalRecord(
                op_id=op_id,
                seq=0,
                phase="intent",
                op="delete",
                store_kind="fixed",
                object_name=name,
                blocks=tuple(blocks),
                block_sizes=tuple(sizes),
                replica_nodes=tuple(obj.replica_nodes),
            ),
        )
        self.wal.crash_point(coordinator, "delete:after-intent")

        # The object leaves the namespace at intent time; everything
        # below (and recovery, after a crash) is idempotent cleanup.
        del self.objects[name]
        self._invalidate_object_caches(name)

        for nid in obj.replica_nodes:
            self.cluster.node(nid).drop_meta(name)
        self.wal.crash_point(coordinator, "delete:after-meta-drop")

        reclaimed = 0
        for nid, bid in blocks:
            node = self.cluster.node(nid)
            if node.has_block(bid):
                node.drop_block(bid)
                reclaimed += 1
        self.wal.crash_point(coordinator, "delete:after-data-drop")

        self.wal.append(
            coordinator,
            WalRecord(
                op_id=op_id,
                seq=1,
                phase="commit",
                op="delete",
                store_kind="fixed",
                object_name=name,
                replica_nodes=tuple(obj.replica_nodes),
            ),
        )
        self.wal.crash_point(coordinator, "delete:after-commit")
        return reclaimed

    # -- Scrubbing -----------------------------------------------------------

    def verify_object(self, name: str):
        """Scrub one object: re-read stripes, check parity (runs the sim)."""
        proc = self.sim.process(self.verify_object_process(name))
        self.sim.run()
        return proc.value

    def verify_object_process(self, name: str):
        report = yield from traced(
            self.sim, self._verify_object_body(name), "scrub", "store",
            obj=name, store="baseline",
        )
        return report

    def _verify_object_body(self, name: str):
        from repro.core.scrub import ScrubReport, check_stripe

        obj = self._lookup(name)
        coordinator = self.cluster.coordinator_for(name)
        report = ScrubReport(object_name=name)
        k, n = self.config.code.k, self.config.code.n
        for stripe in range(obj.layout.num_stripes):
            blocks = obj.layout.stripe_blocks(stripe)
            data_sizes = [b.size for b in blocks] + [0] * (k - len(blocks))
            data_blocks: list = []
            parity_blocks: list = []
            for i in range(n):
                if i < k:
                    if i >= len(blocks):
                        data_blocks.append(np.zeros(0, dtype=np.uint8))
                        continue
                    bid = obj.data_block_id(blocks[i].index)
                    nid = obj.data_block_nodes[blocks[i].index]
                else:
                    bid = obj.parity_block_id(stripe, i - k)
                    nid = obj.parity_block_nodes[(stripe, i - k)]
                node = self.cluster.node(nid)
                if not node.alive or not node.has_block(bid):
                    (data_blocks if i < k else parity_blocks).append(None)
                    continue
                payload = yield from node.read_block(bid, self.config.size_scale)
                yield from self.cluster.network.transfer(
                    node.endpoint, coordinator.endpoint, self.config.scaled(payload.size)
                )
                want = obj.block_checksums.get(bid)
                if self.config.checksum_verify and want and chunk_checksum(payload) != want:
                    report.checksum_mismatch_blocks.append(bid)
                (data_blocks if i < k else parity_blocks).append(payload)
            yield from coordinator.compute(
                sum(b.size for b in data_blocks if b is not None)
                * self.config.size_scale
                / coordinator.cpu_config.decode_bps
            )
            verdict = check_stripe(self.config.code, data_blocks, parity_blocks, data_sizes)
            report.stripes_checked += 1
            if verdict == "corrupt":
                report.corrupt_stripes.append(stripe)
            elif verdict == "incomplete":
                report.incomplete_stripes.append(stripe)
        return report

    # -- Fault tolerance ---------------------------------------------------------

    def recover_node(self, node_id: int) -> int:
        """Reconstruct every block the given node held, placing the
        replacements on other nodes.  Returns the number of blocks rebuilt.
        (Runs the simulation.)"""
        proc = self.sim.process(self.recover_node_process(node_id))
        self.sim.run()
        return proc.value

    def recover_node_process(self, node_id: int, metrics: QueryMetrics | None = None):
        rebuilt = 0
        for obj in self.objects.values():
            touched = False
            for stripe in range(obj.layout.num_stripes):
                holders = self._stripe_holders(obj, stripe)
                lost = [
                    i for i, h in enumerate(holders) if h is not None and h[1] == node_id
                ]
                if not lost:
                    continue
                rebuilt += len(lost)
                touched = True
                yield from self._rebuild_stripe(obj, stripe, holders, lost, metrics)
            if touched:
                self._republish_meta(obj)
        return rebuilt

    def _stripe_holders(self, obj, stripe: int) -> list[tuple[str, int] | None]:
        """Stripe-aligned (block_id, node_id) holders: positions 0..k-1
        are data (None for trailing blocks that do not exist in a partial
        stripe), k..n-1 are parity."""
        k, n = self.config.code.k, self.config.code.n
        blocks = obj.layout.stripe_blocks(stripe)
        holders: list[tuple[str, int] | None] = []
        for b in blocks:
            holders.append((obj.data_block_id(b.index), obj.data_block_nodes[b.index]))
        while len(holders) < k:
            holders.append(None)
        for pj in range(n - k):
            holders.append(
                (obj.parity_block_id(stripe, pj), obj.parity_block_nodes[(stripe, pj)])
            )
        return holders

    def _pick_rescue_node(
        self, holder_ids: set[int], lost_node_id: int, reachable_from: int | None = None
    ):
        """An *alive* node to host rebuilt blocks, preferring non-holders.

        Matches the seed's choice (smallest non-holder id, else the lost
        node's successor) whenever every node is alive.
        ``reachable_from`` additionally excludes nodes partitioned away
        from the repairing coordinator."""

        def eligible(nid: int) -> bool:
            if not self.cluster.node(nid).alive:
                return False
            return reachable_from is None or self.cluster.reachable(reachable_from, nid)

        for nid in range(self.cluster.num_nodes):
            if nid not in holder_ids and eligible(nid):
                return self.cluster.node(nid)
        for step in range(1, self.cluster.num_nodes + 1):
            nid = (lost_node_id + step) % self.cluster.num_nodes
            if eligible(nid):
                return self.cluster.node(nid)
        raise RuntimeError("no alive node available to host rebuilt blocks")

    def _rebuild_stripe(
        self, obj, stripe: int, holders, lost: list[int], metrics: QueryMetrics | None = None
    ):
        """Gather surviving shards, RS-decode, re-encode, re-place lost ones."""
        yield from traced(
            self.sim,
            self._rebuild_stripe_body(obj, stripe, holders, lost, metrics),
            "repair_stripe", "store", obj=obj.name, stripe=stripe,
        )

    def _rebuild_stripe_body(
        self, obj, stripe: int, holders, lost: list[int], metrics: QueryMetrics | None = None
    ):
        k, n = self.config.code.k, self.config.code.n
        blocks = obj.layout.stripe_blocks(stripe)
        data_sizes = [b.size for b in blocks] + [0] * (k - len(blocks))
        holder_ids = {h[1] for h in holders if h is not None}
        rescue_node = self._pick_rescue_node(holder_ids, holders[lost[0]][1])
        shards: list[np.ndarray | None] = []
        for i, holder in enumerate(holders):
            if holder is None:
                # A never-written trailing data block of a partial stripe:
                # its content is the empty block the encoder padded with.
                shards.append(np.zeros(0, dtype=np.uint8))
                continue
            bid, nid = holder
            if i in lost:
                shards.append(None)
                continue
            node = self.cluster.node(nid)
            if (
                not node.alive
                or not self.cluster.reachable(rescue_node.node_id, node.node_id)
                or not node.has_block(bid)
            ):
                shards.append(None)
                continue
            data = yield from node.read_block(bid, self.config.size_scale, metrics)
            yield from self.cluster.network.transfer(
                node.endpoint, rescue_node.endpoint, self.config.scaled(data.size), metrics
            )
            shards.append(data)
        recovered = decode_stripe(self.config.code, shards, data_sizes)
        reencoded = encode_stripe(self.config.code, recovered)
        for i in lost:
            bid, _old = holders[i]
            payload = reencoded.shards()[i]
            if i < k:
                payload = payload[: blocks[i].size]
            if self._rewrite_mismatch(obj, bid, payload):
                continue
            if i < k:
                self._relocate_block(obj, stripe, i, rescue_node.node_id)
            else:
                obj.parity_block_nodes[(stripe, i - k)] = rescue_node.node_id
            yield from rescue_node.disk.write(self.config.scaled(payload.size), metrics)
            rescue_node.put_block(bid, payload)
            self._invalidate_block(obj, stripe, i)

    def _rewrite_mismatch(self, obj, bid: str, payload) -> bool:
        """Reconstructed payload fails its Put-time CRC: refuse to write
        bytes we can prove are wrong (and count the event)."""
        want = obj.block_checksums.get(bid)
        if not self.config.checksum_verify or not want or chunk_checksum(payload) == want:
            return False
        self.cluster.metrics.checksum_failures += 1
        return True

    def _relocate_block(self, obj, stripe: int, i: int, node_id: int) -> None:
        """Point the placement maps at the node now holding position ``i``."""
        k = self.config.code.k
        if i < k:
            blocks = obj.layout.stripe_blocks(stripe)
            obj.data_block_nodes[blocks[i].index] = node_id
        else:
            obj.parity_block_nodes[(stripe, i - k)] = node_id

    def _invalidate_block(self, obj, stripe: int, i: int) -> None:
        """A stripe position was rewritten: drop cached artefacts that
        could have been derived from its previous bytes."""
        k = self.config.code.k
        if i < k:
            blocks = obj.layout.stripe_blocks(stripe)
            if i < len(blocks):
                self._degraded_block_cache.pop((obj.name, blocks[i].index))
                # Chunks straddle blocks, so decoded values keyed by
                # (rg, col) cannot be mapped back to one block cheaply:
                # evict the whole object (repair is rare).
                self._decode_cache.evict_where(lambda key: key[0] == obj.name)

    def repair_stripe_process(
        self, name: str, stripe_id: int, metrics: QueryMetrics | None = None
    ):
        """Diagnose and repair one stripe (see FusionStore's twin): read
        every reachable block, isolate missing/corrupt positions,
        reconstruct them, and rewrite — corrupt blocks in place, lost
        ones onto an alive rescue node.  Returns blocks rewritten."""
        written = yield from traced(
            self.sim,
            self._repair_stripe_body(name, stripe_id, metrics),
            "repair_stripe", "store", obj=name, stripe=stripe_id,
        )
        return written

    def _repair_stripe_body(
        self, name: str, stripe_id: int, metrics: QueryMetrics | None = None
    ):
        from repro.core.repair import find_bad_shards

        obj = self._lookup(name)
        k, n = self.config.code.k, self.config.code.n
        blocks = obj.layout.stripe_blocks(stripe_id)
        data_sizes = [b.size for b in blocks] + [0] * (k - len(blocks))
        holders = self._stripe_holders(obj, stripe_id)
        coordinator = self.cluster.coordinator_for(name)

        shards: list[np.ndarray | None] = []
        for i, holder in enumerate(holders):
            if holder is None:
                shards.append(np.zeros(0, dtype=np.uint8))
                continue
            bid, nid = holder
            node = self.cluster.node(nid)
            if (
                not node.alive
                or not self.cluster.reachable(coordinator.node_id, node.node_id)
                or not node.has_block(bid)
            ):
                shards.append(None)
                continue
            data = yield from node.read_block(bid, self.config.size_scale, metrics)
            yield from self.cluster.network.transfer(
                node.endpoint, coordinator.endpoint, self.config.scaled(data.size), metrics
            )
            shards.append(data)

        yield from coordinator.compute(
            sum(s.size for s in shards if s is not None)
            * self.config.size_scale
            / coordinator.cpu_config.decode_bps,
            metrics,
        )
        bad = [i for i in find_bad_shards(self.config.code, shards, data_sizes)
               if holders[i] is not None]
        if not bad:
            return 0
        good = [s if i not in bad else None for i, s in enumerate(shards)]
        recovered = decode_stripe(self.config.code, good, data_sizes)
        reencoded = encode_stripe(self.config.code, recovered)
        all_blocks = reencoded.shards()
        written = 0
        for i in sorted(bad):
            bid, nid = holders[i]
            payload = all_blocks[i]
            if i < k:
                payload = payload[: blocks[i].size]
            if self._rewrite_mismatch(obj, bid, payload):
                continue
            holder = self.cluster.node(nid)
            if not holder.alive or not self.cluster.reachable(
                coordinator.node_id, holder.node_id
            ):
                holder = self._pick_rescue_node(
                    {h[1] for h in holders if h is not None}, nid,
                    reachable_from=coordinator.node_id,
                )
            yield from self.cluster.network.transfer(
                coordinator.endpoint, holder.endpoint, self.config.scaled(payload.size), metrics
            )
            yield from holder.disk.write(self.config.scaled(payload.size), metrics)
            holder.put_block(bid, payload)
            self._relocate_block(obj, stripe_id, i, holder.node_id)
            self._invalidate_block(obj, stripe_id, i)
            written += 1
        if written:
            # Placements moved: the durable metadata replicas must follow.
            self._republish_meta(obj)
        return written

    # -- Migration (background rebalance) ---------------------------------------

    def migrate_stripe_process(
        self, name: str, stripe_id: int, targets, metrics: QueryMetrics | None = None
    ):
        """Move one stripe's blocks to the ring-chosen ``targets`` with
        copy-then-republish-then-GC (see FusionStore's twin).  Returns
        the number of blocks moved (0 when already in place)."""
        moved = yield from traced(
            self.sim,
            self._migrate_stripe_body(name, stripe_id, targets, metrics),
            "migrate_stripe", "store", obj=name, stripe=stripe_id,
        )
        return moved

    def _migrate_stripe_body(
        self, name: str, stripe_id: int, targets, metrics: QueryMetrics | None = None
    ):
        from repro.core.rebalance import MigrationEntry

        obj = self._lookup(name)
        holders = self._stripe_holders(obj, stripe_id)
        coordinator = self.cluster.coordinator_for(name)

        moves: list[tuple[int, str, int, int]] = []
        for i, holder in enumerate(holders):
            if holder is None:
                continue  # never-written trailing block of a partial stripe
            bid, src = holder
            dst = targets[i]
            if src == dst:
                continue
            if not self.cluster.node(dst).alive:
                continue  # destination unreachable: defer to a later run
            moves.append((i, bid, src, dst))

        # Phase 1 — copy (old placement keeps serving; each move is
        # registered as an intent before its bytes flow).
        copied: list[tuple[int, str, int, int, MigrationEntry]] = []
        for i, bid, src, dst in moves:
            entry = MigrationEntry(
                block_id=bid, object_name=name, store_kind="fixed",
                stripe_id=stripe_id, position=i, src=src, dst=dst,
            )
            self.cluster.migrations[bid] = entry
            ok = yield from self._copy_block_for_migration(
                obj, stripe_id, holders, i, bid, src, dst, coordinator, metrics
            )
            if ok:
                copied.append((i, bid, src, dst, entry))
            else:
                del self.cluster.migrations[bid]
        if not copied:
            return 0
        self.wal.crash_point(coordinator, "migrate:after-copy")

        # Phase 2 — republish: flip the placement maps and durable
        # replicas in one epoch bump (no yields in between).
        for i, bid, src, dst, entry in copied:
            self._relocate_block(obj, stripe_id, i, dst)
            self._invalidate_block(obj, stripe_id, i)
        self._republish_meta(obj)
        for _i, _bid, _src, _dst, entry in copied:
            entry.published = True
        self.wal.crash_point(coordinator, "migrate:after-republish")

        # Phase 3 — GC: only now drop the source copies.
        for _i, bid, src, _dst, _entry in copied:
            src_node = self.cluster.node(src)
            if src_node.alive and src_node.has_block(bid):
                src_node.drop_block(bid)
            self.cluster.migrations.pop(bid, None)
        return len(copied)

    def _copy_block_for_migration(
        self, obj, stripe_id, holders, i, bid, src, dst, coordinator, metrics
    ):
        """Process: land a copy of stripe position ``i`` on node ``dst``
        (source read when reachable, erasure reconstruction otherwise).
        Returns False when no copy could be made."""
        src_node = self.cluster.node(src)
        dst_node = self.cluster.node(dst)
        if src_node.alive and src_node.has_block(bid):
            payload = yield from src_node.read_block(bid, self.config.size_scale, metrics)
            yield from self.cluster.network.transfer(
                src_node.endpoint, dst_node.endpoint, self.config.scaled(payload.size), metrics
            )
        else:
            payload = yield from self._reconstruct_shard(
                obj, stripe_id, holders, i, coordinator, metrics
            )
            if payload is None:
                return False
            yield from self.cluster.network.transfer(
                coordinator.endpoint, dst_node.endpoint, self.config.scaled(payload.size), metrics
            )
        if not dst_node.alive:
            return False  # died mid-transfer: the copy never landed
        yield from dst_node.disk.write(self.config.scaled(payload.size), metrics)
        dst_node.put_block(bid, payload)
        return True

    def _reconstruct_shard(self, obj, stripe_id, holders, i, coordinator, metrics):
        """Process: rebuild stripe position ``i`` at the coordinator from
        the surviving shards; None when fewer than k are reachable."""
        k = self.config.code.k
        blocks = obj.layout.stripe_blocks(stripe_id)
        data_sizes = [b.size for b in blocks] + [0] * (k - len(blocks))
        shards: list[np.ndarray | None] = []
        for j, holder in enumerate(holders):
            if holder is None:
                shards.append(np.zeros(0, dtype=np.uint8))
                continue
            if j == i:
                shards.append(None)
                continue
            bid, nid = holder
            node = self.cluster.node(nid)
            if (
                not node.alive
                or not self.cluster.reachable(coordinator.node_id, node.node_id)
                or not node.has_block(bid)
            ):
                shards.append(None)
                continue
            data = yield from node.read_block(bid, self.config.size_scale, metrics)
            yield from self.cluster.network.transfer(
                node.endpoint, coordinator.endpoint, self.config.scaled(data.size), metrics
            )
            shards.append(data)
        yield from coordinator.compute(
            sum(s.size for s in shards if s is not None)
            * self.config.size_scale
            / coordinator.cpu_config.decode_bps,
            metrics,
        )
        try:
            recovered = decode_stripe(self.config.code, shards, data_sizes)
        except DecodeError:
            return None
        payload = encode_stripe(self.config.code, recovered).shards()[i]
        if i < k:
            payload = payload[: blocks[i].size]
        return payload

    def stripes_of(self, name: str) -> list[int]:
        """Stripe ids of one object (repair-manager iteration helper)."""
        return list(range(self._lookup(name).layout.num_stripes))

    def stripes_on_node(self, node_id: int) -> list[tuple[str, int]]:
        """Every (object, stripe) with a block placed on ``node_id``."""
        found = []
        for obj in self.objects.values():
            for stripe in range(obj.layout.num_stripes):
                if any(
                    h is not None and h[1] == node_id
                    for h in self._stripe_holders(obj, stripe)
                ):
                    found.append((obj.name, stripe))
        return found

    # -- Consistency ------------------------------------------------------------

    def fsck(self):
        """Cluster-wide invariant check for this store: blocks on disk
        vs placement maps vs metadata replicas, block checksums, and
        pending WAL operations (see :mod:`repro.core.fsck`)."""
        from repro.core.fsck import fsck

        return fsck(self)

    def recover(self):
        """Replay the cluster-wide WAL after a coordinator crash (see
        :mod:`repro.core.fsck`)."""
        from repro.core.fsck import recover

        return recover(self)

    # -- helpers ---------------------------------------------------------------

    def _lookup(self, name: str) -> StoredFixedObject:
        try:
            return self.objects[name]
        except KeyError:
            raise ObjectNotFound(f"no object named {name!r}") from None

    def object_plan(self, sql: str | Query) -> PhysicalPlan:
        """Plan a query against a stored object's schema (no execution)."""
        query = parse(sql) if isinstance(sql, str) else sql
        return make_plan(query, self._lookup(query.table).metadata.schema)
