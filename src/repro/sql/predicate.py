"""Vectorised predicate evaluation and stats-based pruning.

Two evaluation modes:

* :func:`eval_leaf` — run one leaf predicate against a decoded column
  chunk, producing a boolean match vector.  This is exactly the work a
  storage node does during filter pushdown.
* :func:`leaf_may_match` — interval reasoning against footer min/max
  stats, used by the coordinator to skip row groups (the paper's
  coarse-grained filtering optimisation, present in both Fusion and the
  baseline).
"""

from __future__ import annotations

import numpy as np

from repro.format.schema import ColumnType
from repro.sql.ast_nodes import (
    And,
    Between,
    CompareOp,
    Comparison,
    InList,
    Like,
    Literal,
    Not,
    Or,
    Predicate,
)
from repro.sql.dates import date_to_days


class PredicateTypeError(Exception):
    """Raised when a literal cannot be compared against a column's type."""


def coerce_literal(type_: ColumnType, value: Literal) -> object:
    """Coerce a SQL literal to the column's comparison domain.

    Date columns accept ISO date strings; numeric columns accept ints and
    floats; strings must be strings.
    """
    if type_ is ColumnType.DATE:
        if isinstance(value, str):
            return date_to_days(value)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return int(value)
        raise PredicateTypeError(f"cannot compare DATE column with {value!r}")
    if type_ is ColumnType.STRING:
        if not isinstance(value, str):
            raise PredicateTypeError(f"cannot compare STRING column with {value!r}")
        return value
    if type_ is ColumnType.BOOL:
        if isinstance(value, bool):
            return value
        raise PredicateTypeError(f"cannot compare BOOL column with {value!r}")
    if isinstance(value, bool) or isinstance(value, str):
        raise PredicateTypeError(f"cannot compare {type_.value} column with {value!r}")
    return value


def _compare(values: np.ndarray, op: CompareOp, literal: object, is_string: bool) -> np.ndarray:
    if is_string:
        # Object arrays: equality is vectorised; ordering falls back to a
        # Python loop (string order predicates are rare in the workloads).
        if op is CompareOp.EQ:
            return values == literal
        if op is CompareOp.NE:
            return values != literal
        table = {
            CompareOp.LT: lambda v: v < literal,
            CompareOp.LE: lambda v: v <= literal,
            CompareOp.GT: lambda v: v > literal,
            CompareOp.GE: lambda v: v >= literal,
        }
        fn = table[op]
        return np.fromiter((fn(v) for v in values), dtype=np.bool_, count=len(values))
    ops = {
        CompareOp.EQ: np.equal,
        CompareOp.NE: np.not_equal,
        CompareOp.LT: np.less,
        CompareOp.LE: np.less_equal,
        CompareOp.GT: np.greater,
        CompareOp.GE: np.greater_equal,
    }
    return ops[op](values, literal)


def eval_leaf(
    leaf: Comparison | Between | InList | Like,
    type_: ColumnType,
    values: np.ndarray,
) -> np.ndarray:
    """Evaluate one leaf predicate over a chunk's decoded values."""
    is_string = type_ is ColumnType.STRING
    if isinstance(leaf, Comparison):
        literal = coerce_literal(type_, leaf.value)
        return np.asarray(_compare(values, leaf.op, literal, is_string), dtype=np.bool_)
    if isinstance(leaf, Between):
        low = coerce_literal(type_, leaf.low)
        high = coerce_literal(type_, leaf.high)
        lo_mask = _compare(values, CompareOp.GE, low, is_string)
        hi_mask = _compare(values, CompareOp.LE, high, is_string)
        return np.asarray(lo_mask & hi_mask, dtype=np.bool_)
    if isinstance(leaf, InList):
        literals = [coerce_literal(type_, v) for v in leaf.values]
        if is_string:
            wanted = set(literals)
            return np.fromiter((v in wanted for v in values), dtype=np.bool_, count=len(values))
        return np.isin(values, np.asarray(literals))
    if isinstance(leaf, Like):
        if not is_string:
            raise PredicateTypeError(
                f"LIKE applies to string columns, not {type_.value}"
            )
        import fnmatch
        import re

        # Translate SQL wildcards (%, _) to a compiled regex once per
        # leaf.  fnmatch's own metacharacters in the data pattern are
        # neutralised ([ via a character class, * and ? have no SQL
        # meaning and are treated literally by pre-escaping).
        glob = (
            leaf.pattern.replace("[", "[[]")
            .replace("*", "[*]")
            .replace("?", "[?]")
            .replace("%", "*")
            .replace("_", "?")
        )
        regex = re.compile(fnmatch.translate(glob))
        return np.fromiter(
            (regex.match(v) is not None for v in values),
            dtype=np.bool_,
            count=len(values),
        )
    raise TypeError(f"not a leaf predicate: {leaf!r}")


def eval_tree(pred: Predicate, column_values, column_type) -> np.ndarray:
    """Evaluate a whole predicate tree.

    ``column_values(name)`` returns the decoded values of a column;
    ``column_type(name)`` its :class:`ColumnType`.  Used by the baseline
    (which evaluates everything at the coordinator) and by tests as the
    ground truth for Fusion's distributed evaluation.
    """
    if isinstance(pred, (Comparison, Between, InList, Like)):
        return eval_leaf(pred, column_type(pred.column), column_values(pred.column))
    if isinstance(pred, Not):
        return ~eval_tree(pred.operand, column_values, column_type)
    if isinstance(pred, And):
        return eval_tree(pred.left, column_values, column_type) & eval_tree(
            pred.right, column_values, column_type
        )
    if isinstance(pred, Or):
        return eval_tree(pred.left, column_values, column_type) | eval_tree(
            pred.right, column_values, column_type
        )
    raise TypeError(f"unknown predicate node {pred!r}")


# ---------------------------------------------------------------------------
# Min/max stats pruning
# ---------------------------------------------------------------------------


def leaf_may_match(
    leaf: Comparison | Between | InList | Like,
    type_: ColumnType,
    min_value: object,
    max_value: object,
) -> bool:
    """Can any value in ``[min_value, max_value]`` satisfy the leaf?

    Conservative: returns True when unsure (e.g. missing stats).
    """
    if min_value is None or max_value is None:
        return True
    if isinstance(leaf, Comparison):
        literal = coerce_literal(type_, leaf.value)
        op = leaf.op
        if op is CompareOp.EQ:
            return min_value <= literal <= max_value
        if op is CompareOp.NE:
            return not (min_value == max_value == literal)
        if op is CompareOp.LT:
            return min_value < literal
        if op is CompareOp.LE:
            return min_value <= literal
        if op is CompareOp.GT:
            return max_value > literal
        if op is CompareOp.GE:
            return max_value >= literal
    if isinstance(leaf, Between):
        low = coerce_literal(type_, leaf.low)
        high = coerce_literal(type_, leaf.high)
        return not (high < min_value or low > max_value)
    if isinstance(leaf, InList):
        literals = [coerce_literal(type_, v) for v in leaf.values]
        return any(min_value <= lit <= max_value for lit in literals)
    if isinstance(leaf, Like):
        prefix = leaf.literal_prefix
        if not prefix:
            return True  # leading wildcard: no range information
        # Matching strings lie in [prefix, prefix + chr(0x10FFFF)); prune
        # when that interval misses [min, max] entirely.
        upper = prefix + chr(0x10FFFF)
        return not (max_value < prefix or min_value >= upper)
    raise TypeError(f"not a leaf predicate: {leaf!r}")


def tree_may_match(pred: Predicate, type_of, stats_of) -> bool:
    """Row-group pruning over a predicate tree.

    ``type_of(column)`` returns the column type; ``stats_of(column)``
    returns ``(min, max)``.  NOT subtrees are treated conservatively.
    """
    if isinstance(pred, (Comparison, Between, InList, Like)):
        lo, hi = stats_of(pred.column)
        return leaf_may_match(pred, type_of(pred.column), lo, hi)
    if isinstance(pred, Not):
        return True  # interval complement is not representable; stay safe
    if isinstance(pred, And):
        return tree_may_match(pred.left, type_of, stats_of) and tree_may_match(
            pred.right, type_of, stats_of
        )
    if isinstance(pred, Or):
        return tree_may_match(pred.left, type_of, stats_of) or tree_may_match(
            pred.right, type_of, stats_of
        )
    raise TypeError(f"unknown predicate node {pred!r}")


def combine_leaf_bitmaps(pred: Predicate, bitmaps: list[np.ndarray]) -> np.ndarray:
    """Recombine per-leaf match vectors into the tree's final bitmap.

    ``bitmaps`` must be in :func:`repro.sql.ast_nodes.leaves` order; this
    is the coordinator-side consolidation step of Fusion's filter stage.
    """
    stack = list(bitmaps)
    pos = [0]

    def walk(node: Predicate) -> np.ndarray:
        if isinstance(node, (Comparison, Between, InList, Like)):
            out = stack[pos[0]]
            pos[0] += 1
            return out
        if isinstance(node, Not):
            return ~walk(node.operand)
        if isinstance(node, And):
            return walk(node.left) & walk(node.right)
        if isinstance(node, Or):
            return walk(node.left) | walk(node.right)
        raise TypeError(f"unknown predicate node {node!r}")

    result = walk(pred)
    if pos[0] != len(stack):
        raise ValueError(f"predicate has {pos[0]} leaves but {len(stack)} bitmaps given")
    return result
