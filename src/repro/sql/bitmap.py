"""Filter-result bitmaps and their compressed wire form.

Fusion's filter stage returns one bitmap per column chunk to the
coordinator, Snappy-compressed (paper Section 5).  :class:`Bitmap` wraps a
boolean numpy array with the logical operations the coordinator needs and
a compressed serialisation whose size is charged to the network model.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.format.compression import get_codec

#: Codec used for bitmaps on the wire (the paper uses Snappy).  The
#: greedy tokeniser is pinned here: packed bitmaps are small and
#: run-structured, where the exhaustive greedy walk compresses tighter
#: than the sampled vectorized matcher, and the resulting wire sizes
#: feed the simulated network model so they must stay stable across
#: compressor heuristics.
BITMAP_CODEC = "snappy-greedy"


class Bitmap:
    """A fixed-length boolean vector of row matches."""

    __slots__ = ("bits",)

    def __init__(self, bits: np.ndarray) -> None:
        self.bits = np.asarray(bits, dtype=np.bool_)

    @staticmethod
    def zeros(n: int) -> "Bitmap":
        return Bitmap(np.zeros(n, dtype=np.bool_))

    @staticmethod
    def ones(n: int) -> "Bitmap":
        return Bitmap(np.ones(n, dtype=np.bool_))

    def __len__(self) -> int:
        return len(self.bits)

    def __and__(self, other: "Bitmap") -> "Bitmap":
        self._check(other)
        return Bitmap(self.bits & other.bits)

    def __or__(self, other: "Bitmap") -> "Bitmap":
        self._check(other)
        return Bitmap(self.bits | other.bits)

    def __invert__(self) -> "Bitmap":
        return Bitmap(~self.bits)

    def _check(self, other: "Bitmap") -> None:
        if len(self.bits) != len(other.bits):
            raise ValueError(f"bitmap length mismatch: {len(self.bits)} vs {len(other.bits)}")

    def count(self) -> int:
        """Number of set bits (matching rows)."""
        return int(self.bits.sum())

    def selectivity(self) -> float:
        """Fraction of rows selected (the paper's query selectivity)."""
        if len(self.bits) == 0:
            return 0.0
        return self.count() / len(self.bits)

    def indices(self) -> np.ndarray:
        """Positions of set bits."""
        return np.flatnonzero(self.bits)

    def to_wire(self, codec_name: str = BITMAP_CODEC) -> bytes:
        """Serialise: varint-free header (count, codec id implied) + packed,
        compressed bits."""
        packed = np.packbits(self.bits.astype(np.uint8)).tobytes()
        compressed = get_codec(codec_name).compress(packed)
        return struct.pack("<I", len(self.bits)) + compressed

    @staticmethod
    def from_wire(data: bytes, codec_name: str = BITMAP_CODEC) -> "Bitmap":
        (n,) = struct.unpack_from("<I", data, 0)
        packed = get_codec(codec_name).decompress(data[4:])
        bits = np.unpackbits(np.frombuffer(packed, dtype=np.uint8))[:n]
        return Bitmap(bits.astype(np.bool_))

    def wire_size(self, codec_name: str = BITMAP_CODEC) -> int:
        """Bytes this bitmap occupies on the wire."""
        return len(self.to_wire(codec_name))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Bitmap) and np.array_equal(self.bits, other.bits)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Bitmap({self.count()}/{len(self.bits)})"
