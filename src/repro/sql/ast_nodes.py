"""Abstract syntax tree for the supported SQL subset.

Fusion supports S3-Select-style queries (paper Section 5): ``SELECT``
projections and aggregates over one table with a ``WHERE`` clause of
comparisons combined by AND/OR/NOT, plus BETWEEN and IN.  Joins are out of
scope by design (the paper excludes them).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union


class CompareOp(enum.Enum):
    """Comparison operators supported in predicates."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


Literal = Union[int, float, str, bool]


@dataclass(frozen=True)
class Comparison:
    """A leaf predicate ``column OP literal``.

    Leaves reference exactly one column, which makes them the unit of
    filter pushdown: one leaf runs against one column chunk and yields one
    bitmap.
    """

    column: str
    op: CompareOp
    value: Literal

    def columns(self) -> set[str]:
        return {self.column}


@dataclass(frozen=True)
class Between:
    """``column BETWEEN low AND high`` (inclusive on both ends)."""

    column: str
    low: Literal
    high: Literal

    def columns(self) -> set[str]:
        return {self.column}


@dataclass(frozen=True)
class InList:
    """``column IN (v1, v2, ...)``."""

    column: str
    values: tuple[Literal, ...]

    def columns(self) -> set[str]:
        return {self.column}


@dataclass(frozen=True)
class Like:
    """``column LIKE pattern`` with ``%`` (any run) and ``_`` (any char).

    Only meaningful on string columns.  A pattern with a literal prefix
    (before the first wildcard) supports min/max stats pruning.
    """

    column: str
    pattern: str

    def columns(self) -> set[str]:
        return {self.column}

    @property
    def literal_prefix(self) -> str:
        """The pattern's leading literal part (empty if it starts with a
        wildcard)."""
        for i, ch in enumerate(self.pattern):
            if ch in "%_":
                return self.pattern[:i]
        return self.pattern


@dataclass(frozen=True)
class And:
    """Logical conjunction of two predicates."""

    left: "Predicate"
    right: "Predicate"

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()


@dataclass(frozen=True)
class Or:
    """Logical disjunction of two predicates."""

    left: "Predicate"
    right: "Predicate"

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()


@dataclass(frozen=True)
class Not:
    """Logical negation of a predicate."""

    operand: "Predicate"

    def columns(self) -> set[str]:
        return self.operand.columns()


Predicate = Union[Comparison, Between, InList, Like, And, Or, Not]

#: Leaf predicate types (single-column, pushdown-able).
LEAF_TYPES = (Comparison, Between, InList, Like)


class AggregateFunc(enum.Enum):
    """Supported aggregate functions."""

    COUNT = "count"
    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"


@dataclass(frozen=True)
class ColumnRef:
    """A plain projected column in the SELECT list."""

    name: str


@dataclass(frozen=True)
class Aggregate:
    """An aggregate in the SELECT list; ``column`` is None for COUNT(*)."""

    func: AggregateFunc
    column: str | None

    def __post_init__(self) -> None:
        if self.column is None and self.func is not AggregateFunc.COUNT:
            raise ValueError(f"{self.func.value.upper()}(*) is not supported")


SelectItem = Union[ColumnRef, Aggregate]


@dataclass(frozen=True)
class Query:
    """A parsed ``SELECT ... FROM ... [WHERE] [GROUP BY] [LIMIT]`` statement."""

    select: tuple[SelectItem, ...]
    table: str
    where: Predicate | None
    group_by: tuple[str, ...] = ()
    limit: int | None = None

    def filter_columns(self) -> set[str]:
        """Columns referenced by the WHERE clause."""
        return self.where.columns() if self.where is not None else set()

    def projection_columns(self) -> list[str]:
        """Columns whose values must be materialised for the SELECT list,
        in first-mention order."""
        out: list[str] = []
        for item in self.select:
            name = item.name if isinstance(item, ColumnRef) else item.column
            if name is not None and name not in out:
                out.append(name)
        return out

    def aggregates(self) -> list[Aggregate]:
        return [i for i in self.select if isinstance(i, Aggregate)]

    def has_aggregates(self) -> bool:
        return any(isinstance(i, Aggregate) for i in self.select)


def leaves(pred: Predicate) -> list["Comparison | Between | InList | Like"]:
    """All leaf predicates of a tree in left-to-right order."""
    if isinstance(pred, LEAF_TYPES):
        return [pred]
    if isinstance(pred, Not):
        return leaves(pred.operand)
    if isinstance(pred, (And, Or)):
        return leaves(pred.left) + leaves(pred.right)
    raise TypeError(f"unknown predicate node {pred!r}")
