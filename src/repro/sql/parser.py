"""Recursive-descent parser for the SQL subset.

Grammar::

    query      := SELECT select_list FROM ident [WHERE or_expr]
    select_list:= select_item (',' select_item)* | '*'
    select_item:= ident | agg_func '(' (ident | '*') ')'
    or_expr    := and_expr (OR and_expr)*
    and_expr   := not_expr (AND not_expr)*
    not_expr   := NOT not_expr | primary
    primary    := '(' or_expr ')' | comparison
    comparison := ident op literal
                | ident BETWEEN literal AND literal
                | ident [NOT] IN '(' literal (',' literal)* ')'
"""

from __future__ import annotations

from repro.sql.ast_nodes import (
    Aggregate,
    AggregateFunc,
    And,
    Between,
    ColumnRef,
    CompareOp,
    Comparison,
    InList,
    Like,
    Literal,
    Not,
    Or,
    Predicate,
    Query,
    SelectItem,
)
from repro.sql.lexer import SqlSyntaxError, Token, TokenType, tokenize

_AGG_KEYWORDS = {f.value for f in AggregateFunc}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        self._pos += 1
        return tok

    def _expect_keyword(self, word: str) -> Token:
        tok = self._advance()
        if not tok.is_keyword(word):
            raise SqlSyntaxError(f"expected {word.upper()} at position {tok.pos}, got {tok.value!r}")
        return tok

    def _expect(self, type_: TokenType) -> Token:
        tok = self._advance()
        if tok.type is not type_:
            raise SqlSyntaxError(
                f"expected {type_.value} at position {tok.pos}, got {tok.value!r}"
            )
        return tok

    # -- grammar ---------------------------------------------------------------

    def parse_query(self) -> Query:
        self._expect_keyword("select")
        select = self._parse_select_list()
        self._expect_keyword("from")
        table = self._expect(TokenType.IDENT).value
        where = None
        if self._peek().is_keyword("where"):
            self._advance()
            where = self._parse_or()
        group_by: tuple[str, ...] = ()
        if self._peek().is_keyword("group"):
            self._advance()
            self._expect_keyword("by")
            keys = [self._expect(TokenType.IDENT).value]
            while self._peek().type is TokenType.COMMA:
                self._advance()
                keys.append(self._expect(TokenType.IDENT).value)
            group_by = tuple(keys)
        limit = None
        if self._peek().is_keyword("limit"):
            self._advance()
            tok = self._expect(TokenType.NUMBER)
            try:
                limit = int(tok.value)
            except ValueError:
                raise SqlSyntaxError(
                    f"LIMIT must be an integer, got {tok.value!r} at position {tok.pos}"
                ) from None
            if limit < 0:
                raise SqlSyntaxError("LIMIT must be non-negative")
        tok = self._peek()
        if tok.type is not TokenType.EOF:
            raise SqlSyntaxError(f"unexpected trailing input at position {tok.pos}: {tok.value!r}")
        return Query(
            select=tuple(select), table=table, where=where, group_by=group_by, limit=limit
        )

    def _parse_select_list(self) -> list[SelectItem]:
        if self._peek().type is TokenType.STAR:
            self._advance()
            return [ColumnRef("*")]
        items = [self._parse_select_item()]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> SelectItem:
        tok = self._peek()
        if tok.type is TokenType.KEYWORD and tok.value in _AGG_KEYWORDS:
            self._advance()
            func = AggregateFunc(tok.value)
            self._expect(TokenType.LPAREN)
            inner = self._advance()
            if inner.type is TokenType.STAR:
                column = None
            elif inner.type is TokenType.IDENT:
                column = inner.value
            else:
                raise SqlSyntaxError(
                    f"expected column or * in aggregate at position {inner.pos}"
                )
            self._expect(TokenType.RPAREN)
            return Aggregate(func=func, column=column)
        if tok.type is TokenType.IDENT:
            self._advance()
            return ColumnRef(tok.value)
        raise SqlSyntaxError(f"expected select item at position {tok.pos}, got {tok.value!r}")

    def _parse_or(self) -> Predicate:
        left = self._parse_and()
        while self._peek().is_keyword("or"):
            self._advance()
            left = Or(left, self._parse_and())
        return left

    def _parse_and(self) -> Predicate:
        left = self._parse_not()
        while self._peek().is_keyword("and"):
            self._advance()
            left = And(left, self._parse_not())
        return left

    def _parse_not(self) -> Predicate:
        if self._peek().is_keyword("not"):
            self._advance()
            return Not(self._parse_not())
        return self._parse_primary()

    def _parse_primary(self) -> Predicate:
        tok = self._peek()
        if tok.type is TokenType.LPAREN:
            self._advance()
            inner = self._parse_or()
            self._expect(TokenType.RPAREN)
            return inner
        return self._parse_comparison()

    def _parse_comparison(self) -> Predicate:
        column = self._expect(TokenType.IDENT).value
        tok = self._advance()
        if tok.is_keyword("between"):
            low = self._parse_literal()
            self._expect_keyword("and")
            high = self._parse_literal()
            return Between(column=column, low=low, high=high)
        if tok.is_keyword("not"):
            self._expect_keyword("in")
            return Not(self._parse_in_list(column))
        if tok.is_keyword("in"):
            return self._parse_in_list(column)
        if tok.is_keyword("like"):
            pattern = self._parse_literal()
            if not isinstance(pattern, str):
                raise SqlSyntaxError(f"LIKE needs a string pattern, got {pattern!r}")
            return Like(column=column, pattern=pattern)
        if tok.type is TokenType.OP:
            return Comparison(column=column, op=CompareOp(tok.value), value=self._parse_literal())
        raise SqlSyntaxError(f"expected comparison operator at position {tok.pos}, got {tok.value!r}")

    def _parse_in_list(self, column: str) -> InList:
        self._expect(TokenType.LPAREN)
        values = [self._parse_literal()]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            values.append(self._parse_literal())
        self._expect(TokenType.RPAREN)
        return InList(column=column, values=tuple(values))

    def _parse_literal(self) -> Literal:
        tok = self._advance()
        if tok.type is TokenType.NUMBER:
            text = tok.value
            if any(c in text for c in ".eE"):
                return float(text)
            return int(text)
        if tok.type is TokenType.STRING:
            return tok.value
        if tok.is_keyword("true"):
            return True
        if tok.is_keyword("false"):
            return False
        raise SqlSyntaxError(f"expected literal at position {tok.pos}, got {tok.value!r}")


def parse(sql: str) -> Query:
    """Parse one SELECT statement; raises :class:`SqlSyntaxError` on errors."""
    return _Parser(tokenize(sql)).parse_query()
