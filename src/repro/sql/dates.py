"""Date helpers: DATE columns store int32 days since 1970-01-01."""

from __future__ import annotations

import datetime

_EPOCH = datetime.date(1970, 1, 1)


def date_to_days(text: str) -> int:
    """Convert ``'YYYY-MM-DD'`` to days since epoch."""
    try:
        d = datetime.date.fromisoformat(text)
    except ValueError as exc:
        raise ValueError(f"not an ISO date: {text!r}") from exc
    return (d - _EPOCH).days


def days_to_date(days: int) -> str:
    """Convert days since epoch back to ``'YYYY-MM-DD'``."""
    return (_EPOCH + datetime.timedelta(days=int(days))).isoformat()
