"""GROUP BY evaluation.

Grouping always runs at the coordinator (or locally in the reference
executor) over already-filtered projected values: group keys are hashed to
group ids, each aggregate is evaluated per group, and groups are emitted
in ascending key order so results are deterministic and comparable.
"""

from __future__ import annotations

import numpy as np

from repro.format.schema import ColumnType, Field
from repro.format.table import Column, Table
from repro.sql.aggregates import compute_aggregate
from repro.sql.ast_nodes import Aggregate, AggregateFunc, ColumnRef, Query, SelectItem


def aggregate_label(agg: Aggregate) -> str:
    """The output column name for an aggregate, e.g. ``avg(fare)``."""
    return f"{agg.func.value}({agg.column or '*'})"


def aggregate_output_type(agg: Aggregate, input_type: ColumnType | None) -> ColumnType:
    """Result column type for an aggregate over ``input_type``."""
    if agg.func is AggregateFunc.COUNT:
        return ColumnType.INT64
    if agg.func is AggregateFunc.AVG:
        return ColumnType.DOUBLE
    if input_type is None:
        raise ValueError(f"{aggregate_label(agg)} needs an input column type")
    # SUM/MIN/MAX keep the input domain (SUM over dates is disallowed by
    # planning; over ints stays int, over doubles stays double).
    return input_type


def evaluate_group_by(
    query: Query,
    key_types: dict[str, ColumnType],
    columns: dict[str, np.ndarray],
) -> Table:
    """Group filtered rows and evaluate the SELECT list per group.

    ``columns`` maps every needed column (group keys and aggregate inputs)
    to its already-filtered value array; all arrays have equal length.
    Returns a table with one row per group, ordered by the key tuple.
    """
    keys = list(query.group_by)
    if not keys:
        raise ValueError("evaluate_group_by requires a GROUP BY query")
    num_rows = len(next(iter(columns.values()))) if columns else 0

    # Assign group ids by first-appearance, then order groups by key.
    group_of: dict[tuple, int] = {}
    row_gid = np.empty(num_rows, dtype=np.int64)
    for i in range(num_rows):
        key = tuple(columns[k][i] for k in keys)
        gid = group_of.get(key)
        if gid is None:
            gid = len(group_of)
            group_of[key] = gid
        row_gid[i] = gid
    ordered_keys = sorted(group_of)
    order = {group_of[key]: rank for rank, key in enumerate(ordered_keys)}

    rows_per_group: list[np.ndarray] = [np.zeros(0, dtype=np.int64)] * len(ordered_keys)
    for gid, rank in order.items():
        rows_per_group[rank] = np.flatnonzero(row_gid == gid)

    out_columns: list[Column] = []
    for item in query.select:
        if isinstance(item, ColumnRef):
            type_ = key_types[item.name]
            values = _column_of(
                type_, [columns[item.name][rows[0]] if len(rows) else None for rows in rows_per_group]
            )
            out_columns.append(Column(Field(item.name, type_), values))
        else:
            results = []
            for rows in rows_per_group:
                values = columns[item.column][rows] if item.column is not None else None
                results.append(compute_aggregate(item, values, int(len(rows))))
            out_type = aggregate_output_type(
                item, key_types.get(item.column) if item.column else None
            )
            out_columns.append(
                Column(Field(aggregate_label(item), out_type), _column_of(out_type, results))
            )
    return Table(out_columns) if out_columns else Table([])


def _column_of(type_: ColumnType, values: list) -> np.ndarray:
    if type_ is ColumnType.STRING:
        arr = np.empty(len(values), dtype=object)
        for i, v in enumerate(values):
            arr[i] = v
        return arr
    dtype = type_.numpy_dtype
    return np.asarray(values, dtype=dtype)


def grouped_needed_types(query: Query, schema) -> dict[str, ColumnType]:
    """Types of every column the grouping stage touches."""
    out: dict[str, ColumnType] = {}
    for name in query.group_by:
        out[name] = schema.field(name).type
    for item in query.select:
        if isinstance(item, Aggregate) and item.column is not None:
            out[item.column] = schema.field(item.column).type
    return out
