"""SQL subset engine: SELECT / FROM / WHERE plus coordinator aggregates.

Pipeline: :func:`parse` → :func:`plan` → execution.  The distributed
stores in :mod:`repro.core` consume :class:`PhysicalPlan`;
:func:`execute_local` provides single-process reference semantics.
"""

from repro.sql.ast_nodes import (
    Aggregate,
    AggregateFunc,
    And,
    Between,
    ColumnRef,
    CompareOp,
    Comparison,
    InList,
    Like,
    Not,
    Or,
    Predicate,
    Query,
    leaves,
)
from repro.sql.bitmap import Bitmap
from repro.sql.dates import date_to_days, days_to_date
from repro.sql.lexer import SqlSyntaxError, tokenize
from repro.sql.local import QueryResult, execute_local
from repro.sql.parser import parse
from repro.sql.planner import FilterOp, PhysicalPlan, PlanError, plan
from repro.sql.predicate import (
    PredicateTypeError,
    combine_leaf_bitmaps,
    eval_leaf,
    eval_tree,
    leaf_may_match,
    tree_may_match,
)

__all__ = [
    "Aggregate",
    "AggregateFunc",
    "And",
    "Between",
    "Bitmap",
    "ColumnRef",
    "CompareOp",
    "Comparison",
    "FilterOp",
    "InList",
    "Like",
    "Not",
    "Or",
    "PhysicalPlan",
    "PlanError",
    "Predicate",
    "PredicateTypeError",
    "Query",
    "QueryResult",
    "SqlSyntaxError",
    "combine_leaf_bitmaps",
    "date_to_days",
    "days_to_date",
    "eval_leaf",
    "eval_tree",
    "execute_local",
    "leaf_may_match",
    "leaves",
    "parse",
    "plan",
    "tokenize",
    "tree_may_match",
]
