"""Tokeniser for the SQL subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class SqlSyntaxError(Exception):
    """Raised for any lexing or parsing failure, with position context."""


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OP = "op"
    COMMA = "comma"
    LPAREN = "lparen"
    RPAREN = "rparen"
    STAR = "star"
    EOF = "eof"


KEYWORDS = {
    "select",
    "from",
    "where",
    "group",
    "by",
    "limit",
    "and",
    "or",
    "not",
    "between",
    "in",
    "like",
    "count",
    "sum",
    "avg",
    "min",
    "max",
    "true",
    "false",
}

_OPERATORS = ("<=", ">=", "!=", "<>", "==", "=", "<", ">")


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    pos: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word


def tokenize(text: str) -> list[Token]:
    """Split SQL text into tokens; raises :class:`SqlSyntaxError` on junk."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == ",":
            tokens.append(Token(TokenType.COMMA, ",", i))
            i += 1
            continue
        if ch == "(":
            tokens.append(Token(TokenType.LPAREN, "(", i))
            i += 1
            continue
        if ch == ")":
            tokens.append(Token(TokenType.RPAREN, ")", i))
            i += 1
            continue
        if ch == "*":
            tokens.append(Token(TokenType.STAR, "*", i))
            i += 1
            continue
        if ch == "'":
            end = text.find("'", i + 1)
            if end < 0:
                raise SqlSyntaxError(f"unterminated string literal at position {i}")
            tokens.append(Token(TokenType.STRING, text[i + 1 : end], i))
            i = end + 1
            continue
        matched_op = next((op for op in _OPERATORS if text.startswith(op, i)), None)
        if matched_op is not None:
            # Normalise the aliases to canonical forms.
            canonical = {"==": "=", "<>": "!="}.get(matched_op, matched_op)
            tokens.append(Token(TokenType.OP, canonical, i))
            i += len(matched_op)
            continue
        if ch.isdigit() or (ch in "+-." and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (text[j].isdigit() or text[j] in ".eE+-"):
                # Stop '+'/'-' unless directly after an exponent marker.
                if text[j] in "+-" and text[j - 1] not in "eE":
                    break
                j += 1
            tokens.append(Token(TokenType.NUMBER, text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] in "_."):
                j += 1
            word = text[i:j]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, lowered, i))
            else:
                tokens.append(Token(TokenType.IDENT, word, i))
            i = j
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
