"""Aggregate evaluation.

The shipped Fusion system evaluates aggregates at the coordinator over
projected values (aggregate *pushdown* is the paper's future work; we
implement it as an optional extension in the engine).  These helpers
compute one aggregate over the filtered values of its input column.
"""

from __future__ import annotations

import numpy as np

from repro.sql.ast_nodes import Aggregate, AggregateFunc


def compute_aggregate(agg: Aggregate, values: np.ndarray | None, match_count: int) -> object:
    """Evaluate ``agg`` over already-filtered ``values``.

    ``values`` is None only for ``COUNT(*)``, which needs just the match
    count.  SUM/AVG/MIN/MAX over zero rows return None (SQL NULL).
    """
    if agg.func is AggregateFunc.COUNT:
        if agg.column is None:
            return match_count
        return int(len(values))
    if values is None:
        raise ValueError(f"{agg.func.value.upper()} needs column values")
    if len(values) == 0:
        return None
    if agg.func is AggregateFunc.SUM:
        return _numeric(values).sum().item()
    if agg.func is AggregateFunc.AVG:
        return float(_numeric(values).mean())
    if agg.func is AggregateFunc.MIN:
        return _scalar(values.min()) if values.dtype != object else min(values)
    if agg.func is AggregateFunc.MAX:
        return _scalar(values.max()) if values.dtype != object else max(values)
    raise ValueError(f"unknown aggregate {agg.func}")


def merge_partial_aggregates(agg: Aggregate, partials: list[dict]) -> object:
    """Merge per-chunk partial aggregate states (for aggregate pushdown).

    Each partial is a dict with keys depending on the function:
    ``count`` for COUNT, ``sum``/``count`` for SUM/AVG, ``min``/``max``
    for MIN/MAX.  Empty partials (no matched rows) carry ``count == 0``.
    """
    if agg.func is AggregateFunc.COUNT:
        return sum(p["count"] for p in partials)
    if agg.func is AggregateFunc.SUM:
        live = [p for p in partials if p["count"]]
        return sum(p["sum"] for p in live) if live else None
    if agg.func is AggregateFunc.AVG:
        total = sum(p["count"] for p in partials)
        if total == 0:
            return None
        return sum(p["sum"] for p in partials if p["count"]) / total
    if agg.func is AggregateFunc.MIN:
        live = [p["min"] for p in partials if p["count"]]
        return min(live) if live else None
    if agg.func is AggregateFunc.MAX:
        live = [p["max"] for p in partials if p["count"]]
        return max(live) if live else None
    raise ValueError(f"unknown aggregate {agg.func}")


def partial_aggregate(agg: Aggregate, values: np.ndarray | None, match_count: int) -> dict:
    """Compute one chunk's partial state for :func:`merge_partial_aggregates`."""
    if agg.func is AggregateFunc.COUNT:
        return {"count": match_count if agg.column is None else int(len(values))}
    if values is None or len(values) == 0:
        return {"count": 0}
    nums = _numeric(values) if agg.func in (AggregateFunc.SUM, AggregateFunc.AVG) else values
    state: dict = {"count": int(len(values))}
    if agg.func in (AggregateFunc.SUM, AggregateFunc.AVG):
        state["sum"] = nums.sum().item()
    if agg.func is AggregateFunc.MIN:
        state["min"] = _scalar(values.min()) if values.dtype != object else min(values)
    if agg.func is AggregateFunc.MAX:
        state["max"] = _scalar(values.max()) if values.dtype != object else max(values)
    return state


def _numeric(values: np.ndarray) -> np.ndarray:
    if values.dtype == object:
        raise TypeError("cannot SUM/AVG a string column")
    return values


def _scalar(value) -> object:
    return value.item() if hasattr(value, "item") else value
