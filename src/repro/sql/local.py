"""Single-process reference executor.

Runs a query directly against an in-memory :class:`~repro.format.table.Table`
with no cluster, no erasure coding and no pushdown.  This is the ground
truth the distributed stores are tested against: for any stored object,
``FusionStore.query(...)`` and ``BaselineStore.query(...)`` must return
exactly what :func:`execute_local` returns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.format.table import Table
from repro.sql.aggregates import compute_aggregate
from repro.sql.ast_nodes import Aggregate, ColumnRef, Query
from repro.sql.parser import parse
from repro.sql.planner import plan
from repro.sql.predicate import eval_tree


@dataclass
class QueryResult:
    """The result of a query: either a row table or aggregate scalars."""

    columns: list[str]
    rows: Table | None  # projected, filtered rows (None for aggregates)
    aggregates: list[object] | None  # scalar per aggregate (None otherwise)
    matched_rows: int
    total_rows: int

    @property
    def selectivity(self) -> float:
        """Fraction of table rows the filter matched."""
        if self.total_rows == 0:
            return 0.0
        return self.matched_rows / self.total_rows

    def equals(self, other: "QueryResult") -> bool:
        if self.columns != other.columns or self.matched_rows != other.matched_rows:
            return False
        if (self.rows is None) != (other.rows is None):
            return False
        if self.rows is not None and not self.rows.equals(other.rows):
            return False
        if self.aggregates is not None:
            if other.aggregates is None or len(self.aggregates) != len(other.aggregates):
                return False
            for a, b in zip(self.aggregates, other.aggregates):
                if isinstance(a, float) and isinstance(b, float):
                    if not np.isclose(a, b, equal_nan=True):
                        return False
                elif a != b:
                    return False
        return True


def execute_local(sql_or_query: str | Query, table: Table) -> QueryResult:
    """Execute a query against an in-memory table (the reference semantics)."""
    query = parse(sql_or_query) if isinstance(sql_or_query, str) else sql_or_query
    physical = plan(query, table.schema)

    if physical.where is None:
        mask = np.ones(table.num_rows, dtype=np.bool_)
    else:
        mask = eval_tree(
            physical.where,
            column_values=lambda name: table[name],
            column_type=lambda name: table.schema.field(name).type,
        )
    matched = int(mask.sum())
    indices = np.flatnonzero(mask)

    if query.group_by:
        from repro.sql.grouping import evaluate_group_by, grouped_needed_types

        needed = grouped_needed_types(query, table.schema)
        filtered = {name: table[name][indices] for name in needed}
        grouped = evaluate_group_by(query, needed, filtered)
        grouped = _apply_limit(grouped, query.limit)
        return QueryResult(
            columns=grouped.schema.names(),
            rows=grouped,
            aggregates=None,
            matched_rows=matched,
            total_rows=table.num_rows,
        )

    if query.has_aggregates():
        results = []
        for item in query.select:
            assert isinstance(item, Aggregate)
            values = table[item.column][indices] if item.column is not None else None
            results.append(compute_aggregate(item, values, matched))
        labels = [
            f"{i.func.value}({i.column or '*'})" for i in query.select  # type: ignore[union-attr]
        ]
        return QueryResult(
            columns=labels,
            rows=None,
            aggregates=results,
            matched_rows=matched,
            total_rows=table.num_rows,
        )

    names = physical.projection_columns
    projected = _apply_limit(table.select(names).take(indices), query.limit)
    return QueryResult(
        columns=names,
        rows=projected,
        aggregates=None,
        matched_rows=matched,
        total_rows=table.num_rows,
    )


def _apply_limit(rows: Table, limit: int | None) -> Table:
    """Truncate a result table to the query's LIMIT (row order preserved)."""
    if limit is None or rows.num_rows <= limit:
        return rows
    return rows.slice(0, limit)
