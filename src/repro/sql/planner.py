"""Query planning: decompose a parsed query into pushdown units.

The plan mirrors the paper's two-stage execution:

* **filter ops** — one per predicate leaf; each targets a single column
  and can run against one column chunk on a storage node, returning a
  bitmap.
* **projection columns** — the columns whose matching values must be
  materialised (SELECT columns plus aggregate inputs), each of which is a
  per-chunk pushdown decision for the cost model.

Plans also validate column references and literal types against the file
schema at plan time, so execution failures surface early.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.format.schema import ColumnType, Schema
from repro.sql.ast_nodes import (
    Aggregate,
    Between,
    ColumnRef,
    Comparison,
    InList,
    Like,
    Predicate,
    Query,
    leaves,
)
from repro.sql.predicate import coerce_literal, combine_leaf_bitmaps


class PlanError(Exception):
    """Raised when a query cannot be planned against a schema."""


@dataclass(frozen=True)
class FilterOp:
    """One filter-pushdown unit: a leaf predicate on one column."""

    index: int  # position in leaves() order
    column: str
    type: ColumnType
    leaf: Comparison | Between | InList


@dataclass
class PhysicalPlan:
    """A validated, decomposed query ready for distributed execution."""

    query: Query
    schema: Schema
    filter_ops: list[FilterOp]
    projection_columns: list[str]

    @property
    def where(self) -> Predicate | None:
        return self.query.where

    def combine_bitmaps(self, leaf_bitmaps: list[np.ndarray], num_rows: int) -> np.ndarray:
        """Consolidate per-leaf bitmaps (leaves order) into the final bitmap."""
        if self.where is None:
            return np.ones(num_rows, dtype=np.bool_)
        return combine_leaf_bitmaps(self.where, leaf_bitmaps)

    def aggregates(self) -> list[Aggregate]:
        return self.query.aggregates()

    def is_select_star(self) -> bool:
        sel = self.query.select
        return len(sel) == 1 and isinstance(sel[0], ColumnRef) and sel[0].name == "*"


def plan(query: Query, schema: Schema) -> PhysicalPlan:
    """Validate ``query`` against ``schema`` and build its physical plan."""
    if query.group_by:
        _validate_group_by(query, schema)
        # Execution must materialise the group keys and aggregate inputs.
        projection = list(query.group_by)
        for name in query.projection_columns():
            if name not in projection:
                projection.append(name)
    else:
        if query.has_aggregates() and any(isinstance(i, ColumnRef) for i in query.select):
            raise PlanError("cannot mix plain columns and aggregates without GROUP BY")
        projection = query.projection_columns()
        if projection == ["*"]:
            projection = schema.names()

    for name in projection:
        if name not in schema:
            raise PlanError(f"unknown projection column {name!r}")

    filter_ops: list[FilterOp] = []
    if query.where is not None:
        for idx, leaf in enumerate(leaves(query.where)):
            if leaf.column not in schema:
                raise PlanError(f"unknown filter column {leaf.column!r}")
            type_ = schema.field(leaf.column).type
            _validate_leaf_literals(leaf, type_)
            filter_ops.append(FilterOp(index=idx, column=leaf.column, type=type_, leaf=leaf))

    return PhysicalPlan(
        query=query,
        schema=schema,
        filter_ops=filter_ops,
        projection_columns=projection,
    )


def _validate_group_by(query: Query, schema: Schema) -> None:
    from repro.sql.ast_nodes import AggregateFunc

    for name in query.group_by:
        if name not in schema:
            raise PlanError(f"unknown GROUP BY column {name!r}")
    for item in query.select:
        if isinstance(item, ColumnRef):
            if item.name == "*":
                raise PlanError("SELECT * is not allowed with GROUP BY")
            if item.name not in query.group_by:
                raise PlanError(
                    f"column {item.name!r} must appear in GROUP BY or an aggregate"
                )
        else:
            if item.column is not None:
                if item.column not in schema:
                    raise PlanError(f"unknown aggregate column {item.column!r}")
                type_ = schema.field(item.column).type
                if item.func in (AggregateFunc.SUM, AggregateFunc.AVG) and type_ in (
                    ColumnType.STRING,
                    ColumnType.BOOL,
                ):
                    raise PlanError(
                        f"cannot {item.func.value.upper()} a {type_.value} column"
                    )


def _validate_leaf_literals(leaf: Comparison | Between | InList, type_: ColumnType) -> None:
    """Type-check leaf literals at plan time (raises PlanError)."""
    from repro.sql.predicate import PredicateTypeError

    try:
        if isinstance(leaf, Comparison):
            coerce_literal(type_, leaf.value)
        elif isinstance(leaf, Between):
            coerce_literal(type_, leaf.low)
            coerce_literal(type_, leaf.high)
        elif isinstance(leaf, InList):
            for v in leaf.values:
                coerce_literal(type_, v)
        elif isinstance(leaf, Like):
            if type_ is not ColumnType.STRING:
                raise PlanError(
                    f"LIKE applies to string columns, not {type_.value}"
                )
    except PredicateTypeError as exc:
        raise PlanError(str(exc)) from exc
