"""PAX file writer.

Serialises a :class:`~repro.format.table.Table` into the on-disk layout::

    MAGIC
    row group 0: column chunk 0, column chunk 1, ...
    row group 1: ...
    footer (JSON metadata)
    4-byte little-endian footer length
    MAGIC

Each column chunk is self-contained (see :mod:`repro.format.pages`), so the
byte range recorded in the footer is everything a storage node needs to
decode and compute on that chunk.
"""

from __future__ import annotations

import struct

from repro.format.compression import DEFAULT_CODEC
from repro.format.metadata import (
    MAGIC,
    ColumnChunkMeta,
    FileMetadata,
    RowGroupMeta,
    compute_stats,
)
from repro.format.pages import DEFAULT_PAGE_VALUES, encode_column_chunk
from repro.format.table import Table

#: Default rows per row group for generated datasets.
DEFAULT_ROW_GROUP_ROWS = 100_000


def write_table(
    table: Table,
    row_group_rows: int = DEFAULT_ROW_GROUP_ROWS,
    codec: str = DEFAULT_CODEC,
    page_values: int = DEFAULT_PAGE_VALUES,
) -> bytes:
    """Serialise ``table`` into PAX file bytes.

    ``row_group_rows`` bounds row group size by row count (the knob the
    paper mentions for resizing chunks, which Fusion deliberately does not
    touch); ``codec`` names the page compression codec.
    """
    if row_group_rows <= 0:
        raise ValueError("row_group_rows must be positive")

    out = bytearray(MAGIC)
    row_groups: list[RowGroupMeta] = []

    rg_index = 0
    for start in range(0, table.num_rows, row_group_rows):
        stop = min(start + row_group_rows, table.num_rows)
        chunk_metas: list[ColumnChunkMeta] = []
        for col_index, column in enumerate(table.columns):
            values = column.values[start:stop]
            encoded = encode_column_chunk(
                column.type, values, codec_name=codec, page_values=page_values
            )
            offset = len(out)
            out += encoded.data
            chunk_metas.append(
                ColumnChunkMeta(
                    column=column.name,
                    type=column.type,
                    row_group=rg_index,
                    column_index=col_index,
                    offset=offset,
                    size=len(encoded.data),
                    plain_size=encoded.plain_size,
                    num_values=encoded.num_values,
                    encoding=encoded.encoding,
                    codec=encoded.codec,
                    stats=compute_stats(column.type, values),
                )
            )
        row_groups.append(
            RowGroupMeta(index=rg_index, num_rows=stop - start, columns=tuple(chunk_metas))
        )
        rg_index += 1

    metadata = FileMetadata(schema=table.schema, num_rows=table.num_rows, row_groups=row_groups)
    footer = metadata.to_json()
    out += footer
    out += struct.pack("<I", len(footer))
    out += MAGIC
    return bytes(out)
