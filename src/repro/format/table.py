"""In-memory columnar tables.

A :class:`Table` is the unit handed to the file writer and produced by the
reader.  Numeric columns are numpy arrays; string columns are numpy object
arrays of ``str``.  Tables are immutable by convention (callers should not
mutate the underlying arrays after construction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.format.schema import ColumnType, Field, Schema


def _coerce_values(type_: ColumnType, values) -> np.ndarray:
    """Coerce raw values to the canonical array representation for a type."""
    if type_ is ColumnType.STRING:
        arr = np.empty(len(values), dtype=object)
        for i, v in enumerate(values):
            if not isinstance(v, str):
                raise TypeError(f"string column got non-str value {v!r} at row {i}")
            arr[i] = v
        return arr
    dtype = type_.numpy_dtype
    arr = np.asarray(values)
    if arr.dtype != dtype:
        arr = arr.astype(dtype)
    return arr


@dataclass
class Column:
    """A single named, typed column of values."""

    field: Field
    values: np.ndarray

    def __post_init__(self) -> None:
        self.values = _coerce_values(self.field.type, self.values)

    @property
    def name(self) -> str:
        return self.field.name

    @property
    def type(self) -> ColumnType:
        return self.field.type

    def __len__(self) -> int:
        return len(self.values)

    def take(self, indices: np.ndarray) -> "Column":
        """Select rows by integer indices, preserving type."""
        return Column(self.field, self.values[indices])

    def slice(self, start: int, stop: int) -> "Column":
        """Row-range slice ``[start, stop)``."""
        return Column(self.field, self.values[start:stop])

    def plain_size(self) -> int:
        """Size in bytes of this column's values in plain (uncompressed) form.

        Mirrors the paper's notion of a chunk's "uncompressed size":
        fixed-width values at their natural width, strings as
        4-byte-length-prefixed UTF-8.
        """
        width = self.type.fixed_width
        if width is not None:
            return width * len(self.values)
        return sum(4 + len(v.encode("utf-8")) for v in self.values)


class Table:
    """An ordered set of equal-length columns."""

    def __init__(self, columns: list[Column]) -> None:
        if not columns:
            raise ValueError("table must have at least one column")
        lengths = {len(c) for c in columns}
        if len(lengths) != 1:
            raise ValueError(f"columns have unequal lengths: {sorted(lengths)}")
        self.columns = list(columns)
        self.schema = Schema([c.field for c in columns])
        self.num_rows = len(columns[0])

    @staticmethod
    def from_dict(data: dict[str, tuple[ColumnType, object]]) -> "Table":
        """Build a table from ``{name: (type, values)}``."""
        cols = [Column(Field(name, t), values) for name, (t, values) in data.items()]
        return Table(cols)

    def column(self, name: str) -> Column:
        return self.columns[self.schema.index_of(name)]

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name).values

    def slice(self, start: int, stop: int) -> "Table":
        return Table([c.slice(start, stop) for c in self.columns])

    def take(self, indices: np.ndarray) -> "Table":
        return Table([c.take(indices) for c in self.columns])

    def select(self, names: list[str]) -> "Table":
        """Column projection in the given order."""
        return Table([self.column(n) for n in names])

    def equals(self, other: "Table") -> bool:
        """Deep equality on schema and values (NaN-safe for doubles)."""
        if self.schema != other.schema or self.num_rows != other.num_rows:
            return False
        for a, b in zip(self.columns, other.columns):
            if a.type is ColumnType.STRING:
                if not all(x == y for x, y in zip(a.values, b.values)):
                    return False
            elif a.type is ColumnType.DOUBLE:
                if not np.allclose(a.values, b.values, equal_nan=True):
                    return False
            else:
                if not np.array_equal(a.values, b.values):
                    return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.num_rows} rows, {len(self.columns)} cols)"
