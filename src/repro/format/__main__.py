"""PAX file inspector.

Usage::

    python -m repro.format inspect <file> [--chunks]

Prints the footer summary (schema, row groups, sizes) and, with
``--chunks``, the per-chunk table: byte ranges, encodings and
compressibility — everything FAC consumes when laying the file out.
"""

from __future__ import annotations

import sys

from repro.format.reader import FormatError, PaxFile


def describe(pax: PaxFile, show_chunks: bool = False) -> str:
    meta = pax.metadata
    chunks = meta.all_chunks()
    lines = [
        f"rows:        {meta.num_rows:,}",
        f"row groups:  {meta.num_row_groups}",
        f"columns:     {len(meta.schema)}",
        f"chunks:      {len(chunks)}",
        f"data bytes:  {meta.data_size:,}",
        f"file bytes:  {len(pax.data):,}",
        "",
        "schema:",
    ]
    for field in meta.schema:
        lines.append(f"  {field.name:24s} {field.type.value}")
    if show_chunks:
        lines.append("")
        lines.append(
            f"{'rg':>3} {'column':24s} {'offset':>10} {'size':>9} "
            f"{'plain':>10} {'ratio':>6} {'encoding':10s} {'codec'}"
        )
        for c in chunks:
            lines.append(
                f"{c.row_group:>3} {c.column:24s} {c.offset:>10,} {c.size:>9,} "
                f"{c.plain_size:>10,} {c.compressibility:>6.1f} {c.encoding:10s} {c.codec}"
            )
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    if len(argv) < 2 or argv[0] != "inspect":
        print(__doc__)
        return 0 if argv and argv[0] in ("-h", "--help") else 1
    path = argv[1]
    show_chunks = "--chunks" in argv[2:]
    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError as exc:
        print(f"cannot read {path}: {exc}", file=sys.stderr)
        return 1
    try:
        pax = PaxFile(data)
    except FormatError as exc:
        print(f"not a PAX file: {exc}", file=sys.stderr)
        return 1
    print(f"{path}")
    print(describe(pax, show_chunks))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
