"""Retained scalar reference implementations of the format data plane.

These are the original byte-at-a-time / per-value implementations that
the vectorized production code in :mod:`repro.format.compression` and
:mod:`repro.format.encoding` replaced.  They are kept for three reasons:

* the differential test suite round-trips the vectorized paths against
  them over randomized inputs (``tests/format/test_dataplane_differential``);
* ``benchmarks/dataplane_bench.py`` measures the vectorized speedup
  against them, which is the PR's headline number;
* they document the wire format in the most literal way possible.

They must stay byte-compatible with the production code: the *plain*,
*RLE*, and *varint* encoders produce byte-identical streams; the scalar
Snappy compressor produces a different (but format-compatible) token
stream than the vectorized one, so equality is checked on round-tripped
values, not on compressed bytes.
"""

from __future__ import annotations

import struct

import numpy as np

_MIN_MATCH = 4
_MAX_MATCH = 0x7F + _MIN_MATCH
_MAX_LITERAL = 128
_MAX_OFFSET = 0xFFFF
_HASH_BYTES = 4


class ScalarSnappyCodec:
    """The original greedy hash-chain LZ77 compressor (byte-at-a-time)."""

    name = "snappy-scalar"

    def compress(self, data: bytes) -> bytes:
        data = bytes(data)
        n = len(data)
        out = bytearray(struct.pack("<I", n))
        if n < _MIN_MATCH:
            self._emit_literals(out, data, 0, n)
            return bytes(out)

        table: dict[bytes, int] = {}
        i = 0
        literal_start = 0
        limit = n - _HASH_BYTES
        while i <= limit:
            key = data[i : i + _HASH_BYTES]
            candidate = table.get(key)
            table[key] = i
            if candidate is not None and i - candidate <= _MAX_OFFSET:
                # Extend the match forward.
                length = _HASH_BYTES
                max_len = min(_MAX_MATCH, n - i)
                while length < max_len and data[candidate + length] == data[i + length]:
                    length += 1
                if length >= _MIN_MATCH:
                    self._emit_literals(out, data, literal_start, i)
                    out.append(0x80 | (length - _MIN_MATCH))
                    out += struct.pack("<H", i - candidate)
                    i += length
                    literal_start = i
                    continue
            i += 1
        self._emit_literals(out, data, literal_start, n)
        return bytes(out)

    @staticmethod
    def _emit_literals(out: bytearray, data: bytes, start: int, end: int) -> None:
        pos = start
        while pos < end:
            run = min(_MAX_LITERAL, end - pos)
            out.append(run - 1)
            out += data[pos : pos + run]
            pos += run

    def decompress(self, data: bytes) -> bytes:
        data = bytes(data)
        (n,) = struct.unpack_from("<I", data, 0)
        out = bytearray()
        pos = 4
        while len(out) < n:
            tag = data[pos]
            pos += 1
            if tag < 0x80:
                run = tag + 1
                out += data[pos : pos + run]
                pos += run
            else:
                length = (tag & 0x7F) + _MIN_MATCH
                (offset,) = struct.unpack_from("<H", data, pos)
                pos += 2
                if offset == 0 or offset > len(out):
                    raise ValueError("corrupt snappy stream: bad offset")
                start = len(out) - offset
                if offset >= length:
                    out += out[start : start + length]
                else:
                    # Overlapping copy: extend byte-by-byte (run replication).
                    for j in range(length):
                        out.append(out[start + j])
        if len(out) != n:
            raise ValueError(f"corrupt snappy stream: got {len(out)} bytes, expected {n}")
        return bytes(out)


def encode_plain_strings(values: np.ndarray) -> bytes:
    """Per-value length-prefixed UTF-8 encoding (original loop)."""
    parts = []
    for v in values:
        raw = v.encode("utf-8")
        parts.append(struct.pack("<I", len(raw)))
        parts.append(raw)
    return b"".join(parts)


def decode_plain_strings(data: bytes, count: int) -> np.ndarray:
    """Per-value length-prefixed UTF-8 decoding (original loop)."""
    data = bytes(data)
    out = np.empty(count, dtype=object)
    pos = 0
    for i in range(count):
        (length,) = struct.unpack_from("<I", data, pos)
        pos += 4
        out[i] = data[pos : pos + length].decode("utf-8")
        pos += length
    return out


def _encode_varint(value: int) -> bytes:
    if value < 0:
        raise ValueError("varints encode non-negative integers only")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _decode_varint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def rle_encode(codes: np.ndarray) -> bytes:
    """Per-run varint emission (original loop)."""
    codes = np.asarray(codes, dtype=np.int64)
    if len(codes) == 0:
        return b""
    if codes.min() < 0:
        raise ValueError("RLE requires non-negative codes")
    boundaries = np.flatnonzero(np.diff(codes)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(codes)]))
    out = bytearray()
    for s, e in zip(starts, ends):
        out += _encode_varint(int(e - s))
        out += _encode_varint(int(codes[s]))
    return bytes(out)


def rle_decode(data: bytes, count: int) -> np.ndarray:
    """Per-run varint parsing (original loop)."""
    data = bytes(data)
    out = np.empty(count, dtype=np.int64)
    pos = 0
    filled = 0
    while filled < count:
        run, pos = _decode_varint(data, pos)
        value, pos = _decode_varint(data, pos)
        out[filled : filled + run] = value
        filled += run
    if filled != count:
        raise ValueError(f"RLE stream decoded {filled} values, expected {count}")
    return out


def build_string_dictionary(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-value dict-probe dictionary build (original loop)."""
    mapping: dict[str, int] = {}
    codes = np.empty(len(values), dtype=np.int64)
    uniques: list[str] = []
    for i, v in enumerate(values):
        code = mapping.get(v)
        if code is None:
            code = len(uniques)
            mapping[v] = code
            uniques.append(v)
        codes[i] = code
    uniq_arr = np.empty(len(uniques), dtype=object)
    for i, v in enumerate(uniques):
        uniq_arr[i] = v
    return uniq_arr, codes


def build_vandermonde_encoding_matrix(n: int, k: int) -> np.ndarray:
    """The original row-reduced Vandermonde systematic matrix.

    The production coder moved to a normalized Cauchy construction whose
    first parity row is all ones; this retains the seed's matrix so the
    benchmark baseline reproduces the seed's (dense) coefficient
    structure exactly.
    """
    from repro.ec import gf256

    vander = gf256.gf_vandermonde(n, k)
    top_inv = gf256.gf_mat_inv(vander[:k, :k])
    return gf256.gf_matmul(vander, top_inv)


class ScalarReedSolomon:
    """The original per-shard ``gf_addmul_bytes`` Reed-Solomon coder."""

    def __init__(self, n: int, k: int) -> None:
        self.n, self.k = n, k
        self.matrix = build_vandermonde_encoding_matrix(n, k)
        self._inversion_cache: dict[tuple[int, ...], np.ndarray] = {}

    def encode(self, data_blocks: list[np.ndarray]) -> list[np.ndarray]:
        from repro.ec import gf256

        size = data_blocks[0].size
        parities = []
        for row in range(self.k, self.n):
            acc = np.zeros(size, dtype=np.uint8)
            for col in range(self.k):
                gf256.gf_addmul_bytes(acc, int(self.matrix[row, col]), data_blocks[col])
            parities.append(acc)
        return parities

    def decode(self, shards: list[np.ndarray | None]) -> list[np.ndarray]:
        from repro.ec import gf256

        present = [i for i, s in enumerate(shards) if s is not None]
        rows = tuple(present[: self.k])
        inv = self._inversion_cache.get(rows)
        if inv is None:
            inv = gf256.gf_mat_inv(self.matrix[list(rows), :])
            self._inversion_cache[rows] = inv
        size = shards[rows[0]].size  # type: ignore[union-attr]
        out: list[np.ndarray] = []
        for data_idx in range(self.k):
            acc = np.zeros(size, dtype=np.uint8)
            for j, shard_idx in enumerate(rows):
                shard = np.ascontiguousarray(shards[shard_idx], dtype=np.uint8)
                gf256.gf_addmul_bytes(acc, int(inv[data_idx, j]), shard)
            out.append(acc)
        return out


__all__ = [
    "ScalarSnappyCodec",
    "encode_plain_strings",
    "decode_plain_strings",
    "rle_encode",
    "rle_decode",
    "build_string_dictionary",
    "build_vandermonde_encoding_matrix",
    "ScalarReedSolomon",
]
