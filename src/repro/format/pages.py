"""Self-contained column chunk encoding.

A column chunk is the paper's *smallest computable unit*: given only the
chunk's bytes, a storage node can decode every value and run filters or
projections on it.  To make that literal, each encoded chunk carries a
small header (type, codec, encoding) followed by an optional dictionary
page and one or more data pages, each page compressed independently.

Wire layout::

    byte   type id           (ColumnType)
    byte   codec id          (none / zlib / snappy)
    byte   encoding id       (plain / dictionary)
    varint num_values
    if dictionary:
        varint num_uniques
        varint dict_page_compressed_size
        bytes  dict page     (codec-compressed plain-encoded uniques)
    varint num_pages
    per page:
        varint page_num_values
        varint page_compressed_size
        bytes  page payload  (codec-compressed plain values or index stream)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.format import encoding as enc
from repro.format.compression import get_codec
from repro.format.schema import ColumnType

#: Default number of values per data page (Parquet defaults to ~1MB pages;
#: a row-count bound is simpler and equivalent for our purposes).
DEFAULT_PAGE_VALUES = 8192

_TYPE_IDS = {t: i for i, t in enumerate(ColumnType)}
_TYPES_BY_ID = {i: t for t, i in _TYPE_IDS.items()}

_CODEC_IDS = {"none": 0, "zlib": 1, "snappy": 2}
_CODECS_BY_ID = {i: n for n, i in _CODEC_IDS.items()}

_ENCODING_IDS = {enc.PLAIN: 0, enc.DICTIONARY: 1}
_ENCODINGS_BY_ID = {i: n for n, i in _ENCODING_IDS.items()}


@dataclass(frozen=True)
class EncodedChunk:
    """An encoded column chunk plus the facts the file footer records."""

    data: bytes
    type: ColumnType
    codec: str
    encoding: str
    num_values: int
    plain_size: int  # uncompressed (plain-encoded) size in bytes

    @property
    def compressed_size(self) -> int:
        return len(self.data)

    @property
    def compressibility(self) -> float:
        """The paper's compressibility: uncompressed size / compressed size."""
        if self.compressed_size == 0:
            return 1.0
        return self.plain_size / self.compressed_size


@dataclass(frozen=True)
class PageInfo:
    """Header facts for one data page, readable without decompression.

    ``start_row`` is the page's first row within the chunk; ``min_value``/
    ``max_value`` are the page statistics (``None`` when absent), used for
    node-local page skipping during filter pushdown.
    """

    index: int
    start_row: int
    num_values: int
    compressed_size: int
    min_value: object
    max_value: object


_MAX_STRING_STAT = 32


def _as_buffer(data):
    """Normalize chunk bytes to a zero-copy buffer with int indexing.

    The store's read path hands us uint8 array views over stripe blocks;
    indexing those yields numpy scalars whose fixed-width shifts would
    corrupt varint decoding, so anything that is not already ``bytes``
    is wrapped in a flat ``memoryview`` (no copy) instead.
    """
    if isinstance(data, (bytes, bytearray, memoryview)):
        return data
    return memoryview(data).cast("B")


def _encode_page_stats(type_: ColumnType, values: np.ndarray) -> bytes:
    """Serialise min/max stats for one page (1 flag byte + payload)."""
    if len(values) == 0:
        return b"\x00"
    if type_ is ColumnType.STRING:
        lo, hi = min(values), max(values)
        lo_b, hi_b = lo.encode("utf-8"), hi.encode("utf-8")
        if len(lo_b) > _MAX_STRING_STAT or len(hi_b) > _MAX_STRING_STAT:
            return b"\x00"  # long strings: omit stats, stay conservative
        return (
            b"\x01"
            + enc.encode_varint(len(lo_b))
            + lo_b
            + enc.encode_varint(len(hi_b))
            + hi_b
        )
    pair = np.array([values.min(), values.max()], dtype=type_.numpy_dtype)
    return b"\x01" + enc.encode_plain(type_, pair)


def _decode_page_stats(type_: ColumnType, data: bytes, pos: int):
    """Inverse of :func:`_encode_page_stats`; returns (min, max, next_pos)."""
    flag = data[pos]
    pos += 1
    if flag == 0:
        return None, None, pos
    if type_ is ColumnType.STRING:
        lo_len, pos = enc.decode_varint(data, pos)
        lo = bytes(data[pos : pos + lo_len]).decode("utf-8")
        pos += lo_len
        hi_len, pos = enc.decode_varint(data, pos)
        hi = bytes(data[pos : pos + hi_len]).decode("utf-8")
        pos += hi_len
        return lo, hi, pos
    width = type_.fixed_width or 0
    pair = enc.decode_plain(type_, data[pos : pos + 2 * width], 2)
    pos += 2 * width
    lo, hi = pair[0], pair[1]
    if type_ is ColumnType.BOOL:
        return bool(lo), bool(hi), pos
    if type_ is ColumnType.DOUBLE:
        return float(lo), float(hi), pos
    return int(lo), int(hi), pos


def encode_column_chunk(
    type_: ColumnType,
    values: np.ndarray,
    codec_name: str,
    page_values: int = DEFAULT_PAGE_VALUES,
    force_encoding: str | None = None,
) -> EncodedChunk:
    """Encode one column chunk's values into its self-contained byte form.

    The encoding (plain vs dictionary) is chosen by the Parquet-like
    heuristic in :func:`repro.format.encoding.should_use_dictionary`
    unless ``force_encoding`` pins it.
    """
    codec = get_codec(codec_name)
    num_values = len(values)
    plain = enc.encode_plain(type_, values)

    if force_encoding is None:
        uniques, codes = enc.build_dictionary(type_, values)
        use_dict = enc.should_use_dictionary(num_values, len(uniques))
        chosen = enc.DICTIONARY if use_dict else enc.PLAIN
    else:
        chosen = force_encoding
        if chosen == enc.DICTIONARY:
            uniques, codes = enc.build_dictionary(type_, values)

    out = bytearray()
    out.append(_TYPE_IDS[type_])
    out.append(_CODEC_IDS[codec_name])
    out.append(_ENCODING_IDS[chosen])
    out += enc.encode_varint(num_values)

    if chosen == enc.DICTIONARY:
        dict_plain = enc.encode_plain(type_, uniques)
        dict_page = codec.compress(dict_plain)
        out += enc.encode_varint(len(uniques))
        out += enc.encode_varint(len(dict_page))
        out += dict_page
        bit_width = enc.bit_width_for(max(0, len(uniques) - 1))
        pages = _paginate(num_values, page_values)
        out += enc.encode_varint(len(pages))
        for start, stop in pages:
            payload = enc.encode_index_stream(codes[start:stop], bit_width)
            compressed = codec.compress(payload)
            out += enc.encode_varint(stop - start)
            out += _encode_page_stats(type_, values[start:stop])
            out += enc.encode_varint(len(compressed))
            out += compressed
    else:
        pages = _paginate(num_values, page_values)
        out += enc.encode_varint(len(pages))
        for start, stop in pages:
            payload = enc.encode_plain(type_, values[start:stop])
            compressed = codec.compress(payload)
            out += enc.encode_varint(stop - start)
            out += _encode_page_stats(type_, values[start:stop])
            out += enc.encode_varint(len(compressed))
            out += compressed

    return EncodedChunk(
        data=bytes(out),
        type=type_,
        codec=codec_name,
        encoding=chosen,
        num_values=num_values,
        plain_size=len(plain),
    )


def _paginate(num_values: int, page_values: int) -> list[tuple[int, int]]:
    if num_values == 0:
        return [(0, 0)]
    if page_values <= 0:
        raise ValueError("page_values must be positive")
    return [
        (start, min(start + page_values, num_values))
        for start in range(0, num_values, page_values)
    ]


def decode_column_chunk(data) -> np.ndarray:
    """Decode a self-contained chunk back to its value array.

    ``data`` may be ``bytes`` or any C-contiguous buffer (``memoryview``,
    uint8 array view): page payloads are sliced as views and handed to
    the codec without copying.
    """
    data = _as_buffer(data)
    type_ = _TYPES_BY_ID[data[0]]
    codec = get_codec(_CODECS_BY_ID[data[1]])
    encoding_name = _ENCODINGS_BY_ID[data[2]]
    pos = 3
    num_values, pos = enc.decode_varint(data, pos)

    if encoding_name == enc.DICTIONARY:
        num_uniques, pos = enc.decode_varint(data, pos)
        dict_size, pos = enc.decode_varint(data, pos)
        dict_plain = codec.decompress(data[pos : pos + dict_size])
        pos += dict_size
        uniques = enc.decode_plain(type_, dict_plain, num_uniques)
        bit_width = enc.bit_width_for(max(0, num_uniques - 1))
        codes = np.empty(num_values, dtype=np.int64)
        filled = 0
        num_pages, pos = enc.decode_varint(data, pos)
        for _ in range(num_pages):
            page_count, pos = enc.decode_varint(data, pos)
            _lo, _hi, pos = _decode_page_stats(type_, data, pos)
            page_size, pos = enc.decode_varint(data, pos)
            payload = codec.decompress(data[pos : pos + page_size])
            pos += page_size
            codes[filled : filled + page_count] = enc.decode_index_stream(
                payload, bit_width, page_count
            )
            filled += page_count
        return uniques[codes]

    num_pages, pos = enc.decode_varint(data, pos)
    parts = []
    for _ in range(num_pages):
        page_count, pos = enc.decode_varint(data, pos)
        _lo, _hi, pos = _decode_page_stats(type_, data, pos)
        page_size, pos = enc.decode_varint(data, pos)
        payload = codec.decompress(data[pos : pos + page_size])
        pos += page_size
        parts.append(enc.decode_plain(type_, payload, page_count))
    if not parts:
        return np.zeros(0, dtype=type_.numpy_dtype or object)
    return np.concatenate(parts)


def chunk_type(data: bytes) -> ColumnType:
    """Peek at an encoded chunk's column type without decoding it."""
    return _TYPES_BY_ID[data[0]]


def chunk_page_index(data) -> list[PageInfo]:
    """Read the chunk's page headers and stats without decompressing.

    This is what a storage node consults to skip pages whose min/max
    stats cannot satisfy a filter (Parquet's page-index pruning).
    Accepts the same buffer types as :func:`decode_column_chunk`.
    """
    data = _as_buffer(data)
    type_ = _TYPES_BY_ID[data[0]]
    encoding_name = _ENCODINGS_BY_ID[data[2]]
    pos = 3
    _num_values, pos = enc.decode_varint(data, pos)
    if encoding_name == enc.DICTIONARY:
        _num_uniques, pos = enc.decode_varint(data, pos)
        dict_size, pos = enc.decode_varint(data, pos)
        pos += dict_size
    num_pages, pos = enc.decode_varint(data, pos)
    out: list[PageInfo] = []
    start_row = 0
    for index in range(num_pages):
        page_count, pos = enc.decode_varint(data, pos)
        lo, hi, pos = _decode_page_stats(type_, data, pos)
        page_size, pos = enc.decode_varint(data, pos)
        pos += page_size
        out.append(
            PageInfo(
                index=index,
                start_row=start_row,
                num_values=page_count,
                compressed_size=page_size,
                min_value=lo,
                max_value=hi,
            )
        )
        start_row += page_count
    return out
